//! Facade crate for the FADEWICH reproduction.
//!
//! Re-exports every workspace crate under one roof so downstream users
//! can depend on a single crate:
//!
//! ```
//! use fadewich::stats::Rng;
//! let mut rng = Rng::seed_from_u64(1);
//! let _ = rng.f64();
//! ```

#![forbid(unsafe_code)]

pub use fadewich_core as core;
pub use fadewich_experiments as experiments;
pub use fadewich_fleet as fleet;
pub use fadewich_geometry as geometry;
pub use fadewich_officesim as officesim;
pub use fadewich_rfchannel as rfchannel;
pub use fadewich_runtime as runtime;
pub use fadewich_stats as stats;
pub use fadewich_svm as svm;
