//! Quickstart: simulate a small office, train FADEWICH, and watch it
//! deauthenticate a departing user.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fadewich::core::config::FadewichParams;
use fadewich::core::md::run_md_over_day;
use fadewich::core::security::{deauth_outcomes, evaluate_detection};
use fadewich::experiments::pipeline::{build_samples, cross_validated_predictions, run_md_stage};
use fadewich::officesim::{Scenario, ScenarioConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a 2-hour office day: 3 users, 9 wall sensors, ground
    //    truth included ("the supervisor's notebook").
    let scenario = Scenario::generate(ScenarioConfig::small())?;
    println!(
        "scenario: {} ground-truth events (labels w0..w3 = {:?})",
        scenario.events().len(),
        scenario.events().label_counts(3),
    );

    // 2. Simulate the radio channel: every directed sensor pair is an
    //    RSSI stream the bodies of the users perturb.
    let trace = scenario.simulate()?;
    println!(
        "trace: {} streams x {} ticks at {} Hz",
        trace.n_streams(),
        trace.days()[0].n_ticks(),
        trace.tick_hz(),
    );

    // 3. Movement Detection: rolling std-dev profile + KDE threshold.
    let params = FadewichParams::default();
    let streams: Vec<usize> = (0..trace.n_streams()).collect();
    let md = run_md_over_day(&trace.days()[0], &streams, trace.tick_hz(), params)?;
    let significant = md.significant_windows(params.t_delta_ticks(trace.tick_hz()));
    println!(
        "MD: {} variation windows, {} significant (>= t_delta = {} s)",
        md.windows.len(),
        significant.len(),
        params.t_delta_s,
    );

    // 4. Full pipeline: match windows to ground truth, build samples,
    //    cross-validate the Radio Environment classifier.
    let stage = run_md_stage(&trace, &streams, scenario.events(), &params)?;
    println!(
        "detection: {} TP / {} FP / {} FN",
        stage.detection.counts.true_positives,
        stage.detection.counts.false_positives,
        stage.detection.counts.false_negatives,
    );
    let samples = build_samples(&trace, &stage, scenario.events(), &streams, &params);
    let (predictions, accuracy) = cross_validated_predictions(&samples, 3, None, 7);
    println!("RE classifier: {:.0}% cross-validated accuracy", accuracy * 100.0);

    // 5. Security outcome per departure (the paper's Fig. 5 decision
    //    tree): how long was each workstation exposed?
    let detection = evaluate_detection(
        &stage.significant,
        scenario.events(),
        trace.tick_hz(),
        &params,
    );
    let outcomes =
        deauth_outcomes(&detection, &predictions, scenario.events(), &params, trace.tick_hz());
    println!("\ndepartures:");
    for o in &outcomes {
        let event = &scenario.events().events()[o.event_index];
        println!(
            "  day {} t={:7.1}s  label w{}  {:?}  deauthenticated after {:.1} s",
            event.day,
            event.t_start,
            event.label(),
            o.case,
            o.elapsed,
        );
    }
    let within_6 = outcomes.iter().filter(|o| o.elapsed <= 6.0).count();
    println!(
        "\n{}/{} departures deauthenticated within 6 seconds",
        within_6,
        outcomes.len(),
    );
    Ok(())
}
