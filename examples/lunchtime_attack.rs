//! The lunchtime attack, defeated: runs the *online* FADEWICH
//! controller against a scripted attack scenario.
//!
//! A victim works at w1 and steps out for lunch. A co-worker adversary
//! walks up to the victim's workstation. With the controller running,
//! the session is deauthenticated before the adversary arrives; with
//! only the inactivity timeout, the adversary has minutes of access.
//!
//! ```text
//! cargo run --release --example lunchtime_attack
//! ```

use fadewich::core::config::FadewichParams;
use fadewich::core::controller::Controller;
use fadewich::core::features::{extract_features, TrainingSample};
use fadewich::core::{Kma, RadioEnvironment};
use fadewich::officesim::{InputTrace, OfficeLayout, PersonTimeline};
use fadewich::rfchannel::{Body, ChannelParams, ChannelSim};
use fadewich::stats::Rng;
use fadewich::officesim::DayTrace;

const TICK_HZ: f64 = 5.0;
/// The victim stands up at this moment (seconds from scenario start).
const DEPARTURE_S: f64 = 600.0;
/// The adversary reaches the workstation this long after the victim
/// passes the door (a co-worker already inside the office).
const ADVERSARY_DELAY_S: f64 = 1.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layout = OfficeLayout::paper_office();
    let mut rng = Rng::seed_from_u64(2024);

    // --- Train the Radio Environment on a few scripted departures. ---
    let re = train_re(&layout, &mut rng)?;

    // --- The attack day: victim at w1 present from t=30, leaves at
    //     DEPARTURE_S and does not return. Two colleagues keep working.
    let day_len = 1200.0;
    let victim =
        PersonTimeline::build(&layout, 0, &[(30.0, DEPARTURE_S)], day_len, &mut rng);
    let colleague1 =
        PersonTimeline::build(&layout, 1, &[(35.0 + 60.0, 1100.0)], day_len, &mut rng);
    let colleague2 =
        PersonTimeline::build(&layout, 2, &[(35.0 + 160.0, 1100.0)], day_len, &mut rng);
    let people = [victim, colleague1, colleague2];
    let exit_time = people[0].movements().last().expect("victim leaves").t_door;

    // Keyboard/mouse inputs for the day (the victim's last input is at
    // the departure, the worst case).
    let inputs = InputTrace::generate(&people, 0.78, &mut rng);
    let kma = Kma::new(&inputs);

    // --- Run the online controller over the simulated channel. ---
    let mut sim = ChannelSim::new(
        layout.sensors(),
        layout.room(),
        TICK_HZ,
        ChannelParams::default(),
        99,
    )?;
    let params = FadewichParams::default();
    let mut controller = Controller::new(sim.n_links(), TICK_HZ, params, &re, kma)?;
    let n_ticks = (day_len * TICK_HZ) as usize;
    for tick in 0..n_ticks {
        let t = tick as f64 / TICK_HZ;
        let bodies: Vec<Body> = people.iter().filter_map(|p| p.body_at(t)).collect();
        let row = sim.step(&bodies).to_vec();
        controller.step(tick, &row);
    }

    // --- Verdict. ---
    let deauth = controller
        .actions()
        .iter()
        .find(|a| a.kind.is_deauth() && a.kind.workstation() == 0);
    let adversary_arrival = exit_time + ADVERSARY_DELAY_S;
    println!("victim stands up at        {DEPARTURE_S:7.1} s");
    println!("victim through the door at {exit_time:7.1} s");
    println!("adversary at workstation   {adversary_arrival:7.1} s");
    match deauth {
        Some(a) => {
            println!(
                "FADEWICH deauthenticated w1 at {:7.1} s ({:?})",
                a.t, a.kind
            );
            if a.t <= adversary_arrival {
                println!("\nlunchtime attack DEFEATED: the session was locked first.");
            } else {
                println!(
                    "\nlunchtime attack SUCCEEDED with a {:.1} s window.",
                    a.t - adversary_arrival
                );
            }
        }
        None => println!("w1 was never deauthenticated — attack succeeds trivially."),
    }
    let timeout_lock = DEPARTURE_S + params.timeout_s;
    println!(
        "for comparison, the {}-second inactivity timeout would have locked at {timeout_lock:.0} s — {:.0} s of exposure.",
        params.timeout_s,
        timeout_lock - adversary_arrival,
    );
    Ok(())
}

/// Trains RE on scripted single-user departures/arrivals (a miniature
/// version of the paper's installation-time training phase).
fn train_re(
    layout: &OfficeLayout,
    rng: &mut Rng,
) -> Result<RadioEnvironment, Box<dyn std::error::Error>> {
    let params = FadewichParams::default();
    let mut sim = ChannelSim::new(
        layout.sensors(),
        layout.room(),
        TICK_HZ,
        ChannelParams::default(),
        7,
    )?;
    let mut samples: Vec<TrainingSample> = Vec::new();
    // For each workstation, record several leave and enter movements.
    for ws in 0..layout.n_workstations() {
        for rep in 0..6 {
            let leave_t = 60.0;
            let person = PersonTimeline::build(
                layout,
                ws,
                &[(20.0, leave_t)],
                200.0,
                &mut rng.fork((ws * 31 + rep) as u64),
            );
            let movements = person.movements();
            let n_ticks = (120.0 * TICK_HZ) as usize;
            let mut day = DayTrace::with_capacity(sim.n_links(), n_ticks);
            for tick in 0..n_ticks {
                let t = tick as f64 / TICK_HZ;
                let bodies: Vec<Body> = person.body_at(t).into_iter().collect();
                day.push_row(sim.step(&bodies));
            }
            let streams: Vec<usize> = (0..sim.n_links()).collect();
            // The leave window starts at the stand-up.
            let leave_tick = (movements[1].t_start * TICK_HZ) as usize;
            samples.push(TrainingSample {
                features: extract_features(&day, &streams, leave_tick, TICK_HZ, &params),
                label: ws + 1,
            });
            // The enter window starts at the door.
            let enter_tick = (movements[0].t_start * TICK_HZ) as usize;
            samples.push(TrainingSample {
                features: extract_features(&day, &streams, enter_tick, TICK_HZ, &params),
                label: 0,
            });
        }
    }
    println!("trained RE on {} scripted samples", samples.len());
    Ok(RadioEnvironment::train(&samples, None, rng)?)
}
