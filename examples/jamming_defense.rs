//! Wireless-attack demo (paper §V-C): a saturation jammer tries to
//! mask a victim's departure; the channel-integrity guard catches it.
//!
//! ```text
//! cargo run --release --example jamming_defense
//! ```

use fadewich::experiments::attacks::jamming_study;
use fadewich::experiments::Experiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("simulating a 1-day office and three attack conditions...");
    let experiment = Experiment::small(0x7A3)?;
    let (results, table) = jamming_study(&experiment)?;
    println!("{table}");

    let saturate = results.last().expect("saturation condition");
    if !saturate.departure_detected {
        println!(
            "the saturation jammer DID mask the departure from Movement Detection —"
        );
    }
    if saturate.guard_alarmed {
        println!(
            "but the integrity guard flagged the silenced streams {:.1} s into the attack,",
            saturate.alarm_latency_s.unwrap_or(f64::NAN),
        );
        println!(
            "confirming the paper's argument: an attacker cannot suppress the channel quietly."
        );
    }
    Ok(())
}
