//! Sensor-placement study: how many sensors does an office need, and
//! where should they go?
//!
//! Sweeps deployments of 3–9 sensors (in the documented greedy order
//! and in a wall-clustered worst-practice order) and prints detection
//! recall, classifier accuracy and the residual attack surface — the
//! analysis behind the paper's "eight sensors suffice" conclusion.
//!
//! ```text
//! cargo run --release --example sensor_placement
//! ```

use fadewich::core::security::{attack_opportunities, INSIDER_DELAY_S};
use fadewich::experiments::figures::outcomes_for_run;
use fadewich::experiments::report::TextTable;
use fadewich::experiments::Experiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("simulating a 1-day office (use the reproduce binary for the 5-day run)...");
    let experiment = Experiment::small(0xBEEF)?;
    let events = experiment.scenario.events();
    println!(
        "{} ground-truth events, {} departures\n",
        events.len(),
        events.leaves().count(),
    );

    let mut table = TextTable::new(
        "Deployment sweep (greedy placement order)",
        &["sensors", "recall", "RE accuracy", "insider opps", "co-worker opps"],
    );
    for n in 3..=9 {
        let run = experiment.run_for_sensors(n, 3)?;
        let outcomes = outcomes_for_run(&experiment, &run);
        let attacks = attack_opportunities(&outcomes, events, INSIDER_DELAY_S);
        table.add_row(vec![
            n.to_string(),
            format!("{:.2}", run.stage.detection.counts.recall()),
            format!("{:.2}", run.accuracy),
            attacks.insider_opportunities.to_string(),
            attacks.coworker_opportunities.to_string(),
        ]);
    }
    println!("{table}");

    // Worst-practice placement: all sensors clustered on one wall.
    let clustered: Vec<usize> = vec![1, 2, 3, 4]; // d2..d5, the north wall
    let run = experiment.run_for_subset(&clustered, 3)?;
    println!(
        "wall-clustered 4-sensor deployment (d2..d5): recall {:.2} — links that hug a wall never \
         cross the users' paths, so coverage, not count, is what matters.",
        run.stage.detection.counts.recall(),
    );
    Ok(())
}
