//! The security/usability trade-off: vulnerable time vs user cost.
//!
//! Reproduces the paper's Fig. 13 analysis on a 1-day scenario:
//! a plain inactivity timeout costs users nothing but leaves
//! workstations exposed for minutes; FADEWICH inverts the trade —
//! seconds of user cost buy an orders-of-magnitude drop in exposure.
//!
//! ```text
//! cargo run --release --example usability_tradeoff
//! ```

use fadewich::experiments::figures::{fig13, fig13_table};
use fadewich::experiments::tables::table4;
use fadewich::experiments::Experiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("simulating a 1-day office...");
    let experiment = Experiment::small(0xCAFE)?;
    let runs = experiment.sweep(&[3, 5, 7, 9], 3)?;

    // Table IV: error counts over repeated keyboard/mouse draws.
    let (cost_rows, table) = table4(&experiment, &runs, 25);
    println!("{table}");

    // Fig. 13: exposure vs cost, timeout baseline included.
    let rows = fig13(&experiment, &runs, &cost_rows);
    println!("{}", fig13_table(&rows));

    let timeout = rows.first().expect("baseline row");
    let best = rows.last().expect("9-sensor row");
    if best.vulnerable_minutes > 0.0 {
        println!(
            "9 sensors cut vulnerable time {:.0}x (from {:.1} to {:.1} minutes) at a cost of {:.1} user-minutes.",
            timeout.vulnerable_minutes / best.vulnerable_minutes,
            timeout.vulnerable_minutes,
            best.vulnerable_minutes,
            best.cost_minutes,
        );
    } else {
        println!(
            "9 sensors eliminated all {:.1} minutes of exposure at a cost of {:.1} user-minutes.",
            timeout.vulnerable_minutes, best.cost_minutes,
        );
    }
    Ok(())
}
