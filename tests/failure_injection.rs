//! Failure injection: the pipeline must degrade gracefully — never
//! panic, and fall back to the timeout (case C) rather than miss
//! silently — when sensors die, saturate, or the environment goes
//! haywire.

use fadewich::core::config::FadewichParams;
use fadewich::core::md::run_md_over_day;
use fadewich::core::security::evaluate_detection;
use fadewich::officesim::{DayTrace, Scenario, ScenarioConfig};
use fadewich::rfchannel::ChannelParams;
use fadewich::stats::Rng;

/// Copies a recorded day, replacing the given streams with a dead
/// constant (sensor unplugged: its radio reports a floor value).
fn kill_streams(day: &DayTrace, dead: &[usize]) -> DayTrace {
    let mut out = DayTrace::with_capacity(day.n_streams(), day.n_ticks());
    let mut row = vec![0.0f64; day.n_streams()];
    for t in 0..day.n_ticks() {
        for s in 0..day.n_streams() {
            row[s] = if dead.contains(&s) { -95.0 } else { day.sample(t, s) };
        }
        out.push_row(&row);
    }
    out
}

/// Copies a recorded day with all values clipped (saturated frontend).
fn saturate(day: &DayTrace, floor: f64, ceil: f64) -> DayTrace {
    let mut out = DayTrace::with_capacity(day.n_streams(), day.n_ticks());
    let mut row = vec![0.0f64; day.n_streams()];
    for t in 0..day.n_ticks() {
        for s in 0..day.n_streams() {
            row[s] = day.sample(t, s).clamp(floor, ceil);
        }
        out.push_row(&row);
    }
    out
}

fn small_trace(seed: u64) -> (Scenario, fadewich::officesim::Trace) {
    let scenario =
        Scenario::generate(ScenarioConfig { seed, ..ScenarioConfig::small() }).expect("scenario");
    let trace = scenario.simulate().expect("simulate");
    (scenario, trace)
}

#[test]
fn dead_streams_do_not_panic_and_detection_survives() {
    let (scenario, trace) = small_trace(0xDEAD);
    let params = FadewichParams::default();
    // Kill every stream touching sensor d1 (index 0).
    let dead: Vec<usize> = trace
        .link_ids()
        .iter()
        .enumerate()
        .filter(|(_, id)| id.tx == 0 || id.rx == 0)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(dead.len(), 16);
    let crippled = kill_streams(&trace.days()[0], &dead);
    let streams: Vec<usize> = (0..trace.n_streams()).collect();
    let run = run_md_over_day(&crippled, &streams, trace.tick_hz(), params).expect("md");
    let significant = vec![run.significant_windows(params.t_delta_ticks(trace.tick_hz()))];
    let detection = evaluate_detection(&significant, scenario.events(), trace.tick_hz(), &params);
    // 8 healthy sensors remain: detection should still catch most
    // events (the paper's Table III says 8 sensors catch them all).
    assert!(
        detection.counts.recall() > 0.6,
        "recall with a dead sensor = {} ({:?})",
        detection.counts.recall(),
        detection.counts
    );
}

#[test]
fn all_streams_dead_yields_no_windows_everything_times_out() {
    let (scenario, trace) = small_trace(0xDEAD);
    let params = FadewichParams::default();
    let all: Vec<usize> = (0..trace.n_streams()).collect();
    let flat = kill_streams(&trace.days()[0], &all);
    let run = run_md_over_day(&flat, &all, trace.tick_hz(), params).expect("md");
    let significant = vec![run.significant_windows(params.t_delta_ticks(trace.tick_hz()))];
    assert!(significant[0].is_empty(), "dead channel produced windows");
    let detection = evaluate_detection(&significant, scenario.events(), trace.tick_hz(), &params);
    // Every event becomes a false negative -> case C (timeout) covers
    // them; nothing panics, nothing is silently "detected".
    assert_eq!(detection.counts.true_positives, 0);
    assert_eq!(detection.counts.false_negatives, scenario.events().len());
}

#[test]
fn saturated_frontend_does_not_panic() {
    let (_, trace) = small_trace(0x5A7);
    let params = FadewichParams::default();
    let clipped = saturate(&trace.days()[0], -60.0, -50.0);
    let streams: Vec<usize> = (0..trace.n_streams()).collect();
    // Just must not panic; detection quality is allowed to collapse.
    let run = run_md_over_day(&clipped, &streams, trace.tick_hz(), params).expect("md");
    assert_eq!(run.st_series.len(), clipped.n_ticks());
}

#[test]
fn disturbance_storm_costs_precision_not_crashes() {
    // Crank interference far beyond calibration: bursts every few
    // minutes, wide and loud.
    let mut config = ScenarioConfig { seed: 0x570F, ..ScenarioConfig::small() };
    config.channel = ChannelParams {
        burst_rate_per_hour: 30.0,
        burst_radius_m: 5.0,
        burst_noise_sd_db: 4.0,
        ..ChannelParams::default()
    };
    let scenario = Scenario::generate(config).expect("scenario");
    let trace = scenario.simulate().expect("simulate");
    let params = FadewichParams::default();
    let streams: Vec<usize> = (0..trace.n_streams()).collect();
    let run = run_md_over_day(&trace.days()[0], &streams, trace.tick_hz(), params).expect("md");
    let significant = vec![run.significant_windows(params.t_delta_ticks(trace.tick_hz()))];
    let detection = evaluate_detection(&significant, scenario.events(), trace.tick_hz(), &params);
    // Precision degrades under the storm, but the events themselves
    // are still mostly seen (bursts ADD variance, they don't mask it).
    assert!(
        detection.counts.recall() > 0.5,
        "storm recall = {}",
        detection.counts.recall()
    );
    assert!(
        detection.counts.false_positives > 0,
        "a storm this violent should cost some precision"
    );
}

#[test]
fn profile_survives_pathological_first_minute() {
    // A trace whose first minute (the profile-init phase) is pure
    // silence followed by sudden normal noise: MD must adapt via the
    // batch updates instead of flagging the whole day anomalous.
    let mut rng = Rng::seed_from_u64(9);
    let n_streams = 8;
    let n_ticks = 6000;
    let mut day = DayTrace::with_capacity(n_streams, n_ticks);
    let mut row = vec![0.0f64; n_streams];
    for t in 0..n_ticks {
        let sd = if t < 400 { 0.01 } else { 1.0 };
        for r in row.iter_mut() {
            *r = -50.0 + rng.normal() * sd;
        }
        day.push_row(&row);
    }
    let params = FadewichParams::default();
    let streams: Vec<usize> = (0..n_streams).collect();
    let run = run_md_over_day(&day, &streams, 5.0, params).expect("md");
    // The last quarter of the day must be mostly normal again.
    let tail = &run.st_series[4500..];
    let ub_tail = &run.threshold_series[4500..];
    let anomalous = tail
        .iter()
        .zip(ub_tail)
        .filter(|(s, ub)| s >= ub)
        .count();
    assert!(
        (anomalous as f64) < 0.2 * tail.len() as f64,
        "profile never adapted: {anomalous}/{} anomalous at day end",
        tail.len()
    );
}
