//! Integration tests of the *online* controller: the full Quiet/Noisy
//! automaton driven tick-by-tick by a simulated channel, trained RE
//! and simulated inputs — the deployment configuration a real office
//! would run.

use fadewich::core::config::FadewichParams;
use fadewich::core::controller::{ActionKind, Controller};
use fadewich::core::features::{extract_features, TrainingSample};
use fadewich::core::{Kma, RadioEnvironment};
use fadewich::officesim::{DayTrace, InputTrace, OfficeLayout, PersonTimeline};
use fadewich::rfchannel::{Body, ChannelParams, ChannelSim};
use fadewich::stats::Rng;

const HZ: f64 = 5.0;

/// Trains RE on scripted per-workstation departures and arrivals.
fn trained_re(layout: &OfficeLayout, rng: &mut Rng) -> RadioEnvironment {
    let params = FadewichParams::default();
    let mut sim = ChannelSim::new(
        layout.sensors(),
        layout.room(),
        HZ,
        ChannelParams::default(),
        3,
    )
    .expect("channel");
    let mut samples = Vec::new();
    for ws in 0..layout.n_workstations() {
        for rep in 0..5 {
            let person = PersonTimeline::build(
                layout,
                ws,
                &[(20.0, 70.0)],
                200.0,
                &mut rng.fork((ws * 13 + rep) as u64),
            );
            let movements = person.movements();
            let mut day = DayTrace::with_capacity(sim.n_links(), 600);
            for tick in 0..600 {
                let t = tick as f64 / HZ;
                let bodies: Vec<Body> = person.body_at(t).into_iter().collect();
                day.push_row(sim.step(&bodies));
            }
            let streams: Vec<usize> = (0..sim.n_links()).collect();
            for (m, label) in [(&movements[1], ws + 1), (&movements[0], 0)] {
                samples.push(TrainingSample {
                    features: extract_features(
                        &day,
                        &streams,
                        (m.t_start * HZ) as usize,
                        HZ,
                        &params,
                    ),
                    label,
                });
            }
        }
    }
    RadioEnvironment::train(&samples, None, rng).expect("training")
}

struct DayRun {
    actions: Vec<fadewich::core::Action>,
}

/// Runs the online controller over a scripted day.
fn run_day(presences: &[Vec<(f64, f64)>], day_len: f64, seed: u64) -> DayRun {
    let layout = OfficeLayout::paper_office();
    let mut rng = Rng::seed_from_u64(seed);
    let re = trained_re(&layout, &mut rng);
    let people: Vec<PersonTimeline> = presences
        .iter()
        .enumerate()
        .map(|(ws, p)| PersonTimeline::build(&layout, ws, p, day_len, &mut rng))
        .collect();
    // Deterministic dense typing: one input every 2 s while seated (a
    // user who never pauses long enough to trip the alert path), the
    // last one exactly at the departure.
    let inputs = InputTrace::from_times(
        people
            .iter()
            .map(|tl| {
                let mut times = Vec::new();
                for (start, until) in tl.seated_intervals() {
                    let mut x = start + 0.5;
                    while x < until {
                        times.push(x);
                        x += 2.0;
                    }
                    times.push(until);
                }
                times
            })
            .collect(),
    );
    let kma = Kma::new(&inputs);
    let mut sim = ChannelSim::new(
        layout.sensors(),
        layout.room(),
        HZ,
        ChannelParams::default(),
        seed ^ 0xA5,
    )
    .expect("channel");
    let mut ctl = Controller::new(
        sim.n_links(),
        HZ,
        FadewichParams::default(),
        &re,
        kma,
    )
    .expect("controller");
    for tick in 0..(day_len * HZ) as usize {
        let t = tick as f64 / HZ;
        let bodies: Vec<Body> = people.iter().filter_map(|p| p.body_at(t)).collect();
        let row = sim.step(&bodies).to_vec();
        ctl.step(tick, &row);
    }
    DayRun { actions: ctl.actions().to_vec() }
}

#[test]
fn departing_user_locked_within_seconds() {
    // w1's user leaves at t = 500 and never returns; colleagues stay.
    let run = run_day(
        &[
            vec![(60.0, 500.0)],
            vec![(120.0, 900.0)],
            vec![(180.0, 900.0)],
        ],
        1000.0,
        11,
    );
    let deauth = run
        .actions
        .iter()
        .find(|a| a.kind.is_deauth() && a.kind.workstation() == 0)
        .expect("w1 must be deauthenticated");
    let dt = deauth.t - 500.0;
    assert!(
        (0.0..=12.0).contains(&dt),
        "deauth {dt} s after departure (expected within the alert path)"
    );
    // And well before the 300 s timeout.
    assert!(dt < 60.0);
}

#[test]
fn present_users_keep_their_sessions() {
    // Everyone stays all day; movements at the start (arrivals) happen
    // while their own workstations are idle-from-day-start.
    let run = run_day(
        &[
            vec![(60.0, 950.0)],
            vec![(120.0, 950.0)],
            vec![(180.0, 950.0)],
        ],
        1000.0,
        13,
    );
    // No deauthentication while all three users sit and type (before
    // their final exits at 950 s).
    let early_deauths: Vec<_> = run
        .actions
        .iter()
        .filter(|a| a.kind.is_deauth() && a.t < 940.0)
        .collect();
    assert!(
        early_deauths.is_empty(),
        "present users were deauthenticated: {early_deauths:?}"
    );
}

#[test]
fn returning_user_reauthenticates() {
    // w1's user takes a 5-minute break and comes back.
    let run = run_day(
        &[
            vec![(60.0, 400.0), (700.0, 950.0)],
            vec![(120.0, 950.0)],
            vec![(180.0, 950.0)],
        ],
        1000.0,
        17,
    );
    let deauth = run
        .actions
        .iter()
        .find(|a| a.kind.is_deauth() && a.kind.workstation() == 0);
    assert!(deauth.is_some(), "break should deauthenticate w1");
    // Skip the day-start login; the relevant re-authentication is the
    // one after the break.
    let reauth = run
        .actions
        .iter()
        .find(|a| matches!(a.kind, ActionKind::Reauthenticated { workstation: 0 }) && a.t > 650.0);
    let reauth = reauth.expect("w1 must re-authenticate after the break");
    assert!(reauth.t > 700.0 && reauth.t < 760.0, "reauth at {}", reauth.t);
}
