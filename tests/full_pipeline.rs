//! End-to-end integration tests: scenario → channel → MD → RE →
//! security analysis, across all workspace crates.

use std::sync::OnceLock;

use fadewich::core::config::FadewichParams;
use fadewich::core::security::{attack_opportunities, INSIDER_DELAY_S};
use fadewich::core::{auto_label, AutoLabelParams, DeauthCase, Kma};
use fadewich::experiments::figures::{outcomes_for_run, timeout_outcomes};
use fadewich::experiments::{Experiment, SensorRun};

fn fixture() -> &'static (Experiment, SensorRun) {
    static FIX: OnceLock<(Experiment, SensorRun)> = OnceLock::new();
    FIX.get_or_init(|| {
        let exp = Experiment::small(0xD0E5).expect("experiment");
        let run = exp.run_for_sensors(9, 3).expect("pipeline");
        (exp, run)
    })
}

#[test]
fn nine_sensors_detect_most_events() {
    let (_, run) = fixture();
    let recall = run.stage.detection.counts.recall();
    assert!(recall >= 0.8, "recall = {recall} ({:?})", run.stage.detection.counts);
}

#[test]
fn false_positives_are_rare() {
    let (exp, run) = fixture();
    let fp = run.stage.detection.counts.false_positives;
    // The paper sees ~7 FPs in 40 hours; a 2-hour scenario should see
    // at most a handful.
    assert!(fp <= 4, "false positives = {fp}");
    let _ = exp;
}

#[test]
fn departures_deauthenticate_before_the_timeout() {
    let (exp, run) = fixture();
    let outcomes = outcomes_for_run(exp, run);
    assert!(!outcomes.is_empty());
    let fast = outcomes
        .iter()
        .filter(|o| o.case != DeauthCase::MissedByMd)
        .count();
    assert!(
        fast * 10 >= outcomes.len() * 8,
        "at least 80% of departures should beat the timeout: {fast}/{}",
        outcomes.len()
    );
    for o in &outcomes {
        if o.case == DeauthCase::CorrectClassification {
            assert!(
                o.elapsed < 6.5,
                "case-A deauth should be fast, got {} s",
                o.elapsed
            );
        }
    }
}

#[test]
fn fadewich_strictly_beats_the_timeout_baseline() {
    let (exp, run) = fixture();
    let events = exp.scenario.events();
    let ours = attack_opportunities(&outcomes_for_run(exp, run), events, INSIDER_DELAY_S);
    let baseline = attack_opportunities(&timeout_outcomes(exp), events, INSIDER_DELAY_S);
    assert_eq!(baseline.coworker_pct(), 100.0);
    assert!(ours.coworker_opportunities < baseline.coworker_opportunities);
    assert!(ours.insider_opportunities < baseline.insider_opportunities);
}

#[test]
fn no_user_present_is_never_case_a_deauthenticated_while_typing() {
    // Rule 1's S(t_delta) guard: by construction the decision-tree
    // model only deauthenticates the workstation whose user's last
    // input was at the departure. Verify the matched windows start
    // near a real departure for case-A outcomes.
    let (exp, run) = fixture();
    let hz = exp.trace.tick_hz();
    for o in outcomes_for_run(exp, run) {
        if o.case == DeauthCase::CorrectClassification {
            let event = &exp.scenario.events().events()[o.event_index];
            let (day, w) = run.stage.detection.matched[o.event_index].expect("case A is matched");
            assert_eq!(day, event.day);
            let dt = (w.start_s(hz) - event.t_start).abs();
            assert!(dt < 4.0, "window starts {dt} s from the departure");
        }
    }
}

#[test]
fn automatic_labels_agree_with_ground_truth() {
    // The paper trains RE on KMA-derived labels; our simulator lets us
    // check them against ground truth directly.
    let (exp, run) = fixture();
    let hz = exp.trace.tick_hz();
    let label_params = AutoLabelParams::default();
    let mut labeled = 0usize;
    let mut agree = 0usize;
    for (ei, event) in exp.scenario.events().events().iter().enumerate() {
        let Some((day, w)) = run.stage.detection.matched[ei] else { continue };
        let inputs = exp.scenario.input_trace(day, 0);
        let kma = Kma::new(&inputs);
        if let Some(label) = auto_label(&kma, w.start_s(hz), &label_params) {
            labeled += 1;
            if label == event.label() {
                agree += 1;
            }
        }
    }
    assert!(labeled > 0, "auto-labeling produced nothing");
    assert!(
        agree * 10 >= labeled * 9,
        "auto labels should be >=90% correct: {agree}/{labeled}"
    );
}

#[test]
fn pipeline_is_deterministic() {
    let exp_a = Experiment::small(0xABCD).expect("a");
    let exp_b = Experiment::small(0xABCD).expect("b");
    let run_a = exp_a.run_for_sensors(5, 3).expect("a run");
    let run_b = exp_b.run_for_sensors(5, 3).expect("b run");
    assert_eq!(run_a.stage.detection.counts, run_b.stage.detection.counts);
    assert_eq!(run_a.predictions, run_b.predictions);
    assert_eq!(run_a.accuracy, run_b.accuracy);
}

#[test]
fn parameters_validate() {
    assert!(FadewichParams::default().validate().is_ok());
}
