#!/usr/bin/env bash
# Offline CI gate.
#
# The whole harness is vendored (no proptest, no criterion, no
# registry crates at all), so this must succeed on a machine with zero
# network access. Warnings are promoted to errors.
#
# `--workspace` matters: the root manifest is both the workspace and
# the `fadewich` facade package, so a bare `cargo test` would cover
# only the facade.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="-D warnings"
cargo build --release --offline --workspace
cargo test -q --offline --workspace
