#!/usr/bin/env bash
# Offline CI gate.
#
# The whole harness is vendored (no proptest, no criterion, no
# registry crates at all), so this must succeed on a machine with zero
# network access. Warnings are promoted to errors.
#
# `--workspace` matters: the root manifest is both the workspace and
# the `fadewich` facade package, so a bare `cargo test` would cover
# only the facade.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="-D warnings"
cargo build --release --offline --workspace
cargo test -q --offline --workspace

# Streaming runtime gates: the lossless replay must be byte-identical
# to the batch pipeline, and a seeded lossy replay (2% drop, 3 ticks
# of jitter, duplicates + corruption) must finish with the degradation
# counted, not panic.
cargo test -q --release --offline -p fadewich-runtime --test parity
cargo run -q --release --offline -p fadewich-runtime --bin fadewichd -- \
    --drop 0.02 --dup 0.01 --corrupt 0.005 --jitter 3 --link-seed 7 > /dev/null
