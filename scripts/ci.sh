#!/usr/bin/env bash
# Offline CI gate.
#
# The whole harness is vendored (no proptest, no criterion, no
# registry crates at all), so this must succeed on a machine with zero
# network access. Warnings are promoted to errors.
#
# `--workspace` matters: the root manifest is both the workspace and
# the `fadewich` facade package, so a bare `cargo test` would cover
# only the facade.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="-D warnings"
cargo build --release --offline --workspace
cargo test -q --offline --workspace

# Streaming runtime gates: the lossless replay must be byte-identical
# to the batch pipeline, and a seeded lossy replay (2% drop, 3 ticks
# of jitter, duplicates + corruption) must finish with the degradation
# counted, not panic.
cargo test -q --release --offline -p fadewich-runtime --test parity
cargo run -q --release --offline -p fadewich-fleet --bin fadewichd -- replay \
    --drop 0.02 --dup 0.01 --corrupt 0.005 --jitter 3 --link-seed 7 > /dev/null

# Train/serve split gate: train once, write the versioned model
# artifact, then serve from it. The served decision stream (stdout)
# must be byte-identical to the in-memory-trained replay of the same
# seeded scenario — the artifact codec must not perturb a single
# decision.
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
cargo run -q --release --offline -p fadewich-fleet --bin fadewichd -- \
    train --out "$workdir/model.fwmb"
cargo run -q --release --offline -p fadewich-fleet --bin fadewichd -- \
    replay > "$workdir/replay.out"
cargo run -q --release --offline -p fadewich-fleet --bin fadewichd -- \
    serve --model "$workdir/model.fwmb" > "$workdir/serve.out"
cmp "$workdir/replay.out" "$workdir/serve.out"

# Crash-recovery gate: serve with checkpointing enabled, kill the
# process mid-stream, serve again from the same checkpoint directory,
# and require the stitched decision log to be byte-identical to an
# uninterrupted run's. Then corrupt the newest checkpoint on disk and
# require the restart to fall back to the previous one — same log,
# exit 0, no panic.
cargo run -q --release --offline -p fadewich-fleet --bin fadewichd -- \
    serve --model "$workdir/model.fwmb" --checkpoint-dir "$workdir/ckpt-ref" \
    > /dev/null

# Legacy-parity gate: a legacy (unauthenticated, pure-RSSI) deployment
# must keep producing the decision log recorded before the later
# refactors landed. The fixture pins two promises at once: the
# channel-typed stream generalization does not move a byte of
# RSSI-only behavior, and the frame-authentication layer leaves an
# engine without `set_auth` byte-identical on v1–v3 traffic. Any
# drift here means legacy mode changed, which both refactors promise
# never happens.
cmp fixtures/pre-refactor-rssi-decisions.log "$workdir/ckpt-ref/decisions.log"

if cargo run -q --release --offline -p fadewich-fleet --bin fadewichd -- \
    serve --model "$workdir/model.fwmb" --checkpoint-dir "$workdir/ckpt-crash" \
    --crash-after-ticks 20000 > /dev/null 2>&1; then
    echo "expected the injected crash to abort the serve" >&2
    exit 1
fi
cargo run -q --release --offline -p fadewich-fleet --bin fadewichd -- \
    serve --model "$workdir/model.fwmb" --checkpoint-dir "$workdir/ckpt-crash" \
    > /dev/null
cmp "$workdir/ckpt-ref/decisions.log" "$workdir/ckpt-crash/decisions.log"

newest="$(ls "$workdir"/ckpt-crash/ckpt-*.fwcp | sort | tail -1)"
printf '\xff' | dd of="$newest" bs=1 seek=100 conv=notrunc status=none
cargo run -q --release --offline -p fadewich-fleet --bin fadewichd -- \
    serve --model "$workdir/model.fwmb" --checkpoint-dir "$workdir/ckpt-crash" \
    2> "$workdir/corrupt.err" > /dev/null
grep -q "skipping corrupt checkpoint" "$workdir/corrupt.err"
cmp "$workdir/ckpt-ref/decisions.log" "$workdir/ckpt-crash/decisions.log"

# Trace-determinism gate: two replays of the same seeded scenario must
# emit byte-identical --trace-out JSONL and --metrics-out JSON (spans
# are stamped with the logical tick clock; wall-clock histograms are
# excluded from the deterministic dump). The lossy link exercises the
# richer emission set.
for i in 1 2; do
    cargo run -q --release --offline -p fadewich-fleet --bin fadewichd -- replay \
        --drop 0.02 --dup 0.01 --corrupt 0.005 --jitter 3 --link-seed 7 \
        --trace-out "$workdir/trace$i.jsonl" --metrics-out "$workdir/metrics$i.json" \
        > "$workdir/traced$i.out"
done
cmp "$workdir/trace1.jsonl" "$workdir/trace2.jsonl"
cmp "$workdir/metrics1.json" "$workdir/metrics2.json"
# Instrumentation must not perturb the decision stream...
cargo run -q --release --offline -p fadewich-fleet --bin fadewichd -- replay \
    --drop 0.02 --dup 0.01 --corrupt 0.005 --jitter 3 --link-seed 7 \
    > "$workdir/untraced.out"
cmp "$workdir/traced1.out" "$workdir/untraced.out"
# ...every deauth decision must carry its audit chain in the trace...
deauths=$(grep -c "DeauthenticateRule1" "$workdir/traced1.out" || true)
verdicts=$(grep -c '"name":"rule1_verdict","attrs":{"deauth":true' "$workdir/trace1.jsonl" || true)
if [ "$deauths" != "$verdicts" ]; then
    echo "audit trail mismatch: $deauths DeauthenticateRule1 decisions vs $verdicts deauth verdicts" >&2
    exit 1
fi
# ...and the stats pretty-printer must read the dump back.
# (grep a file, not a live pipe: `grep -q` exiting on first match
# would EPIPE the still-printing daemon under pipefail)
cargo run -q --release --offline -p fadewich-fleet --bin fadewichd -- \
    stats "$workdir/metrics1.json" > "$workdir/stats.out"
grep -q "rule1" "$workdir/stats.out"

# Perf-baseline smoke gate: `reproduce bench` must complete at smoke
# sizes, emit schema-valid JSON, and be deterministic across runs in
# every field that does not carry the `wall_` (wall-time) prefix. The
# harness itself aborts if a hot path's checksum diverges from the
# scalar reference, so a passing run also re-proves decision identity.
for i in 1 2; do
    cargo run -q --release --offline -p fadewich-bench --bin reproduce -- bench \
        --bench-smoke --bench-out "$workdir/bench$i.json" > /dev/null
done
grep -q '"schema": "fadewich-bench-v1"' "$workdir/bench1.json"
grep -q '"matches_reference": true' "$workdir/bench1.json"
grep -q '"matches_owned": true' "$workdir/bench1.json"
for name in engine wire_decode wire_decode_borrowed mac_verify \
    md_step_reference md_step_fast \
    svm_predict_scalar svm_predict_batch kde_fit fleet_demux \
    controller_tick_allocs; do
    grep -q "\"name\": \"$name\"" "$workdir/bench1.json"
done
grep -v '"wall_' "$workdir/bench1.json" > "$workdir/bench1.nowall"
grep -v '"wall_' "$workdir/bench2.json" > "$workdir/bench2.nowall"
cmp "$workdir/bench1.nowall" "$workdir/bench2.nowall"

# The bench diff tool must agree with the raw cmp: a full diff of the
# two smoke runs (any non-wall drift is fatal), plus row-name
# compatibility against the committed baseline — the baseline's
# full-size workload fields legitimately differ from a smoke run's,
# so that leg only checks no benchmark row silently disappeared.
scripts/bench_diff.sh "$workdir/bench1.json" "$workdir/bench2.json"
scripts/bench_diff.sh --rows-only BENCH_2026-08-09.json "$workdir/bench1.json"

# Span-profile gate: `reproduce profile` folds tick-stamped spans, so
# the whole report is logical-time only and must be byte-identical
# across same-seed runs (`wall_` lines stripped defensively — the
# report must not carry any to begin with).
for i in 1 2; do
    cargo run -q --release --offline -p fadewich-bench --bin reproduce -- \
        --quick profile | grep -v '^wall_' > "$workdir/profile$i.out"
done
cmp "$workdir/profile1.out" "$workdir/profile2.out"
grep -q "md_window;rule1_eval" "$workdir/profile1.out"
if grep -q "wall_" "$workdir/profile1.out"; then
    echo "reproduce profile leaked a wall_ line into the deterministic report" >&2
    exit 1
fi

# Ops-plane smoke: serve with the scrape server bound to an ephemeral
# port, wait for the post-replay hold, then curl the three endpoints.
# The healthz body must be "ok" (no attack in the clean scenario) with
# the wall_-quarantined scrape counters appended, and /slo must carry
# the standard deauth-latency objective.
cargo run -q --release --offline -p fadewich-fleet --bin fadewichd -- \
    serve --model "$workdir/model.fwmb" --metrics-addr 127.0.0.1:0 \
    --metrics-addr-file "$workdir/ops.addr" --hold-secs 60 \
    > /dev/null 2> "$workdir/ops.err" &
ops_pid=$!
for _ in $(seq 1 300); do
    grep -q "holding ops server" "$workdir/ops.err" 2>/dev/null && break
    sleep 0.2
done
grep -q "holding ops server" "$workdir/ops.err"
addr="$(cat "$workdir/ops.addr")"
curl -fsS "http://$addr/metrics" > "$workdir/ops.metrics"
grep -q "^runtime_frames_in " "$workdir/ops.metrics"
grep -q "^runtime_ticks_processed " "$workdir/ops.metrics"
curl -fsS "http://$addr/healthz" > "$workdir/ops.healthz"
grep -q "^ok$" "$workdir/ops.healthz"
grep -q "^wall_scrapes " "$workdir/ops.healthz"
curl -fsS "http://$addr/slo" > "$workdir/ops.slo"
grep -q "deauth_latency" "$workdir/ops.slo"
kill "$ops_pid" 2>/dev/null || true
wait "$ops_pid" 2>/dev/null || true

# Fleet gates. First the scaling study at CI size: the deterministic
# table (everything but the `wall_` throughput lines) must be
# byte-identical between a 1-thread and an 8-thread run, and the study
# itself hard-fails if any office's decision stream diverges between
# shard counts or from its single-office reference.
FADEWICH_THREADS=1 cargo run -q --release --offline -p fadewich-bench --bin reproduce -- \
    fleet --offices 32 | grep -v '^wall_' > "$workdir/fleet-t1.out"
FADEWICH_THREADS=8 cargo run -q --release --offline -p fadewich-bench --bin reproduce -- \
    fleet --offices 32 | grep -v '^wall_' > "$workdir/fleet-t8.out"
cmp "$workdir/fleet-t1.out" "$workdir/fleet-t8.out"

# Second, the daemon: a 4-office `fadewichd fleet` run must write
# office 0's decision log byte-identical to a plain single-tenant
# `fadewichd serve` of the same model (office 0 keeps the base link
# seed, and per-office summaries exclude transport counters).
cargo run -q --release --offline -p fadewich-fleet --bin fadewichd -- \
    fleet --model "$workdir/model.fwmb" --offices 4 --shards 2 \
    --checkpoint-dir "$workdir/fleet-ckpt" > /dev/null
cmp "$workdir/ckpt-ref/decisions.log" "$workdir/fleet-ckpt/office-00000/decisions.log"

# Third, fleet crash recovery: kill a 4-office day mid-stream, restart
# from the same checkpoint root, and require every office's stitched
# decision log to match the uninterrupted run's.
if cargo run -q --release --offline -p fadewich-fleet --bin fadewichd -- \
    fleet --model "$workdir/model.fwmb" --offices 4 --shards 2 \
    --checkpoint-dir "$workdir/fleet-crash" --crash-after-ticks 20000 \
    > /dev/null 2>&1; then
    echo "expected the injected crash to abort the fleet" >&2
    exit 1
fi
cargo run -q --release --offline -p fadewich-fleet --bin fadewichd -- \
    fleet --model "$workdir/model.fwmb" --offices 4 --shards 2 \
    --checkpoint-dir "$workdir/fleet-crash" > /dev/null
for o in 00000 00001 00002 00003; do
    cmp "$workdir/fleet-ckpt/office-$o/decisions.log" \
        "$workdir/fleet-crash/office-$o/decisions.log"
done

# Fusion gates: the RSSI/light ablation must be seed-deterministic —
# two `reproduce fusion` runs byte-identical on stdout (stage timings
# go to stderr) — and the RSSI-only row must certify parity with the
# legacy untyped engine on every scored day.
for i in 1 2; do
    cargo run -q --release --offline -p fadewich-bench --bin reproduce -- \
        --quick fusion > "$workdir/fusion$i.out"
done
cmp "$workdir/fusion1.out" "$workdir/fusion2.out"
grep -q "identical" "$workdir/fusion1.out"
if grep -q "DIFFERS" "$workdir/fusion1.out"; then
    echo "fusion RSSI-only mode diverged from the legacy engine" >&2
    exit 1
fi

# Attacks gate: the adversarial robustness suite must be
# seed-deterministic — two `reproduce --quick attacks` runs
# byte-identical on stdout — and the containment table must show zero
# decision divergence on every row (the last column; any contained
# attack that moved a decision is a containment failure).
for i in 1 2; do
    cargo run -q --release --offline -p fadewich-bench --bin reproduce -- \
        --quick attacks > "$workdir/attacks$i.out"
done
cmp "$workdir/attacks1.out" "$workdir/attacks2.out"
grep -q "deauth-storm" "$workdir/attacks1.out"
if sed -n '/Containment:/,$p' "$workdir/attacks1.out" \
    | awk 'NF > 3 && $NF ~ /^[0-9]+$/ && $NF != 0 { found = 1 } END { exit !found }'; then
    echo "containment failure: an attack family diverged the decision stream" >&2
    exit 1
fi

# Key-hygiene lint: AuthKey::from_bytes is the artifact codec's escape
# hatch, nothing else's. Deployment keys must come from
# AuthKey::derive / KeyTable::derive, so no non-test code may
# construct a key from constant bytes.
if grep -rn "AuthKey::from_bytes" --include='*.rs' crates/ src/ 2>/dev/null \
    | grep -v "crates/core/src/auth.rs" \
    | grep -v "crates/core/src/artifact.rs" \
    | grep -v "tests/"; then
    echo "AuthKey::from_bytes outside the artifact codec (see above); derive keys instead" >&2
    exit 1
fi

# Wall-clock lint: Instant::now() is allowed only inside the telemetry
# Clock implementations and the vendored bench harness. Everything
# else must read time through the Clock trait so seeded replays stay
# reproducible.
if grep -rn "Instant::now" --include='*.rs' crates/ src/ 2>/dev/null \
    | grep -v "crates/telemetry/src/clock.rs" \
    | grep -v "crates/testkit/src/bench.rs" \
    | grep -v "^[^:]*:[0-9]*: *//"; then
    echo "Instant::now() outside the Clock seam (see above); use fadewich_telemetry::Clock" >&2
    exit 1
fi

# Wall-metric-name lint: every histogram recorded through the
# wall-time APIs (histo_record_wall, WallHisto::export_into) must
# carry the `_ns` suffix so deterministic renders can exclude it, and
# conversely no logical-tick metric may squat on a `_ns` name. This
# keeps the wall_ / _ns quarantine a grep-enforceable convention
# instead of a code-review hope.
if grep -rn 'histo_record("[^"]*_ns"' --include='*.rs' crates/ src/ 2>/dev/null; then
    echo "logical-time histo_record() with a wall-suffixed _ns name (see above)" >&2
    exit 1
fi
if grep -rn 'histo_record_wall("[^"]*"' --include='*.rs' crates/ src/ 2>/dev/null \
    | grep -v '_ns"'; then
    echo "histo_record_wall() name without the _ns suffix (see above)" >&2
    exit 1
fi
if grep -rn 'export_into(telemetry, "[^"]*"' --include='*.rs' crates/ src/ 2>/dev/null \
    | grep -v '_ns"'; then
    echo "wall histogram export name without the _ns suffix (see above)" >&2
    exit 1
fi
