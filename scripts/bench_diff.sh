#!/usr/bin/env bash
# Diff two fadewich-bench JSON result files (BENCH_*.json or ad-hoc
# --bench-out captures).
#
# The bench schema splits every row into two kinds of fields:
#
#   - non-`wall_` fields (tick counts, frame counts, verdict digests,
#     action totals …) are deterministic workload outputs. Two runs of
#     the same configuration must agree exactly; any drift is a
#     correctness regression and fails the diff with exit 1.
#   - `wall_*` fields are host timing and are expected to wobble. A
#     >10% regression of `wall_median_ns_per_unit` on a named row is
#     reported as a warning by default, and only fails the diff when
#     `--fail-on-wall` is given (back-to-back runs on a shared CI box
#     can easily swing more than 10% for innocent reasons).
#
# Usage: bench_diff.sh [--fail-on-wall] [--rows-only] OLD.json NEW.json
#
#   --rows-only     only check row-name compatibility: every row named
#                   in OLD must still exist in NEW. Use this against a
#                   committed full-size baseline, whose workload sizes
#                   (and therefore non-wall fields) legitimately differ
#                   from a --quick smoke run.
#   --fail-on-wall  treat wall regressions as fatal too.

set -euo pipefail

usage() {
    echo "usage: bench_diff.sh [--fail-on-wall] [--rows-only] OLD.json NEW.json" >&2
}

fail_on_wall=0
rows_only=0
while [ $# -gt 0 ]; do
    case "$1" in
    --fail-on-wall) fail_on_wall=1 ;;
    --rows-only) rows_only=1 ;;
    -h | --help)
        usage
        exit 0
        ;;
    --*)
        echo "bench_diff: unknown flag $1" >&2
        usage
        exit 2
        ;;
    *) break ;;
    esac
    shift
done

if [ $# -ne 2 ]; then
    usage
    exit 2
fi

old_json=$1
new_json=$2
for f in "$old_json" "$new_json"; do
    if [ ! -f "$f" ]; then
        echo "bench_diff: no such file: $f" >&2
        exit 2
    fi
done

python3 - "$old_json" "$new_json" "$rows_only" "$fail_on_wall" <<'PY'
import json
import sys

old_path, new_path, rows_only, fail_on_wall = sys.argv[1:5]
rows_only = rows_only == "1"
fail_on_wall = fail_on_wall == "1"

def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "fadewich-bench-v1":
        sys.exit(f"bench_diff: {path}: unexpected schema {doc.get('schema')!r}")
    rows = {}
    for row in doc.get("rows", []):
        name = row.get("name")
        if not isinstance(name, str):
            sys.exit(f"bench_diff: {path}: row without a name: {row!r}")
        if name in rows:
            sys.exit(f"bench_diff: {path}: duplicate row {name!r}")
        rows[name] = row
    return doc, rows

old_doc, old_rows = load(old_path)
new_doc, new_rows = load(new_path)

errors = []
warnings = []

missing = sorted(set(old_rows) - set(new_rows))
if missing:
    errors.append(f"rows missing from {new_path}: {', '.join(missing)}")
added = sorted(set(new_rows) - set(old_rows))
if added:
    warnings.append(f"new rows not in {old_path}: {', '.join(added)}")

if not rows_only:
    for name in sorted(set(old_rows) & set(new_rows)):
        old_row, new_row = old_rows[name], new_rows[name]
        keys = set(old_row) | set(new_row)
        for key in sorted(keys):
            wall = key.startswith("wall_")
            if key not in old_row or key not in new_row:
                where = new_path if key not in new_row else old_path
                msg = f"row {name}: field {key} missing from {where}"
                (warnings if wall else errors).append(msg)
                continue
            if wall:
                continue
            if old_row[key] != new_row[key]:
                errors.append(
                    f"row {name}: non-wall field {key} drifted: "
                    f"{old_row[key]!r} -> {new_row[key]!r}"
                )
        old_ns = old_row.get("wall_median_ns_per_unit")
        new_ns = new_row.get("wall_median_ns_per_unit")
        if isinstance(old_ns, (int, float)) and isinstance(new_ns, (int, float)) and old_ns > 0:
            ratio = new_ns / old_ns
            if ratio > 1.10:
                warnings.append(
                    f"row {name}: wall regression {ratio:.2f}x "
                    f"({old_ns:.1f} -> {new_ns:.1f} ns/unit)"
                )

for w in warnings:
    print(f"bench_diff: warning: {w}")
for e in errors:
    print(f"bench_diff: error: {e}")

wall_regressions = [w for w in warnings if "wall regression" in w]
if errors or (fail_on_wall and wall_regressions):
    sys.exit(1)
mode = "rows-only" if rows_only else "full"
print(
    f"bench_diff: ok ({mode}): {len(set(old_rows) & set(new_rows))} rows compared, "
    f"{len(wall_regressions)} wall warning(s)"
)
PY
