//! Property-based tests of the SVM substrate.

use fadewich_stats::rng::Rng;
use fadewich_svm::{cv, Kernel, MultiClassSvm, SmoParams, StandardScaler};
use fadewich_testkit::prop::{f64s, u64s, usizes, vecs};

fadewich_testkit::property! {
    #[cases(32)]
    fn kernels_are_symmetric_and_rbf_bounded(
        x in vecs(f64s(-10.0..10.0), 1..8),
        y in vecs(f64s(-10.0..10.0), 1..8),
        gamma in f64s(0.01..5.0),
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let k = Kernel::Rbf { gamma };
        assert!((k.eval(x, y) - k.eval(y, x)).abs() < 1e-12);
        let v = k.eval(x, y);
        assert!((0.0..=1.0 + 1e-12).contains(&v));
        assert!((k.eval(x, x) - 1.0).abs() < 1e-12);
        assert!((Kernel::Linear.eval(x, y) - Kernel::Linear.eval(y, x)).abs() < 1e-9);
    }

    #[cases(32)]
    fn scaler_output_is_standardized(
        rows in vecs(vecs(f64s(-100.0..100.0), 3..4), 2..30),
    ) {
        let scaler = StandardScaler::fit(&rows).unwrap();
        let t = scaler.transform(&rows);
        for j in 0..3 {
            let col: Vec<f64> = t.iter().map(|r| r[j]).collect();
            let mean = fadewich_stats::descriptive::mean(&col);
            let sd = fadewich_stats::descriptive::std_dev(&col);
            assert!(mean.abs() < 1e-6, "mean = {mean}");
            // Either unit variance or a constant column mapped to 0.
            assert!((sd - 1.0).abs() < 1e-6 || sd < 1e-9, "sd = {sd}");
        }
    }

    #[cases(32)]
    fn separable_blobs_are_classified(seed in u64s(0..500), sep in f64s(3.0..10.0)) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..24 {
            let label = i % 2;
            xs.push(vec![
                label as f64 * sep + rng.normal() * 0.3,
                rng.normal() * 0.3,
            ]);
            ys.push(label);
        }
        let svm = MultiClassSvm::train(&xs, &ys, Kernel::Linear, SmoParams::default(), &mut rng)
            .unwrap();
        assert!(svm.accuracy(&xs, &ys) >= 0.95);
    }

    #[cases(32)]
    fn kfold_is_a_partition(n in usizes(4..100), k in usizes(2..4), seed in u64s(0..100)) {
        fadewich_testkit::assume!(n >= k);
        let mut rng = Rng::seed_from_u64(seed);
        let folds = cv::k_fold(n, k, &mut rng);
        let mut seen = vec![false; n];
        for f in &folds {
            for &i in &f.test {
                assert!(!seen[i], "index {i} in two test folds");
                seen[i] = true;
            }
            for &i in &f.train {
                assert!(!f.test.contains(&i));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[cases(32)]
    fn stratified_folds_cover_all_and_balance(
        labels in vecs(usizes(0..3), 6..60),
        seed in u64s(0..100),
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let folds = cv::stratified_k_fold(&labels, 3, &mut rng);
        let mut count = 0usize;
        for f in &folds {
            count += f.test.len();
        }
        assert_eq!(count, labels.len());
        for class in 0..3 {
            let per_fold: Vec<usize> = folds
                .iter()
                .map(|f| f.test.iter().filter(|&&i| labels[i] == class).count())
                .collect();
            let max = per_fold.iter().max().unwrap();
            let min = per_fold.iter().min().unwrap();
            assert!(max - min <= 1, "class {class}: {per_fold:?}");
        }
    }
}

// Differential pins for the batched prediction path: for any trained
// ensemble and any batch of (finite) feature rows, `predict_batch`
// and the scratch-reusing `predict_into` must agree with the scalar
// per-row `predict` on every row — same labels from the same
// bit-exact decision values, under both kernels. Shrinking reduces a
// counterexample to the smallest diverging batch.
fadewich_testkit::property! {
    #[cases(24)]
    fn batched_and_scalar_predictions_agree(
        seed in u64s(0..1 << 32),
        n_classes in usizes(2..5),
        dim in usizes(2..5),
        n_rows in usizes(0..40),
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let rbf = rng.below(2);
        let spread = 0.1 + rng.f64() * 5.0;
        // Loosely clustered training data — including overlapping
        // clusters, where OvO vote ties make the margin tiebreak
        // decisive and any decision-value drift would flip labels.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n_classes * 8 {
            let label = i % n_classes;
            let row: Vec<f64> = (0..dim)
                .map(|d| {
                    let center = if d == label % dim { 3.0 } else { -1.0 };
                    center + rng.normal() * spread
                })
                .collect();
            xs.push(row);
            ys.push(label);
        }
        let kernel = if rbf == 1 { Kernel::Rbf { gamma: 0.5 } } else { Kernel::Linear };
        let refs: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
        let svm = MultiClassSvm::train(&refs, &ys, kernel, SmoParams::default(), &mut rng)
            .expect("training data spans n_classes classes");

        let batch: Vec<Vec<f64>> = (0..n_rows)
            .map(|_| (0..dim).map(|_| rng.normal() * 4.0).collect())
            .collect();
        let batched = svm.predict_batch(&batch);
        assert_eq!(batched.len(), batch.len());
        let mut scratch = fadewich_svm::PredictScratch::new();
        for (row, &label) in batch.iter().zip(&batched) {
            assert_eq!(svm.predict(row), label, "predict_batch diverged on {row:?}");
            assert_eq!(
                svm.predict_into(row, &mut scratch),
                label,
                "predict_into diverged on {row:?}"
            );
            // The full vote/margin tally agrees with the scalar path
            // too (label equality alone could mask a tie handled
            // differently).
            let p = svm.predict_with_margins(row);
            assert_eq!(p.label, label);
        }
    }
}
