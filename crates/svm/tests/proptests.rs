//! Property-based tests of the SVM substrate.

use fadewich_stats::rng::Rng;
use fadewich_svm::{cv, Kernel, MultiClassSvm, SmoParams, StandardScaler};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kernels_are_symmetric_and_rbf_bounded(
        x in prop::collection::vec(-10.0f64..10.0, 1..8),
        y in prop::collection::vec(-10.0f64..10.0, 1..8),
        gamma in 0.01f64..5.0,
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let k = Kernel::Rbf { gamma };
        prop_assert!((k.eval(x, y) - k.eval(y, x)).abs() < 1e-12);
        let v = k.eval(x, y);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
        prop_assert!((k.eval(x, x) - 1.0).abs() < 1e-12);
        prop_assert!((Kernel::Linear.eval(x, y) - Kernel::Linear.eval(y, x)).abs() < 1e-9);
    }

    #[test]
    fn scaler_output_is_standardized(
        rows in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 3), 2..30),
    ) {
        let scaler = StandardScaler::fit(&rows).unwrap();
        let t = scaler.transform(&rows);
        for j in 0..3 {
            let col: Vec<f64> = t.iter().map(|r| r[j]).collect();
            let mean = fadewich_stats::descriptive::mean(&col);
            let sd = fadewich_stats::descriptive::std_dev(&col);
            prop_assert!(mean.abs() < 1e-6, "mean = {mean}");
            // Either unit variance or a constant column mapped to 0.
            prop_assert!((sd - 1.0).abs() < 1e-6 || sd < 1e-9, "sd = {sd}");
        }
    }

    #[test]
    fn separable_blobs_are_classified(seed in 0u64..500, sep in 3.0f64..10.0) {
        let mut rng = Rng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..24 {
            let label = i % 2;
            xs.push(vec![
                label as f64 * sep + rng.normal() * 0.3,
                rng.normal() * 0.3,
            ]);
            ys.push(label);
        }
        let svm = MultiClassSvm::train(&xs, &ys, Kernel::Linear, SmoParams::default(), &mut rng)
            .unwrap();
        prop_assert!(svm.accuracy(&xs, &ys) >= 0.95);
    }

    #[test]
    fn kfold_is_a_partition(n in 4usize..100, k in 2usize..4, seed in 0u64..100) {
        prop_assume!(n >= k);
        let mut rng = Rng::seed_from_u64(seed);
        let folds = cv::k_fold(n, k, &mut rng);
        let mut seen = vec![false; n];
        for f in &folds {
            for &i in &f.test {
                prop_assert!(!seen[i], "index {i} in two test folds");
                seen[i] = true;
            }
            for &i in &f.train {
                prop_assert!(!f.test.contains(&i));
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn stratified_folds_cover_all_and_balance(
        labels in prop::collection::vec(0usize..3, 6..60),
        seed in 0u64..100,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let folds = cv::stratified_k_fold(&labels, 3, &mut rng);
        let mut count = 0usize;
        for f in &folds {
            count += f.test.len();
            // Per-class counts differ by at most 1 across folds.
        }
        prop_assert_eq!(count, labels.len());
        for class in 0..3 {
            let per_fold: Vec<usize> = folds
                .iter()
                .map(|f| f.test.iter().filter(|&&i| labels[i] == class).count())
                .collect();
            let max = per_fold.iter().max().unwrap();
            let min = per_fold.iter().min().unwrap();
            prop_assert!(max - min <= 1, "class {class}: {per_fold:?}");
        }
    }
}
