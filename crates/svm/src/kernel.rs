//! SVM kernel functions.

/// A kernel function over dense feature vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// The inner product `⟨x, z⟩`.
    Linear,
    /// The Gaussian radial basis function `exp(−γ ‖x − z‖²)`.
    Rbf {
        /// The width parameter γ (> 0).
        gamma: f64,
    },
}

impl Kernel {
    /// RBF kernel with sklearn's `gamma = "scale"` heuristic:
    /// `γ = 1 / (n_features · Var[X])` where `Var[X]` is the variance of
    /// all feature values pooled together.
    ///
    /// Falls back to `γ = 1 / n_features` for (near-)constant data.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or has empty rows.
    pub fn rbf_scale(xs: &[Vec<f64>]) -> Kernel {
        assert!(!xs.is_empty(), "cannot scale gamma on an empty dataset");
        let d = xs[0].len();
        assert!(d > 0, "feature vectors must be non-empty");
        let all: Vec<f64> = xs.iter().flatten().copied().collect();
        let var = fadewich_stats::descriptive::variance(&all);
        let gamma = if var > 1e-12 { 1.0 / (d as f64 * var) } else { 1.0 / d as f64 };
        Kernel::Rbf { gamma }
    }

    /// Evaluates the kernel on two vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn eval(&self, x: &[f64], z: &[f64]) -> f64 {
        assert_eq!(x.len(), z.len(), "kernel arguments must have equal dimension");
        match *self {
            Kernel::Linear => x.iter().zip(z).map(|(a, b)| a * b).sum(),
            Kernel::Rbf { gamma } => {
                let sq: f64 = x.iter().zip(z).map(|(a, b)| (a - b) * (a - b)).sum();
                (-gamma * sq).exp()
            }
        }
    }

    /// Accumulates `acc[r] += coeff * eval(z, rows[r])` for every row
    /// of a flat row-major matrix (`rows.len() == dim * acc.len()`).
    ///
    /// This is the cache-friendly inner loop of batched SVM decision
    /// evaluation: one support vector `z` stays hot while the rows
    /// stream past, with the kernel dispatched once per call instead
    /// of once per pair. Per `(z, row)` pair the floating-point
    /// operation sequence is exactly that of
    /// `coeff * eval(z, row)` followed by a `+=` into the
    /// accumulator, so batched decisions built from these calls are
    /// bit-identical to scalar ones.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != dim` or `rows.len() != dim * acc.len()`.
    pub fn accumulate_rows(&self, z: &[f64], coeff: f64, rows: &[f64], dim: usize, acc: &mut [f64]) {
        assert_eq!(z.len(), dim, "kernel arguments must have equal dimension");
        assert_eq!(rows.len(), dim * acc.len(), "row matrix must be dim × acc.len()");
        match *self {
            Kernel::Linear => {
                for (a, row) in acc.iter_mut().zip(rows.chunks_exact(dim)) {
                    let k: f64 = z.iter().zip(row).map(|(p, q)| p * q).sum();
                    *a += coeff * k;
                }
            }
            Kernel::Rbf { gamma } => {
                for (a, row) in acc.iter_mut().zip(rows.chunks_exact(dim)) {
                    let sq: f64 = z.iter().zip(row).map(|(p, q)| (p - q) * (p - q)).sum();
                    *a += coeff * (-gamma * sq).exp();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_dot_product() {
        let k = Kernel::Linear;
        assert_eq!(k.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(k.eval(&[0.0], &[5.0]), 0.0);
    }

    #[test]
    fn rbf_identity_and_decay() {
        let k = Kernel::Rbf { gamma: 0.5 };
        assert_eq!(k.eval(&[1.0, 2.0], &[1.0, 2.0]), 1.0);
        let near = k.eval(&[0.0, 0.0], &[0.1, 0.0]);
        let far = k.eval(&[0.0, 0.0], &[2.0, 0.0]);
        assert!(near > far);
        assert!(far > 0.0 && far < 0.2);
    }

    #[test]
    fn rbf_symmetry() {
        let k = Kernel::Rbf { gamma: 1.3 };
        let a = [0.2, -1.0, 3.0];
        let b = [1.0, 0.5, -0.5];
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
    }

    #[test]
    fn scale_heuristic() {
        let xs = vec![vec![0.0, 0.0], vec![2.0, 2.0]];
        // Pooled variance of {0,0,2,2} is 1.0, d = 2 -> gamma = 0.5.
        match Kernel::rbf_scale(&xs) {
            Kernel::Rbf { gamma } => assert!((gamma - 0.5).abs() < 1e-12),
            k => panic!("expected RBF, got {k:?}"),
        }
    }

    #[test]
    fn scale_heuristic_constant_data() {
        let xs = vec![vec![3.0; 4]; 5];
        match Kernel::rbf_scale(&xs) {
            Kernel::Rbf { gamma } => assert!((gamma - 0.25).abs() < 1e-12),
            k => panic!("expected RBF, got {k:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "equal dimension")]
    fn dimension_mismatch_panics() {
        Kernel::Linear.eval(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn accumulate_rows_matches_scalar_eval_bitwise() {
        let rows = [0.3, -1.2, 2.5, 0.0, 4.4, -0.7]; // 3 rows × dim 2
        let z = [1.1, -0.4];
        for k in [Kernel::Linear, Kernel::Rbf { gamma: 0.8 }] {
            let mut acc = [10.0, -3.0, 0.25];
            let expected: Vec<f64> = acc
                .iter()
                .zip(rows.chunks_exact(2))
                .map(|(a, row)| a + 2.5 * k.eval(&z, row))
                .collect();
            k.accumulate_rows(&z, 2.5, &rows, 2, &mut acc);
            for (got, want) in acc.iter().zip(&expected) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "dim × acc.len()")]
    fn accumulate_rows_rejects_misaligned_matrix() {
        let mut acc = [0.0; 2];
        Kernel::Linear.accumulate_rows(&[1.0], 1.0, &[1.0, 2.0, 3.0], 1, &mut acc);
    }
}
