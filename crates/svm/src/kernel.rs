//! SVM kernel functions.

/// A kernel function over dense feature vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// The inner product `⟨x, z⟩`.
    Linear,
    /// The Gaussian radial basis function `exp(−γ ‖x − z‖²)`.
    Rbf {
        /// The width parameter γ (> 0).
        gamma: f64,
    },
}

impl Kernel {
    /// RBF kernel with sklearn's `gamma = "scale"` heuristic:
    /// `γ = 1 / (n_features · Var[X])` where `Var[X]` is the variance of
    /// all feature values pooled together.
    ///
    /// Falls back to `γ = 1 / n_features` for (near-)constant data.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or has empty rows.
    pub fn rbf_scale(xs: &[Vec<f64>]) -> Kernel {
        assert!(!xs.is_empty(), "cannot scale gamma on an empty dataset");
        let d = xs[0].len();
        assert!(d > 0, "feature vectors must be non-empty");
        let all: Vec<f64> = xs.iter().flatten().copied().collect();
        let var = fadewich_stats::descriptive::variance(&all);
        let gamma = if var > 1e-12 { 1.0 / (d as f64 * var) } else { 1.0 / d as f64 };
        Kernel::Rbf { gamma }
    }

    /// Evaluates the kernel on two vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn eval(&self, x: &[f64], z: &[f64]) -> f64 {
        assert_eq!(x.len(), z.len(), "kernel arguments must have equal dimension");
        match *self {
            Kernel::Linear => x.iter().zip(z).map(|(a, b)| a * b).sum(),
            Kernel::Rbf { gamma } => {
                let sq: f64 = x.iter().zip(z).map(|(a, b)| (a - b) * (a - b)).sum();
                (-gamma * sq).exp()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_dot_product() {
        let k = Kernel::Linear;
        assert_eq!(k.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(k.eval(&[0.0], &[5.0]), 0.0);
    }

    #[test]
    fn rbf_identity_and_decay() {
        let k = Kernel::Rbf { gamma: 0.5 };
        assert_eq!(k.eval(&[1.0, 2.0], &[1.0, 2.0]), 1.0);
        let near = k.eval(&[0.0, 0.0], &[0.1, 0.0]);
        let far = k.eval(&[0.0, 0.0], &[2.0, 0.0]);
        assert!(near > far);
        assert!(far > 0.0 && far < 0.2);
    }

    #[test]
    fn rbf_symmetry() {
        let k = Kernel::Rbf { gamma: 1.3 };
        let a = [0.2, -1.0, 3.0];
        let b = [1.0, 0.5, -0.5];
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
    }

    #[test]
    fn scale_heuristic() {
        let xs = vec![vec![0.0, 0.0], vec![2.0, 2.0]];
        // Pooled variance of {0,0,2,2} is 1.0, d = 2 -> gamma = 0.5.
        match Kernel::rbf_scale(&xs) {
            Kernel::Rbf { gamma } => assert!((gamma - 0.5).abs() < 1e-12),
            k => panic!("expected RBF, got {k:?}"),
        }
    }

    #[test]
    fn scale_heuristic_constant_data() {
        let xs = vec![vec![3.0; 4]; 5];
        match Kernel::rbf_scale(&xs) {
            Kernel::Rbf { gamma } => assert!((gamma - 0.25).abs() < 1e-12),
            k => panic!("expected RBF, got {k:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "equal dimension")]
    fn dimension_mismatch_panics() {
        Kernel::Linear.eval(&[1.0], &[1.0, 2.0]);
    }
}
