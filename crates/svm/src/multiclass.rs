//! One-vs-one multi-class SVM.
//!
//! RE classifies variation-window samples into `k + 1` labels
//! (`w0` = entered office, `w1..wk` = left workstation i). The standard
//! way to lift a binary SVM to multi-class — and what LIBSVM, and hence
//! the sklearn setup the paper most plausibly used, does — is
//! one-vs-one voting over all class pairs.

use crate::kernel::Kernel;
use crate::scaler::StandardScaler;
use crate::smo::{BinarySvm, SmoParams, TrainError};
use fadewich_stats::rng::Rng;

/// One prediction with its per-class evidence, aligned with
/// [`MultiClassSvm::classes`]: `votes[i]` / `margins[i]` belong to
/// `classes()[i]` (margins are summed absolute decision values of the
/// pairwise machines that voted for that class).
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The winning class label.
    pub label: usize,
    /// Pairwise votes per class, in `classes()` order.
    pub votes: Vec<usize>,
    /// Summed absolute margins per class, in `classes()` order.
    pub margins: Vec<f64>,
}

/// Reusable buffers for [`MultiClassSvm::predict_into`].
///
/// One scratch serves any number of predictions against any ensemble;
/// after the first call its buffers reach steady-state capacity and
/// subsequent predictions touch the allocator not at all — the
/// property the controller's per-tick Rule-1 classification relies on.
#[derive(Debug, Clone, Default)]
pub struct PredictScratch {
    row: Vec<f64>,
    votes: Vec<usize>,
    margin: Vec<f64>,
}

impl PredictScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A trained multi-class SVM with integrated feature standardization.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiClassSvm {
    classes: Vec<usize>,
    /// One binary machine per unordered class pair `(classes[i], classes[j])`, i < j.
    machines: Vec<(usize, usize, BinarySvm)>,
    scaler: StandardScaler,
}

impl MultiClassSvm {
    /// Trains a one-vs-one ensemble.
    ///
    /// Labels may be any `usize` values; the set of distinct labels
    /// found becomes the class list. Features are standardized
    /// internally (the scaler is fitted on `xs` and applied at
    /// prediction time too).
    ///
    /// # Errors
    ///
    /// [`TrainError::Empty`] when `xs` is empty, [`TrainError::BadLabels`]
    /// when fewer than two classes are present or `ys` is misaligned,
    /// [`TrainError::RaggedRows`] on inconsistent feature dimensions.
    pub fn train<R: AsRef<[f64]>>(
        xs: &[R],
        ys: &[usize],
        kernel: Kernel,
        params: SmoParams,
        rng: &mut Rng,
    ) -> Result<MultiClassSvm, TrainError> {
        if xs.is_empty() {
            return Err(TrainError::Empty);
        }
        if ys.len() != xs.len() {
            return Err(TrainError::BadLabels);
        }
        let scaler = StandardScaler::fit(xs).map_err(|e| match e {
            crate::scaler::FitScalerError::Empty => TrainError::Empty,
            crate::scaler::FitScalerError::RaggedRows => TrainError::RaggedRows,
            crate::scaler::FitScalerError::InvalidParts(why) => TrainError::InvalidModel(why),
        })?;
        let xs = scaler.transform(xs);

        let mut classes: Vec<usize> = ys.to_vec();
        classes.sort_unstable();
        classes.dedup();
        if classes.len() < 2 {
            return Err(TrainError::BadLabels);
        }

        let mut machines = Vec::new();
        for i in 0..classes.len() {
            for j in (i + 1)..classes.len() {
                let (ca, cb) = (classes[i], classes[j]);
                let mut pair_xs = Vec::new();
                let mut pair_ys = Vec::new();
                for (x, &y) in xs.iter().zip(ys) {
                    if y == ca {
                        pair_xs.push(x.clone());
                        pair_ys.push(1.0);
                    } else if y == cb {
                        pair_xs.push(x.clone());
                        pair_ys.push(-1.0);
                    }
                }
                let svm = BinarySvm::train(&pair_xs, &pair_ys, kernel, params, rng)?;
                machines.push((ca, cb, svm));
            }
        }
        Ok(MultiClassSvm { classes, machines, scaler })
    }

    /// The distinct class labels seen at training time, ascending.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// The per-pair binary machines as `(class_a, class_b, machine)`,
    /// in canonical order: pairs `(classes[i], classes[j])` for all
    /// `i < j`, lexicographic by `(i, j)`.
    pub fn machines(&self) -> &[(usize, usize, BinarySvm)] {
        &self.machines
    }

    /// The integrated feature scaler.
    pub fn scaler(&self) -> &StandardScaler {
        &self.scaler
    }

    /// Reassembles an ensemble from previously exported parts (the
    /// model-artifact load path). Round-tripping through
    /// export/import preserves [`MultiClassSvm::predict`] bit-exactly.
    ///
    /// # Errors
    ///
    /// [`TrainError::InvalidModel`] when the parts are inconsistent:
    /// fewer than two classes, classes not strictly ascending,
    /// machines not in canonical pair order (or wrong count), or a
    /// support-vector dimension that disagrees with the scaler.
    pub fn from_parts(
        classes: Vec<usize>,
        machines: Vec<(usize, usize, BinarySvm)>,
        scaler: StandardScaler,
    ) -> Result<MultiClassSvm, TrainError> {
        if classes.len() < 2 {
            return Err(TrainError::InvalidModel("fewer than two classes"));
        }
        if classes.windows(2).any(|w| w[0] >= w[1]) {
            return Err(TrainError::InvalidModel("classes not strictly ascending"));
        }
        let k = classes.len();
        if machines.len() != k * (k - 1) / 2 {
            return Err(TrainError::InvalidModel("wrong number of pair machines"));
        }
        let mut expected = classes
            .iter()
            .enumerate()
            .flat_map(|(i, &ca)| classes[i + 1..].iter().map(move |&cb| (ca, cb)));
        for (ca, cb, svm) in &machines {
            if expected.next() != Some((*ca, *cb)) {
                return Err(TrainError::InvalidModel("pair machines not in canonical order"));
            }
            if svm.support_vectors()[0].len() != scaler.n_features() {
                return Err(TrainError::InvalidModel(
                    "support vector dimension disagrees with scaler",
                ));
            }
        }
        Ok(MultiClassSvm { classes, machines, scaler })
    }

    /// Predicts the class of one sample by pairwise voting; ties are
    /// broken by the summed absolute decision margins.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn predict(&self, x: &[f64]) -> usize {
        self.predict_with_margins(x).label
    }

    /// Predicts one sample and exposes the full vote/margin tally —
    /// the per-class evidence behind the label, for audit trails. The
    /// returned label is bit-identical to [`predict`](Self::predict)
    /// (which delegates here).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn predict_with_margins(&self, x: &[f64]) -> Prediction {
        let mut row = x.to_vec();
        self.scaler.transform_row(&mut row);
        let max_class = *self.classes.last().expect("at least two classes") + 1;
        let mut votes = vec![0usize; max_class];
        let mut margin = vec![0.0f64; max_class];
        for (ca, cb, svm) in &self.machines {
            let d = svm.decision(&row);
            if d >= 0.0 {
                votes[*ca] += 1;
                margin[*ca] += d;
            } else {
                votes[*cb] += 1;
                margin[*cb] += -d;
            }
        }
        let label = Self::winner(&self.classes, &votes, &margin);
        Prediction {
            label,
            votes: self.classes.iter().map(|&c| votes[c]).collect(),
            margins: self.classes.iter().map(|&c| margin[c]).collect(),
        }
    }

    /// The OvO winner: maximal vote count, ties broken by summed
    /// absolute margins. `votes`/`margin` are indexed by raw class
    /// label (the `max_class`-wide tallies the voting loops fill in).
    fn winner(classes: &[usize], votes: &[usize], margin: &[f64]) -> usize {
        *classes
            .iter()
            .max_by(|&&a, &&b| {
                votes[a]
                    .cmp(&votes[b])
                    .then_with(|| margin[a].partial_cmp(&margin[b]).expect("finite margins"))
            })
            .expect("at least two classes")
    }

    /// Allocation-free prediction of one sample into caller-owned
    /// scratch buffers. Returns the same label as
    /// [`predict`](Self::predict) — bit-identical voting arithmetic,
    /// just without building a [`Prediction`] or cloning the row.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn predict_into(&self, x: &[f64], scratch: &mut PredictScratch) -> usize {
        scratch.row.clear();
        scratch.row.extend_from_slice(x);
        self.scaler.transform_row(&mut scratch.row);
        let max_class = *self.classes.last().expect("at least two classes") + 1;
        scratch.votes.clear();
        scratch.votes.resize(max_class, 0);
        scratch.margin.clear();
        scratch.margin.resize(max_class, 0.0);
        for (ca, cb, svm) in &self.machines {
            let d = svm.decision(&scratch.row);
            if d >= 0.0 {
                scratch.votes[*ca] += 1;
                scratch.margin[*ca] += d;
            } else {
                scratch.votes[*cb] += 1;
                scratch.margin[*cb] += -d;
            }
        }
        Self::winner(&self.classes, &scratch.votes, &scratch.margin)
    }

    /// Predicts a batch of samples.
    ///
    /// Evaluated machine-major over a flat row matrix: each support
    /// vector is scored against all rows while it is hot in cache
    /// ([`Kernel::accumulate_rows`]), instead of re-walking every
    /// machine's support vectors per sample. Per `(machine, row)` pair
    /// the accumulator applies the same floating-point operations in
    /// the same order as [`BinarySvm::decision`], and votes/margins
    /// tally per row in machine order exactly as in
    /// [`predict_with_margins`](Self::predict_with_margins), so the
    /// labels are bit-identical to mapping [`predict`](Self::predict)
    /// over the rows — a differential test suite pins this.
    ///
    /// # Panics
    ///
    /// Panics if any row has the wrong dimension.
    pub fn predict_batch<R: AsRef<[f64]>>(&self, xs: &[R]) -> Vec<usize> {
        let n = xs.len();
        if n == 0 {
            return Vec::new();
        }
        let dim = self.scaler.n_features();
        let mut flat = Vec::with_capacity(n * dim);
        for x in xs {
            let x = x.as_ref();
            assert_eq!(x.len(), dim, "feature row dimension disagrees with scaler");
            flat.extend_from_slice(x);
        }
        for row in flat.chunks_exact_mut(dim) {
            self.scaler.transform_row(row);
        }
        let max_class = *self.classes.last().expect("at least two classes") + 1;
        let mut votes = vec![0usize; n * max_class];
        let mut margin = vec![0.0f64; n * max_class];
        let mut dec = vec![0.0f64; n];
        for (ca, cb, svm) in &self.machines {
            dec.fill(0.0);
            let kernel = svm.kernel();
            for (&c, sv) in svm.coefficients().iter().zip(svm.support_vectors()) {
                kernel.accumulate_rows(sv, c, &flat, dim, &mut dec);
            }
            let bias = svm.bias();
            for (r, d) in dec.iter_mut().enumerate() {
                *d += bias;
                let base = r * max_class;
                if *d >= 0.0 {
                    votes[base + ca] += 1;
                    margin[base + ca] += *d;
                } else {
                    votes[base + cb] += 1;
                    margin[base + cb] += -*d;
                }
            }
        }
        (0..n)
            .map(|r| {
                let base = r * max_class;
                Self::winner(
                    &self.classes,
                    &votes[base..base + max_class],
                    &margin[base..base + max_class],
                )
            })
            .collect()
    }

    /// Accuracy against ground-truth labels.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or `xs` is empty.
    pub fn accuracy<R: AsRef<[f64]>>(&self, xs: &[R], ys: &[usize]) -> f64 {
        assert_eq!(xs.len(), ys.len(), "samples and labels must align");
        assert!(!xs.is_empty(), "accuracy of an empty set");
        let correct = xs
            .iter()
            .zip(ys)
            .filter(|(x, &y)| self.predict(x.as_ref()) == y)
            .count();
        correct as f64 / xs.len() as f64
    }
}

/// A nearest-centroid baseline classifier (the paper does not name a
/// baseline; this gives the classifier-ablation bench a reference
/// point).
#[derive(Debug, Clone, PartialEq)]
pub struct NearestCentroid {
    classes: Vec<usize>,
    centroids: Vec<Vec<f64>>,
    scaler: StandardScaler,
}

impl NearestCentroid {
    /// Fits per-class centroids on standardized features.
    ///
    /// # Errors
    ///
    /// Mirrors [`MultiClassSvm::train`] error conditions.
    pub fn train(xs: &[Vec<f64>], ys: &[usize]) -> Result<NearestCentroid, TrainError> {
        if xs.is_empty() {
            return Err(TrainError::Empty);
        }
        if ys.len() != xs.len() {
            return Err(TrainError::BadLabels);
        }
        let scaler = StandardScaler::fit(xs).map_err(|e| match e {
            crate::scaler::FitScalerError::Empty => TrainError::Empty,
            crate::scaler::FitScalerError::RaggedRows => TrainError::RaggedRows,
            crate::scaler::FitScalerError::InvalidParts(why) => TrainError::InvalidModel(why),
        })?;
        let xs = scaler.transform(xs);
        let mut classes: Vec<usize> = ys.to_vec();
        classes.sort_unstable();
        classes.dedup();
        if classes.len() < 2 {
            return Err(TrainError::BadLabels);
        }
        let d = xs[0].len();
        let mut centroids = vec![vec![0.0; d]; classes.len()];
        let mut counts = vec![0usize; classes.len()];
        for (x, &y) in xs.iter().zip(ys) {
            let ci = classes.binary_search(&y).expect("label seen during dedup");
            for (c, &v) in centroids[ci].iter_mut().zip(x) {
                *c += v;
            }
            counts[ci] += 1;
        }
        for (c, &n) in centroids.iter_mut().zip(&counts) {
            for v in c {
                *v /= n as f64;
            }
        }
        Ok(NearestCentroid { classes, centroids, scaler })
    }

    /// Predicts the class whose centroid is nearest in Euclidean
    /// distance.
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut row = x.to_vec();
        self.scaler.transform_row(&mut row);
        let (best, _) = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let d: f64 = c.iter().zip(&row).map(|(a, b)| (a - b) * (a - b)).sum();
                (i, d)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
            .expect("at least two classes");
        self.classes[best]
    }

    /// Accuracy against ground-truth labels.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or `xs` is empty.
    pub fn accuracy(&self, xs: &[Vec<f64>], ys: &[usize]) -> f64 {
        assert_eq!(xs.len(), ys.len(), "samples and labels must align");
        assert!(!xs.is_empty(), "accuracy of an empty set");
        let correct = xs
            .iter()
            .zip(ys)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated Gaussian blobs.
    fn blobs(n_per: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = Rng::seed_from_u64(seed);
        let centers = [(0.0, 0.0), (5.0, 0.0), (0.0, 5.0)];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (label, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..n_per {
                xs.push(vec![cx + rng.normal() * 0.5, cy + rng.normal() * 0.5]);
                ys.push(label);
            }
        }
        (xs, ys)
    }

    #[test]
    fn three_blobs_classified() {
        let (xs, ys) = blobs(20, 41);
        let mut rng = Rng::seed_from_u64(3);
        let svm =
            MultiClassSvm::train(&xs, &ys, Kernel::Rbf { gamma: 0.5 }, SmoParams::default(), &mut rng)
                .unwrap();
        assert_eq!(svm.classes(), &[0, 1, 2]);
        assert!(svm.accuracy(&xs, &ys) > 0.95);
        // Obvious fresh points.
        assert_eq!(svm.predict(&[0.1, -0.2]), 0);
        assert_eq!(svm.predict(&[5.2, 0.3]), 1);
        assert_eq!(svm.predict(&[-0.3, 5.1]), 2);
    }

    #[test]
    fn margins_align_with_classes_and_agree_with_predict() {
        let (xs, ys) = blobs(20, 42);
        let mut rng = Rng::seed_from_u64(8);
        let svm =
            MultiClassSvm::train(&xs, &ys, Kernel::Rbf { gamma: 0.5 }, SmoParams::default(), &mut rng)
                .unwrap();
        let k = svm.classes().len();
        for x in &xs {
            let p = svm.predict_with_margins(x);
            assert_eq!(p.label, svm.predict(x));
            assert_eq!(p.votes.len(), k);
            assert_eq!(p.margins.len(), k);
            // Every pairwise machine casts exactly one vote.
            assert_eq!(p.votes.iter().sum::<usize>(), k * (k - 1) / 2);
            assert!(p.margins.iter().all(|m| *m >= 0.0 && m.is_finite()));
            // The winner holds a maximal vote count.
            let win = svm.classes().iter().position(|&c| c == p.label).unwrap();
            assert_eq!(p.votes[win], *p.votes.iter().max().unwrap());
        }
    }

    #[test]
    fn sparse_labels_supported() {
        // Labels 0 and 7 with a gap (like w0 vs w3 without w1/w2).
        let (xs, mut ys) = blobs(15, 43);
        for y in &mut ys {
            *y = match *y {
                0 => 0,
                1 => 7,
                _ => 3,
            };
        }
        let mut rng = Rng::seed_from_u64(4);
        let svm =
            MultiClassSvm::train(&xs, &ys, Kernel::Rbf { gamma: 0.5 }, SmoParams::default(), &mut rng)
                .unwrap();
        assert_eq!(svm.classes(), &[0, 3, 7]);
        assert!(svm.accuracy(&xs, &ys) > 0.9);
    }

    #[test]
    fn generalizes_to_test_set() {
        let (train_xs, train_ys) = blobs(30, 45);
        let (test_xs, test_ys) = blobs(10, 46);
        let mut rng = Rng::seed_from_u64(5);
        let svm = MultiClassSvm::train(
            &train_xs,
            &train_ys,
            Kernel::Rbf { gamma: 0.5 },
            SmoParams::default(),
            &mut rng,
        )
        .unwrap();
        assert!(svm.accuracy(&test_xs, &test_ys) > 0.9);
    }

    #[test]
    fn scale_invariance_via_internal_scaler() {
        // Multiply one feature by 1000: the internal scaler must absorb it.
        let (xs, ys) = blobs(20, 47);
        let scaled: Vec<Vec<f64>> = xs.iter().map(|r| vec![r[0] * 1000.0, r[1]]).collect();
        let mut rng = Rng::seed_from_u64(6);
        let svm = MultiClassSvm::train(
            &scaled,
            &ys,
            Kernel::Rbf { gamma: 0.5 },
            SmoParams::default(),
            &mut rng,
        )
        .unwrap();
        assert!(svm.accuracy(&scaled, &ys) > 0.9);
    }

    #[test]
    fn single_class_rejected() {
        let xs = vec![vec![1.0], vec![2.0]];
        let ys = vec![3, 3];
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(
            MultiClassSvm::train(&xs, &ys, Kernel::Linear, SmoParams::default(), &mut rng)
                .unwrap_err(),
            TrainError::BadLabels
        );
    }

    #[test]
    fn trains_from_borrowed_rows() {
        // The zero-copy training path: &[&[f64]] views instead of owned rows.
        let (xs, ys) = blobs(15, 51);
        let views: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
        let mut r1 = Rng::seed_from_u64(9);
        let mut r2 = Rng::seed_from_u64(9);
        let owned =
            MultiClassSvm::train(&xs, &ys, Kernel::Rbf { gamma: 0.5 }, SmoParams::default(), &mut r1)
                .unwrap();
        let borrowed = MultiClassSvm::train(
            &views,
            &ys,
            Kernel::Rbf { gamma: 0.5 },
            SmoParams::default(),
            &mut r2,
        )
        .unwrap();
        assert_eq!(owned.predict_batch(&views), borrowed.predict_batch(&xs));
    }

    #[test]
    fn parts_round_trip_preserves_predictions() {
        let (xs, ys) = blobs(15, 53);
        let mut rng = Rng::seed_from_u64(7);
        let svm =
            MultiClassSvm::train(&xs, &ys, Kernel::Rbf { gamma: 0.5 }, SmoParams::default(), &mut rng)
                .unwrap();
        let back = MultiClassSvm::from_parts(
            svm.classes().to_vec(),
            svm.machines().to_vec(),
            svm.scaler().clone(),
        )
        .unwrap();
        assert_eq!(back.predict_batch(&xs), svm.predict_batch(&xs));
    }

    #[test]
    fn from_parts_rejects_inconsistent_models() {
        let (xs, ys) = blobs(10, 55);
        let mut rng = Rng::seed_from_u64(7);
        let svm =
            MultiClassSvm::train(&xs, &ys, Kernel::Linear, SmoParams::default(), &mut rng).unwrap();
        let scaler = svm.scaler().clone();
        assert_eq!(
            MultiClassSvm::from_parts(vec![0], vec![], scaler.clone()).unwrap_err(),
            TrainError::InvalidModel("fewer than two classes")
        );
        assert_eq!(
            MultiClassSvm::from_parts(vec![1, 1, 2], svm.machines().to_vec(), scaler.clone())
                .unwrap_err(),
            TrainError::InvalidModel("classes not strictly ascending")
        );
        assert_eq!(
            MultiClassSvm::from_parts(vec![0, 1, 2], svm.machines()[..1].to_vec(), scaler.clone())
                .unwrap_err(),
            TrainError::InvalidModel("wrong number of pair machines")
        );
        let mut swapped = svm.machines().to_vec();
        swapped.swap(0, 1);
        assert_eq!(
            MultiClassSvm::from_parts(vec![0, 1, 2], swapped, scaler.clone()).unwrap_err(),
            TrainError::InvalidModel("pair machines not in canonical order")
        );
        let bad_scaler = StandardScaler::fit(&[vec![1.0], vec![2.0]]).unwrap();
        assert_eq!(
            MultiClassSvm::from_parts(vec![0, 1, 2], svm.machines().to_vec(), bad_scaler)
                .unwrap_err(),
            TrainError::InvalidModel("support vector dimension disagrees with scaler")
        );
    }

    #[test]
    fn predict_batch_matches_per_row_predict() {
        // The machine-major batched evaluator against the scalar
        // reference, both kernels, including points near the blob
        // boundaries where a single flipped decision bit would change
        // the vote.
        let (xs, ys) = blobs(20, 57);
        for kernel in [Kernel::Linear, Kernel::Rbf { gamma: 0.5 }] {
            let mut rng = Rng::seed_from_u64(10);
            let svm = MultiClassSvm::train(&xs, &ys, kernel, SmoParams::default(), &mut rng).unwrap();
            let batch = svm.predict_batch(&xs);
            for (x, &b) in xs.iter().zip(&batch) {
                assert_eq!(svm.predict(x), b);
            }
            let empty: Vec<Vec<f64>> = Vec::new();
            assert!(svm.predict_batch(&empty).is_empty());
        }
    }

    #[test]
    fn predict_into_matches_predict() {
        let (xs, ys) = blobs(20, 59);
        let mut rng = Rng::seed_from_u64(11);
        let svm =
            MultiClassSvm::train(&xs, &ys, Kernel::Rbf { gamma: 0.5 }, SmoParams::default(), &mut rng)
                .unwrap();
        let mut scratch = PredictScratch::new();
        for x in &xs {
            assert_eq!(svm.predict_into(x, &mut scratch), svm.predict(x));
        }
    }

    #[test]
    fn nearest_centroid_baseline() {
        let (xs, ys) = blobs(20, 49);
        let nc = NearestCentroid::train(&xs, &ys).unwrap();
        assert!(nc.accuracy(&xs, &ys) > 0.95);
        assert_eq!(nc.predict(&[5.0, 0.0]), 1);
    }

    #[test]
    fn nearest_centroid_errors() {
        assert_eq!(NearestCentroid::train(&[], &[]).unwrap_err(), TrainError::Empty);
        assert_eq!(
            NearestCentroid::train(&[vec![1.0]], &[0]).unwrap_err(),
            TrainError::BadLabels
        );
    }
}
