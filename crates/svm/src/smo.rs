//! Binary soft-margin SVM trained with simplified SMO.
//!
//! The solver follows Platt's Sequential Minimal Optimization in the
//! simplified form (random second multiplier, closed-form pairwise
//! update, separate b₁/b₂ bias rules). The RE training sets are tiny by
//! SVM standards — on the order of a hundred samples with a couple of
//! hundred features — so the full Gram matrix is precomputed.

use crate::kernel::Kernel;
use fadewich_stats::rng::Rng;

/// Hyper-parameters of the SMO solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoParams {
    /// Soft-margin penalty `C` (> 0).
    pub c: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Number of consecutive no-progress sweeps before stopping.
    pub max_passes: usize,
    /// Hard cap on total sweeps (guards pathological inputs).
    pub max_sweeps: usize,
}

impl Default for SmoParams {
    fn default() -> Self {
        SmoParams { c: 1.0, tol: 1e-3, max_passes: 5, max_sweeps: 200 }
    }
}

/// A trained binary SVM: `f(x) = Σ αᵢ yᵢ K(xᵢ, x) + b`, predicting the
/// sign of `f`.
#[derive(Debug, Clone, PartialEq)]
pub struct BinarySvm {
    kernel: Kernel,
    /// Support vectors (rows with α > 0).
    support_vectors: Vec<Vec<f64>>,
    /// `αᵢ yᵢ` for each support vector.
    coefficients: Vec<f64>,
    bias: f64,
}

/// Error training an SVM or reassembling one from exported parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainError {
    /// The training set is empty.
    Empty,
    /// Labels are not all in `{−1, +1}` (binary) / fewer than two
    /// classes are present (multi-class).
    BadLabels,
    /// Feature rows have inconsistent dimensions.
    RaggedRows,
    /// Deserialized parts do not form a valid model (see
    /// [`BinarySvm::from_parts`] / `MultiClassSvm::from_parts`).
    InvalidModel(&'static str),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Empty => write!(f, "training set is empty"),
            TrainError::BadLabels => write!(f, "training labels do not form a valid problem"),
            TrainError::RaggedRows => write!(f, "feature rows have inconsistent dimensions"),
            TrainError::InvalidModel(why) => write!(f, "invalid model parts: {why}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl BinarySvm {
    /// Trains on rows `xs` with labels `ys ∈ {−1.0, +1.0}`.
    ///
    /// Deterministic given the `rng` seed (SMO picks its second
    /// multiplier at random).
    ///
    /// # Errors
    ///
    /// [`TrainError::Empty`] for an empty set, [`TrainError::BadLabels`]
    /// if any label is not ±1 or only one class is present,
    /// [`TrainError::RaggedRows`] on inconsistent dimensions.
    pub fn train(
        xs: &[Vec<f64>],
        ys: &[f64],
        kernel: Kernel,
        params: SmoParams,
        rng: &mut Rng,
    ) -> Result<BinarySvm, TrainError> {
        let n = xs.len();
        if n == 0 {
            return Err(TrainError::Empty);
        }
        if ys.len() != n || ys.iter().any(|&y| y != 1.0 && y != -1.0) {
            return Err(TrainError::BadLabels);
        }
        if !(ys.iter().any(|&y| y > 0.0) && ys.iter().any(|&y| y < 0.0)) {
            return Err(TrainError::BadLabels);
        }
        let d = xs[0].len();
        if xs.iter().any(|r| r.len() != d) {
            return Err(TrainError::RaggedRows);
        }

        // Precomputed Gram matrix; n is small (~130) in all our uses.
        let mut gram = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let k = kernel.eval(&xs[i], &xs[j]);
                gram[i * n + j] = k;
                gram[j * n + i] = k;
            }
        }

        let mut alphas = vec![0.0f64; n];
        let mut b = 0.0f64;
        let f = |alphas: &[f64], b: f64, i: usize| -> f64 {
            let mut s = b;
            for (j, &a) in alphas.iter().enumerate() {
                if a > 0.0 {
                    s += a * ys[j] * gram[j * n + i];
                }
            }
            s
        };

        let mut passes = 0usize;
        let mut sweeps = 0usize;
        while passes < params.max_passes && sweeps < params.max_sweeps {
            sweeps += 1;
            let mut num_changed = 0usize;
            for i in 0..n {
                let e_i = f(&alphas, b, i) - ys[i];
                let r = ys[i] * e_i;
                if (r < -params.tol && alphas[i] < params.c)
                    || (r > params.tol && alphas[i] > 0.0)
                {
                    // Random j != i.
                    let mut j = rng.below(n - 1);
                    if j >= i {
                        j += 1;
                    }
                    let e_j = f(&alphas, b, j) - ys[j];
                    let (a_i_old, a_j_old) = (alphas[i], alphas[j]);
                    let (lo, hi) = if ys[i] != ys[j] {
                        ((a_j_old - a_i_old).max(0.0), (params.c + a_j_old - a_i_old).min(params.c))
                    } else {
                        ((a_i_old + a_j_old - params.c).max(0.0), (a_i_old + a_j_old).min(params.c))
                    };
                    if lo >= hi {
                        continue;
                    }
                    let eta = 2.0 * gram[i * n + j] - gram[i * n + i] - gram[j * n + j];
                    if eta >= 0.0 {
                        continue;
                    }
                    let mut a_j = a_j_old - ys[j] * (e_i - e_j) / eta;
                    a_j = a_j.clamp(lo, hi);
                    if (a_j - a_j_old).abs() < 1e-5 {
                        continue;
                    }
                    let a_i = a_i_old + ys[i] * ys[j] * (a_j_old - a_j);
                    let b1 = b
                        - e_i
                        - ys[i] * (a_i - a_i_old) * gram[i * n + i]
                        - ys[j] * (a_j - a_j_old) * gram[i * n + j];
                    let b2 = b
                        - e_j
                        - ys[i] * (a_i - a_i_old) * gram[i * n + j]
                        - ys[j] * (a_j - a_j_old) * gram[j * n + j];
                    b = if a_i > 0.0 && a_i < params.c {
                        b1
                    } else if a_j > 0.0 && a_j < params.c {
                        b2
                    } else {
                        0.5 * (b1 + b2)
                    };
                    alphas[i] = a_i;
                    alphas[j] = a_j;
                    num_changed += 1;
                }
            }
            if num_changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        // Keep only support vectors.
        let mut support_vectors = Vec::new();
        let mut coefficients = Vec::new();
        for i in 0..n {
            if alphas[i] > 1e-9 {
                support_vectors.push(xs[i].clone());
                coefficients.push(alphas[i] * ys[i]);
            }
        }
        Ok(BinarySvm { kernel, support_vectors, coefficients, bias: b })
    }

    /// The decision value `f(x)`; positive means class `+1`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn decision(&self, x: &[f64]) -> f64 {
        self.coefficients
            .iter()
            .zip(&self.support_vectors)
            .map(|(&c, sv)| c * self.kernel.eval(sv, x))
            .sum::<f64>()
            + self.bias
    }

    /// Predicted label in `{−1.0, +1.0}` (zero decision counts as +1).
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Number of support vectors retained.
    pub fn n_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }

    /// The kernel the machine was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The retained support vectors (rows with α > 0).
    pub fn support_vectors(&self) -> &[Vec<f64>] {
        &self.support_vectors
    }

    /// `αᵢ yᵢ` for each support vector, aligned with
    /// [`BinarySvm::support_vectors`].
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The bias term `b`.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Reassembles a machine from previously exported parts (the
    /// model-artifact load path). Round-tripping through
    /// export/import preserves [`BinarySvm::decision`] bit-exactly.
    ///
    /// # Errors
    ///
    /// [`TrainError::InvalidModel`] when the parts are inconsistent:
    /// no support vectors, misaligned vector/coefficient counts,
    /// ragged or empty rows, non-finite values, or a non-positive RBF
    /// gamma.
    pub fn from_parts(
        kernel: Kernel,
        support_vectors: Vec<Vec<f64>>,
        coefficients: Vec<f64>,
        bias: f64,
    ) -> Result<BinarySvm, TrainError> {
        if support_vectors.is_empty() {
            return Err(TrainError::InvalidModel("no support vectors"));
        }
        if support_vectors.len() != coefficients.len() {
            return Err(TrainError::InvalidModel("support vector / coefficient count mismatch"));
        }
        let d = support_vectors[0].len();
        if d == 0 {
            return Err(TrainError::InvalidModel("zero-dimensional support vectors"));
        }
        if support_vectors.iter().any(|sv| sv.len() != d) {
            return Err(TrainError::InvalidModel("ragged support vectors"));
        }
        if support_vectors.iter().flatten().any(|v| !v.is_finite()) {
            return Err(TrainError::InvalidModel("non-finite support vector value"));
        }
        if coefficients.iter().any(|c| !c.is_finite()) {
            return Err(TrainError::InvalidModel("non-finite coefficient"));
        }
        if !bias.is_finite() {
            return Err(TrainError::InvalidModel("non-finite bias"));
        }
        if let Kernel::Rbf { gamma } = kernel {
            if !(gamma.is_finite() && gamma > 0.0) {
                return Err(TrainError::InvalidModel("non-positive RBF gamma"));
            }
        }
        Ok(BinarySvm { kernel, support_vectors, coefficients, bias })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(
        xs: &[Vec<f64>],
        ys: &[f64],
        kernel: Kernel,
    ) -> BinarySvm {
        let mut rng = Rng::seed_from_u64(7);
        BinarySvm::train(xs, ys, kernel, SmoParams::default(), &mut rng).unwrap()
    }

    #[test]
    fn linearly_separable() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.5, 0.2],
            vec![0.1, 0.6],
            vec![3.0, 3.0],
            vec![2.8, 3.3],
            vec![3.5, 2.7],
        ];
        let ys = vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0];
        let svm = train(&xs, &ys, Kernel::Linear);
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(svm.predict(x), y);
        }
        assert_eq!(svm.predict(&[-1.0, -1.0]), -1.0);
        assert_eq!(svm.predict(&[5.0, 5.0]), 1.0);
        assert!(svm.n_support_vectors() >= 2);
    }

    #[test]
    fn xor_needs_rbf() {
        // XOR is not linearly separable; RBF solves it.
        let xs = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ];
        let ys = vec![-1.0, -1.0, 1.0, 1.0];
        let svm = train(&xs, &ys, Kernel::Rbf { gamma: 2.0 });
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(svm.predict(x), y, "x = {x:?}");
        }
    }

    #[test]
    fn noisy_overlap_trains_without_divergence() {
        let mut rng = Rng::seed_from_u64(31);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..60 {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            xs.push(vec![y * 0.5 + rng.normal(), rng.normal()]);
            ys.push(y);
        }
        let mut train_rng = Rng::seed_from_u64(8);
        let svm = BinarySvm::train(
            &xs,
            &ys,
            Kernel::Rbf { gamma: 0.5 },
            SmoParams { c: 1.0, ..SmoParams::default() },
            &mut train_rng,
        )
        .unwrap();
        // Better than chance on the training data despite the overlap.
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| svm.predict(x) == y)
            .count();
        assert!(correct > 35, "correct = {correct}/60");
    }

    #[test]
    fn deterministic_given_seed() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![-1.0, -1.0, 1.0, 1.0];
        let mut r1 = Rng::seed_from_u64(5);
        let mut r2 = Rng::seed_from_u64(5);
        let a = BinarySvm::train(&xs, &ys, Kernel::Linear, SmoParams::default(), &mut r1).unwrap();
        let b = BinarySvm::train(&xs, &ys, Kernel::Linear, SmoParams::default(), &mut r2).unwrap();
        assert_eq!(a.decision(&[1.5]), b.decision(&[1.5]));
    }

    #[test]
    fn train_errors() {
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(
            BinarySvm::train(&[], &[], Kernel::Linear, SmoParams::default(), &mut rng).unwrap_err(),
            TrainError::Empty
        );
        assert_eq!(
            BinarySvm::train(
                &[vec![1.0], vec![2.0]],
                &[1.0, 2.0],
                Kernel::Linear,
                SmoParams::default(),
                &mut rng
            )
            .unwrap_err(),
            TrainError::BadLabels
        );
        // Single class.
        assert_eq!(
            BinarySvm::train(
                &[vec![1.0], vec![2.0]],
                &[1.0, 1.0],
                Kernel::Linear,
                SmoParams::default(),
                &mut rng
            )
            .unwrap_err(),
            TrainError::BadLabels
        );
        // Ragged rows.
        assert_eq!(
            BinarySvm::train(
                &[vec![1.0], vec![2.0, 3.0]],
                &[1.0, -1.0],
                Kernel::Linear,
                SmoParams::default(),
                &mut rng
            )
            .unwrap_err(),
            TrainError::RaggedRows
        );
        assert!(!format!("{}", TrainError::Empty).is_empty());
    }

    #[test]
    fn parts_round_trip_preserves_decision_bits() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.5, 0.2],
            vec![3.0, 3.0],
            vec![2.8, 3.3],
        ];
        let ys = vec![-1.0, -1.0, 1.0, 1.0];
        let svm = train(&xs, &ys, Kernel::Rbf { gamma: 0.7 });
        let back = BinarySvm::from_parts(
            svm.kernel(),
            svm.support_vectors().to_vec(),
            svm.coefficients().to_vec(),
            svm.bias(),
        )
        .unwrap();
        assert_eq!(back, svm);
        for x in &xs {
            assert_eq!(back.decision(x).to_bits(), svm.decision(x).to_bits());
        }
    }

    #[test]
    fn from_parts_rejects_inconsistent_models() {
        let sv = vec![vec![1.0, 2.0]];
        assert_eq!(
            BinarySvm::from_parts(Kernel::Linear, vec![], vec![], 0.0).unwrap_err(),
            TrainError::InvalidModel("no support vectors")
        );
        assert_eq!(
            BinarySvm::from_parts(Kernel::Linear, sv.clone(), vec![1.0, 2.0], 0.0).unwrap_err(),
            TrainError::InvalidModel("support vector / coefficient count mismatch")
        );
        assert_eq!(
            BinarySvm::from_parts(
                Kernel::Linear,
                vec![vec![1.0], vec![2.0, 3.0]],
                vec![1.0, -1.0],
                0.0
            )
            .unwrap_err(),
            TrainError::InvalidModel("ragged support vectors")
        );
        assert_eq!(
            BinarySvm::from_parts(Kernel::Linear, sv.clone(), vec![f64::NAN], 0.0).unwrap_err(),
            TrainError::InvalidModel("non-finite coefficient")
        );
        assert_eq!(
            BinarySvm::from_parts(Kernel::Linear, sv.clone(), vec![1.0], f64::INFINITY)
                .unwrap_err(),
            TrainError::InvalidModel("non-finite bias")
        );
        assert_eq!(
            BinarySvm::from_parts(Kernel::Rbf { gamma: 0.0 }, sv, vec![1.0], 0.0).unwrap_err(),
            TrainError::InvalidModel("non-positive RBF gamma")
        );
        assert!(!format!("{}", TrainError::InvalidModel("x")).is_empty());
    }
}
