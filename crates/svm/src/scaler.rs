//! Feature standardization.
//!
//! RE's feature vector mixes variances (dB², order 1–100), entropies
//! (bits, order 1) and autocorrelations (order 0.1–1); without
//! per-feature standardization the RBF kernel would be dominated by the
//! variance features. [`StandardScaler`] is the usual
//! `(x − µ) / σ` transform fitted on the training fold only.

/// Per-feature standardization to zero mean and unit variance.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

/// Error fitting or reassembling a scaler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitScalerError {
    /// No rows were provided.
    Empty,
    /// Rows have inconsistent dimensions.
    RaggedRows,
    /// Deserialized parts do not form a valid scaler (see
    /// [`StandardScaler::from_parts`]).
    InvalidParts(&'static str),
}

impl std::fmt::Display for FitScalerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitScalerError::Empty => write!(f, "cannot fit a scaler to an empty dataset"),
            FitScalerError::RaggedRows => write!(f, "feature rows have inconsistent dimensions"),
            FitScalerError::InvalidParts(why) => write!(f, "invalid scaler parts: {why}"),
        }
    }
}

impl std::error::Error for FitScalerError {}

impl StandardScaler {
    /// Fits per-feature mean and standard deviation.
    ///
    /// Features with zero variance get σ = 1 so they transform to a
    /// constant 0 instead of NaN.
    ///
    /// # Errors
    ///
    /// Returns [`FitScalerError::Empty`] when `xs` has no rows and
    /// [`FitScalerError::RaggedRows`] when rows disagree in length.
    pub fn fit<R: AsRef<[f64]>>(xs: &[R]) -> Result<StandardScaler, FitScalerError> {
        let first = xs.first().ok_or(FitScalerError::Empty)?;
        let d = first.as_ref().len();
        if xs.iter().any(|row| row.as_ref().len() != d) {
            return Err(FitScalerError::RaggedRows);
        }
        let n = xs.len() as f64;
        let mut means = vec![0.0; d];
        for row in xs {
            for (m, &x) in means.iter_mut().zip(row.as_ref()) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; d];
        for row in xs {
            for ((s, &x), &m) in stds.iter_mut().zip(row.as_ref()).zip(&means) {
                *s += (x - m) * (x - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Ok(StandardScaler { means, stds })
    }

    /// Reassembles a scaler from previously exported [`StandardScaler::means`]
    /// and [`StandardScaler::stds`] (the model-artifact load path).
    ///
    /// # Errors
    ///
    /// [`FitScalerError::Empty`] for zero features,
    /// [`FitScalerError::InvalidParts`] for mismatched lengths,
    /// non-finite values, or non-positive standard deviations.
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> Result<StandardScaler, FitScalerError> {
        if means.is_empty() {
            return Err(FitScalerError::Empty);
        }
        if means.len() != stds.len() {
            return Err(FitScalerError::InvalidParts("means/stds length mismatch"));
        }
        if means.iter().any(|m| !m.is_finite()) {
            return Err(FitScalerError::InvalidParts("non-finite mean"));
        }
        if stds.iter().any(|s| !(s.is_finite() && *s > 0.0)) {
            return Err(FitScalerError::InvalidParts("non-positive standard deviation"));
        }
        Ok(StandardScaler { means, stds })
    }

    /// Number of features the scaler was fitted on.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Per-feature means, in feature order.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-feature standard deviations, in feature order.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Transforms one row in place.
    ///
    /// # Panics
    ///
    /// Panics if the row dimension differs from the fitted dimension.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.means.len(), "dimension mismatch");
        for ((x, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *x = (*x - m) / s;
        }
    }

    /// Returns a transformed copy of a dataset.
    pub fn transform<R: AsRef<[f64]>>(&self, xs: &[R]) -> Vec<Vec<f64>> {
        xs.iter()
            .map(|row| {
                let mut r = row.as_ref().to_vec();
                self.transform_row(&mut r);
                r
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_columns() {
        let xs = vec![vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 500.0]];
        let scaler = StandardScaler::fit(&xs).unwrap();
        let t = scaler.transform(&xs);
        for j in 0..2 {
            let col: Vec<f64> = t.iter().map(|r| r[j]).collect();
            assert!(fadewich_stats::descriptive::mean(&col).abs() < 1e-12);
            assert!((fadewich_stats::descriptive::std_dev(&col) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let xs = vec![vec![7.0, 1.0], vec![7.0, 2.0]];
        let scaler = StandardScaler::fit(&xs).unwrap();
        let t = scaler.transform(&xs);
        assert_eq!(t[0][0], 0.0);
        assert_eq!(t[1][0], 0.0);
        assert!(t[0][1].is_finite());
    }

    #[test]
    fn errors() {
        assert_eq!(StandardScaler::fit::<Vec<f64>>(&[]).unwrap_err(), FitScalerError::Empty);
        assert_eq!(
            StandardScaler::fit(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err(),
            FitScalerError::RaggedRows
        );
        assert!(!format!("{}", FitScalerError::Empty).is_empty());
    }

    #[test]
    fn transform_unseen_row() {
        let xs = vec![vec![0.0], vec![2.0]];
        let scaler = StandardScaler::fit(&xs).unwrap();
        let mut row = vec![4.0];
        scaler.transform_row(&mut row);
        // mean 1, std 1 -> (4-1)/1 = 3.
        assert!((row[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_panics() {
        let scaler = StandardScaler::fit(&[vec![1.0, 2.0]]).unwrap();
        scaler.transform_row(&mut [1.0]);
    }
}
