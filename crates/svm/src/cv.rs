//! Cross-validation splitters.
//!
//! The paper evaluates RE with 5-fold cross-validation repeated over
//! 10 random splits (Fig. 8's error bars). [`stratified_k_fold`] keeps
//! the per-class proportions of the full set in every fold, which
//! matters because the event mix is skewed (67 `w0` vs ~20 each of
//! `w1..w3`).

use fadewich_stats::rng::Rng;

/// One train/test split: indices into the original dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Indices of training samples.
    pub train: Vec<usize>,
    /// Indices of held-out test samples.
    pub test: Vec<usize>,
}

/// Plain k-fold splitting after a seeded shuffle.
///
/// # Panics
///
/// Panics if `k < 2` or `n < k`.
pub fn k_fold(n: usize, k: usize, rng: &mut Rng) -> Vec<Fold> {
    assert!(k >= 2, "k-fold needs k >= 2");
    assert!(n >= k, "need at least one sample per fold");
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    chunks_to_folds(&order, k, n)
}

/// Stratified k-fold: each class's samples are spread round-robin over
/// the folds, so every fold approximates the global label mix.
///
/// # Panics
///
/// Panics if `k < 2` or `labels.len() < k`.
pub fn stratified_k_fold(labels: &[usize], k: usize, rng: &mut Rng) -> Vec<Fold> {
    assert!(k >= 2, "k-fold needs k >= 2");
    let n = labels.len();
    assert!(n >= k, "need at least one sample per fold");
    // Group indices by class, shuffle within class, then deal them out.
    let mut classes: Vec<usize> = labels.to_vec();
    classes.sort_unstable();
    classes.dedup();
    let mut fold_of = vec![0usize; n];
    let mut next_fold = 0usize;
    for class in classes {
        let mut members: Vec<usize> =
            (0..n).filter(|&i| labels[i] == class).collect();
        rng.shuffle(&mut members);
        for idx in members {
            fold_of[idx] = next_fold;
            next_fold = (next_fold + 1) % k;
        }
    }
    (0..k)
        .map(|f| Fold {
            train: (0..n).filter(|&i| fold_of[i] != f).collect(),
            test: (0..n).filter(|&i| fold_of[i] == f).collect(),
        })
        .collect()
}

fn chunks_to_folds(order: &[usize], k: usize, n: usize) -> Vec<Fold> {
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0usize;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let test: Vec<usize> = order[start..start + size].to_vec();
        let train: Vec<usize> = order[..start]
            .iter()
            .chain(&order[start + size..])
            .copied()
            .collect();
        folds.push(Fold { train, test });
        start += size;
    }
    folds
}

/// Selects the rows/labels of a dataset at `indices`.
pub fn subset<T: Clone>(data: &[T], indices: &[usize]) -> Vec<T> {
    indices.iter().map(|&i| data[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_fold_partitions() {
        let mut rng = Rng::seed_from_u64(2);
        let folds = k_fold(23, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut all_test: Vec<usize> = folds.iter().flat_map(|f| f.test.clone()).collect();
        all_test.sort_unstable();
        assert_eq!(all_test, (0..23).collect::<Vec<_>>());
        for f in &folds {
            assert_eq!(f.train.len() + f.test.len(), 23);
            // No overlap.
            assert!(f.train.iter().all(|i| !f.test.contains(i)));
            // Sizes within one of each other.
            assert!(f.test.len() == 4 || f.test.len() == 5);
        }
    }

    #[test]
    fn stratified_preserves_mix() {
        // 40 of class 0, 10 of class 1.
        let labels: Vec<usize> = (0..50).map(|i| usize::from(i >= 40)).collect();
        let mut rng = Rng::seed_from_u64(3);
        let folds = stratified_k_fold(&labels, 5, &mut rng);
        for f in &folds {
            let c1 = f.test.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(c1, 2, "each fold should hold 2 of the 10 minority samples");
            assert_eq!(f.test.len(), 10);
        }
    }

    #[test]
    fn stratified_partitions_everything() {
        let labels: Vec<usize> = (0..31).map(|i| i % 3).collect();
        let mut rng = Rng::seed_from_u64(4);
        let folds = stratified_k_fold(&labels, 4, &mut rng);
        let mut all: Vec<usize> = folds.iter().flat_map(|f| f.test.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..31).collect::<Vec<_>>());
    }

    #[test]
    fn different_seeds_different_splits() {
        let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let a = stratified_k_fold(&labels, 5, &mut Rng::seed_from_u64(1));
        let b = stratified_k_fold(&labels, 5, &mut Rng::seed_from_u64(2));
        assert_ne!(a[0].test, b[0].test);
    }

    #[test]
    fn subset_selects() {
        let data = vec!["a", "b", "c", "d"];
        assert_eq!(subset(&data, &[3, 0]), vec!["d", "a"]);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn k_one_panics() {
        k_fold(10, 1, &mut Rng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "one sample per fold")]
    fn too_few_samples_panics() {
        stratified_k_fold(&[0, 1], 3, &mut Rng::seed_from_u64(0));
    }
}
