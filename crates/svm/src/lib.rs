//! Support vector machine substrate for the FADEWICH reproduction.
//!
//! The paper's Radio Environment module classifies variation-window
//! samples with an SVM (§IV-D3). This crate implements that classifier
//! from scratch: a soft-margin binary SVM trained with simplified SMO,
//! lifted to multi-class by one-vs-one voting, with per-feature
//! standardization and stratified k-fold cross-validation utilities.
//! A nearest-centroid baseline supports the classifier ablation bench.
//!
//! # Examples
//!
//! ```
//! use fadewich_svm::{Kernel, MultiClassSvm, SmoParams};
//! use fadewich_stats::rng::Rng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let xs = vec![
//!     vec![0.0, 0.0], vec![0.2, 0.1],  // class 0
//!     vec![4.0, 4.0], vec![4.1, 3.9],  // class 1
//! ];
//! let ys = vec![0, 0, 1, 1];
//! let mut rng = Rng::seed_from_u64(1);
//! let svm = MultiClassSvm::train(&xs, &ys, Kernel::Linear, SmoParams::default(), &mut rng)?;
//! assert_eq!(svm.predict(&[3.8, 4.2]), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cv;
pub mod kernel;
pub mod multiclass;
pub mod scaler;
pub mod smo;

pub use cv::{k_fold, stratified_k_fold, Fold};
pub use kernel::Kernel;
pub use multiclass::{MultiClassSvm, NearestCentroid, PredictScratch, Prediction};
pub use scaler::StandardScaler;
pub use smo::{BinarySvm, SmoParams, TrainError};
