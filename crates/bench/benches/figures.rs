//! One benchmark per reproduced paper figure (reduced scenario).

use fadewich_testkit::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

use fadewich_experiments::experiment::{Experiment, SensorRun};
use fadewich_experiments::figures;
use fadewich_experiments::pipeline::learning_curve;
use fadewich_experiments::tables;

fn experiment() -> &'static Experiment {
    static EXP: OnceLock<Experiment> = OnceLock::new();
    EXP.get_or_init(|| Experiment::small(0xF19).expect("experiment"))
}

fn runs() -> &'static Vec<SensorRun> {
    static RUNS: OnceLock<Vec<SensorRun>> = OnceLock::new();
    RUNS.get_or_init(|| experiment().sweep(&[3, 9], 3).expect("sweep"))
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_st_distributions", |b| {
        b.iter(|| black_box(figures::fig2(experiment(), &runs()[1]).threshold))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let t_deltas: Vec<f64> = (4..=16).map(|i| i as f64 * 0.5).collect();
    c.bench_function("fig7_t_delta_sweep", |b| {
        b.iter(|| black_box(figures::fig7(experiment(), runs(), &t_deltas).len()))
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_learning_curve_9_sensors", |b| {
        b.iter(|| {
            black_box(learning_curve(&runs()[1].samples, &[10, 20, 30], 3, 2, 1).len())
        })
    });
}

fn bench_fig9_fig10(c: &mut Criterion) {
    let pts: Vec<f64> = (0..=20).map(|i| i as f64 * 0.5).collect();
    c.bench_function("fig9_deauth_curves", |b| {
        b.iter(|| black_box(figures::fig9(experiment(), runs(), &pts).len()))
    });
    c.bench_function("fig10_attack_opportunities", |b| {
        b.iter(|| black_box(figures::fig10(experiment(), runs()).len()))
    });
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11_correlation_matrix_72x72", |b| {
        b.iter(|| black_box(figures::fig11(experiment(), &runs()[1]).mean_abs_shared))
    });
}

fn bench_fig12(c: &mut Criterion) {
    c.bench_function("fig12_rmi_heatmap", |b| {
        b.iter(|| black_box(figures::fig12(experiment(), &runs()[1]).grid.max_value()))
    });
}

fn bench_fig13(c: &mut Criterion) {
    let (cost_rows, _) = tables::table4(experiment(), runs(), 3);
    c.bench_function("fig13_vulnerable_vs_cost", |b| {
        b.iter(|| black_box(figures::fig13(experiment(), runs(), &cost_rows).len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2, bench_fig7, bench_fig8, bench_fig9_fig10, bench_fig11,
              bench_fig12, bench_fig13
}
criterion_main!(benches);
