//! Microbenchmarks of the hot primitives: the per-tick work that a
//! real deployment would run continuously.

use fadewich_testkit::bench::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use fadewich_core::config::FadewichParams;
use fadewich_core::features::extract_features;
use fadewich_core::md::MovementDetector;
use fadewich_geometry::{Point, Rect, Segment};
use fadewich_core::kma::Kma;
use fadewich_officesim::{DayTrace, InputTrace};
use fadewich_rfchannel::{Body, ChannelParams, ChannelSim};
use fadewich_runtime::Frame;
use fadewich_stats::kde::GaussianKde;
use fadewich_stats::rng::Rng;
use fadewich_stats::rolling::RollingStd;
use fadewich_svm::{BinarySvm, Kernel, SmoParams};

fn bench_rolling_std(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(1);
    let samples: Vec<f64> = (0..10_000).map(|_| rng.normal_with(-50.0, 1.0)).collect();
    c.bench_function("rolling_std_push_10k", |b| {
        b.iter_batched(
            || RollingStd::new(10),
            |mut w| {
                for &x in &samples {
                    w.push(x);
                }
                black_box(w.std_dev())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_kde(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(2);
    let profile: Vec<f64> = (0..1_500).map(|_| rng.normal_with(55.0, 4.0)).collect();
    c.bench_function("kde_fit_and_p99_1500", |b| {
        b.iter(|| {
            let kde = GaussianKde::fit(black_box(&profile)).unwrap();
            black_box(kde.quantile(0.99))
        })
    });
}

fn bench_channel_step(c: &mut Criterion) {
    let sensors: Vec<Point> = (0..9)
        .map(|i| Point::new(i as f64 * 0.7, if i % 2 == 0 { 0.0 } else { 3.0 }))
        .collect();
    let mut sim = ChannelSim::new(
        &sensors,
        Rect::with_size(6.0, 3.0),
        5.0,
        ChannelParams::default(),
        3,
    )
    .unwrap();
    let bodies = [
        Body::new(Point::new(2.0, 1.5), 1.0),
        Body::still(Point::new(4.0, 2.0)),
        Body::still(Point::new(1.0, 1.0)),
    ];
    c.bench_function("channel_step_72_streams_3_bodies", |b| {
        b.iter(|| black_box(sim.step(black_box(&bodies))[0]))
    });
}

fn bench_md_step(c: &mut Criterion) {
    let params = FadewichParams::default();
    let mut md = MovementDetector::new(72, 5.0, params).unwrap();
    let mut rng = Rng::seed_from_u64(4);
    // Warm past profile initialization.
    let mut tick = 0usize;
    let mut row = vec![0.0f64; 72];
    for _ in 0..400 {
        for r in row.iter_mut() {
            *r = -50.0 + rng.normal();
        }
        md.step(tick, &row);
        tick += 1;
    }
    c.bench_function("md_step_72_streams", |b| {
        b.iter(|| {
            for r in row.iter_mut() {
                *r = -50.0 + rng.normal();
            }
            let v = md.step(tick, &row);
            tick += 1;
            black_box(v.st)
        })
    });
}

fn bench_body_attenuation(c: &mut Criterion) {
    let link = Segment::new(Point::new(0.0, 2.0), Point::new(4.5, 0.0));
    let body = Point::new(2.0, 1.1);
    c.bench_function("point_segment_distance", |b| {
        b.iter(|| black_box(link.distance_to_point(black_box(body))))
    });
}

fn bench_feature_extraction(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(5);
    let mut day = DayTrace::with_capacity(72, 200);
    let mut row = vec![0.0f64; 72];
    for _ in 0..200 {
        for r in row.iter_mut() {
            *r = -50.0 + rng.normal();
        }
        day.push_row(&row);
    }
    let streams: Vec<usize> = (0..72).collect();
    let params = FadewichParams::default();
    c.bench_function("extract_features_72_streams", |b| {
        b.iter(|| black_box(extract_features(&day, &streams, 50, 5.0, &params)))
    });
}

/// A busy 8-workstation day: the KMA query load Rule 2 generates on
/// every alert tick.
fn kma_input_fixture() -> InputTrace {
    let mut rng = Rng::seed_from_u64(8);
    let times: Vec<Vec<f64>> = (0..8)
        .map(|_| {
            let mut t = 0.0;
            let mut events = Vec::new();
            while t < 7200.0 {
                t += 1.0 + 30.0 * rng.f64();
                events.push(t);
            }
            events
        })
        .collect();
    InputTrace::from_times(times)
}

fn bench_kma_idle_set(c: &mut Criterion) {
    // What Rule 2 used to do on every alert tick: materialize the
    // idle set, then membership-test each session against it.
    let inputs = kma_input_fixture();
    let kma = Kma::new(&inputs);
    c.bench_function("kma_rule2_via_idle_set_8ws", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..100 {
                let s = black_box(10.0);
                let t = black_box(60.0 + i as f64 * 70.0);
                let set = kma.idle_set(s, t);
                for ws in 0..kma.n_workstations() {
                    hits += usize::from(set.contains(&ws));
                }
            }
            black_box(hits)
        })
    });
}

fn bench_kma_is_idle_scan(c: &mut Criterion) {
    // The allocation-free path the controller's Rule 2 hot loop uses
    // now: one is_idle query per session, no Vec.
    let inputs = kma_input_fixture();
    let kma = Kma::new(&inputs);
    c.bench_function("kma_rule2_via_is_idle_8ws", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..100 {
                let s = black_box(10.0);
                let t = black_box(60.0 + i as f64 * 70.0);
                for ws in 0..kma.n_workstations() {
                    hits += usize::from(kma.is_idle(ws, s, t));
                }
            }
            black_box(hits)
        })
    });
}

fn bench_wire_codec(c: &mut Criterion) {
    let frame = Frame {
        office: 0,
        sensor: 3,
        seq: 12_345,
        tick: 9_999,
        values: (0..8).map(|i| -50.0 - i as f32).collect(),
    };
    let bytes = frame.encode();
    c.bench_function("wire_encode_decode_8_values", |b| {
        b.iter(|| {
            let enc = black_box(&frame).encode();
            let (dec, _) = Frame::decode(black_box(&enc)).unwrap();
            black_box(dec.tick)
        })
    });
    c.bench_function("wire_decode_8_values", |b| {
        b.iter(|| black_box(Frame::decode(black_box(&bytes)).unwrap().0.seq))
    });
}

fn bench_smo_training(c: &mut Criterion) {
    let mut rng = Rng::seed_from_u64(6);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..100 {
        let y = if i % 2 == 0 { 1.0 } else { -1.0 };
        let x: Vec<f64> =
            (0..216).map(|j| rng.normal() + y * f64::from(u8::from(j < 10))).collect();
        xs.push(x);
        ys.push(y);
    }
    c.bench_function("smo_train_100x216", |b| {
        b.iter(|| {
            let mut train_rng = Rng::seed_from_u64(7);
            black_box(
                BinarySvm::train(&xs, &ys, Kernel::Linear, SmoParams::default(), &mut train_rng)
                    .unwrap()
                    .n_support_vectors(),
            )
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_rolling_std, bench_kde, bench_channel_step, bench_md_step,
              bench_body_attenuation, bench_feature_extraction,
              bench_kma_idle_set, bench_kma_is_idle_scan, bench_wire_codec,
              bench_smo_training
}
criterion_main!(micro);
