//! One benchmark per reproduced paper table: times the pipeline that
//! regenerates it on a reduced (1-day) scenario. The full 5-day
//! regeneration is the `reproduce` binary.

use fadewich_testkit::bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

use fadewich_core::usability::UsabilityParams;
use fadewich_experiments::experiment::{Experiment, SensorRun};
use fadewich_experiments::tables;

fn experiment() -> &'static Experiment {
    static EXP: OnceLock<Experiment> = OnceLock::new();
    EXP.get_or_init(|| Experiment::small(0xBE9C).expect("experiment"))
}

fn runs() -> &'static Vec<SensorRun> {
    static RUNS: OnceLock<Vec<SensorRun>> = OnceLock::new();
    RUNS.get_or_init(|| experiment().sweep(&[3, 9], 3).expect("sweep"))
}

/// Table II: scenario generation (behaviour only, no RF).
fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_scenario_generation", |b| {
        b.iter(|| {
            let scenario = fadewich_officesim::Scenario::generate(
                fadewich_officesim::ScenarioConfig::small(),
            )
            .unwrap();
            black_box(scenario.events().len())
        })
    });
    // Rendering from a prepared experiment.
    c.bench_function("table2_render", |b| {
        b.iter(|| black_box(tables::table2(experiment()).render().len()))
    });
}

/// Table III: the MD detection pipeline at 9 sensors.
fn bench_table3(c: &mut Criterion) {
    let exp = experiment();
    c.bench_function("table3_md_detection_9_sensors", |b| {
        b.iter(|| black_box(exp.run_for_sensors(9, 3).unwrap().stage.detection.counts))
    });
    c.bench_function("table3_md_detection_3_sensors", |b| {
        b.iter(|| black_box(exp.run_for_sensors(3, 3).unwrap().stage.detection.counts))
    });
}

/// Table IV: the usability replay over input draws.
fn bench_table4(c: &mut Criterion) {
    let exp = experiment();
    let run = &runs()[1];
    c.bench_function("table4_usability_5_draws", |b| {
        b.iter(|| {
            black_box(tables::usability_row(exp, run, 5, &UsabilityParams::default()))
        })
    });
}

/// Table V: RMI feature ranking (432 features x ~40 samples).
fn bench_table5(c: &mut Criterion) {
    let exp = experiment();
    let run = &runs()[1];
    c.bench_function("table5_rmi_ranking", |b| {
        b.iter(|| black_box(tables::table5(exp, run, 15).0.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table2, bench_table3, bench_table4, bench_table5
}
criterion_main!(benches);
