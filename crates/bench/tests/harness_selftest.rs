//! Self-tests for the perf-baseline harness: the measurement core is
//! exact under a [`ManualClock`], degenerate configurations are
//! rejected, and the emitted JSON both parses with the workspace's
//! own reader and is byte-identical across runs once the `wall_`
//! fields are set aside.

use std::sync::Arc;

use fadewich_bench::harness::{self, BenchConfig, FieldValue};
use fadewich_telemetry::json::{self, Json};
use fadewich_telemetry::{Clock, ManualClock, WallClock};

/// A configuration small enough for debug-mode test runs while still
/// exercising every workload (bursts, windows, SVM votes, KDE fits).
fn tiny_config() -> BenchConfig {
    BenchConfig {
        seed: 0xFADE,
        warmup_iters: 0,
        iters: 1,
        samples: 1,
        engine_ticks: 60,
        md_ticks: 80,
        n_frames: 32,
        svm_rows: 8,
        kde_points: 50,
        alloc_ticks: 40,
        smoke: true,
    }
}

#[test]
fn measure_reports_exact_medians_under_a_manual_clock() {
    // Every call advances the clock by exactly 1_000 ns, so with
    // 4 iterations of 10 units the per-unit time is exactly 100 ns.
    let clock = ManualClock::new();
    let m = harness::measure(&clock, 2, 4, 3, 10, || clock.advance_ns(1_000)).unwrap();
    assert_eq!(m.samples, 3);
    assert_eq!(m.iters, 4);
    assert_eq!(m.units_per_iter, 10);
    assert_eq!(m.wall_median_ns_per_unit, 100.0);
    assert_eq!(m.wall_total_ns, 3 * 4 * 1_000);

    // Per-sample advances 300 / 100 / 200: the sorted per-unit
    // samples are [100, 200, 300] and the median is exactly 200.
    let clock = ManualClock::new();
    let advances = [300u64, 100, 200];
    let mut call = 0usize;
    let m = harness::measure(&clock, 0, 1, 3, 1, || {
        clock.advance_ns(advances[call]);
        call += 1;
    })
    .unwrap();
    assert_eq!(m.wall_median_ns_per_unit, 200.0);
    assert_eq!(m.wall_total_ns, 600);
}

#[test]
fn measure_rejects_degenerate_parameters() {
    let clock = ManualClock::new();
    for (iters, samples, units) in [(0u64, 1u64, 1u64), (1, 0, 1), (1, 1, 0)] {
        let err = harness::measure(&clock, 0, iters, samples, units, || {}).unwrap_err();
        assert!(err.contains("nonzero"), "unexpected error: {err}");
    }
}

#[test]
fn config_validation_names_the_offending_knob() {
    assert!(BenchConfig::standard(1).validate().is_ok());
    assert!(BenchConfig::smoke(1).validate().is_ok());
    let zeroed: [(&str, fn(&mut BenchConfig)); 8] = [
        ("iters", |c| c.iters = 0),
        ("samples", |c| c.samples = 0),
        ("engine_ticks", |c| c.engine_ticks = 0),
        ("md_ticks", |c| c.md_ticks = 0),
        ("n_frames", |c| c.n_frames = 0),
        ("svm_rows", |c| c.svm_rows = 0),
        ("kde_points", |c| c.kde_points = 0),
        ("alloc_ticks", |c| c.alloc_ticks = 0),
    ];
    for (name, zap) in zeroed {
        let mut cfg = BenchConfig::smoke(1);
        zap(&mut cfg);
        let err = cfg.validate().unwrap_err();
        assert!(err.contains(name), "error for {name} should name it: {err}");
    }
    let mut cfg = BenchConfig::smoke(1);
    cfg.kde_points = 1;
    let err = cfg.validate().unwrap_err();
    assert!(err.contains("at least 2"), "unexpected error: {err}");
}

#[test]
fn manual_clock_report_is_fully_deterministic_and_parses() {
    // Under a manual clock that never advances, *every* field of the
    // report — including the wall_ ones, which all degrade to zero —
    // must be identical between runs, and the JSON must parse with
    // the workspace's own reader.
    let cfg = tiny_config();
    let clock: Arc<dyn Clock> = Arc::new(ManualClock::new());
    let a = harness::run(&cfg, &clock).unwrap();
    let b = harness::run(&cfg, &clock).unwrap();
    assert_eq!(a, b, "manual-clock reports must be bitwise identical");
    assert_eq!(a.to_json(), b.to_json());

    let doc = json::parse(&a.to_json()).expect("bench JSON parses with telemetry::json");
    assert_eq!(doc.get("schema"), Some(&Json::Str(harness::SCHEMA.to_string())));
    assert_eq!(doc.get("seed").and_then(Json::as_num), Some(cfg.seed as f64));
    assert_eq!(doc.get("smoke"), Some(&Json::Bool(true)));
    let rows = match doc.get("rows") {
        Some(Json::Arr(rows)) => rows,
        other => panic!("rows should be an array, got {other:?}"),
    };
    let expected = [
        "engine",
        "wire_decode",
        "wire_decode_borrowed",
        "mac_verify",
        "md_step_reference",
        "md_step_fast",
        "svm_predict_scalar",
        "svm_predict_batch",
        "kde_fit",
        "fleet_demux",
        "controller_tick_allocs",
    ];
    let names: Vec<_> = rows
        .iter()
        .map(|r| match r.get("name") {
            Some(Json::Str(s)) => s.clone(),
            other => panic!("row name should be a string, got {other:?}"),
        })
        .collect();
    assert_eq!(names, expected);
    // Each timed row carries a median; the hot-path rows prove they
    // matched the reference arithmetic.
    for name in ["engine", "wire_decode", "md_step_reference", "kde_fit"] {
        let row = rows.iter().find(|r| r.get("name") == Some(&Json::Str(name.into()))).unwrap();
        assert!(row.get("wall_median_ns_per_unit").is_some(), "{name} lacks a median");
    }
    for name in ["md_step_fast", "svm_predict_batch"] {
        let row = rows.iter().find(|r| r.get("name") == Some(&Json::Str(name.into()))).unwrap();
        assert_eq!(row.get("matches_reference"), Some(&Json::Bool(true)), "{name}");
    }
    let borrowed = rows
        .iter()
        .find(|r| r.get("name") == Some(&Json::Str("wire_decode_borrowed".into())))
        .unwrap();
    assert_eq!(borrowed.get("matches_owned"), Some(&Json::Bool(true)));
    let fleet = rows
        .iter()
        .find(|r| r.get("name") == Some(&Json::Str("fleet_demux".into())))
        .unwrap();
    assert_eq!(fleet.get("matches_single_office"), Some(&Json::Bool(true)));
    let mac = rows
        .iter()
        .find(|r| r.get("name") == Some(&Json::Str("mac_verify".into())))
        .unwrap();
    assert_eq!(
        mac.get("frames_verified").and_then(Json::as_num),
        Some(tiny_config().n_frames as f64),
        "every genuine signed frame must verify"
    );

    // The in-memory accessors agree with the parsed document.
    let fast = a.row("md_step_fast").unwrap();
    assert_eq!(fast.get("matches_reference"), Some(&FieldValue::Bool(true)));
    assert!(a.row("no_such_row").is_none());
    assert!(a.table().contains("controller_tick_allocs"));
}

#[test]
fn wall_clock_runs_agree_on_every_non_wall_line() {
    // The property the CI smoke gate enforces on the binary, held
    // in-process: two wall-clock runs of the same seed differ only in
    // lines carrying a wall_ field.
    let cfg = tiny_config();
    let clock: Arc<dyn Clock> = Arc::new(WallClock);
    let a = harness::run(&cfg, &clock).unwrap().to_json();
    let b = harness::run(&cfg, &clock).unwrap().to_json();
    let strip = |s: &str| {
        s.lines().filter(|l| !l.contains("\"wall_")).map(String::from).collect::<Vec<_>>()
    };
    assert_eq!(strip(&a), strip(&b), "non-wall_ lines diverged between seeded runs");
    assert_ne!(a.find("\"wall_"), None, "report should carry wall_ fields at all");
}

#[test]
fn civil_date_stamps_known_calendar_days() {
    assert_eq!(harness::civil_date(0), "1970-01-01");
    assert_eq!(harness::civil_date(86_399), "1970-01-01");
    assert_eq!(harness::civil_date(86_400), "1970-01-02");
    // 2000-02-29 00:00:00 UTC — a century leap day.
    assert_eq!(harness::civil_date(951_782_400), "2000-02-29");
    // 2026-01-01 00:00:00 UTC.
    assert_eq!(harness::civil_date(1_767_225_600), "2026-01-01");
}
