//! Criterion benchmarks and the reproduce binary (see `src/bin/reproduce.rs`).
//!
//! This crate has no library API; everything lives in the binary and
//! the `benches/` targets.

