//! Criterion benchmarks, the perf-baseline harness, and the reproduce
//! binary (see `src/bin/reproduce.rs`).
//!
//! [`harness`] is the library behind `reproduce bench`: seeded,
//! deterministic workloads through the real pipeline layers, timed
//! through the [`fadewich_telemetry::Clock`] seam and reported as a
//! stdout table plus a machine-readable `BENCH_<date>.json`.

pub mod harness;
