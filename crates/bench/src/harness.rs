//! The perf-baseline harness behind `reproduce bench`.
//!
//! Each workload drives a **real** pipeline layer — wire decode,
//! `MovementDetector` stepping, OvO SVM prediction, KDE threshold
//! fitting, the full `StreamingEngine` — on inputs derived from a
//! fixed seed, measures it through the [`Clock`] seam (so tests can
//! substitute a [`fadewich_telemetry::ManualClock`] and get exact,
//! deterministic medians), and reports median-of-k per-unit times.
//!
//! The JSON report follows one hard rule: every field whose value
//! depends on wall time carries a `wall_` prefix, and everything else
//! is **byte-identical across runs of the same seed**. The CI smoke
//! gate compares two runs with all `"wall_` lines filtered out; the
//! hot-path rows additionally carry checksums proving the fast and
//! reference paths computed the same answers.

use std::sync::Arc;

use fadewich_core::auth::KeyTable;
use fadewich_core::config::FadewichParams;
use fadewich_core::controller::Controller;
use fadewich_core::features::{extract_features, TrainingSample};
use fadewich_core::kma::Kma;
use fadewich_core::md::{MdVerdict, MovementDetector};
use fadewich_core::re::RadioEnvironment;
use fadewich_fleet::FleetRuntime;
use fadewich_officesim::{DayTrace, InputTrace};
use fadewich_runtime::engine::EngineConfig;
use fadewich_runtime::{Frame, StreamingEngine};
use fadewich_stats::kde::GaussianKde;
use fadewich_stats::rng::Rng;
use fadewich_telemetry::Clock;
use fadewich_testkit::bench::{alloc_counts, black_box};

/// Schema tag of the emitted JSON; bump on incompatible layout change.
pub const SCHEMA: &str = "fadewich-bench-v1";

/// Knobs of one harness run. All counts must be nonzero; see
/// [`BenchConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchConfig {
    /// Seed every workload derives its inputs from.
    pub seed: u64,
    /// Untimed iterations before sampling starts (warms caches,
    /// allocator pools, and the MD profile).
    pub warmup_iters: u64,
    /// Timed iterations per sample.
    pub iters: u64,
    /// Samples per workload; the report carries the median.
    pub samples: u64,
    /// Ticks per engine-throughput iteration.
    pub engine_ticks: u64,
    /// Ticks per MD-step iteration.
    pub md_ticks: u64,
    /// Frames per wire-decode iteration.
    pub n_frames: u64,
    /// Feature rows per SVM-prediction iteration.
    pub svm_rows: u64,
    /// Samples per KDE threshold fit.
    pub kde_points: u64,
    /// Ticks the allocation probe steps one by one.
    pub alloc_ticks: u64,
    /// Marks the report as a reduced-size smoke run.
    pub smoke: bool,
}

impl BenchConfig {
    /// The full baseline configuration.
    pub fn standard(seed: u64) -> BenchConfig {
        BenchConfig {
            seed,
            warmup_iters: 2,
            iters: 3,
            samples: 5,
            engine_ticks: 2_000,
            md_ticks: 4_000,
            n_frames: 4_096,
            svm_rows: 512,
            kde_points: 1_500,
            alloc_ticks: 300,
            smoke: false,
        }
    }

    /// Tiny iteration counts for the CI smoke gate: same code paths,
    /// seconds of wall time.
    pub fn smoke(seed: u64) -> BenchConfig {
        BenchConfig {
            seed,
            warmup_iters: 1,
            iters: 1,
            samples: 2,
            engine_ticks: 150,
            md_ticks: 400,
            n_frames: 256,
            svm_rows: 64,
            kde_points: 300,
            alloc_ticks: 120,
            smoke: true,
        }
    }

    /// Rejects degenerate configurations instead of emitting garbage
    /// (zero iterations would divide by zero; zero workload sizes
    /// would report medians of nothing).
    ///
    /// # Errors
    ///
    /// Names the first offending knob.
    pub fn validate(&self) -> Result<(), String> {
        let checks = [
            ("iters", self.iters),
            ("samples", self.samples),
            ("engine_ticks", self.engine_ticks),
            ("md_ticks", self.md_ticks),
            ("n_frames", self.n_frames),
            ("svm_rows", self.svm_rows),
            ("kde_points", self.kde_points),
            ("alloc_ticks", self.alloc_ticks),
        ];
        for (name, v) in checks {
            if v == 0 {
                return Err(format!("bench config: {name} must be nonzero"));
            }
        }
        if self.kde_points < 2 {
            return Err("bench config: kde_points must be at least 2".to_string());
        }
        Ok(())
    }
}

/// Median-of-samples timing of one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Timed samples taken.
    pub samples: u64,
    /// Iterations per sample.
    pub iters: u64,
    /// Work units (ticks, frames, rows…) per iteration.
    pub units_per_iter: u64,
    /// Median per-unit time across samples, in nanoseconds.
    pub wall_median_ns_per_unit: f64,
    /// Total time spent in timed iterations, in nanoseconds.
    pub wall_total_ns: u64,
}

/// Runs `f` `warmup` times untimed, then `samples` times `iters`
/// timed calls, and reports the median per-unit nanoseconds. All
/// timing flows through `clock`, so a manual clock produces exact,
/// reproducible measurements.
///
/// # Errors
///
/// Rejects zero `iters`, `samples`, or `units_per_iter`.
pub fn measure(
    clock: &dyn Clock,
    warmup: u64,
    iters: u64,
    samples: u64,
    units_per_iter: u64,
    mut f: impl FnMut(),
) -> Result<Measurement, String> {
    if iters == 0 || samples == 0 || units_per_iter == 0 {
        return Err("measure: iters, samples and units_per_iter must be nonzero".to_string());
    }
    for _ in 0..warmup {
        f();
    }
    let mut per_unit = Vec::with_capacity(samples as usize);
    let mut total_ns = 0u64;
    for _ in 0..samples {
        let t0 = clock.now_ns();
        for _ in 0..iters {
            f();
        }
        let dt = clock.now_ns().saturating_sub(t0);
        total_ns += dt;
        per_unit.push(dt as f64 / (iters * units_per_iter) as f64);
    }
    per_unit.sort_by(f64::total_cmp);
    Ok(Measurement {
        samples,
        iters,
        units_per_iter,
        wall_median_ns_per_unit: per_unit[per_unit.len() / 2],
        wall_total_ns: total_ns,
    })
}

/// One field of a bench row. Fields whose name starts with `wall_`
/// are wall-time-dependent and excluded from determinism comparisons.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An exact integer.
    U64(u64),
    /// A float, rendered with six decimals (`0.0` when non-finite).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A short identifier-like string.
    Str(String),
}

/// One workload's results.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Stable row name (`wire_decode`, `md_step_fast`, …).
    pub name: String,
    /// Fields in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

impl BenchRow {
    fn new(name: &str) -> BenchRow {
        BenchRow { name: name.to_string(), fields: Vec::new() }
    }

    fn push(&mut self, key: &str, value: FieldValue) {
        self.fields.push((key.to_string(), value));
    }

    fn push_measurement(&mut self, m: &Measurement) {
        self.push("samples", FieldValue::U64(m.samples));
        self.push("iters", FieldValue::U64(m.iters));
        self.push("units_per_iter", FieldValue::U64(m.units_per_iter));
        self.push("wall_median_ns_per_unit", FieldValue::F64(m.wall_median_ns_per_unit));
        self.push("wall_total_ns", FieldValue::U64(m.wall_total_ns));
    }

    /// Looks a field up by name.
    pub fn get(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// The complete report of one harness run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Seed the workloads were derived from.
    pub seed: u64,
    /// Whether this was a reduced smoke run.
    pub smoke: bool,
    /// One row per workload, in a fixed order.
    pub rows: Vec<BenchRow>,
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() { format!("{v:.6}") } else { "0.000000".to_string() }
}

impl BenchReport {
    /// Renders the machine-readable JSON: one `"key": value` per
    /// line, `wall_`-prefixed keys carrying everything wall-time
    /// dependent, parseable by [`fadewich_telemetry::json::parse`].
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("\"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("\"seed\": {},\n", self.seed));
        out.push_str(&format!("\"smoke\": {},\n", self.smoke));
        out.push_str("\"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("{\n");
            out.push_str(&format!("\"name\": \"{}\"", row.name));
            for (key, value) in &row.fields {
                out.push_str(",\n");
                let rendered = match value {
                    FieldValue::U64(v) => v.to_string(),
                    FieldValue::F64(v) => fmt_f64(*v),
                    FieldValue::Bool(v) => v.to_string(),
                    FieldValue::Str(v) => format!("\"{v}\""),
                };
                out.push_str(&format!("\"{key}\": {rendered}"));
            }
            out.push_str("\n}");
            out.push_str(if i + 1 == self.rows.len() { "\n" } else { ",\n" });
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders the human-readable stdout table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "FADEWICH perf baseline (seed {:#x}{})\n",
            self.seed,
            if self.smoke { ", smoke" } else { "" }
        ));
        out.push_str(&format!("{:<24} {:<28} {:>18}\n", "workload", "metric", "value"));
        out.push_str(&format!("{:-<24} {:-<28} {:->18}\n", "", "", ""));
        for row in &self.rows {
            for (key, value) in &row.fields {
                let rendered = match value {
                    FieldValue::U64(v) => v.to_string(),
                    FieldValue::F64(v) => fmt_f64(*v),
                    FieldValue::Bool(v) => v.to_string(),
                    FieldValue::Str(v) => v.clone(),
                };
                out.push_str(&format!("{:<24} {:<28} {:>18}\n", row.name, key, rendered));
            }
        }
        out
    }

    /// Looks a row up by name.
    pub fn row(&self, name: &str) -> Option<&BenchRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

const N_STREAMS: usize = 4;
const TICK_HZ: f64 = 5.0;

fn bench_params() -> FadewichParams {
    FadewichParams { profile_init_s: 30.0, ..Default::default() }
}

/// A small classifier trained through the real feature/SMO layers on
/// seeded synthetic windows (quiet vs burst), exactly like the
/// runtime fixtures.
fn trained_re(seed: u64) -> RadioEnvironment {
    let mut rng = Rng::seed_from_u64(seed ^ 0x7E);
    let params = FadewichParams::default();
    let mut samples = Vec::new();
    for i in 0..24 {
        let sd = if i % 2 == 1 { 4.0 } else { 0.6 };
        let mut day = DayTrace::with_capacity(N_STREAMS, 30);
        for _ in 0..30 {
            let row: Vec<f64> = (0..N_STREAMS).map(|_| -50.0 + rng.normal() * sd).collect();
            day.push_row(&row);
        }
        let streams: Vec<usize> = (0..N_STREAMS).collect();
        let features = extract_features(&day, &streams, 0, TICK_HZ, &params);
        samples.push(TrainingSample { features, label: i % 2 });
    }
    RadioEnvironment::train(&samples, None, &mut rng).expect("seeded training set is valid")
}

/// Quiet RSSI rows (flattened tick-major) with a short burst in the
/// middle so MD opens at least one variation window.
fn seeded_rows(seed: u64, n_ticks: u64) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed ^ 0x505);
    let burst = (n_ticks / 2)..(n_ticks / 2 + 25);
    let mut rows = Vec::with_capacity(n_ticks as usize * N_STREAMS);
    for tick in 0..n_ticks {
        let sd = if burst.contains(&tick) { 4.0 } else { 0.6 };
        for _ in 0..N_STREAMS {
            rows.push(-50.0 + rng.normal() * sd);
        }
    }
    rows
}

/// A typing schedule long enough to cover `n_ticks` at [`TICK_HZ`].
fn busy_inputs(n_ticks: u64) -> InputTrace {
    let day_s = n_ticks as f64 / TICK_HZ + 120.0;
    let busy: Vec<f64> = (0..day_s as usize).step_by(3).map(|s| s as f64).collect();
    InputTrace::from_times(vec![busy.clone(), busy])
}

fn wire_decode_row(cfg: &BenchConfig, clock: &dyn Clock) -> Result<BenchRow, String> {
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xDEC);
    let mut bytes = Vec::new();
    for i in 0..cfg.n_frames {
        let frame = Frame::rssi(
            (i % 4) as u16,
            i as u32,
            i / 4,
            (0..2).map(|_| (-60.0 + 20.0 * rng.f64()) as f32).collect(),
        );
        bytes.extend_from_slice(&frame.encode());
    }
    let mut decoded = 0u64;
    let m = measure(clock, cfg.warmup_iters, cfg.iters, cfg.samples, cfg.n_frames, || {
        let mut rest: &[u8] = &bytes;
        decoded = 0;
        while !rest.is_empty() {
            let (frame, used) = Frame::decode(rest).expect("pre-encoded frames decode");
            black_box(&frame);
            rest = &rest[used..];
            decoded += 1;
        }
    })?;
    let mut row = BenchRow::new("wire_decode");
    row.push("frames", FieldValue::U64(cfg.n_frames));
    row.push("bytes", FieldValue::U64(bytes.len() as u64));
    row.push("frames_decoded", FieldValue::U64(decoded));
    row.push_measurement(&m);
    Ok(row)
}

/// Digest over a frame's header fields — proves the borrowed and
/// owned decode paths read the same frames without storing them.
fn header_digest(digest: &mut u64, office: u16, sensor: u16, seq: u32, tick: u64) {
    *digest = digest
        .wrapping_mul(0x100000001b3)
        .wrapping_add(u64::from(office))
        .wrapping_add(u64::from(sensor) << 16)
        .wrapping_add(u64::from(seq) << 32)
        .wrapping_add(tick);
}

fn wire_decode_borrowed_row(cfg: &BenchConfig, clock: &dyn Clock) -> Result<BenchRow, String> {
    // Same seeded frame stream as `wire_decode`, but with non-zero
    // office ids so the v2 header (the fleet demux path) is what gets
    // measured.
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xDEC);
    let mut bytes = Vec::new();
    let mut owned_digest = 0u64;
    for i in 0..cfg.n_frames {
        let frame = Frame {
            office: (i % 7) as u16 + 1,
            ..Frame::rssi(
                (i % 4) as u16,
                i as u32,
                i / 4,
                (0..2).map(|_| (-60.0 + 20.0 * rng.f64()) as f32).collect(),
            )
        };
        bytes.extend_from_slice(&frame.encode());
    }
    // Reference pass through the owned decoder.
    {
        let mut rest: &[u8] = &bytes;
        while !rest.is_empty() {
            let (frame, used) = Frame::decode(rest).map_err(|e| format!("bench wire: {e}"))?;
            header_digest(&mut owned_digest, frame.office, frame.sensor, frame.seq, frame.tick);
            rest = &rest[used..];
        }
    }
    let mut decoded = 0u64;
    let mut digest = 0u64;
    let m = measure(clock, cfg.warmup_iters, cfg.iters, cfg.samples, cfg.n_frames, || {
        let mut rest: &[u8] = &bytes;
        decoded = 0;
        digest = 0;
        while !rest.is_empty() {
            let (view, used) =
                Frame::decode_borrowed(rest).expect("pre-encoded frames decode");
            header_digest(&mut digest, view.office, view.sensor, view.seq, view.tick);
            black_box(&view);
            rest = &rest[used..];
            decoded += 1;
        }
    })?;
    if digest != owned_digest {
        return Err(format!(
            "borrowed decode diverged from owned decode: digest {digest:#x} vs {owned_digest:#x}"
        ));
    }
    let mut row = BenchRow::new("wire_decode_borrowed");
    row.push("frames", FieldValue::U64(cfg.n_frames));
    row.push("bytes", FieldValue::U64(bytes.len() as u64));
    row.push("frames_decoded", FieldValue::U64(decoded));
    row.push("matches_owned", FieldValue::Bool(digest == owned_digest));
    row.push_measurement(&m);
    Ok(row)
}

/// Authenticated ingest's marginal cost: decode + SipHash-2-4 MAC
/// verification of pre-encoded v4 frames against the per-sensor key
/// table — the work `StreamingEngine::set_auth` adds per frame at the
/// untrusted boundary.
fn mac_verify_row(cfg: &BenchConfig, clock: &dyn Clock) -> Result<BenchRow, String> {
    let keys = KeyTable::derive(cfg.seed ^ 0x3AC, N_STREAMS as u16);
    // Same seeded frame stream as `wire_decode`, signed.
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xDEC);
    let mut bytes = Vec::new();
    for i in 0..cfg.n_frames {
        let sensor = (i % 4) as u16;
        let frame = Frame::rssi(
            sensor,
            i as u32,
            i / 4,
            (0..2).map(|_| (-60.0 + 20.0 * rng.f64()) as f32).collect(),
        );
        let key = keys.get(sensor).expect("derived table covers the bench sensors");
        bytes.extend_from_slice(&frame.encode_auth(key));
    }
    let mut verified = 0u64;
    let m = measure(clock, cfg.warmup_iters, cfg.iters, cfg.samples, cfg.n_frames, || {
        let mut rest: &[u8] = &bytes;
        verified = 0;
        while !rest.is_empty() {
            let (view, used) =
                Frame::decode_borrowed(rest).expect("pre-encoded frames decode");
            let key = keys.get(view.sensor).expect("key present for every sensor");
            if view.verify_mac(key) {
                verified += 1;
            }
            black_box(&view);
            rest = &rest[used..];
        }
    })?;
    if verified != cfg.n_frames {
        return Err(format!(
            "mac verify: only {verified}/{} genuine frames verified",
            cfg.n_frames
        ));
    }
    let mut row = BenchRow::new("mac_verify");
    row.push("frames", FieldValue::U64(cfg.n_frames));
    row.push("bytes", FieldValue::U64(bytes.len() as u64));
    row.push("frames_verified", FieldValue::U64(verified));
    row.push_measurement(&m);
    Ok(row)
}

/// Digest of a verdict stream: enough to prove two MD runs made the
/// same decisions without storing them.
fn verdict_digest(digest: &mut u64, v: &MdVerdict) {
    *digest = digest
        .wrapping_mul(0x100000001b3)
        .wrapping_add(v.st.to_bits())
        .wrapping_add(u64::from(v.anomalous));
}

fn md_rows(cfg: &BenchConfig, clock: &dyn Clock) -> Result<Vec<BenchRow>, String> {
    let rows_flat = seeded_rows(cfg.seed, cfg.md_ticks);
    let mut results = Vec::new();
    let mut medians = [0.0f64; 2];
    let mut digests = [0u64; 2];
    for (slot, reference) in [(0usize, true), (1usize, false)] {
        let mut md = MovementDetector::new(N_STREAMS, TICK_HZ, bench_params())
            .map_err(|e| format!("bench md: {e}"))?;
        md.set_reference_paths(reference);
        let mut tick = 0usize;
        let mut digest = 0u64;
        let mut out: Vec<MdVerdict> = Vec::new();
        let m = measure(clock, cfg.warmup_iters, cfg.iters, cfg.samples, cfg.md_ticks, || {
            if reference {
                for row in rows_flat.chunks_exact(N_STREAMS) {
                    let v = md.step(tick, row);
                    verdict_digest(&mut digest, &v);
                    tick += 1;
                }
            } else {
                out.clear();
                md.step_batch(tick, &rows_flat, &mut out);
                tick += cfg.md_ticks as usize;
                for v in &out {
                    verdict_digest(&mut digest, v);
                }
            }
        })?;
        medians[slot] = m.wall_median_ns_per_unit;
        digests[slot] = digest;
        let mut row =
            BenchRow::new(if reference { "md_step_reference" } else { "md_step_fast" });
        row.push("ticks", FieldValue::U64(cfg.md_ticks));
        row.push("verdict_digest", FieldValue::U64(digest));
        if !reference {
            row.push("matches_reference", FieldValue::Bool(digest == digests[0]));
            row.push(
                "wall_speedup_vs_reference",
                FieldValue::F64(if medians[1] > 0.0 { medians[0] / medians[1] } else { 0.0 }),
            );
        }
        row.push_measurement(&m);
        results.push(row);
    }
    if digests[0] != digests[1] {
        return Err(format!(
            "md fast path diverged from reference: digest {:#x} vs {:#x}",
            digests[1], digests[0]
        ));
    }
    Ok(results)
}

fn svm_rows_bench(cfg: &BenchConfig, clock: &dyn Clock) -> Result<Vec<BenchRow>, String> {
    let re = trained_re(cfg.seed);
    let svm = re.svm();
    let dim = N_STREAMS * fadewich_core::features::FEATURES_PER_STREAM;
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0x5F);
    let batch: Vec<Vec<f64>> = (0..cfg.svm_rows)
        .map(|_| (0..dim).map(|_| rng.normal() * 3.0).collect())
        .collect();
    let mut results = Vec::new();
    let mut medians = [0.0f64; 2];
    let mut sums = [0u64; 2];
    for (slot, batched) in [(0usize, false), (1usize, true)] {
        let mut label_sum = 0u64;
        let m = measure(clock, cfg.warmup_iters, cfg.iters, cfg.samples, cfg.svm_rows, || {
            label_sum = if batched {
                svm.predict_batch(&batch).iter().map(|&l| l as u64).sum()
            } else {
                batch.iter().map(|x| svm.predict(x) as u64).sum()
            };
            black_box(label_sum);
        })?;
        medians[slot] = m.wall_median_ns_per_unit;
        sums[slot] = label_sum;
        let mut row =
            BenchRow::new(if batched { "svm_predict_batch" } else { "svm_predict_scalar" });
        row.push("rows", FieldValue::U64(cfg.svm_rows));
        row.push("feature_dim", FieldValue::U64(dim as u64));
        row.push("label_sum", FieldValue::U64(label_sum));
        if batched {
            row.push("matches_reference", FieldValue::Bool(label_sum == sums[0]));
            row.push(
                "wall_speedup_vs_reference",
                FieldValue::F64(if medians[1] > 0.0 { medians[0] / medians[1] } else { 0.0 }),
            );
        }
        row.push_measurement(&m);
        results.push(row);
    }
    if sums[0] != sums[1] {
        return Err(format!(
            "svm batched path diverged from scalar: label sum {} vs {}",
            sums[1], sums[0]
        ));
    }
    Ok(results)
}

fn kde_fit_row(cfg: &BenchConfig, clock: &dyn Clock) -> Result<BenchRow, String> {
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xEDE);
    let points: Vec<f64> = (0..cfg.kde_points).map(|_| 2.0 + rng.normal() * 0.5).collect();
    let mut threshold = 0.0f64;
    let m = measure(clock, cfg.warmup_iters, cfg.iters, cfg.samples, 1, || {
        let kde = GaussianKde::fit(&points).expect("seeded KDE input is valid");
        threshold = kde.quantile(0.99);
        black_box(threshold);
    })?;
    let mut row = BenchRow::new("kde_fit");
    row.push("points", FieldValue::U64(cfg.kde_points));
    row.push("threshold", FieldValue::F64(threshold));
    row.push_measurement(&m);
    Ok(row)
}

fn engine_row(cfg: &BenchConfig, clock: &dyn Clock) -> Result<BenchRow, String> {
    let re = trained_re(cfg.seed);
    let inputs = busy_inputs(cfg.engine_ticks);
    let groups: Vec<(u16, Vec<usize>)> = vec![(0, vec![0, 1]), (1, vec![2, 3])];
    let engine_cfg = EngineConfig::new(TICK_HZ, bench_params());
    // Pre-encode the whole day's frames so only ingest+step is timed.
    let rows_flat = seeded_rows(cfg.seed ^ 0xE6, cfg.engine_ticks);
    let mut bytes = Vec::new();
    for tick in 0..cfg.engine_ticks {
        let row = &rows_flat[tick as usize * N_STREAMS..(tick as usize + 1) * N_STREAMS];
        for (sensor, positions) in &groups {
            let frame = Frame::rssi(
                *sensor,
                tick as u32,
                tick,
                positions.iter().map(|&p| row[p] as f32).collect(),
            );
            bytes.extend_from_slice(&frame.encode());
        }
    }
    let mut actions_total = 0u64;
    let mut frames_in = 0u64;
    let m = measure(clock, cfg.warmup_iters, cfg.iters, cfg.samples, cfg.engine_ticks, || {
        let kma = Kma::new(&inputs);
        let mut engine = StreamingEngine::new(engine_cfg, groups.clone(), &re, kma)
            .expect("bench engine layout is valid");
        engine.ingest_bytes(&bytes);
        engine.finish(cfg.engine_ticks);
        actions_total = engine.actions().len() as u64;
        frames_in = engine.counters().frames_in;
    })?;
    let mut row = BenchRow::new("engine");
    row.push("ticks", FieldValue::U64(cfg.engine_ticks));
    row.push("frames_in", FieldValue::U64(frames_in));
    row.push("actions_total", FieldValue::U64(actions_total));
    row.push_measurement(&m);
    row.push(
        "wall_ticks_per_sec",
        FieldValue::F64(if m.wall_median_ns_per_unit > 0.0 {
            1e9 / m.wall_median_ns_per_unit
        } else {
            0.0
        }),
    );
    Ok(row)
}

/// Streams the `engine` workload through a small fleet — every office
/// is the same seeded tenant behind the demux front — and requires
/// each office to produce exactly the standalone engine's actions.
fn fleet_demux_row(cfg: &BenchConfig, clock: &dyn Clock) -> Result<BenchRow, String> {
    const OFFICES: usize = 8;
    const SHARDS: usize = 4;
    let re = trained_re(cfg.seed);
    let inputs = busy_inputs(cfg.engine_ticks);
    let groups: Vec<(u16, Vec<usize>)> = vec![(0, vec![0, 1]), (1, vec![2, 3])];
    let engine_cfg = EngineConfig::new(TICK_HZ, bench_params());
    // One merged blob: each tick's frames for all offices, interleaved
    // the way a shared ingestion front would see them.
    let rows_flat = seeded_rows(cfg.seed ^ 0xE6, cfg.engine_ticks);
    let mut bytes = Vec::new();
    for tick in 0..cfg.engine_ticks {
        let row = &rows_flat[tick as usize * N_STREAMS..(tick as usize + 1) * N_STREAMS];
        for office in 0..OFFICES as u16 {
            for (sensor, positions) in &groups {
                let frame = Frame {
                    office,
                    ..Frame::rssi(
                        *sensor,
                        tick as u32,
                        tick,
                        positions.iter().map(|&p| row[p] as f32).collect(),
                    )
                };
                bytes.extend_from_slice(&frame.encode());
            }
        }
    }
    // Standalone reference: the same tenant outside the fleet.
    let reference_actions = {
        let kma = Kma::new(&inputs);
        let mut engine = StreamingEngine::new(engine_cfg, groups.clone(), &re, kma)
            .expect("bench engine layout is valid");
        let mut single = Vec::new();
        for tick in 0..cfg.engine_ticks {
            let row = &rows_flat[tick as usize * N_STREAMS..(tick as usize + 1) * N_STREAMS];
            for (sensor, positions) in &groups {
                let frame = Frame::rssi(
                    *sensor,
                    tick as u32,
                    tick,
                    positions.iter().map(|&p| row[p] as f32).collect(),
                );
                single.extend_from_slice(&frame.encode());
            }
        }
        engine.ingest_bytes(&single);
        engine.finish(cfg.engine_ticks);
        engine.actions().len() as u64
    };
    let mut demuxed = 0u64;
    let mut matches = true;
    let m = measure(
        clock,
        cfg.warmup_iters,
        cfg.iters,
        cfg.samples,
        cfg.engine_ticks * OFFICES as u64,
        || {
            let engines: Vec<StreamingEngine> = (0..OFFICES)
                .map(|_| {
                    StreamingEngine::new(engine_cfg, groups.clone(), &re, Kma::new(&inputs))
                        .expect("bench engine layout is valid")
                })
                .collect();
            let mut fleet =
                FleetRuntime::new(SHARDS, engines).expect("bench fleet layout is valid");
            fleet.ingest(&bytes);
            fleet.advance();
            fleet.finish_day(cfg.engine_ticks);
            demuxed = fleet.counters().frames_demuxed;
            matches = true;
            fleet.for_each_office(|_, engine| {
                matches &= engine.actions().len() as u64 == reference_actions;
            });
        },
    )?;
    if !matches {
        return Err(
            "fleet demux diverged: an office's actions differ from the standalone engine"
                .to_string(),
        );
    }
    let mut row = BenchRow::new("fleet_demux");
    row.push("offices", FieldValue::U64(OFFICES as u64));
    row.push("shards", FieldValue::U64(SHARDS as u64));
    row.push("ticks_per_office", FieldValue::U64(cfg.engine_ticks));
    row.push("frames_demuxed", FieldValue::U64(demuxed));
    row.push("matches_single_office", FieldValue::Bool(matches));
    row.push_measurement(&m);
    // One unit is one office-tick: the aggregate rate divided by the
    // office count is what a single tenant experiences.
    let aggregate =
        if m.wall_median_ns_per_unit > 0.0 { 1e9 / m.wall_median_ns_per_unit } else { 0.0 };
    row.push("wall_office_ticks_per_sec", FieldValue::F64(aggregate));
    row.push(
        "wall_ticks_per_sec_per_office",
        FieldValue::F64(aggregate / OFFICES as f64),
    );
    Ok(row)
}

/// Steps a warmed-up quiet controller one tick at a time and counts
/// allocator traffic per tick. With the counting allocator registered
/// (the `reproduce` binary does), steady-state quiet ticks are
/// allocation-free except at MD batch-flush boundaries; without it
/// the row reports `counting_active = false` and zeros.
fn alloc_row(cfg: &BenchConfig) -> Result<BenchRow, String> {
    // Probe whether the counting allocator is the global allocator.
    let before = alloc_counts();
    black_box(Box::new(0x5EEDu64));
    let counting_active = alloc_counts().since(before).calls > 0;

    let re = trained_re(cfg.seed);
    let inputs = busy_inputs(cfg.alloc_ticks + 1_000);
    let kma = Kma::new(&inputs);
    let mut ctl = Controller::new(N_STREAMS, TICK_HZ, bench_params(), &re, kma)
        .map_err(|e| format!("bench controller: {e}"))?;
    // Quiet rows only: the probe measures the steady-state tick loop.
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xA110C);
    let warm_ticks = 600usize;
    let total = warm_ticks + cfg.alloc_ticks as usize;
    let rows: Vec<f64> =
        (0..total * N_STREAMS).map(|_| -50.0 + rng.normal() * 0.6).collect();
    for tick in 0..warm_ticks {
        ctl.step(tick, &rows[tick * N_STREAMS..(tick + 1) * N_STREAMS]);
    }
    let mut zero_ticks = 0u64;
    let before = alloc_counts();
    for tick in warm_ticks..total {
        let t0 = alloc_counts();
        ctl.step(tick, &rows[tick * N_STREAMS..(tick + 1) * N_STREAMS]);
        if alloc_counts().since(t0).calls == 0 {
            zero_ticks += 1;
        }
    }
    let delta = alloc_counts().since(before);
    let mut row = BenchRow::new("controller_tick_allocs");
    row.push("counting_active", FieldValue::Bool(counting_active));
    row.push("ticks", FieldValue::U64(cfg.alloc_ticks));
    row.push("zero_alloc_ticks", FieldValue::U64(zero_ticks));
    row.push("alloc_calls", FieldValue::U64(delta.calls));
    row.push("alloc_bytes", FieldValue::U64(delta.bytes));
    row.push(
        "alloc_calls_per_tick",
        FieldValue::F64(delta.calls as f64 / cfg.alloc_ticks as f64),
    );
    Ok(row)
}

/// Runs every workload and assembles the report. Purely seed- and
/// clock-driven: a manual clock yields a fully deterministic report,
/// a wall clock yields deterministic non-`wall_` fields.
///
/// # Errors
///
/// Invalid configs, workload construction failures, and any fast-path
/// divergence from the reference arithmetic.
pub fn run(cfg: &BenchConfig, clock: &Arc<dyn Clock>) -> Result<BenchReport, String> {
    cfg.validate()?;
    let clock = clock.as_ref();
    let mut rows = Vec::new();
    rows.push(engine_row(cfg, clock)?);
    rows.push(wire_decode_row(cfg, clock)?);
    rows.push(wire_decode_borrowed_row(cfg, clock)?);
    rows.push(mac_verify_row(cfg, clock)?);
    rows.extend(md_rows(cfg, clock)?);
    rows.extend(svm_rows_bench(cfg, clock)?);
    rows.push(kde_fit_row(cfg, clock)?);
    rows.push(fleet_demux_row(cfg, clock)?);
    rows.push(alloc_row(cfg)?);
    Ok(BenchReport { seed: cfg.seed, smoke: cfg.smoke, rows })
}

/// `YYYY-MM-DD` from a Unix timestamp (proleptic Gregorian, UTC) —
/// enough calendar math to stamp the report filename without a date
/// dependency.
pub fn civil_date(unix_secs: u64) -> String {
    let days = unix_secs / 86_400;
    // Howard Hinnant's civil-from-days algorithm.
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
