//! Regenerates every table and figure of the FADEWICH paper.
//!
//! ```text
//! reproduce [--quick] [--seed N] [--csv DIR] [targets...]
//! ```
//!
//! Targets: `table2 table3 table4 table5 fig2 fig7 fig8 fig9 fig10
//! fig11 fig12 fig13 ablations deployment streaming recovery
//! artifact telemetry csi baseline offices` (default: all).
//! `--quick` runs a 1-day scenario instead of the paper's 5 days.
//!
//! The `bench` target is explicit-only (never part of the default
//! set): `reproduce bench` runs the perf-baseline harness on seeded
//! workloads, prints the measurement table, and writes
//! `BENCH_<date>.json` (override the path with `--bench-out`;
//! `--bench-smoke` shrinks every workload to CI-smoke size). All
//! non-`wall_` JSON fields are byte-identical across runs of one
//! seed. Bench runs serially on the main thread, and a bench-only
//! invocation skips scenario generation entirely.
//!
//! The `fleet` target is likewise explicit-only: `reproduce fleet
//! [--offices N]` runs the fleet-runtime scaling study (default 1024
//! tenants), proving every row's per-office decision streams
//! byte-identical across shard counts and against single-office
//! references. Its table is deterministic; wall-clock throughput goes
//! on `wall_`-prefixed lines CI strips before comparing runs. A
//! fleet-only invocation also skips scenario generation.
//!
//! The `fusion` target is also explicit-only: `reproduce fusion` runs
//! the RSSI/light ablation on its own light-enabled scenario (one
//! photosensor per workstation, deliberately unequal mounting), scoring
//! deauth latency and FP/FN across the rssi-only / light-only / fused
//! decision modes. Its table is fully seed-deterministic; CI diffs two
//! runs. A fusion-only invocation skips scenario generation too.
//!
//! The `attacks` target is explicit-only as well: `reproduce attacks`
//! runs the adversarial robustness suite — the §V-C jamming
//! conditions on a small scenario, then the containment study (every
//! seeded attacker family spliced into an authenticated day stream,
//! scored on detection rate, time-to-quarantine, and decision-stream
//! divergence, which containment pins at zero). Both tables are
//! seed-deterministic; CI diffs two `--quick` runs. An attacks-only
//! invocation skips the shared scenario and sweep.
//!
//! The `profile` target is explicit-only too: `reproduce profile`
//! replays the online days of its own multi-day scenario with the
//! audit trail enabled and folds the tick-stamped spans into
//! per-stage self/total-time tables plus flamegraph collapsed stacks.
//! Everything in the report is logical-tick arithmetic, so it is
//! byte-identical across same-seed runs — CI `cmp`s two of them.
//! Like `deployment` and `streaming`, the `recovery`, `artifact` and
//! `telemetry` targets need a >= 2-day trace (they train on the
//! leading days, then crash/resume the stream, export the model
//! bundle, or replay with the decision audit trail enabled).
//!
//! The selected targets run as independent jobs on the
//! [`par`](fadewich_experiments::par) worker pool (`FADEWICH_THREADS`
//! overrides the pool size). Every job draws randomness only from
//! seeds fixed at build time, and all stdout is emitted on the main
//! thread in a fixed job order — so the report is **byte-identical
//! for every thread count**. Progress and per-stage wall-clock
//! timings go to stderr.

use std::collections::HashSet;

use fadewich_bench::harness;
use fadewich_experiments::experiment::{Experiment, SensorRun, SENSOR_COUNTS};
use fadewich_experiments::par::{self, timing};
use fadewich_experiments::report::{render_series, TextTable};
use fadewich_experiments::{ablations, figures, tables};

// The bench target's allocations-per-tick row needs allocator
// counters; the counting allocator delegates to the system allocator
// with two relaxed atomic adds, so the paper-reproduction targets are
// unaffected.
#[global_allocator]
static ALLOC: fadewich_testkit::bench::CountingAllocator =
    fadewich_testkit::bench::CountingAllocator;

struct Options {
    quick: bool,
    seed: u64,
    csv_dir: Option<String>,
    bench_smoke: bool,
    bench_out: Option<String>,
    offices: usize,
    targets: HashSet<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        quick: false,
        seed: 0xFADE,
        csv_dir: None,
        bench_smoke: false,
        bench_out: None,
        offices: 1024,
        targets: HashSet::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs a number");
            }
            "--csv" => {
                opts.csv_dir = Some(args.next().expect("--csv needs a directory"));
            }
            "--bench-smoke" => opts.bench_smoke = true,
            "--offices" => {
                opts.offices = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--offices needs a number");
            }
            "--bench-out" => {
                opts.bench_out = Some(args.next().expect("--bench-out needs a path"));
            }
            other => {
                opts.targets.insert(other.to_string());
            }
        }
    }
    opts
}

/// Runs the perf-baseline harness: stdout table + `BENCH_<date>.json`.
fn run_bench(opts: &Options) {
    let cfg = if opts.bench_smoke {
        harness::BenchConfig::smoke(opts.seed)
    } else {
        harness::BenchConfig::standard(opts.seed)
    };
    eprintln!(
        "bench: {} workloads (seed {:#x})...",
        if opts.bench_smoke { "smoke-size" } else { "full-size" },
        opts.seed
    );
    let clock: std::sync::Arc<dyn fadewich_telemetry::Clock> =
        std::sync::Arc::new(fadewich_telemetry::WallClock);
    let report = harness::run(&cfg, &clock).expect("bench harness");
    print!("{}", report.table());
    let path = opts.bench_out.clone().unwrap_or_else(|| {
        let unix_secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        format!("BENCH_{}.json", harness::civil_date(unix_secs))
    });
    std::fs::write(&path, report.to_json())
        .unwrap_or_else(|e| panic!("could not write {path}: {e}"));
    eprintln!("bench: wrote {path}");
}

/// Runs the fleet scaling study: N offices multiplexed behind one
/// demux front, decision streams proven shard- and thread-invariant.
fn run_fleet_target(opts: &Options) {
    eprintln!(
        "fleet: scaling study up to {} offices (seed {:#x}, {} threads)...",
        opts.offices,
        opts.seed,
        par::thread_count()
    );
    let scaling = fadewich_fleet::scaling::run_fleet_scaling(opts.seed, opts.offices)
        .expect("fleet scaling study");
    print!("{}", scaling.table);
    for line in &scaling.wall_lines {
        println!("{line}");
    }
    if let Some(dir) = &opts.csv_dir {
        let _ = std::fs::create_dir_all(dir);
        let path = format!("{dir}/fleet.csv");
        if let Err(err) = std::fs::write(&path, scaling.table.to_csv()) {
            eprintln!("warning: could not write {path}: {err}");
        }
    }
}

/// Runs the RSSI/light fusion ablation on its own light-enabled
/// scenario (the shared experiment records RSSI only, so this target
/// generates its own trace and skips the sweep when run alone).
fn run_fusion_target(opts: &Options) {
    let days = if opts.quick { 2 } else { 5 };
    eprintln!(
        "fusion: {days}-day light-enabled ablation (seed {:#x}, {} threads)...",
        opts.seed,
        par::thread_count()
    );
    let rows = fadewich_experiments::fusion::fusion_study(opts.seed, days, 1, 9)
        .expect("fusion ablation");
    let table = fadewich_experiments::fusion::fusion_table(&rows);
    print!("{table}\n");
    if let Some(dir) = &opts.csv_dir {
        let _ = std::fs::create_dir_all(dir);
        let path = format!("{dir}/fusion.csv");
        if let Err(err) = std::fs::write(&path, table.to_csv()) {
            eprintln!("warning: could not write {path}: {err}");
        }
    }
}

/// Runs the adversarial robustness suite: the §V-C jamming conditions
/// on a dedicated small scenario, then the keyed-MAC containment
/// study over every seeded attacker family.
fn run_attacks_target(opts: &Options) {
    let days = if opts.quick { 2 } else { 5 };
    eprintln!(
        "attacks: jamming + {days}-day containment suite (seed {:#x})...",
        opts.seed
    );
    let experiment = timing::time_stage("attacks::jamming-scenario", || {
        Experiment::small(opts.seed)
    })
    .expect("attacks scenario");
    let (_, jamming) = fadewich_experiments::attacks::jamming_study(&experiment)
        .expect("jamming study");
    print!("{jamming}\n");
    let rows = fadewich_experiments::attacks::containment_study(opts.seed, days)
        .expect("containment study");
    let table = fadewich_experiments::attacks::containment_table(&rows);
    print!("{table}\n");
    if let Some(dir) = &opts.csv_dir {
        let _ = std::fs::create_dir_all(dir);
        for (name, t) in [("attacks_jamming", &jamming), ("attacks_containment", &table)] {
            let path = format!("{dir}/{name}.csv");
            if let Err(err) = std::fs::write(&path, t.to_csv()) {
                eprintln!("warning: could not write {path}: {err}");
            }
        }
    }
}

/// Runs the span-profile study: replay the online days of a dedicated
/// scenario with the audit trail enabled and fold the tick-stamped
/// spans into per-stage self/total tables plus collapsed stacks. The
/// whole report is logical-tick arithmetic — no `wall_` lines — so CI
/// compares two runs with `cmp`.
fn run_profile_target(opts: &Options) {
    let days = if opts.quick { 2 } else { 3 };
    eprintln!(
        "profile: {days}-day span-profile study (seed {:#x}, {} threads)...",
        opts.seed,
        par::thread_count()
    );
    let study = fadewich_experiments::profile::profile_study_standalone(opts.seed, days, 9)
        .expect("profile study");
    print!("{}", fadewich_experiments::profile::profile_report(&study));
}

fn wanted(opts: &Options, target: &str) -> bool {
    opts.targets.is_empty() || opts.targets.contains(target)
}

/// One unit of job output: text for stdout plus an optional CSV
/// (name, content) pair. Jobs *return* emissions instead of printing
/// so workers never interleave and stdout stays deterministic.
struct Emission {
    stdout: String,
    csv: Option<(String, String)>,
}

fn table_emission(name: &str, table: &TextTable) -> Emission {
    Emission {
        stdout: format!("{table}\n"),
        csv: Some((name.to_string(), table.to_csv())),
    }
}

fn text_emission(stdout: String) -> Emission {
    Emission { stdout, csv: None }
}

type Job<'a> = Box<dyn Fn() -> Vec<Emission> + Sync + 'a>;

fn main() {
    let mut opts = parse_args();
    if opts.targets.remove("bench") {
        run_bench(&opts);
        if opts.targets.is_empty() {
            // Bench-only invocation: no scenario, no sweep, no jobs.
            return;
        }
    }
    if opts.targets.remove("fleet") {
        run_fleet_target(&opts);
        if opts.targets.is_empty() {
            // Fleet-only invocation: no scenario, no sweep, no jobs.
            return;
        }
    }
    if opts.targets.remove("fusion") {
        run_fusion_target(&opts);
        if opts.targets.is_empty() {
            // Fusion-only invocation: no scenario, no sweep, no jobs.
            return;
        }
    }
    if opts.targets.remove("attacks") {
        run_attacks_target(&opts);
        if opts.targets.is_empty() {
            // Attacks-only invocation: no scenario, no sweep, no jobs.
            return;
        }
    }
    if opts.targets.remove("profile") {
        run_profile_target(&opts);
        if opts.targets.is_empty() {
            // Profile-only invocation: no scenario, no sweep, no jobs.
            return;
        }
    }
    use fadewich_telemetry::Clock;
    let t0 = fadewich_telemetry::WallClock.now_ns();
    let elapsed_s = || fadewich_telemetry::WallClock.now_ns().saturating_sub(t0) as f64 / 1e9;
    eprintln!(
        "threads: {} (override with FADEWICH_THREADS)",
        par::thread_count()
    );
    eprintln!(
        "generating {} scenario (seed {})...",
        if opts.quick { "quick 1-day" } else { "paper-scale 5-day" },
        opts.seed
    );
    let experiment = timing::time_stage("reproduce::scenario", || {
        if opts.quick {
            Experiment::small(opts.seed)
        } else {
            Experiment::paper_scale(opts.seed)
        }
    })
    .expect("scenario generation");
    eprintln!(
        "trace: {} days x {} streams ({:.1} s)",
        experiment.trace.days().len(),
        experiment.trace.n_streams(),
        elapsed_s()
    );

    eprintln!("running the MD+RE pipeline for {SENSOR_COUNTS:?} sensors...");
    let runs: Vec<SensorRun> =
        experiment.sweep(&SENSOR_COUNTS, 5).expect("pipeline sweep");
    let nine = runs.last().expect("at least one run");
    eprintln!("pipeline done ({:.1} s)", elapsed_s());

    // Build the selected jobs in a fixed order; each job returns its
    // emissions, which the main thread prints in that same order.
    // Shadow the shared inputs with references so `move` closures
    // capture the borrow, not the value.
    let experiment = &experiment;
    let runs = &runs;
    let mut jobs: Vec<(&str, Job)> = Vec::new();
    if wanted(&opts, "table2") {
        jobs.push((
            "table2",
            Box::new(|| vec![table_emission("table2", &tables::table2(&experiment))]),
        ));
    }
    if wanted(&opts, "table3") {
        jobs.push((
            "table3",
            Box::new(|| vec![table_emission("table3", &tables::table3(&experiment, &runs))]),
        ));
    }
    if wanted(&opts, "fig2") {
        jobs.push((
            "fig2",
            Box::new(|| {
                vec![text_emission(format!(
                    "{}\n",
                    figures::fig2(&experiment, nine).render()
                ))]
            }),
        ));
    }
    if wanted(&opts, "fig7") {
        jobs.push((
            "fig7",
            Box::new(|| {
                let t_deltas: Vec<f64> = (4..=16).map(|i| i as f64 * 0.5).collect();
                let quads: Vec<SensorRun> = runs
                    .iter()
                    .filter(|r| [3, 5, 7, 9].contains(&r.n_sensors))
                    .cloned()
                    .collect();
                let series = figures::fig7(&experiment, &quads, &t_deltas);
                let named: Vec<(String, Vec<(f64, f64)>)> = series
                    .into_iter()
                    .map(|(n, pts)| (format!("{n} sensors"), pts))
                    .collect();
                vec![text_emission(format!(
                    "{}\n",
                    render_series("Fig 7: MD F-measure vs t_delta", &named, 40)
                ))]
            }),
        ));
    }
    if wanted(&opts, "fig8") {
        let repeats = if opts.quick { 3 } else { 10 };
        jobs.push((
            "fig8",
            Box::new(move || {
                let sizes: Vec<usize> = (1..=10).map(|i| i * 10).collect();
                let quads: Vec<SensorRun> = runs
                    .iter()
                    .filter(|r| [3, 5, 7, 9].contains(&r.n_sensors))
                    .cloned()
                    .collect();
                let curves = figures::fig8(&quads, &sizes, repeats);
                let mut t = TextTable::new(
                    "Fig 8: RE accuracy vs number of training samples (mean, 95% CI)",
                    &["sensors", "train size", "accuracy", "ci"],
                );
                for (n, pts) in &curves {
                    for p in pts {
                        t.add_row(vec![
                            n.to_string(),
                            p.train_size.to_string(),
                            format!("{:.3}", p.mean_accuracy),
                            format!("{:.3}", p.ci_half_width),
                        ]);
                    }
                }
                vec![table_emission("fig8", &t)]
            }),
        ));
    }
    if wanted(&opts, "fig9") {
        jobs.push((
            "fig9",
            Box::new(|| {
                let pts: Vec<f64> = (0..=20).map(|i| i as f64 * 0.5).collect();
                let series = figures::fig9(&experiment, &runs, &pts);
                let mut t = TextTable::new(
                    "Fig 9: % of departures deauthenticated within t seconds",
                    &["sensors", "t (s)", "% deauthenticated"],
                );
                for (n, curve) in &series {
                    for (x, y) in curve {
                        t.add_row(vec![n.to_string(), format!("{x:.1}"), format!("{y:.1}")]);
                    }
                }
                let mut out = vec![table_emission("fig9", &t)];
                // Headline numbers.
                if let Some((_, curve)) = series.iter().find(|(n, _)| *n == 9) {
                    let at = |t: f64| {
                        curve
                            .iter()
                            .find(|(x, _)| (*x - t).abs() < 1e-9)
                            .map_or(f64::NAN, |(_, y)| *y)
                    };
                    out.push(text_emission(format!(
                        "headline (9 sensors): {:.0}% deauthenticated within 4 s, {:.0}% within 6 s\n\n",
                        at(4.0),
                        at(6.0)
                    )));
                }
                out
            }),
        ));
    }
    if wanted(&opts, "fig10") {
        jobs.push((
            "fig10",
            Box::new(|| {
                vec![table_emission(
                    "fig10",
                    &figures::fig10_table(&figures::fig10(&experiment, &runs)),
                )]
            }),
        ));
    }
    if wanted(&opts, "table4") || wanted(&opts, "fig13") {
        // table4's usability replay also feeds fig13, so they share a
        // job rather than recomputing the draws.
        let draws = if opts.quick { 10 } else { 100 };
        let emit4 = wanted(&opts, "table4");
        let emit13 = wanted(&opts, "fig13");
        jobs.push((
            "table4+fig13",
            Box::new(move || {
                let (rows, t4) = tables::table4(&experiment, &runs, draws);
                let mut out = Vec::new();
                if emit4 {
                    out.push(table_emission("table4", &t4));
                }
                if emit13 {
                    let rows13 = figures::fig13(&experiment, &runs, &rows);
                    out.push(table_emission("fig13", &figures::fig13_table(&rows13)));
                }
                out
            }),
        ));
    }
    if wanted(&opts, "table5") {
        jobs.push((
            "table5",
            Box::new(|| {
                let (_, t5) = tables::table5(&experiment, nine, 15);
                vec![table_emission("table5", &t5)]
            }),
        ));
    }
    if wanted(&opts, "fig11") {
        jobs.push((
            "fig11",
            Box::new(|| {
                vec![text_emission(format!(
                    "{}\n",
                    figures::fig11(&experiment, nine).render()
                ))]
            }),
        ));
    }
    if wanted(&opts, "fig12") {
        jobs.push((
            "fig12",
            Box::new(|| {
                vec![text_emission(format!(
                    "{}\n",
                    figures::fig12(&experiment, nine).render()
                ))]
            }),
        ));
    }
    if wanted(&opts, "ablations") {
        let seed = opts.seed;
        jobs.push((
            "ablations",
            Box::new(move || {
                [
                    ablations::placement_ablation(&experiment, &[3, 4, 5, 6]).expect("placement"),
                    ablations::md_param_ablation(&experiment, 9).expect("md params"),
                    ablations::classifier_ablation(&experiment, 9).expect("classifier"),
                    ablations::overlap_stress(seed ^ 1).expect("overlap"),
                ]
                .iter()
                .map(|table| text_emission(format!("{table}\n")))
                .collect()
            }),
        ));
    }
    if wanted(&opts, "deployment") {
        // Train on the first 2 days (first 1 in quick mode), run the
        // online controller over the rest.
        let train_days = if experiment.trace.days().len() > 2 { 2 } else { 1 };
        if experiment.trace.days().len() > train_days {
            jobs.push((
                "deployment",
                Box::new(move || {
                    let out = fadewich_experiments::deployment::run_deployment(
                        &experiment,
                        train_days,
                        9,
                    )
                    .expect("deployment");
                    vec![table_emission("deployment", &out.render())]
                }),
            ));
        } else {
            eprintln!("deployment target needs >= 2 days (skipped in this configuration)");
        }
    }
    if wanted(&opts, "streaming") {
        // Streaming-vs-batch parity and lossy degradation over the
        // online days. Deterministic fields only — the latency
        // histograms stay out of this table so stdout remains
        // byte-identical across thread counts.
        let train_days = if experiment.trace.days().len() > 2 { 2 } else { 1 };
        if experiment.trace.days().len() > train_days {
            jobs.push((
                "streaming",
                Box::new(move || {
                    let rows = fadewich_experiments::streaming::streaming_comparison(
                        &experiment,
                        train_days,
                        9,
                    )
                    .expect("streaming comparison");
                    vec![table_emission(
                        "streaming",
                        &fadewich_experiments::streaming::streaming_table(&rows),
                    )]
                }),
            ));
        } else {
            eprintln!("streaming target needs >= 2 days (skipped in this configuration)");
        }
    }
    if wanted(&opts, "recovery") {
        // Crash the checkpointed engine at 25/50/75% of each online
        // day and verify the resumed decision stream stitches
        // byte-identically onto the pre-crash prefix.
        let train_days = if experiment.trace.days().len() > 2 { 2 } else { 1 };
        if experiment.trace.days().len() > train_days {
            jobs.push((
                "recovery",
                Box::new(move || {
                    let rows = fadewich_experiments::recovery::recovery_study(
                        &experiment,
                        train_days,
                        9,
                    )
                    .expect("recovery study");
                    vec![table_emission(
                        "recovery",
                        &fadewich_experiments::recovery::recovery_table(&rows),
                    )]
                }),
            ));
        } else {
            eprintln!("recovery target needs >= 2 days (skipped in this configuration)");
        }
    }
    if wanted(&opts, "artifact") {
        // Export the trained model through the versioned artifact
        // codec and report its deterministic vital signs: identical
        // inputs must produce an identical bundle, so the byte count
        // and CRC double as a cheap cross-machine regression check.
        let train_days = if experiment.trace.days().len() > 2 { 2 } else { 1 };
        if experiment.trace.days().len() > train_days {
            jobs.push((
                "artifact",
                Box::new(move || {
                    let bundle = fadewich_experiments::deployment::export_model(
                        &experiment,
                        train_days,
                        9,
                    )
                    .expect("artifact export");
                    let bytes = bundle.encode();
                    let crc = u32::from_le_bytes(
                        bytes[bytes.len() - 4..].try_into().expect("crc tail"),
                    );
                    let svm = bundle.re.svm();
                    let mut t = TextTable::new(
                        "Model artifact: versioned train/serve bundle",
                        &["metric", "value"],
                    );
                    t.add_row(vec!["bytes".into(), bytes.len().to_string()]);
                    t.add_row(vec!["crc32".into(), format!("{crc:08x}")]);
                    t.add_row(vec!["classes".into(), svm.classes().len().to_string()]);
                    t.add_row(vec!["machines".into(), svm.machines().len().to_string()]);
                    t.add_row(vec![
                        "support vectors".into(),
                        svm.machines()
                            .iter()
                            .map(|(_, _, m)| m.n_support_vectors())
                            .sum::<usize>()
                            .to_string(),
                    ]);
                    t.add_row(vec!["md profile values".into(), bundle.md.values.len().to_string()]);
                    t.add_row(vec![
                        "md threshold".into(),
                        bundle.md.threshold.map_or("unset".into(), |v| format!("{v:.6}")),
                    ]);
                    vec![table_emission("artifact", &t)]
                }),
            ));
        } else {
            eprintln!("artifact target needs >= 2 days (skipped in this configuration)");
        }
    }
    if wanted(&opts, "telemetry") {
        // Replay the online days with the decision audit trail enabled
        // and tabulate per-decision latency-to-deauth (logical ticks
        // from variation-window open to the Rule 1 deauth) — the
        // paper's "fast" claim, measured off the span chain.
        let train_days = if experiment.trace.days().len() > 2 { 2 } else { 1 };
        if experiment.trace.days().len() > train_days {
            jobs.push((
                "telemetry",
                Box::new(move || {
                    let rows = fadewich_experiments::telemetry::latency_study(
                        &experiment,
                        train_days,
                        9,
                    )
                    .expect("latency study");
                    vec![table_emission(
                        "telemetry",
                        &fadewich_experiments::telemetry::latency_table(&rows),
                    )]
                }),
            ));
        } else {
            eprintln!("telemetry target needs >= 2 days (skipped in this configuration)");
        }
    }
    if wanted(&opts, "baseline") {
        jobs.push((
            "baseline",
            Box::new(|| {
                let cmp = fadewich_experiments::baseline::baseline_comparison(
                    &experiment,
                    fadewich_rti::RtiDetectorParams::default(),
                )
                .expect("baseline comparison");
                vec![table_emission("baseline", &cmp.render())]
            }),
        ));
    }
    if wanted(&opts, "offices") {
        let schedule = experiment.scenario.config().schedule.clone();
        let days = if opts.quick { 1 } else { 2 };
        let seed = opts.seed;
        jobs.push((
            "offices",
            Box::new(move || {
                let (_, table) =
                    fadewich_experiments::offices::office_sweep(seed ^ 0xFF1CE, schedule.clone(), days)
                        .expect("office sweep");
                vec![table_emission("offices", &table)]
            }),
        ));
    }
    if wanted(&opts, "csi") {
        jobs.push((
            "csi",
            Box::new(|| {
                // CSI costs n_subcarriers x the RSSI simulation; run it on one
                // day's worth of behaviour in quick mode only or on demand.
                let cmp = fadewich_experiments::csi::csi_comparison(&experiment, 4, 5)
                    .expect("csi comparison");
                vec![table_emission("csi", &cmp.render())]
            }),
        ));
    }

    eprintln!("running {} jobs...", jobs.len());
    let results: Vec<Vec<Emission>> = par::par_map(&jobs, |_, (name, job)| {
        timing::time_stage(&format!("job::{name}"), job)
    });

    // All output happens here, in fixed job order, on one thread.
    for emissions in &results {
        for e in emissions {
            print!("{}", e.stdout);
            if let (Some(dir), Some((name, csv))) = (&opts.csv_dir, &e.csv) {
                let _ = std::fs::create_dir_all(dir);
                let path = format!("{dir}/{name}.csv");
                if let Err(err) = std::fs::write(&path, csv) {
                    eprintln!("warning: could not write {path}: {err}");
                }
            }
        }
    }

    eprintln!("--- stage timings (wall clock; stages overlap across workers) ---");
    eprintln!("{}", timing::report());
    eprintln!("total: {:.1} s", elapsed_s());
}
