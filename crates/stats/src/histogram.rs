//! Fixed-bin histograms and entropy.
//!
//! RE's per-stream *entropy* feature is the Shannon entropy of the
//! frequency-distribution histogram of a window (paper §IV-D1), and the
//! RMI feature-importance analysis (paper appendix) quantizes features
//! into 256 linearly spaced bins. Both share [`Histogram`].

/// A histogram with `bins` equal-width bins spanning `[lo, hi]`.
///
/// Values below `lo` land in the first bin, values above `hi` in the
/// last one — streams occasionally spike outside the calibration range
/// and must not be dropped silently.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram over `[lo, hi]` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or the interval is empty/not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid interval [{lo}, {hi}]");
        Histogram { lo, hi, counts: vec![0; bins], total: 0 }
    }

    /// Builds a histogram spanning exactly the data range of `xs`.
    ///
    /// Degenerate (constant) data yields a single fully-loaded bin, so
    /// the entropy of a constant window is 0 — exactly what the RE
    /// feature needs.
    pub fn of_data(xs: &[f64], bins: usize) -> Self {
        let lo = crate::descriptive::min(xs).unwrap_or(0.0);
        let hi = crate::descriptive::max(xs).unwrap_or(1.0);
        let (lo, hi) = if lo < hi { (lo, hi) } else { (lo - 0.5, lo + 0.5) };
        let mut h = Histogram::new(lo, hi, bins);
        for &x in xs {
            h.add(x);
        }
        h
    }

    /// Adds one observation. NaNs are ignored.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        let idx = self.bin_index(x);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Index of the bin a value falls into (clamped to the edges).
    pub fn bin_index(&self, x: f64) -> usize {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Normalized bin probabilities (empty histogram yields all-zero).
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / self.total as f64).collect()
    }

    /// Shannon entropy of the bin distribution, in bits.
    ///
    /// `H = −Σ p_i log2 p_i`; empty bins contribute nothing. For an
    /// empty histogram this is `0.0`.
    pub fn entropy_bits(&self) -> f64 {
        entropy_bits(&self.probabilities())
    }
}

/// Shannon entropy in bits of a probability vector.
///
/// Probabilities that are zero (or negative, which would be a caller
/// bug but must not produce NaN) are skipped. The vector does not have
/// to be normalized perfectly; it is treated as-is.
pub fn entropy_bits(ps: &[f64]) -> f64 {
    -ps.iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| p * p.log2())
        .sum::<f64>()
}

/// Shannon entropy in bits of the *empirical* distribution of discrete
/// symbols (e.g. quantized feature values).
pub fn entropy_of_counts(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    entropy_bits(
        &counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_assignment() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.5);
        h.add(9.5);
        h.add(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-100.0);
        h.add(100.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn upper_edge_goes_to_last_bin() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.bin_index(1.0), 3);
    }

    #[test]
    fn nan_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(f64::NAN);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn uniform_entropy_is_log2_bins() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for x in [0.5, 1.5, 2.5, 3.5] {
            h.add(x);
        }
        assert!((h.entropy_bits() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn constant_data_entropy_zero() {
        let h = Histogram::of_data(&[5.0; 30], 16);
        assert_eq!(h.entropy_bits(), 0.0);
    }

    #[test]
    fn of_data_spans_range() {
        let h = Histogram::of_data(&[2.0, 8.0], 3);
        assert_eq!(h.bin_index(2.0), 0);
        assert_eq!(h.bin_index(8.0), 2);
    }

    #[test]
    fn empty_histogram_entropy_zero() {
        let h = Histogram::new(0.0, 1.0, 8);
        assert_eq!(h.entropy_bits(), 0.0);
        assert_eq!(h.probabilities(), vec![0.0; 8]);
    }

    #[test]
    fn bin_center_midpoints() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_counts_basic() {
        assert_eq!(entropy_of_counts(&[0, 0]), 0.0);
        assert!((entropy_of_counts(&[1, 1]) - 1.0).abs() < 1e-12);
        assert!((entropy_of_counts(&[3, 1]) - 0.8112781244591328).abs() < 1e-12);
    }
}
