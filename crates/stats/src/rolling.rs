//! Streaming (rolling-window) statistics.
//!
//! MD computes, at every tick, the standard deviation of the last `d`
//! seconds of every RSSI stream. With 72 streams at 5 Hz that is far
//! too hot a loop for recomputing from scratch, so [`RollingStd`]
//! maintains running first and second moments over a ring buffer in
//! O(1) per sample.
//!
//! Floating-point drift is kept in check by recomputing the running
//! sums from the buffer every `RECOMPUTE_EVERY` updates; a property
//! test asserts agreement with the batch formula.

/// How many pushes between full recomputations of the running sums.
const RECOMPUTE_EVERY: u64 = 4096;

/// The complete runtime state of a [`RollingStd`], exportable for
/// crash-safe checkpointing and re-importable bit-exactly.
///
/// The accumulators (`offset`, `sum`, `sum_sq`) are carried verbatim —
/// not recomputed from the samples — because a restored window must
/// produce the **same bit pattern** from `std_dev` as the original
/// would have, including any accumulated rounding. `pushes` preserves
/// the periodic-recompute phase for the same reason.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingStdState {
    /// Window capacity the state was captured from.
    pub capacity: usize,
    /// Retained samples, oldest first (`≤ capacity` of them).
    pub samples: Vec<f64>,
    /// Centering offset at capture time.
    pub offset: f64,
    /// Running first moment (offset-centered) at capture time.
    pub sum: f64,
    /// Running second moment (offset-centered) at capture time.
    pub sum_sq: f64,
    /// Total samples ever pushed (drives the recompute cadence).
    pub pushes: u64,
    /// Cumulative non-finite samples replaced by hold-last-value.
    pub non_finite: u64,
}

/// Fixed-capacity rolling window maintaining mean/variance/std in O(1).
///
/// Until the window has been filled, statistics are computed over the
/// samples seen so far ([`RollingStd::is_full`] tells which regime
/// applies).
///
/// # Examples
///
/// ```
/// use fadewich_stats::rolling::RollingStd;
///
/// let mut w = RollingStd::new(3);
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// // Window now holds [2, 3, 4]; population std of that is sqrt(2/3).
/// assert!((w.std_dev() - (2.0f64 / 3.0).sqrt()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct RollingStd {
    buf: Vec<f64>,
    capacity: usize,
    head: usize,
    len: usize,
    /// Offset subtracted from samples before accumulating, refreshed at
    /// every recompute. Keeping the accumulated values near zero avoids
    /// the catastrophic cancellation of `E[x²] − E[x]²` for streams with
    /// a large DC component (RSSI sits around −50 dBm; synthetic tests
    /// go much further).
    offset: f64,
    sum: f64,
    sum_sq: f64,
    pushes: u64,
    non_finite: u64,
}

impl RollingStd {
    /// Creates a window of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "rolling window capacity must be positive");
        RollingStd {
            buf: vec![0.0; capacity],
            capacity,
            head: 0,
            len: 0,
            offset: 0.0,
            sum: 0.0,
            sum_sq: 0.0,
            pushes: 0,
            non_finite: 0,
        }
    }

    /// Pushes a sample, evicting the oldest when full.
    ///
    /// Non-finite samples (NaN, ±∞) are replaced by the most recent
    /// finite sample (or `0.0` on an empty window) and counted in
    /// [`RollingStd::non_finite_count`]. A NaN fed into the running
    /// sums would otherwise poison `sum`/`sum_sq` — and therefore every
    /// `std_dev` — until the next periodic recompute evicted it.
    pub fn push(&mut self, x: f64) {
        let x = if x.is_finite() {
            x
        } else {
            self.non_finite += 1;
            if self.len == 0 {
                0.0
            } else {
                // Hold the last value: the newest retained sample.
                self.buf[(self.head + self.capacity - 1) % self.capacity]
            }
        };
        if self.len == 0 {
            self.offset = x;
        }
        if self.len == self.capacity {
            let old = self.buf[self.head] - self.offset;
            self.sum -= old;
            self.sum_sq -= old * old;
        } else {
            self.len += 1;
        }
        self.buf[self.head] = x;
        self.head = (self.head + 1) % self.capacity;
        let d = x - self.offset;
        self.sum += d;
        self.sum_sq += d * d;
        self.pushes += 1;
        if self.pushes % RECOMPUTE_EVERY == 0 {
            self.recompute();
        }
    }

    fn recompute(&mut self) {
        // Re-center on the current mean, then rebuild the sums exactly.
        self.offset += if self.len > 0 { self.sum / self.len as f64 } else { 0.0 };
        self.sum = 0.0;
        self.sum_sq = 0.0;
        for i in 0..self.len {
            let d = self.buf[(self.head + self.capacity - 1 - i) % self.capacity] - self.offset;
            self.sum += d;
            self.sum_sq += d * d;
        }
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the window has reached its capacity.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Mean of the samples in the window (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.offset + self.sum / self.len as f64
        }
    }

    /// Population variance of the window (`0.0` when empty).
    ///
    /// Clamped at zero: catastrophic cancellation can otherwise yield
    /// tiny negative values for near-constant inputs.
    pub fn variance(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let n = self.len as f64;
        let m = self.sum / n;
        (self.sum_sq / n - m * m).max(0.0)
    }

    /// Population standard deviation of the window.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Copies the window contents, oldest first.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            out.push(self.buf[(self.head + self.capacity - self.len + i) % self.capacity]);
        }
        out
    }

    /// Number of non-finite samples ever pushed (each was replaced by
    /// the held value; see [`RollingStd::push`]).
    pub fn non_finite_count(&self) -> u64 {
        self.non_finite
    }

    /// Clears the window without deallocating. The non-finite counter
    /// is cumulative and survives the clear.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        self.offset = 0.0;
        self.sum = 0.0;
        self.sum_sq = 0.0;
    }

    /// Exports the full runtime state for checkpointing.
    pub fn state(&self) -> RollingStdState {
        RollingStdState {
            capacity: self.capacity,
            samples: self.to_vec(),
            offset: self.offset,
            sum: self.sum,
            sum_sq: self.sum_sq,
            pushes: self.pushes,
            non_finite: self.non_finite,
        }
    }

    /// Rebuilds a window from an exported state. The ring layout is
    /// canonicalized (samples at indices `0..len`, head after them) —
    /// a rotation the arithmetic cannot observe — while every
    /// accumulator is restored bit-exactly, so subsequent pushes
    /// produce the same `std_dev` bits as the uninterrupted window.
    ///
    /// # Errors
    ///
    /// Returns a description when the state is internally inconsistent
    /// (zero capacity, more samples than capacity, fewer pushes than
    /// retained samples, or a non-finite sample/accumulator).
    pub fn from_state(state: &RollingStdState) -> Result<RollingStd, String> {
        if state.capacity == 0 {
            return Err("rolling window capacity must be positive".to_string());
        }
        if state.samples.len() > state.capacity {
            return Err(format!(
                "rolling window holds {} samples but capacity is {}",
                state.samples.len(),
                state.capacity
            ));
        }
        if state.pushes < state.samples.len() as u64 {
            return Err(format!(
                "rolling window claims {} pushes but retains {} samples",
                state.pushes,
                state.samples.len()
            ));
        }
        if state.samples.iter().any(|v| !v.is_finite()) {
            return Err("rolling window state contains a non-finite sample".to_string());
        }
        if !(state.offset.is_finite() && state.sum.is_finite() && state.sum_sq.is_finite()) {
            return Err("rolling window state has a non-finite accumulator".to_string());
        }
        let mut w = RollingStd::new(state.capacity);
        w.buf[..state.samples.len()].copy_from_slice(&state.samples);
        w.len = state.samples.len();
        w.head = state.samples.len() % state.capacity;
        w.offset = state.offset;
        w.sum = state.sum;
        w.sum_sq = state.sum_sq;
        w.pushes = state.pushes;
        w.non_finite = state.non_finite;
        Ok(w)
    }
}

/// A bank of rolling-std windows in struct-of-arrays layout.
///
/// MD maintains one [`RollingStd`] per RSSI stream and pushes one
/// sample into each of them every tick. With `m×(m−1)` streams that
/// loop walks `m×(m−1)` separately-allocated ring buffers and scalar
/// accumulator structs; this bank stores all the rings in one
/// stream-major buffer and all the accumulators in parallel arrays, so
/// the per-tick [`RollingStdBatch::push_row`] sweep is a branch-light
/// pass over contiguous memory the compiler can vectorize.
///
/// **Bit-identity contract:** for every stream, every operation
/// replicates [`RollingStd`]'s floating-point arithmetic op-for-op —
/// offset initialization on the first sample, eviction, the non-finite
/// hold-last guard, and the per-stream periodic recompute at the same
/// `pushes` phase. Feeding the same per-stream sample sequence into a
/// bank and into a `Vec<RollingStd>` yields bit-identical `std_dev`,
/// `mean`, and exported [`RollingStdState`]s. Differential tests in
/// `crates/stats/tests/` pin this.
///
/// Streams may advance independently (the MD masked path pushes only
/// delivered streams), so `head`/`len`/`pushes` are per-stream. A
/// uniformity flag tracks the common case where every push arrived via
/// `push_row`, enabling a fused fast path.
#[derive(Debug, Clone)]
pub struct RollingStdBatch {
    n_streams: usize,
    capacity: usize,
    /// Stream-major ring storage: stream `s` occupies
    /// `buf[s*capacity .. (s+1)*capacity]`.
    buf: Vec<f64>,
    head: Vec<usize>,
    len: Vec<usize>,
    offset: Vec<f64>,
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
    pushes: Vec<u64>,
    non_finite: Vec<u64>,
    /// True while all streams share identical head/len/pushes (no
    /// masked single-stream pushes yet), gating the fused row path.
    uniform: bool,
}

impl RollingStdBatch {
    /// Creates a bank of `n_streams` windows of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `n_streams == 0` or `capacity == 0`.
    pub fn new(n_streams: usize, capacity: usize) -> Self {
        assert!(n_streams > 0, "rolling bank needs at least one stream");
        assert!(capacity > 0, "rolling window capacity must be positive");
        RollingStdBatch {
            n_streams,
            capacity,
            buf: vec![0.0; n_streams * capacity],
            head: vec![0; n_streams],
            len: vec![0; n_streams],
            offset: vec![0.0; n_streams],
            sum: vec![0.0; n_streams],
            sum_sq: vec![0.0; n_streams],
            pushes: vec![0; n_streams],
            non_finite: vec![0; n_streams],
            uniform: true,
        }
    }

    /// Number of streams in the bank.
    pub fn n_streams(&self) -> usize {
        self.n_streams
    }

    /// Per-stream window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of samples currently held for stream `s`.
    pub fn len(&self, s: usize) -> usize {
        self.len[s]
    }

    /// Whether no stream has received a sample yet.
    pub fn is_empty(&self) -> bool {
        self.len.iter().all(|&l| l == 0)
    }

    /// Cumulative non-finite samples replaced on stream `s`.
    pub fn non_finite_count(&self, s: usize) -> u64 {
        self.non_finite[s]
    }

    /// Pushes one sample into every stream (`row[s]` → stream `s`).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != n_streams`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.n_streams, "row width must match stream count");
        // Fused path: all streams in lockstep, every window full, all
        // samples finite, and this push does not land on a recompute
        // boundary. One shared head/len/pushes update, and an inner
        // loop with no branches over contiguous stream-major slots —
        // per-stream float ops in exactly RollingStd::push's order.
        if self.uniform
            && self.len[0] == self.capacity
            && (self.pushes[0] + 1) % RECOMPUTE_EVERY != 0
            && row.iter().all(|x| x.is_finite())
        {
            let head = self.head[0];
            let cap = self.capacity;
            for (s, &x) in row.iter().enumerate() {
                let slot = s * cap + head;
                let old = self.buf[slot] - self.offset[s];
                self.sum[s] -= old;
                self.sum_sq[s] -= old * old;
                self.buf[slot] = x;
                let d = x - self.offset[s];
                self.sum[s] += d;
                self.sum_sq[s] += d * d;
            }
            let new_head = (head + 1) % cap;
            let new_pushes = self.pushes[0] + 1;
            self.head.fill(new_head);
            self.pushes.fill(new_pushes);
            return;
        }
        for (s, &x) in row.iter().enumerate() {
            self.push_scalar(s, x);
        }
    }

    /// Pushes one sample into stream `s` only (the masked-delivery
    /// path). After the first single-stream push the streams are no
    /// longer in lockstep and `push_row` takes the per-stream path.
    pub fn push_one(&mut self, s: usize, x: f64) {
        self.uniform = false;
        self.push_scalar(s, x);
    }

    /// One push into stream `s`, replicating [`RollingStd::push`]
    /// bit-for-bit.
    fn push_scalar(&mut self, s: usize, x: f64) {
        let cap = self.capacity;
        let base = s * cap;
        let x = if x.is_finite() {
            x
        } else {
            self.non_finite[s] += 1;
            if self.len[s] == 0 {
                0.0
            } else {
                self.buf[base + (self.head[s] + cap - 1) % cap]
            }
        };
        if self.len[s] == 0 {
            self.offset[s] = x;
        }
        if self.len[s] == cap {
            let old = self.buf[base + self.head[s]] - self.offset[s];
            self.sum[s] -= old;
            self.sum_sq[s] -= old * old;
        } else {
            self.len[s] += 1;
        }
        self.buf[base + self.head[s]] = x;
        self.head[s] = (self.head[s] + 1) % cap;
        let d = x - self.offset[s];
        self.sum[s] += d;
        self.sum_sq[s] += d * d;
        self.pushes[s] += 1;
        if self.pushes[s] % RECOMPUTE_EVERY == 0 {
            self.recompute(s);
        }
    }

    /// Re-centers stream `s`, replicating [`RollingStd`]'s private
    /// `recompute` (newest-to-oldest rebuild) bit-for-bit.
    fn recompute(&mut self, s: usize) {
        let cap = self.capacity;
        let base = s * cap;
        self.offset[s] += if self.len[s] > 0 { self.sum[s] / self.len[s] as f64 } else { 0.0 };
        self.sum[s] = 0.0;
        self.sum_sq[s] = 0.0;
        for i in 0..self.len[s] {
            let d = self.buf[base + (self.head[s] + cap - 1 - i) % cap] - self.offset[s];
            self.sum[s] += d;
            self.sum_sq[s] += d * d;
        }
    }

    /// Mean of stream `s`'s window (`0.0` when empty).
    pub fn mean(&self, s: usize) -> f64 {
        if self.len[s] == 0 {
            0.0
        } else {
            self.offset[s] + self.sum[s] / self.len[s] as f64
        }
    }

    /// Population variance of stream `s`'s window (`0.0` when empty),
    /// clamped at zero exactly like [`RollingStd::variance`].
    pub fn variance(&self, s: usize) -> f64 {
        if self.len[s] == 0 {
            return 0.0;
        }
        let n = self.len[s] as f64;
        let m = self.sum[s] / n;
        (self.sum_sq[s] / n - m * m).max(0.0)
    }

    /// Population standard deviation of stream `s`'s window.
    pub fn std_dev(&self, s: usize) -> f64 {
        self.variance(s).sqrt()
    }

    /// Exports every stream's state, index-aligned with the streams.
    /// Each entry is exactly what the equivalent [`RollingStd`] would
    /// export, so a bank checkpoints through the same codec.
    pub fn states(&self) -> Vec<RollingStdState> {
        (0..self.n_streams)
            .map(|s| {
                let cap = self.capacity;
                let base = s * cap;
                let mut samples = Vec::with_capacity(self.len[s]);
                for i in 0..self.len[s] {
                    samples.push(self.buf[base + (self.head[s] + cap - self.len[s] + i) % cap]);
                }
                RollingStdState {
                    capacity: cap,
                    samples,
                    offset: self.offset[s],
                    sum: self.sum[s],
                    sum_sq: self.sum_sq[s],
                    pushes: self.pushes[s],
                    non_finite: self.non_finite[s],
                }
            })
            .collect()
    }

    /// Rebuilds a bank from per-stream states (the inverse of
    /// [`RollingStdBatch::states`], validating each entry exactly like
    /// [`RollingStd::from_state`]).
    ///
    /// The restored bank takes the per-stream path until the windows
    /// are observed back in lockstep, which the arithmetic cannot
    /// distinguish from the fused path.
    ///
    /// # Errors
    ///
    /// Returns a description when `states` is empty, capacities
    /// disagree, or any entry is internally inconsistent.
    pub fn from_states(states: &[RollingStdState]) -> Result<RollingStdBatch, String> {
        if states.is_empty() {
            return Err("rolling bank needs at least one stream".to_string());
        }
        let capacity = states[0].capacity;
        if states.iter().any(|st| st.capacity != capacity) {
            return Err("rolling bank streams must share one capacity".to_string());
        }
        // Validate through the scalar restore so both paths reject the
        // same states, then transplant the canonicalized layout.
        let mut bank = RollingStdBatch::new(states.len(), capacity);
        for (s, st) in states.iter().enumerate() {
            let w = RollingStd::from_state(st)?;
            let base = s * capacity;
            bank.buf[base..base + capacity].copy_from_slice(&w.buf);
            bank.head[s] = w.head;
            bank.len[s] = w.len;
            bank.offset[s] = w.offset;
            bank.sum[s] = w.sum;
            bank.sum_sq[s] = w.sum_sq;
            bank.pushes[s] = w.pushes;
            bank.non_finite[s] = w.non_finite;
        }
        bank.uniform = bank.head.iter().all(|&h| h == bank.head[0])
            && bank.len.iter().all(|&l| l == bank.len[0])
            && bank.pushes.iter().all(|&p| p == bank.pushes[0]);
        Ok(bank)
    }
}

/// The complete runtime state of a [`HistoryBuffer`], exportable for
/// crash-safe checkpointing. `total` anchors the absolute indexing of
/// [`HistoryBuffer::range`], so a restored buffer answers exactly the
/// queries the original would.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryState {
    /// Buffer capacity the state was captured from.
    pub capacity: usize,
    /// Retained samples, oldest first (`≤ capacity` of them).
    pub samples: Vec<f64>,
    /// Total samples ever pushed.
    pub total: u64,
}

/// A ring buffer that keeps the most recent `capacity` samples and can
/// hand out arbitrary recent slices by age.
///
/// RE needs, when a variation window is confirmed, the RSSI samples of
/// `[t1, t1 + t∆]` — i.e. a slice *into the past* of each stream. The
/// online pipeline keeps one `HistoryBuffer` per stream instead of the
/// whole trace.
#[derive(Debug, Clone)]
pub struct HistoryBuffer {
    buf: Vec<f64>,
    capacity: usize,
    head: usize,
    len: usize,
    /// Total number of samples ever pushed; the index of the next push.
    total: u64,
}

impl HistoryBuffer {
    /// Creates a buffer remembering the last `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be positive");
        HistoryBuffer { buf: vec![0.0; capacity], capacity, head: 0, len: 0, total: 0 }
    }

    /// Appends a sample.
    pub fn push(&mut self, x: f64) {
        self.buf[self.head] = x;
        self.head = (self.head + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
        self.total += 1;
    }

    /// Total number of samples ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// The fixed capacity this buffer was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns samples with absolute indices `[start, end)` (indices
    /// count from the first push ever), or `None` when the range has
    /// already been evicted or not yet been produced.
    pub fn range(&self, start: u64, end: u64) -> Option<Vec<f64>> {
        if start >= end || end > self.total {
            return None;
        }
        let oldest = self.total - self.len as u64;
        if start < oldest {
            return None;
        }
        let mut out = Vec::with_capacity((end - start) as usize);
        for abs in start..end {
            let age = (self.total - 1 - abs) as usize; // 0 = newest
            let idx = (self.head + self.capacity - 1 - age) % self.capacity;
            out.push(self.buf[idx]);
        }
        Some(out)
    }

    /// Allocation-free variant of [`HistoryBuffer::range`]: clears
    /// `out` and fills it with the samples at absolute indices
    /// `[start, end)`. Returns `false` (leaving `out` empty) when the
    /// range is unavailable. Beyond `out`'s first growth to the window
    /// length, repeated calls do not touch the allocator.
    pub fn range_into(&self, start: u64, end: u64, out: &mut Vec<f64>) -> bool {
        out.clear();
        if start >= end || end > self.total {
            return false;
        }
        let oldest = self.total - self.len as u64;
        if start < oldest {
            return false;
        }
        for abs in start..end {
            let age = (self.total - 1 - abs) as usize; // 0 = newest
            let idx = (self.head + self.capacity - 1 - age) % self.capacity;
            out.push(self.buf[idx]);
        }
        true
    }

    /// Copies the retained samples, oldest first.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            out.push(self.buf[(self.head + self.capacity - self.len + i) % self.capacity]);
        }
        out
    }

    /// Exports the full runtime state for checkpointing.
    pub fn state(&self) -> HistoryState {
        HistoryState { capacity: self.capacity, samples: self.to_vec(), total: self.total }
    }

    /// Rebuilds a buffer from an exported state (canonicalized ring
    /// layout; identical [`HistoryBuffer::range`] answers).
    ///
    /// # Errors
    ///
    /// Returns a description when the state is inconsistent: zero
    /// capacity, more samples than capacity, a `total` smaller than the
    /// sample count, or a partially-filled buffer claiming evictions
    /// (`total > len` is only possible once the buffer is full).
    pub fn from_state(state: &HistoryState) -> Result<HistoryBuffer, String> {
        if state.capacity == 0 {
            return Err("history capacity must be positive".to_string());
        }
        if state.samples.len() > state.capacity {
            return Err(format!(
                "history holds {} samples but capacity is {}",
                state.samples.len(),
                state.capacity
            ));
        }
        if state.total < state.samples.len() as u64 {
            return Err(format!(
                "history claims {} total pushes but retains {} samples",
                state.total,
                state.samples.len()
            ));
        }
        if state.total > state.samples.len() as u64 && state.samples.len() < state.capacity {
            return Err("history claims evictions before filling its capacity".to_string());
        }
        let mut h = HistoryBuffer::new(state.capacity);
        h.buf[..state.samples.len()].copy_from_slice(&state.samples);
        h.len = state.samples.len();
        h.head = state.samples.len() % state.capacity;
        h.total = state.total;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive;
    use crate::rng::Rng;

    #[test]
    fn matches_batch_std() {
        let mut rng = Rng::seed_from_u64(1);
        let mut w = RollingStd::new(20);
        let mut all = Vec::new();
        for _ in 0..500 {
            let x = rng.normal_with(-48.0, 2.5);
            w.push(x);
            all.push(x);
            let tail: Vec<f64> = all.iter().rev().take(20).rev().copied().collect();
            assert!(
                (w.std_dev() - descriptive::std_dev(&tail)).abs() < 1e-9,
                "rolling and batch std diverged"
            );
        }
    }

    #[test]
    fn partial_window() {
        let mut w = RollingStd::new(10);
        w.push(1.0);
        w.push(3.0);
        assert_eq!(w.len(), 2);
        assert!(!w.is_full());
        assert_eq!(w.mean(), 2.0);
        assert!((w.std_dev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_stream_zero_std() {
        let mut w = RollingStd::new(8);
        for _ in 0..100 {
            w.push(-55.5);
        }
        assert_eq!(w.std_dev(), 0.0);
    }

    #[test]
    fn to_vec_preserves_order() {
        let mut w = RollingStd::new(3);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            w.push(x);
        }
        assert_eq!(w.to_vec(), vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn clear_resets() {
        let mut w = RollingStd::new(4);
        w.push(9.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
    }

    #[test]
    fn long_run_numerical_stability() {
        // Large offset + long run exercises the periodic recompute.
        let mut rng = Rng::seed_from_u64(2);
        let mut w = RollingStd::new(64);
        for _ in 0..20_000 {
            w.push(1.0e6 + rng.normal());
        }
        let batch = descriptive::std_dev(&w.to_vec());
        assert!((w.std_dev() - batch).abs() < 1e-6, "{} vs {batch}", w.std_dev());
    }

    #[test]
    fn nan_is_held_not_accumulated() {
        let mut w = RollingStd::new(4);
        w.push(1.0);
        w.push(3.0);
        w.push(f64::NAN);
        // NaN must act as hold-last-value: window is now [1, 3, 3].
        assert_eq!(w.non_finite_count(), 1);
        assert_eq!(w.to_vec(), vec![1.0, 3.0, 3.0]);
        assert!(w.std_dev().is_finite());
        let batch = descriptive::std_dev(&[1.0, 3.0, 3.0]);
        assert!((w.std_dev() - batch).abs() < 1e-12);
        // Before the guard, the poisoned sums stayed NaN until the next
        // RECOMPUTE_EVERY boundary; the very next push must be clean.
        w.push(5.0);
        assert!(w.std_dev().is_finite());
    }

    #[test]
    fn non_finite_first_sample_becomes_zero() {
        let mut w = RollingStd::new(3);
        w.push(f64::INFINITY);
        assert_eq!(w.non_finite_count(), 1);
        assert_eq!(w.to_vec(), vec![0.0]);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.std_dev(), 0.0);
    }

    #[test]
    fn infinities_and_nans_mixed_stay_finite() {
        let mut rng = Rng::seed_from_u64(3);
        let mut w = RollingStd::new(16);
        for i in 0..5000 {
            if i % 7 == 3 {
                w.push(if i % 2 == 0 { f64::NAN } else { f64::NEG_INFINITY });
            } else {
                w.push(rng.normal_with(-50.0, 2.0));
            }
            assert!(w.std_dev().is_finite(), "std went non-finite at push {i}");
        }
        // i ≡ 3 (mod 7) for i in 0..5000 → 714 non-finite pushes.
        assert_eq!(w.non_finite_count(), 714);
        let batch = descriptive::std_dev(&w.to_vec());
        assert!((w.std_dev() - batch).abs() < 1e-6);
    }

    #[test]
    fn history_range_basic() {
        let mut h = HistoryBuffer::new(5);
        for i in 0..10 {
            h.push(i as f64);
        }
        // Retains samples 5..10.
        assert_eq!(h.range(5, 8), Some(vec![5.0, 6.0, 7.0]));
        assert_eq!(h.range(9, 10), Some(vec![9.0]));
        // Evicted.
        assert_eq!(h.range(4, 6), None);
        // Not yet produced.
        assert_eq!(h.range(9, 11), None);
        // Degenerate.
        assert_eq!(h.range(7, 7), None);
    }

    #[test]
    fn rolling_state_round_trip_is_bit_identical_under_continued_pushes() {
        // Checkpoint mid-stream, keep pushing into both copies: every
        // std_dev must agree to the last bit, across a recompute
        // boundary too (pushes phase is part of the state).
        let mut rng = Rng::seed_from_u64(17);
        let mut w = RollingStd::new(10);
        for _ in 0..4090 {
            w.push(1.0e5 + rng.normal_with(-48.0, 2.5));
        }
        let mut restored = RollingStd::from_state(&w.state()).unwrap();
        assert_eq!(restored.state(), w.state());
        for _ in 0..50 {
            let x = rng.normal_with(-48.0, 2.5);
            w.push(x);
            restored.push(x);
            assert_eq!(w.std_dev().to_bits(), restored.std_dev().to_bits());
            assert_eq!(w.mean().to_bits(), restored.mean().to_bits());
        }
        assert_eq!(restored.state(), w.state());
    }

    #[test]
    fn rolling_state_rejects_inconsistencies() {
        let good = RollingStd::new(4).state();
        let bad = RollingStdState { capacity: 0, ..good.clone() };
        assert!(RollingStd::from_state(&bad).is_err());
        let bad = RollingStdState { samples: vec![0.0; 5], pushes: 5, ..good.clone() };
        assert!(RollingStd::from_state(&bad).is_err());
        let bad = RollingStdState { samples: vec![1.0, 2.0], pushes: 1, ..good.clone() };
        assert!(RollingStd::from_state(&bad).is_err());
        let bad = RollingStdState { samples: vec![f64::NAN], pushes: 1, ..good.clone() };
        assert!(RollingStd::from_state(&bad).is_err());
        let bad = RollingStdState { sum: f64::INFINITY, ..good };
        assert!(RollingStd::from_state(&bad).is_err());
    }

    #[test]
    fn history_state_round_trip_preserves_absolute_ranges() {
        let mut h = HistoryBuffer::new(5);
        for i in 0..13 {
            h.push(i as f64);
        }
        let restored = HistoryBuffer::from_state(&h.state()).unwrap();
        assert_eq!(restored.total_pushed(), 13);
        assert_eq!(restored.range(8, 13), h.range(8, 13));
        assert_eq!(restored.range(7, 9), None);
        let mut h2 = restored;
        let mut h1 = h;
        for i in 13..20 {
            h1.push(i as f64);
            h2.push(i as f64);
            assert_eq!(h1.range(15.min(i as u64), i as u64 + 1), h2.range(15.min(i as u64), i as u64 + 1));
        }
    }

    #[test]
    fn history_state_rejects_inconsistencies() {
        assert!(HistoryBuffer::from_state(&HistoryState {
            capacity: 0,
            samples: vec![],
            total: 0
        })
        .is_err());
        assert!(HistoryBuffer::from_state(&HistoryState {
            capacity: 2,
            samples: vec![1.0, 2.0, 3.0],
            total: 3
        })
        .is_err());
        assert!(HistoryBuffer::from_state(&HistoryState {
            capacity: 4,
            samples: vec![1.0, 2.0],
            total: 1
        })
        .is_err());
        // total > len with a partially filled buffer: impossible state.
        assert!(HistoryBuffer::from_state(&HistoryState {
            capacity: 4,
            samples: vec![1.0, 2.0],
            total: 9
        })
        .is_err());
    }

    #[test]
    fn batch_matches_scalar_bit_for_bit_on_row_pushes() {
        let mut rng = Rng::seed_from_u64(11);
        let n = 6;
        let mut scalars: Vec<RollingStd> = (0..n).map(|_| RollingStd::new(10)).collect();
        let mut bank = RollingStdBatch::new(n, 10);
        let mut row = vec![0.0; n];
        // Long enough to cross the RECOMPUTE_EVERY boundary, with
        // occasional non-finite samples exercising the hold-last guard.
        for tick in 0..(RECOMPUTE_EVERY as usize + 200) {
            for slot in row.iter_mut() {
                *slot = rng.normal_with(-48.0, 2.5);
            }
            if tick % 97 == 13 {
                row[tick % n] = f64::NAN;
            }
            for (s, w) in scalars.iter_mut().enumerate() {
                w.push(row[s]);
            }
            bank.push_row(&row);
            for (s, w) in scalars.iter().enumerate() {
                assert_eq!(w.std_dev().to_bits(), bank.std_dev(s).to_bits(), "tick {tick} stream {s}");
                assert_eq!(w.mean().to_bits(), bank.mean(s).to_bits());
            }
        }
        for (s, w) in scalars.iter().enumerate() {
            assert_eq!(w.state(), bank.states()[s]);
        }
    }

    #[test]
    fn batch_masked_pushes_match_scalar() {
        let mut rng = Rng::seed_from_u64(12);
        let n = 4;
        let mut scalars: Vec<RollingStd> = (0..n).map(|_| RollingStd::new(7)).collect();
        let mut bank = RollingStdBatch::new(n, 7);
        for tick in 0..500 {
            for s in 0..n {
                // Irregular per-stream delivery pattern.
                if (tick + s) % (s + 2) != 0 {
                    let x = rng.normal_with(-50.0, 1.5);
                    scalars[s].push(x);
                    bank.push_one(s, x);
                }
            }
            for (s, w) in scalars.iter().enumerate() {
                assert_eq!(w.std_dev().to_bits(), bank.std_dev(s).to_bits(), "tick {tick} stream {s}");
            }
        }
    }

    #[test]
    fn batch_state_round_trips_through_scalar_states() {
        let mut rng = Rng::seed_from_u64(13);
        let mut bank = RollingStdBatch::new(3, 5);
        let mut row = vec![0.0; 3];
        for _ in 0..40 {
            for slot in row.iter_mut() {
                *slot = rng.normal_with(-48.0, 2.5);
            }
            bank.push_row(&row);
        }
        let restored = RollingStdBatch::from_states(&bank.states()).unwrap();
        assert_eq!(restored.states(), bank.states());
        let mut a = bank;
        let mut b = restored;
        for _ in 0..40 {
            for slot in row.iter_mut() {
                *slot = rng.normal_with(-48.0, 2.5);
            }
            a.push_row(&row);
            b.push_row(&row);
            for s in 0..3 {
                assert_eq!(a.std_dev(s).to_bits(), b.std_dev(s).to_bits());
            }
        }
    }

    #[test]
    fn batch_from_states_rejects_inconsistencies() {
        assert!(RollingStdBatch::from_states(&[]).is_err());
        let good = RollingStd::new(4).state();
        let other_cap = RollingStd::new(5).state();
        assert!(RollingStdBatch::from_states(&[good.clone(), other_cap]).is_err());
        let bad = RollingStdState { samples: vec![f64::NAN], pushes: 1, ..good.clone() };
        assert!(RollingStdBatch::from_states(&[good, bad]).is_err());
    }

    #[test]
    fn range_into_matches_range() {
        let mut h = HistoryBuffer::new(5);
        for i in 0..10 {
            h.push(i as f64);
        }
        let mut out = Vec::new();
        for (start, end) in [(5, 8), (9, 10), (4, 6), (9, 11), (7, 7), (0, 1)] {
            let ok = h.range_into(start, end, &mut out);
            match h.range(start, end) {
                Some(v) => {
                    assert!(ok);
                    assert_eq!(out, v);
                }
                None => {
                    assert!(!ok);
                    assert!(out.is_empty());
                }
            }
        }
    }

    #[test]
    fn history_exact_capacity() {
        let mut h = HistoryBuffer::new(3);
        h.push(1.0);
        h.push(2.0);
        h.push(3.0);
        assert_eq!(h.range(0, 3), Some(vec![1.0, 2.0, 3.0]));
    }
}
