//! Streaming (rolling-window) statistics.
//!
//! MD computes, at every tick, the standard deviation of the last `d`
//! seconds of every RSSI stream. With 72 streams at 5 Hz that is far
//! too hot a loop for recomputing from scratch, so [`RollingStd`]
//! maintains running first and second moments over a ring buffer in
//! O(1) per sample.
//!
//! Floating-point drift is kept in check by recomputing the running
//! sums from the buffer every `RECOMPUTE_EVERY` updates; a property
//! test asserts agreement with the batch formula.

/// How many pushes between full recomputations of the running sums.
const RECOMPUTE_EVERY: u64 = 4096;

/// The complete runtime state of a [`RollingStd`], exportable for
/// crash-safe checkpointing and re-importable bit-exactly.
///
/// The accumulators (`offset`, `sum`, `sum_sq`) are carried verbatim —
/// not recomputed from the samples — because a restored window must
/// produce the **same bit pattern** from `std_dev` as the original
/// would have, including any accumulated rounding. `pushes` preserves
/// the periodic-recompute phase for the same reason.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingStdState {
    /// Window capacity the state was captured from.
    pub capacity: usize,
    /// Retained samples, oldest first (`≤ capacity` of them).
    pub samples: Vec<f64>,
    /// Centering offset at capture time.
    pub offset: f64,
    /// Running first moment (offset-centered) at capture time.
    pub sum: f64,
    /// Running second moment (offset-centered) at capture time.
    pub sum_sq: f64,
    /// Total samples ever pushed (drives the recompute cadence).
    pub pushes: u64,
    /// Cumulative non-finite samples replaced by hold-last-value.
    pub non_finite: u64,
}

/// Fixed-capacity rolling window maintaining mean/variance/std in O(1).
///
/// Until the window has been filled, statistics are computed over the
/// samples seen so far ([`RollingStd::is_full`] tells which regime
/// applies).
///
/// # Examples
///
/// ```
/// use fadewich_stats::rolling::RollingStd;
///
/// let mut w = RollingStd::new(3);
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// // Window now holds [2, 3, 4]; population std of that is sqrt(2/3).
/// assert!((w.std_dev() - (2.0f64 / 3.0).sqrt()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct RollingStd {
    buf: Vec<f64>,
    capacity: usize,
    head: usize,
    len: usize,
    /// Offset subtracted from samples before accumulating, refreshed at
    /// every recompute. Keeping the accumulated values near zero avoids
    /// the catastrophic cancellation of `E[x²] − E[x]²` for streams with
    /// a large DC component (RSSI sits around −50 dBm; synthetic tests
    /// go much further).
    offset: f64,
    sum: f64,
    sum_sq: f64,
    pushes: u64,
    non_finite: u64,
}

impl RollingStd {
    /// Creates a window of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "rolling window capacity must be positive");
        RollingStd {
            buf: vec![0.0; capacity],
            capacity,
            head: 0,
            len: 0,
            offset: 0.0,
            sum: 0.0,
            sum_sq: 0.0,
            pushes: 0,
            non_finite: 0,
        }
    }

    /// Pushes a sample, evicting the oldest when full.
    ///
    /// Non-finite samples (NaN, ±∞) are replaced by the most recent
    /// finite sample (or `0.0` on an empty window) and counted in
    /// [`RollingStd::non_finite_count`]. A NaN fed into the running
    /// sums would otherwise poison `sum`/`sum_sq` — and therefore every
    /// `std_dev` — until the next periodic recompute evicted it.
    pub fn push(&mut self, x: f64) {
        let x = if x.is_finite() {
            x
        } else {
            self.non_finite += 1;
            if self.len == 0 {
                0.0
            } else {
                // Hold the last value: the newest retained sample.
                self.buf[(self.head + self.capacity - 1) % self.capacity]
            }
        };
        if self.len == 0 {
            self.offset = x;
        }
        if self.len == self.capacity {
            let old = self.buf[self.head] - self.offset;
            self.sum -= old;
            self.sum_sq -= old * old;
        } else {
            self.len += 1;
        }
        self.buf[self.head] = x;
        self.head = (self.head + 1) % self.capacity;
        let d = x - self.offset;
        self.sum += d;
        self.sum_sq += d * d;
        self.pushes += 1;
        if self.pushes % RECOMPUTE_EVERY == 0 {
            self.recompute();
        }
    }

    fn recompute(&mut self) {
        // Re-center on the current mean, then rebuild the sums exactly.
        self.offset += if self.len > 0 { self.sum / self.len as f64 } else { 0.0 };
        self.sum = 0.0;
        self.sum_sq = 0.0;
        for i in 0..self.len {
            let d = self.buf[(self.head + self.capacity - 1 - i) % self.capacity] - self.offset;
            self.sum += d;
            self.sum_sq += d * d;
        }
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the window has reached its capacity.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Mean of the samples in the window (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.offset + self.sum / self.len as f64
        }
    }

    /// Population variance of the window (`0.0` when empty).
    ///
    /// Clamped at zero: catastrophic cancellation can otherwise yield
    /// tiny negative values for near-constant inputs.
    pub fn variance(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let n = self.len as f64;
        let m = self.sum / n;
        (self.sum_sq / n - m * m).max(0.0)
    }

    /// Population standard deviation of the window.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Copies the window contents, oldest first.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            out.push(self.buf[(self.head + self.capacity - self.len + i) % self.capacity]);
        }
        out
    }

    /// Number of non-finite samples ever pushed (each was replaced by
    /// the held value; see [`RollingStd::push`]).
    pub fn non_finite_count(&self) -> u64 {
        self.non_finite
    }

    /// Clears the window without deallocating. The non-finite counter
    /// is cumulative and survives the clear.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        self.offset = 0.0;
        self.sum = 0.0;
        self.sum_sq = 0.0;
    }

    /// Exports the full runtime state for checkpointing.
    pub fn state(&self) -> RollingStdState {
        RollingStdState {
            capacity: self.capacity,
            samples: self.to_vec(),
            offset: self.offset,
            sum: self.sum,
            sum_sq: self.sum_sq,
            pushes: self.pushes,
            non_finite: self.non_finite,
        }
    }

    /// Rebuilds a window from an exported state. The ring layout is
    /// canonicalized (samples at indices `0..len`, head after them) —
    /// a rotation the arithmetic cannot observe — while every
    /// accumulator is restored bit-exactly, so subsequent pushes
    /// produce the same `std_dev` bits as the uninterrupted window.
    ///
    /// # Errors
    ///
    /// Returns a description when the state is internally inconsistent
    /// (zero capacity, more samples than capacity, fewer pushes than
    /// retained samples, or a non-finite sample/accumulator).
    pub fn from_state(state: &RollingStdState) -> Result<RollingStd, String> {
        if state.capacity == 0 {
            return Err("rolling window capacity must be positive".to_string());
        }
        if state.samples.len() > state.capacity {
            return Err(format!(
                "rolling window holds {} samples but capacity is {}",
                state.samples.len(),
                state.capacity
            ));
        }
        if state.pushes < state.samples.len() as u64 {
            return Err(format!(
                "rolling window claims {} pushes but retains {} samples",
                state.pushes,
                state.samples.len()
            ));
        }
        if state.samples.iter().any(|v| !v.is_finite()) {
            return Err("rolling window state contains a non-finite sample".to_string());
        }
        if !(state.offset.is_finite() && state.sum.is_finite() && state.sum_sq.is_finite()) {
            return Err("rolling window state has a non-finite accumulator".to_string());
        }
        let mut w = RollingStd::new(state.capacity);
        w.buf[..state.samples.len()].copy_from_slice(&state.samples);
        w.len = state.samples.len();
        w.head = state.samples.len() % state.capacity;
        w.offset = state.offset;
        w.sum = state.sum;
        w.sum_sq = state.sum_sq;
        w.pushes = state.pushes;
        w.non_finite = state.non_finite;
        Ok(w)
    }
}

/// The complete runtime state of a [`HistoryBuffer`], exportable for
/// crash-safe checkpointing. `total` anchors the absolute indexing of
/// [`HistoryBuffer::range`], so a restored buffer answers exactly the
/// queries the original would.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryState {
    /// Buffer capacity the state was captured from.
    pub capacity: usize,
    /// Retained samples, oldest first (`≤ capacity` of them).
    pub samples: Vec<f64>,
    /// Total samples ever pushed.
    pub total: u64,
}

/// A ring buffer that keeps the most recent `capacity` samples and can
/// hand out arbitrary recent slices by age.
///
/// RE needs, when a variation window is confirmed, the RSSI samples of
/// `[t1, t1 + t∆]` — i.e. a slice *into the past* of each stream. The
/// online pipeline keeps one `HistoryBuffer` per stream instead of the
/// whole trace.
#[derive(Debug, Clone)]
pub struct HistoryBuffer {
    buf: Vec<f64>,
    capacity: usize,
    head: usize,
    len: usize,
    /// Total number of samples ever pushed; the index of the next push.
    total: u64,
}

impl HistoryBuffer {
    /// Creates a buffer remembering the last `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be positive");
        HistoryBuffer { buf: vec![0.0; capacity], capacity, head: 0, len: 0, total: 0 }
    }

    /// Appends a sample.
    pub fn push(&mut self, x: f64) {
        self.buf[self.head] = x;
        self.head = (self.head + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
        self.total += 1;
    }

    /// Total number of samples ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// The fixed capacity this buffer was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns samples with absolute indices `[start, end)` (indices
    /// count from the first push ever), or `None` when the range has
    /// already been evicted or not yet been produced.
    pub fn range(&self, start: u64, end: u64) -> Option<Vec<f64>> {
        if start >= end || end > self.total {
            return None;
        }
        let oldest = self.total - self.len as u64;
        if start < oldest {
            return None;
        }
        let mut out = Vec::with_capacity((end - start) as usize);
        for abs in start..end {
            let age = (self.total - 1 - abs) as usize; // 0 = newest
            let idx = (self.head + self.capacity - 1 - age) % self.capacity;
            out.push(self.buf[idx]);
        }
        Some(out)
    }

    /// Copies the retained samples, oldest first.
    pub fn to_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            out.push(self.buf[(self.head + self.capacity - self.len + i) % self.capacity]);
        }
        out
    }

    /// Exports the full runtime state for checkpointing.
    pub fn state(&self) -> HistoryState {
        HistoryState { capacity: self.capacity, samples: self.to_vec(), total: self.total }
    }

    /// Rebuilds a buffer from an exported state (canonicalized ring
    /// layout; identical [`HistoryBuffer::range`] answers).
    ///
    /// # Errors
    ///
    /// Returns a description when the state is inconsistent: zero
    /// capacity, more samples than capacity, a `total` smaller than the
    /// sample count, or a partially-filled buffer claiming evictions
    /// (`total > len` is only possible once the buffer is full).
    pub fn from_state(state: &HistoryState) -> Result<HistoryBuffer, String> {
        if state.capacity == 0 {
            return Err("history capacity must be positive".to_string());
        }
        if state.samples.len() > state.capacity {
            return Err(format!(
                "history holds {} samples but capacity is {}",
                state.samples.len(),
                state.capacity
            ));
        }
        if state.total < state.samples.len() as u64 {
            return Err(format!(
                "history claims {} total pushes but retains {} samples",
                state.total,
                state.samples.len()
            ));
        }
        if state.total > state.samples.len() as u64 && state.samples.len() < state.capacity {
            return Err("history claims evictions before filling its capacity".to_string());
        }
        let mut h = HistoryBuffer::new(state.capacity);
        h.buf[..state.samples.len()].copy_from_slice(&state.samples);
        h.len = state.samples.len();
        h.head = state.samples.len() % state.capacity;
        h.total = state.total;
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive;
    use crate::rng::Rng;

    #[test]
    fn matches_batch_std() {
        let mut rng = Rng::seed_from_u64(1);
        let mut w = RollingStd::new(20);
        let mut all = Vec::new();
        for _ in 0..500 {
            let x = rng.normal_with(-48.0, 2.5);
            w.push(x);
            all.push(x);
            let tail: Vec<f64> = all.iter().rev().take(20).rev().copied().collect();
            assert!(
                (w.std_dev() - descriptive::std_dev(&tail)).abs() < 1e-9,
                "rolling and batch std diverged"
            );
        }
    }

    #[test]
    fn partial_window() {
        let mut w = RollingStd::new(10);
        w.push(1.0);
        w.push(3.0);
        assert_eq!(w.len(), 2);
        assert!(!w.is_full());
        assert_eq!(w.mean(), 2.0);
        assert!((w.std_dev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_stream_zero_std() {
        let mut w = RollingStd::new(8);
        for _ in 0..100 {
            w.push(-55.5);
        }
        assert_eq!(w.std_dev(), 0.0);
    }

    #[test]
    fn to_vec_preserves_order() {
        let mut w = RollingStd::new(3);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            w.push(x);
        }
        assert_eq!(w.to_vec(), vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn clear_resets() {
        let mut w = RollingStd::new(4);
        w.push(9.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
    }

    #[test]
    fn long_run_numerical_stability() {
        // Large offset + long run exercises the periodic recompute.
        let mut rng = Rng::seed_from_u64(2);
        let mut w = RollingStd::new(64);
        for _ in 0..20_000 {
            w.push(1.0e6 + rng.normal());
        }
        let batch = descriptive::std_dev(&w.to_vec());
        assert!((w.std_dev() - batch).abs() < 1e-6, "{} vs {batch}", w.std_dev());
    }

    #[test]
    fn nan_is_held_not_accumulated() {
        let mut w = RollingStd::new(4);
        w.push(1.0);
        w.push(3.0);
        w.push(f64::NAN);
        // NaN must act as hold-last-value: window is now [1, 3, 3].
        assert_eq!(w.non_finite_count(), 1);
        assert_eq!(w.to_vec(), vec![1.0, 3.0, 3.0]);
        assert!(w.std_dev().is_finite());
        let batch = descriptive::std_dev(&[1.0, 3.0, 3.0]);
        assert!((w.std_dev() - batch).abs() < 1e-12);
        // Before the guard, the poisoned sums stayed NaN until the next
        // RECOMPUTE_EVERY boundary; the very next push must be clean.
        w.push(5.0);
        assert!(w.std_dev().is_finite());
    }

    #[test]
    fn non_finite_first_sample_becomes_zero() {
        let mut w = RollingStd::new(3);
        w.push(f64::INFINITY);
        assert_eq!(w.non_finite_count(), 1);
        assert_eq!(w.to_vec(), vec![0.0]);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.std_dev(), 0.0);
    }

    #[test]
    fn infinities_and_nans_mixed_stay_finite() {
        let mut rng = Rng::seed_from_u64(3);
        let mut w = RollingStd::new(16);
        for i in 0..5000 {
            if i % 7 == 3 {
                w.push(if i % 2 == 0 { f64::NAN } else { f64::NEG_INFINITY });
            } else {
                w.push(rng.normal_with(-50.0, 2.0));
            }
            assert!(w.std_dev().is_finite(), "std went non-finite at push {i}");
        }
        // i ≡ 3 (mod 7) for i in 0..5000 → 714 non-finite pushes.
        assert_eq!(w.non_finite_count(), 714);
        let batch = descriptive::std_dev(&w.to_vec());
        assert!((w.std_dev() - batch).abs() < 1e-6);
    }

    #[test]
    fn history_range_basic() {
        let mut h = HistoryBuffer::new(5);
        for i in 0..10 {
            h.push(i as f64);
        }
        // Retains samples 5..10.
        assert_eq!(h.range(5, 8), Some(vec![5.0, 6.0, 7.0]));
        assert_eq!(h.range(9, 10), Some(vec![9.0]));
        // Evicted.
        assert_eq!(h.range(4, 6), None);
        // Not yet produced.
        assert_eq!(h.range(9, 11), None);
        // Degenerate.
        assert_eq!(h.range(7, 7), None);
    }

    #[test]
    fn rolling_state_round_trip_is_bit_identical_under_continued_pushes() {
        // Checkpoint mid-stream, keep pushing into both copies: every
        // std_dev must agree to the last bit, across a recompute
        // boundary too (pushes phase is part of the state).
        let mut rng = Rng::seed_from_u64(17);
        let mut w = RollingStd::new(10);
        for _ in 0..4090 {
            w.push(1.0e5 + rng.normal_with(-48.0, 2.5));
        }
        let mut restored = RollingStd::from_state(&w.state()).unwrap();
        assert_eq!(restored.state(), w.state());
        for _ in 0..50 {
            let x = rng.normal_with(-48.0, 2.5);
            w.push(x);
            restored.push(x);
            assert_eq!(w.std_dev().to_bits(), restored.std_dev().to_bits());
            assert_eq!(w.mean().to_bits(), restored.mean().to_bits());
        }
        assert_eq!(restored.state(), w.state());
    }

    #[test]
    fn rolling_state_rejects_inconsistencies() {
        let good = RollingStd::new(4).state();
        let bad = RollingStdState { capacity: 0, ..good.clone() };
        assert!(RollingStd::from_state(&bad).is_err());
        let bad = RollingStdState { samples: vec![0.0; 5], pushes: 5, ..good.clone() };
        assert!(RollingStd::from_state(&bad).is_err());
        let bad = RollingStdState { samples: vec![1.0, 2.0], pushes: 1, ..good.clone() };
        assert!(RollingStd::from_state(&bad).is_err());
        let bad = RollingStdState { samples: vec![f64::NAN], pushes: 1, ..good.clone() };
        assert!(RollingStd::from_state(&bad).is_err());
        let bad = RollingStdState { sum: f64::INFINITY, ..good };
        assert!(RollingStd::from_state(&bad).is_err());
    }

    #[test]
    fn history_state_round_trip_preserves_absolute_ranges() {
        let mut h = HistoryBuffer::new(5);
        for i in 0..13 {
            h.push(i as f64);
        }
        let restored = HistoryBuffer::from_state(&h.state()).unwrap();
        assert_eq!(restored.total_pushed(), 13);
        assert_eq!(restored.range(8, 13), h.range(8, 13));
        assert_eq!(restored.range(7, 9), None);
        let mut h2 = restored;
        let mut h1 = h;
        for i in 13..20 {
            h1.push(i as f64);
            h2.push(i as f64);
            assert_eq!(h1.range(15.min(i as u64), i as u64 + 1), h2.range(15.min(i as u64), i as u64 + 1));
        }
    }

    #[test]
    fn history_state_rejects_inconsistencies() {
        assert!(HistoryBuffer::from_state(&HistoryState {
            capacity: 0,
            samples: vec![],
            total: 0
        })
        .is_err());
        assert!(HistoryBuffer::from_state(&HistoryState {
            capacity: 2,
            samples: vec![1.0, 2.0, 3.0],
            total: 3
        })
        .is_err());
        assert!(HistoryBuffer::from_state(&HistoryState {
            capacity: 4,
            samples: vec![1.0, 2.0],
            total: 1
        })
        .is_err());
        // total > len with a partially filled buffer: impossible state.
        assert!(HistoryBuffer::from_state(&HistoryState {
            capacity: 4,
            samples: vec![1.0, 2.0],
            total: 9
        })
        .is_err());
    }

    #[test]
    fn history_exact_capacity() {
        let mut h = HistoryBuffer::new(3);
        h.push(1.0);
        h.push(2.0);
        h.push(3.0);
        assert_eq!(h.range(0, 3), Some(vec![1.0, 2.0, 3.0]));
    }
}
