//! Pearson correlation and correlation matrices.
//!
//! Reproduces the appendix analysis of Fig. 11: the correlation between
//! the per-stream variances across all labeled samples, which shows
//! that streams anchored at nearby devices react similarly to a moving
//! body.

/// Pearson correlation coefficient between two equal-length series.
///
/// Returns `0.0` when either series is constant (undefined correlation
/// is treated as "no linear relationship", matching how the appendix
/// drops uninformative features).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation requires equal lengths");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = crate::descriptive::mean(xs);
    let my = crate::descriptive::mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
}

/// A symmetric correlation matrix over a set of named columns.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationMatrix {
    names: Vec<String>,
    /// Row-major `n × n` values.
    values: Vec<f64>,
}

impl CorrelationMatrix {
    /// Computes pairwise Pearson correlations between `columns`, where
    /// each column is one variable observed across the same samples.
    ///
    /// # Panics
    ///
    /// Panics if `names.len() != columns.len()` or the columns have
    /// unequal lengths.
    pub fn compute(names: &[String], columns: &[Vec<f64>]) -> Self {
        assert_eq!(names.len(), columns.len(), "one name per column");
        let n = columns.len();
        if let Some(first) = columns.first() {
            for c in columns {
                assert_eq!(c.len(), first.len(), "columns must have equal lengths");
            }
        }
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            values[i * n + i] = 1.0;
            for j in (i + 1)..n {
                let r = pearson(&columns[i], &columns[j]);
                values[i * n + j] = r;
                values[j * n + i] = r;
            }
        }
        CorrelationMatrix { names: names.to_vec(), values }
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Correlation between columns `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let n = self.len();
        assert!(i < n && j < n, "index out of range");
        self.values[i * n + j]
    }

    /// The `k` most correlated off-diagonal pairs (by absolute value),
    /// strongest first.
    pub fn strongest_pairs(&self, k: usize) -> Vec<(usize, usize, f64)> {
        let n = self.len();
        let mut pairs: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .map(|(i, j)| (i, j, self.get(i, j)))
            .collect();
        pairs.sort_by(|a, b| b.2.abs().partial_cmp(&a.2.abs()).expect("finite correlations"));
        pairs.truncate(k);
        pairs
    }

    /// Mean absolute off-diagonal correlation — a scalar summary used
    /// to check the Fig. 11 block structure in tests.
    pub fn mean_abs_off_diagonal(&self) -> f64 {
        let n = self.len();
        if n < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        let mut cnt = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                sum += self.get(i, j).abs();
                cnt += 1;
            }
        }
        sum / cnt as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn independent_noise_near_zero() {
        let mut rng = Rng::seed_from_u64(10);
        let xs: Vec<f64> = (0..5000).map(|_| rng.normal()).collect();
        let ys: Vec<f64> = (0..5000).map(|_| rng.normal()).collect();
        assert!(pearson(&xs, &ys).abs() < 0.05);
    }

    #[test]
    fn matrix_diagonal_and_symmetry() {
        let names: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let cols = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![4.0, 3.0, 2.0, 1.0],
            vec![1.0, 1.0, 2.0, 2.0],
        ];
        let m = CorrelationMatrix::compute(&names, &cols);
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            assert_eq!(m.get(i, i), 1.0);
            for j in 0..3 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
        assert!((m.get(0, 1) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn strongest_pairs_sorted() {
        let names: Vec<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        let cols = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![1.1, 2.2, 2.9, 4.2],
            vec![0.0, 5.0, 1.0, 2.0],
        ];
        let m = CorrelationMatrix::compute(&names, &cols);
        let top = m.strongest_pairs(2);
        assert_eq!(top.len(), 2);
        assert!(top[0].2.abs() >= top[1].2.abs());
        assert_eq!((top[0].0, top[0].1), (0, 1));
    }

    #[test]
    fn mean_abs_off_diagonal_bounds() {
        let names: Vec<String> = ["p", "q"].iter().map(|s| s.to_string()).collect();
        let cols = vec![vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.1]];
        let m = CorrelationMatrix::compute(&names, &cols);
        let v = m.mean_abs_off_diagonal();
        assert!((0.0..=1.0).contains(&v));
        assert!(v > 0.9);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn unequal_lengths_panic() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}
