//! Classification and detection metrics.
//!
//! MD's evaluation (Table III, Fig. 7) counts true positives, false
//! positives and false negatives of *event detection*; RE's evaluation
//! (Fig. 8) is multi-class accuracy. Both live here.

/// Binary detection counts, in the paper's §V-A sense: a TP is a
/// variation window overlapping a true window, an FP is a variation
/// window overlapping none, an FN is a true window missed entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DetectionCounts {
    /// Variation windows overlapping a true window.
    pub true_positives: usize,
    /// Variation windows overlapping no true window.
    pub false_positives: usize,
    /// True windows overlapped by no variation window.
    pub false_negatives: usize,
}

impl DetectionCounts {
    /// Creates counts from raw numbers.
    pub fn new(tp: usize, fp: usize, fn_: usize) -> Self {
        DetectionCounts { true_positives: tp, false_positives: fp, false_negatives: fn_ }
    }

    /// Precision `TP / (TP + FP)`; `0.0` when undefined.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall `TP / (TP + FN)`; `0.0` when undefined.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F-measure `2·P·R / (P + R)`; `0.0` when undefined.
    pub fn f_measure(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// A multi-class confusion matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n_classes: usize,
    /// `counts[actual * n + predicted]`.
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `n_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0`.
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        ConfusionMatrix { n_classes, counts: vec![0; n_classes * n_classes] }
    }

    /// Records one prediction.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(actual < self.n_classes && predicted < self.n_classes, "label out of range");
        self.counts[actual * self.n_classes + predicted] += 1;
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Count of samples with the given actual/predicted pair.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual * self.n_classes + predicted]
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy; `0.0` when no samples are recorded.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.n_classes).map(|i| self.count(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (diagonal over row sum); `None` for classes
    /// never observed.
    pub fn per_class_recall(&self) -> Vec<Option<f64>> {
        (0..self.n_classes)
            .map(|i| {
                let row: u64 = (0..self.n_classes).map(|j| self.count(i, j)).sum();
                if row == 0 {
                    None
                } else {
                    Some(self.count(i, i) as f64 / row as f64)
                }
            })
            .collect()
    }

    /// Merges another matrix into this one (e.g. across CV folds).
    ///
    /// # Panics
    ///
    /// Panics if the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.n_classes, other.n_classes, "class count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Mean and two-sided 95% confidence half-width of a set of repeated
/// measurements (Fig. 8's error bars over the 10 CV re-splits).
///
/// Uses the normal approximation `1.96 · s / √n`; with n = 10 repeats
/// this slightly understates the t-interval, as most plotting scripts
/// (including, in all likelihood, the paper's) do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub half_width: f64,
}

impl MeanCi {
    /// Computes the interval; an empty slice yields zeros, a singleton
    /// a zero half-width.
    pub fn of(xs: &[f64]) -> MeanCi {
        if xs.is_empty() {
            return MeanCi { mean: 0.0, half_width: 0.0 };
        }
        let mean = crate::descriptive::mean(xs);
        if xs.len() < 2 {
            return MeanCi { mean, half_width: 0.0 };
        }
        let s = crate::descriptive::sample_variance(xs).sqrt();
        MeanCi { mean, half_width: 1.96 * s / (xs.len() as f64).sqrt() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_metrics_known() {
        let c = DetectionCounts::new(8, 2, 2);
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.recall() - 0.8).abs() < 1e-12);
        assert!((c.f_measure() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn detection_degenerate() {
        let c = DetectionCounts::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f_measure(), 0.0);
    }

    #[test]
    fn f_measure_harmonic() {
        // P = 1.0, R = 0.5 -> F = 2/3.
        let c = DetectionCounts::new(5, 0, 5);
        assert!((c.f_measure() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_accuracy() {
        let mut m = ConfusionMatrix::new(3);
        m.record(0, 0);
        m.record(1, 1);
        m.record(2, 0);
        m.record(2, 2);
        assert_eq!(m.total(), 4);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(m.count(2, 0), 1);
    }

    #[test]
    fn per_class_recall_handles_missing_class() {
        let mut m = ConfusionMatrix::new(3);
        m.record(0, 0);
        m.record(0, 1);
        let recalls = m.per_class_recall();
        assert_eq!(recalls[0], Some(0.5));
        assert_eq!(recalls[1], None);
        assert_eq!(recalls[2], None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionMatrix::new(2);
        a.record(0, 0);
        let mut b = ConfusionMatrix::new(2);
        b.record(1, 0);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.count(1, 0), 1);
    }

    #[test]
    fn empty_matrix_accuracy_zero() {
        assert_eq!(ConfusionMatrix::new(2).accuracy(), 0.0);
    }

    #[test]
    fn mean_ci_shrinks_with_n() {
        let few = MeanCi::of(&[0.8, 0.9, 1.0, 0.7]);
        let many: Vec<f64> = (0..100).map(|i| 0.85 + 0.1 * ((i % 4) as f64 - 1.5) / 1.5).collect();
        let wide = MeanCi::of(&many);
        assert!(wide.half_width < few.half_width);
        assert_eq!(MeanCi::of(&[]).mean, 0.0);
        assert_eq!(MeanCi::of(&[0.5]).half_width, 0.0);
    }
}
