//! Autocorrelation of a time series.
//!
//! RE's third per-stream feature (paper §IV-D1) is the window's
//! autocorrelation `R(k) = Σ (r_j − µ)(r_{j+k} − µ) / ((n − k) σ²)`.
//! A walking body sweeps through a link's Fresnel zone smoothly, so the
//! obstruction leaves *correlated* excursions; pure receiver noise does
//! not. That difference is what makes the feature discriminative.

use crate::descriptive::{mean, variance};

/// Autocorrelation of `xs` at lag `k` with the paper's normalization.
///
/// Returns `0.0` for degenerate inputs (fewer than `k + 2` samples or
/// zero variance) — a constant window simply carries no correlation
/// information, and features must stay finite.
pub fn autocorrelation(xs: &[f64], k: usize) -> f64 {
    if xs.len() < k + 2 {
        return 0.0;
    }
    let n = xs.len();
    let mu = mean(xs);
    let var = variance(xs);
    if var <= 0.0 {
        return 0.0;
    }
    let num: f64 = (0..n - k).map(|j| (xs[j] - mu) * (xs[j + k] - mu)).sum();
    num / ((n - k) as f64 * var)
}

/// The autocorrelation function for lags `1..=max_lag`.
pub fn acf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    (1..=max_lag).map(|k| autocorrelation(xs, k)).collect()
}

/// Mean autocorrelation over lags `1..=max_lag`; a scalar summary used
/// as the RE feature (the paper reports a single `ac` value per
/// stream without specifying the lag, so we average the short lags that
/// a 5 Hz stream resolves within the `t∆` window).
pub fn mean_acf(xs: &[f64], max_lag: usize) -> f64 {
    if max_lag == 0 {
        return 0.0;
    }
    acf(xs, max_lag).iter().sum::<f64>() / max_lag as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn lag_zero_equivalent_is_one() {
        // R(0) by the formula equals 1; our API starts at lag 1 but the
        // formula must agree for k = 0.
        let xs = [1.0, 3.0, 2.0, 5.0, 4.0];
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_is_zero() {
        assert_eq!(autocorrelation(&[2.0; 20], 1), 0.0);
    }

    #[test]
    fn short_series_is_zero() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 3), 0.0);
        assert_eq!(autocorrelation(&[], 1), 0.0);
    }

    #[test]
    fn alternating_series_negative_lag1() {
        let xs: Vec<f64> = (0..40).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        assert!(autocorrelation(&xs, 1) < -0.9);
        assert!(autocorrelation(&xs, 2) > 0.9);
    }

    #[test]
    fn smooth_ramp_high_lag1() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).sin()).collect();
        assert!(autocorrelation(&xs, 1) > 0.9);
    }

    #[test]
    fn white_noise_low_autocorrelation() {
        let mut rng = Rng::seed_from_u64(6);
        let xs: Vec<f64> = (0..5000).map(|_| rng.normal()).collect();
        assert!(autocorrelation(&xs, 1).abs() < 0.05);
        assert!(autocorrelation(&xs, 5).abs() < 0.05);
    }

    #[test]
    fn acf_lengths() {
        let xs: Vec<f64> = (0..30).map(f64::from).collect();
        assert_eq!(acf(&xs, 4).len(), 4);
        assert_eq!(mean_acf(&xs, 0), 0.0);
        assert!(mean_acf(&xs, 3) > 0.5, "ramp should autocorrelate");
    }
}
