//! IEEE CRC-32 (the zlib/Ethernet polynomial).
//!
//! Both binary formats in the workspace — the sensor wire codec
//! (`fadewich-runtime::wire`) and the model-artifact bundle
//! (`fadewich-core::artifact`) — guard their payloads with the same
//! checksum, so the table lives here, beneath both crates.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 (the zlib/Ethernet polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic zlib check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_detects_any_single_bit_flip() {
        let clean = b"fadewich model bundle".to_vec();
        let reference = crc32(&clean);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut dirty = clean.clone();
                dirty[byte] ^= 1 << bit;
                assert_ne!(crc32(&dirty), reference, "flip {byte}:{bit} not caught");
            }
        }
    }
}
