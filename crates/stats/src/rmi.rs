//! Relative mutual information (RMI) feature importance.
//!
//! The paper's appendix ranks features by
//! `RMI(x, y) = (H(x) − H(x|y)) / H(x)` where `x` is a feature
//! quantized into 256 linearly spaced bins between its minimum and
//! maximum, and `y` is the class label (Table V, Fig. 12).

use crate::histogram::{entropy_of_counts, Histogram};

/// Number of quantization bins the paper uses.
pub const PAPER_BINS: usize = 256;

/// Relative mutual information between a continuous feature `xs` and
/// integer class labels `ys`, using `bins` linear quantization bins.
///
/// Returns `0.0` when the feature carries no entropy (constant) or the
/// inputs are empty — a feature that never varies cannot discriminate.
/// The result is clamped to `[0, 1]`; tiny negative estimates can
/// otherwise arise from finite-sample noise.
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths or `bins == 0`.
pub fn relative_mutual_information(xs: &[f64], ys: &[usize], bins: usize) -> f64 {
    assert_eq!(xs.len(), ys.len(), "feature and labels must align");
    assert!(bins > 0, "need at least one bin");
    if xs.is_empty() {
        return 0.0;
    }
    let quantizer = Histogram::of_data(xs, bins);
    // Marginal H(x).
    let mut marginal = vec![0u64; bins];
    for &x in xs {
        marginal[quantizer.bin_index(x)] += 1;
    }
    let h_x = entropy_of_counts(&marginal);
    if h_x <= 0.0 {
        return 0.0;
    }
    // Conditional H(x | y) = Σ_y p(y) H(x | y = y).
    let n_classes = ys.iter().copied().max().map_or(0, |m| m + 1);
    let mut per_class = vec![vec![0u64; bins]; n_classes];
    let mut class_counts = vec![0u64; n_classes];
    for (&x, &y) in xs.iter().zip(ys) {
        per_class[y][quantizer.bin_index(x)] += 1;
        class_counts[y] += 1;
    }
    let total = xs.len() as f64;
    let h_x_given_y: f64 = per_class
        .iter()
        .zip(&class_counts)
        .filter(|(_, &c)| c > 0)
        .map(|(counts, &c)| (c as f64 / total) * entropy_of_counts(counts))
        .sum();
    ((h_x - h_x_given_y) / h_x).clamp(0.0, 1.0)
}

/// A named feature with its RMI score.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedFeature {
    /// Feature name, e.g. `d9-d2-ent`.
    pub name: String,
    /// RMI score in `[0, 1]`.
    pub rmi: f64,
}

/// Ranks features by RMI, highest first (the Table V computation).
///
/// `features` is column-major: one `Vec<f64>` per feature, each aligned
/// with `labels`.
///
/// # Panics
///
/// Panics if `names.len() != features.len()` or any column length
/// differs from `labels.len()`.
pub fn rank_features(
    names: &[String],
    features: &[Vec<f64>],
    labels: &[usize],
    bins: usize,
) -> Vec<RankedFeature> {
    assert_eq!(names.len(), features.len(), "one name per feature");
    let mut ranked: Vec<RankedFeature> = names
        .iter()
        .zip(features)
        .map(|(name, col)| RankedFeature {
            name: name.clone(),
            rmi: relative_mutual_information(col, labels, bins),
        })
        .collect();
    ranked.sort_by(|a, b| b.rmi.partial_cmp(&a.rmi).expect("RMI is finite"));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn perfectly_informative_feature() {
        // Feature value identifies the class exactly.
        let xs: Vec<f64> = (0..100).map(|i| (i % 4) as f64 * 10.0).collect();
        let ys: Vec<usize> = (0..100).map(|i| i % 4).collect();
        let rmi = relative_mutual_information(&xs, &ys, 256);
        assert!(rmi > 0.99, "rmi = {rmi}");
    }

    #[test]
    fn uninformative_feature() {
        let mut rng = Rng::seed_from_u64(12);
        let xs: Vec<f64> = (0..2000).map(|_| rng.normal()).collect();
        let ys: Vec<usize> = (0..2000).map(|i| i % 3).collect();
        let rmi = relative_mutual_information(&xs, &ys, 16);
        assert!(rmi < 0.05, "rmi = {rmi}");
    }

    #[test]
    fn constant_feature_zero() {
        let xs = vec![3.0; 50];
        let ys: Vec<usize> = (0..50).map(|i| i % 2).collect();
        assert_eq!(relative_mutual_information(&xs, &ys, 256), 0.0);
    }

    #[test]
    fn rmi_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(14);
        for trial in 0..20 {
            let n = 50 + trial * 10;
            let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
            let ys: Vec<usize> = (0..n).map(|_| rng.below(4)).collect();
            let rmi = relative_mutual_information(&xs, &ys, 32);
            assert!((0.0..=1.0).contains(&rmi));
        }
    }

    #[test]
    fn partially_informative_between() {
        let mut rng = Rng::seed_from_u64(16);
        // Class shifts the mean by 1 sigma: informative but not perfect.
        let ys: Vec<usize> = (0..3000).map(|i| i % 2).collect();
        let xs: Vec<f64> = ys.iter().map(|&y| rng.normal() + y as f64 * 1.0).collect();
        // A 1-sigma mean shift carries ~0.15 bits of MI against ~4 bits
        // of marginal entropy at 32 bins: RMI in the low percent range.
        let rmi = relative_mutual_information(&xs, &ys, 32);
        assert!(rmi > 0.02 && rmi < 0.5, "rmi = {rmi}");
    }

    #[test]
    fn ranking_orders_by_informativeness() {
        let mut rng = Rng::seed_from_u64(18);
        let ys: Vec<usize> = (0..1000).map(|i| i % 2).collect();
        let strong: Vec<f64> = ys.iter().map(|&y| y as f64 * 5.0 + rng.normal() * 0.1).collect();
        let weak: Vec<f64> = ys.iter().map(|&y| y as f64 * 0.5 + rng.normal()).collect();
        let noise: Vec<f64> = (0..1000).map(|_| rng.normal()).collect();
        let names: Vec<String> =
            ["noise", "strong", "weak"].iter().map(|s| s.to_string()).collect();
        let ranked = rank_features(&names, &[noise, strong, weak], &ys, 64);
        assert_eq!(ranked[0].name, "strong");
        assert_eq!(ranked[2].name, "noise");
        assert!(ranked[0].rmi >= ranked[1].rmi && ranked[1].rmi >= ranked[2].rmi);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn misaligned_inputs_panic() {
        relative_mutual_information(&[1.0], &[0, 1], 8);
    }
}
