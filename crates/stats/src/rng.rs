//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the FADEWICH reproduction (channel
//! fading, user behaviour, input activity, cross-validation splits)
//! draws from [`Rng`], a seedable xoshiro256++ generator. Using our own
//! generator instead of the `rand` crate keeps experiment outputs
//! bit-identical across platforms and toolchain upgrades, which matters
//! because EXPERIMENTS.md records concrete numbers.
//!
//! # Examples
//!
//! ```
//! use fadewich_stats::rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let x = rng.f64();
//! assert!((0.0..1.0).contains(&x));
//! // Same seed, same stream.
//! assert_eq!(Rng::seed_from_u64(42).next_u64(), Rng::seed_from_u64(42).next_u64());
//! ```

use std::f64::consts::PI;

/// SplitMix64 step, used to expand a 64-bit seed into xoshiro state.
///
/// This is the initialization procedure recommended by the xoshiro
/// authors: it guarantees that even low-entropy seeds (0, 1, 2, ...)
/// produce well-distributed initial states.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ pseudo-random number generator.
///
/// Not cryptographically secure — it drives simulations, not key
/// material. Cloning an `Rng` clones its stream position, which is
/// occasionally useful in tests; use [`Rng::fork`] to derive an
/// independent sub-stream instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_cache: Option<u64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s, gauss_cache: None }
    }

    /// Derives an independent generator for a named sub-component.
    ///
    /// Forking by `label` (rather than drawing a fresh seed from
    /// `self`) keeps a component's stream stable even when unrelated
    /// components are added or draw in a different order.
    pub fn fork(&self, label: u64) -> Self {
        // Mix the current state with the label through SplitMix64 so
        // forks with different labels are decorrelated.
        let mut sm = self
            .s
            .iter()
            .fold(label ^ 0xA076_1D64_78BD_642F, |acc, &w| {
                acc.rotate_left(17) ^ w.wrapping_mul(0xE703_7ED1_A0B4_28DB)
            });
        Rng::seed_from_u64(splitmix64(&mut sm))
    }

    /// Derives the generator for task `task` of a parallel fan-out
    /// rooted at `seed`.
    ///
    /// Each task index yields an independent, decorrelated stream that
    /// depends only on `(seed, task)` — never on which worker thread
    /// executes the task or in what order tasks are claimed — so a
    /// parallel map that draws from per-task streams produces output
    /// bit-identical to the same map run serially.
    pub fn task_stream(seed: u64, task: u64) -> Self {
        Rng::seed_from_u64(seed).fork(task)
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        // Take the top 53 bits; division by 2^53 is exact.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "invalid range [{lo}, {hi})");
        lo + (hi - lo) * self.f64()
    }

    /// Returns a uniform `usize` in `[0, n)` using rejection sampling
    /// (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        let n = n as u64;
        // Lemire-style rejection: zone is the largest multiple of n.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Samples a standard normal via the Box–Muller transform.
    ///
    /// The second value of each Box–Muller pair is cached, so
    /// consecutive calls alternate between one and zero raw draws.
    pub fn normal(&mut self) -> f64 {
        if let Some(bits) = self.gauss_cache.take() {
            return f64::from_bits(bits);
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (2.0 * PI * u2).sin_cos();
        self.gauss_cache = Some((r * s).to_bits());
        r * c
    }

    /// Samples `N(mu, sigma²)`.
    pub fn normal_with(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.normal()
    }

    /// Samples an exponential with rate `lambda` (mean `1/lambda`).
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0`.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential rate must be positive");
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / lambda
    }

    /// Samples a zero-mean Laplace distribution with scale `b`.
    pub fn laplace(&mut self, b: f64) -> f64 {
        let u = self.f64() - 0.5;
        -b * u.signum() * (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln()
    }

    /// Samples a skewed Laplace: negative deviations have scale
    /// `b_neg`, positive ones `b_pos`.
    ///
    /// Patwari & Wilson model fade-level RSSI deviations as
    /// skew-Laplace; deep fades (negative side) have heavier tails.
    pub fn skew_laplace(&mut self, b_neg: f64, b_pos: f64) -> f64 {
        // Probability mass on the positive side proportional to b_pos.
        let p_pos = b_pos / (b_pos + b_neg);
        let mag = self.exponential(1.0);
        if self.bernoulli(p_pos) {
            mag * b_pos
        } else {
            -mag * b_neg
        }
    }

    /// Samples a Poisson count with mean `lambda` (Knuth's method; fine
    /// for the small rates used here).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or not finite.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda.is_finite() && lambda >= 0.0, "invalid poisson rate");
        if lambda == 0.0 {
            return 0;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
            // Numerical guard for absurd rates.
            if k > 10_000_000 {
                return k;
            }
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` when empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len())])
        }
    }
}

impl Default for Rng {
    fn default() -> Self {
        Rng::seed_from_u64(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(
            Rng::seed_from_u64(1).next_u64(),
            Rng::seed_from_u64(2).next_u64()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.below(5)] += 1;
        }
        for &c in &counts {
            // Expect 10_000 each; allow 5% deviation.
            assert!((9_500..=10_500).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(5);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = rng.normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn skew_laplace_is_skewed() {
        let mut rng = Rng::seed_from_u64(13);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.skew_laplace(3.0, 1.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        // Heavier negative tail pulls the mean below zero.
        assert!(mean < -0.5, "mean = {mean}");
    }

    #[test]
    fn poisson_mean() {
        let mut rng = Rng::seed_from_u64(17);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.poisson(3.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn fork_streams_are_decorrelated() {
        let root = Rng::seed_from_u64(21);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let equal = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn fork_is_stable() {
        let root = Rng::seed_from_u64(21);
        assert_eq!(root.fork(9).next_u64(), root.fork(9).next_u64());
    }

    #[test]
    fn task_streams_are_stable_and_distinct() {
        let mut a = Rng::task_stream(7, 0);
        let mut a2 = Rng::task_stream(7, 0);
        let mut b = Rng::task_stream(7, 1);
        let x = a.next_u64();
        assert_eq!(x, a2.next_u64());
        assert_ne!(x, b.next_u64());
        // Matches a fork of the same root, by construction.
        assert_eq!(
            Rng::task_stream(7, 42).next_u64(),
            Rng::seed_from_u64(7).fork(42).next_u64()
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(23);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(rng.choose::<u8>(&[]), None);
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng::seed_from_u64(0).below(0);
    }
}
