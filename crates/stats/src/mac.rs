//! Keyed message authentication for the wire codec.
//!
//! Wire v4 frames carry a truncated keyed-MAC tag so the station can
//! reject injected or spoofed sensor traffic ("Rejecting the Attack"
//! hardens 802.11 management frames the same way; here the principle
//! moves to the sensor → station link). The primitive is SipHash-2-4
//! — a 128-bit-keyed pseudorandom function with a 64-bit output,
//! designed exactly for short-input authentication — implemented from
//! the reference specification so the workspace stays dependency-free.
//!
//! The hasher is *streaming* ([`SipHasher::write`] any number of
//! times, then [`SipHasher::finish`]): the frame-verify hot path hashes
//! a header slice and a payload slice without stitching them into a
//! contiguous copy first.
//!
//! This is a MAC, not a hash: outputs are unpredictable only while the
//! key is secret. Key handling lives in `fadewich_core::auth`.

/// One SipHash compression round over the four lanes.
#[inline(always)]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// Streaming SipHash-2-4 over a 128-bit key.
///
/// Feed bytes with [`write`](SipHasher::write) in any chunking — the
/// digest depends only on the concatenated stream — then take the
/// 64-bit tag with [`finish`](SipHasher::finish).
#[derive(Debug, Clone)]
pub struct SipHasher {
    v: [u64; 4],
    /// Partial input block (< 8 bytes) awaiting completion.
    buf: [u8; 8],
    buf_len: usize,
    /// Total bytes written, mod 2^64 (the spec folds `len & 0xff` into
    /// the final block).
    total: u64,
}

impl SipHasher {
    /// Initializes the four lanes from a 128-bit key (two little-endian
    /// words XORed with the spec constants).
    pub fn new(key: &[u8; 16]) -> SipHasher {
        let k0 = u64::from_le_bytes(key[..8].try_into().expect("8-byte half"));
        let k1 = u64::from_le_bytes(key[8..].try_into().expect("8-byte half"));
        SipHasher {
            v: [
                k0 ^ 0x736f_6d65_7073_6575,
                k1 ^ 0x646f_7261_6e64_6f6d,
                k0 ^ 0x6c79_6765_6e65_7261,
                k1 ^ 0x7465_6462_7974_6573,
            ],
            buf: [0; 8],
            buf_len: 0,
            total: 0,
        }
    }

    #[inline(always)]
    fn compress(&mut self, block: u64) {
        self.v[3] ^= block;
        sipround(&mut self.v);
        sipround(&mut self.v);
        self.v[0] ^= block;
    }

    /// Absorbs more input. Chunk boundaries do not affect the digest.
    pub fn write(&mut self, mut bytes: &[u8]) {
        self.total = self.total.wrapping_add(bytes.len() as u64);
        if self.buf_len > 0 {
            let need = 8 - self.buf_len;
            let take = need.min(bytes.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&bytes[..take]);
            self.buf_len += take;
            bytes = &bytes[take..];
            if self.buf_len < 8 {
                return;
            }
            let block = u64::from_le_bytes(self.buf);
            self.compress(block);
            self.buf_len = 0;
        }
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let block = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.compress(block);
        }
        let rest = chunks.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    /// Finalizes: pads the last block with the length byte, runs the
    /// four finalization rounds, and returns the 64-bit tag.
    pub fn finish(mut self) -> u64 {
        let mut last = [0u8; 8];
        last[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        last[7] = self.total as u8;
        let block = u64::from_le_bytes(last);
        self.compress(block);
        self.v[2] ^= 0xff;
        sipround(&mut self.v);
        sipround(&mut self.v);
        sipround(&mut self.v);
        sipround(&mut self.v);
        self.v[0] ^ self.v[1] ^ self.v[2] ^ self.v[3]
    }
}

/// One-shot SipHash-2-4 of a contiguous message.
pub fn siphash24(key: &[u8; 16], message: &[u8]) -> u64 {
    let mut h = SipHasher::new(key);
    h.write(message);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference key 00 01 02 … 0f from the SipHash paper.
    fn reference_key() -> [u8; 16] {
        let mut k = [0u8; 16];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn matches_reference_vectors() {
        // Expected tags for messages 00 01 … (len-1) under the
        // reference key, from the SipHash reference implementation's
        // vectors_sip64 table (little-endian u64s).
        let expected: [(usize, u64); 5] = [
            (0, 0x726f_db47_dd0e_0e31),
            (1, 0x74f8_39c5_93dc_67fd),
            (2, 0x0d6c_8009_d9a9_4f5a),
            (8, 0x93f5_f579_9a93_2462),
            (15, 0xa129_ca61_49be_45e5),
        ];
        let key = reference_key();
        for (len, want) in expected {
            let msg: Vec<u8> = (0..len as u8).collect();
            assert_eq!(siphash24(&key, &msg), want, "vector mismatch at len {len}");
        }
    }

    #[test]
    fn streaming_is_chunking_invariant() {
        let key = reference_key();
        let msg: Vec<u8> = (0..253u8).map(|i| i.wrapping_mul(31).wrapping_add(7)).collect();
        let oneshot = siphash24(&key, &msg);
        // Every split point of a two-chunk feed, plus a byte-at-a-time
        // feed, must reproduce the one-shot digest.
        for split in 0..=msg.len() {
            let mut h = SipHasher::new(&key);
            h.write(&msg[..split]);
            h.write(&msg[split..]);
            assert_eq!(h.finish(), oneshot, "diverged at split {split}");
        }
        let mut h = SipHasher::new(&key);
        for b in &msg {
            h.write(std::slice::from_ref(b));
        }
        assert_eq!(h.finish(), oneshot);
    }

    #[test]
    fn key_and_message_sensitivity() {
        let key = reference_key();
        let msg = b"fadewich frame".to_vec();
        let tag = siphash24(&key, &msg);
        // Flipping any single key bit or message bit moves the tag.
        for byte in 0..16 {
            let mut k = key;
            k[byte] ^= 1;
            assert_ne!(siphash24(&k, &msg), tag, "key byte {byte} did not matter");
        }
        for byte in 0..msg.len() {
            let mut m = msg.clone();
            m[byte] ^= 1;
            assert_ne!(siphash24(&key, &m), tag, "message byte {byte} did not matter");
        }
        // Length-extension shape: same prefix, one more byte, new tag.
        let mut longer = msg.clone();
        longer.push(0);
        assert_ne!(siphash24(&key, &longer), tag);
    }
}
