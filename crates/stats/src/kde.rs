//! Gaussian kernel density estimation.
//!
//! MD's *normal profile* (paper §IV-C2) is the KDE-smoothed
//! distribution of the summed window standard deviations `s_t`; the
//! anomaly threshold is the `(100 − α)`-th percentile of the estimated
//! cumulative distribution `Ŝ`. [`GaussianKde`] provides the density,
//! the exact smoothed CDF (a mixture of normal CDFs), and its inverse.

use std::f64::consts::{PI, SQRT_2};

/// Standard normal CDF via `erf`.
fn phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / SQRT_2))
}

/// Abramowitz–Stegun 7.1.26 rational approximation of `erf`
/// (|error| ≤ 1.5e-7, ample for percentile thresholds).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// A Gaussian kernel density estimate over a sample of `f64` values.
///
/// # Examples
///
/// ```
/// use fadewich_stats::kde::GaussianKde;
///
/// let data: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
/// let kde = GaussianKde::fit(&data).unwrap();
/// let p99 = kde.quantile(0.99);
/// assert!(p99 > 8.0 && p99 < 12.0);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianKde {
    samples: Vec<f64>,
    bandwidth: f64,
}

/// Error fitting a KDE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitKdeError {
    /// No samples were provided.
    Empty,
    /// Samples contained NaN or infinity.
    NonFinite,
}

impl std::fmt::Display for FitKdeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitKdeError::Empty => write!(f, "cannot fit a density to an empty sample"),
            FitKdeError::NonFinite => write!(f, "sample contains non-finite values"),
        }
    }
}

impl std::error::Error for FitKdeError {}

impl GaussianKde {
    /// Fits a KDE with Silverman's rule-of-thumb bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`FitKdeError::Empty`] for an empty sample and
    /// [`FitKdeError::NonFinite`] if any value is NaN/∞.
    pub fn fit(samples: &[f64]) -> Result<Self, FitKdeError> {
        let bw = silverman_bandwidth(samples)?;
        Ok(GaussianKde { samples: samples.to_vec(), bandwidth: bw })
    }

    /// Fits with an explicit bandwidth.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GaussianKde::fit`]; additionally rejects a
    /// non-positive or non-finite bandwidth as [`FitKdeError::NonFinite`].
    pub fn fit_with_bandwidth(samples: &[f64], bandwidth: f64) -> Result<Self, FitKdeError> {
        if samples.is_empty() {
            return Err(FitKdeError::Empty);
        }
        if samples.iter().any(|x| !x.is_finite()) || !(bandwidth > 0.0) || !bandwidth.is_finite() {
            return Err(FitKdeError::NonFinite);
        }
        Ok(GaussianKde { samples: samples.to_vec(), bandwidth })
    }

    /// The kernel bandwidth `h`.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the KDE has no samples (never true for a fitted KDE).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Estimated probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / ((self.samples.len() as f64) * h * (2.0 * PI).sqrt());
        self.samples
            .iter()
            .map(|&xi| {
                let z = (x - xi) / h;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Estimated cumulative distribution at `x` (exact mixture CDF).
    pub fn cdf(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        self.samples.iter().map(|&xi| phi((x - xi) / h)).sum::<f64>() / self.samples.len() as f64
    }

    /// Inverse CDF by bisection: the smallest `x` with `cdf(x) ≥ q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1)`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q < 1.0, "quantile level {q} must be in (0,1)");
        let lo0 = self
            .samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let hi0 = self
            .samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        // The mixture's tails extend a few bandwidths past the data.
        let mut lo = lo0 - 10.0 * self.bandwidth;
        let mut hi = hi0 + 10.0 * self.bandwidth;
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Silverman's rule-of-thumb bandwidth `0.9 · min(σ̂, IQR/1.34) · n^(−1/5)`.
///
/// Falls back to a small positive constant for (near-)degenerate
/// samples so that a constant profile still yields a usable KDE.
///
/// # Errors
///
/// Returns [`FitKdeError::Empty`]/[`FitKdeError::NonFinite`] under the
/// same conditions as [`GaussianKde::fit`].
pub fn silverman_bandwidth(samples: &[f64]) -> Result<f64, FitKdeError> {
    if samples.is_empty() {
        return Err(FitKdeError::Empty);
    }
    if samples.iter().any(|x| !x.is_finite()) {
        return Err(FitKdeError::NonFinite);
    }
    let n = samples.len() as f64;
    let sd = crate::descriptive::std_dev(samples);
    let iqr = if samples.len() >= 4 {
        crate::descriptive::percentile(samples, 75.0) - crate::descriptive::percentile(samples, 25.0)
    } else {
        0.0
    };
    let spread = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
    let h = 0.9 * spread * n.powf(-0.2);
    Ok(if h > 1e-9 { h } else { 1e-3 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn erf_reference_values() {
        // The A&S 7.1.26 approximation has ~1.5e-7 absolute error.
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let mut rng = Rng::seed_from_u64(4);
        let data: Vec<f64> = (0..200).map(|_| rng.normal_with(10.0, 2.0)).collect();
        let kde = GaussianKde::fit(&data).unwrap();
        // Trapezoidal integration over a wide range.
        let (a, b, steps) = (-10.0, 30.0, 4000);
        let dx = (b - a) / steps as f64;
        let integral: f64 = (0..=steps)
            .map(|i| {
                let x = a + i as f64 * dx;
                let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
                w * kde.pdf(x)
            })
            .sum::<f64>()
            * dx;
        assert!((integral - 1.0).abs() < 1e-3, "integral = {integral}");
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let data = [1.0, 2.0, 2.5, 3.0, 10.0];
        let kde = GaussianKde::fit(&data).unwrap();
        let mut prev = 0.0;
        for i in 0..200 {
            let x = -5.0 + i as f64 * 0.1;
            let c = kde.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c + 1e-12 >= prev, "CDF not monotone at {x}");
            prev = c;
        }
        assert!(kde.cdf(-100.0) < 1e-6);
        assert!(kde.cdf(100.0) > 1.0 - 1e-6);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let mut rng = Rng::seed_from_u64(8);
        let data: Vec<f64> = (0..500).map(|_| rng.normal_with(0.0, 1.0)).collect();
        let kde = GaussianKde::fit(&data).unwrap();
        for q in [0.01, 0.25, 0.5, 0.9, 0.99] {
            let x = kde.quantile(q);
            assert!((kde.cdf(x) - q).abs() < 1e-9, "q = {q}");
        }
    }

    #[test]
    fn quantile_of_standard_normal_sample() {
        let mut rng = Rng::seed_from_u64(15);
        let data: Vec<f64> = (0..5000).map(|_| rng.normal()).collect();
        let kde = GaussianKde::fit(&data).unwrap();
        // True 99th percentile of N(0,1) is ~2.326.
        let q99 = kde.quantile(0.99);
        assert!((q99 - 2.326).abs() < 0.25, "q99 = {q99}");
    }

    #[test]
    fn constant_sample_still_fits() {
        let kde = GaussianKde::fit(&[5.0; 50]).unwrap();
        assert!(kde.bandwidth() > 0.0);
        let q = kde.quantile(0.99);
        assert!((q - 5.0).abs() < 0.1, "q = {q}");
    }

    #[test]
    fn fit_errors() {
        assert_eq!(GaussianKde::fit(&[]).unwrap_err(), FitKdeError::Empty);
        assert_eq!(
            GaussianKde::fit(&[1.0, f64::NAN]).unwrap_err(),
            FitKdeError::NonFinite
        );
        assert_eq!(
            GaussianKde::fit_with_bandwidth(&[1.0], 0.0).unwrap_err(),
            FitKdeError::NonFinite
        );
        assert!(!format!("{}", FitKdeError::Empty).is_empty());
    }

    #[test]
    #[should_panic(expected = "must be in (0,1)")]
    fn quantile_rejects_invalid_level() {
        GaussianKde::fit(&[1.0, 2.0]).unwrap().quantile(1.0);
    }
}
