//! Statistics substrate for the FADEWICH reproduction.
//!
//! FADEWICH's Movement Detection module is, at heart, statistics over
//! RSSI streams: rolling standard deviations, a kernel-density-
//! estimated anomaly threshold, and window features (variance, entropy,
//! autocorrelation). Its appendix analysis adds Pearson correlation and
//! relative mutual information. This crate implements all of it —
//! deterministically, with its own seedable PRNG so that every
//! experiment in the repository is exactly reproducible.
//!
//! # Modules
//!
//! - [`rng`] — seedable xoshiro256++ generator and distribution samplers
//! - [`checksum`] — the IEEE CRC-32 shared by the wire codec and the
//!   model-artifact bundle
//! - [`descriptive`] — batch mean/variance/percentiles
//! - [`rolling`] — O(1) rolling-window statistics and history buffers
//! - [`histogram`] — fixed-bin histograms and Shannon entropy
//! - [`kde`] — Gaussian kernel density estimation with exact CDF/quantile
//! - [`mac`] — streaming SipHash-2-4 keyed MAC for frame authentication
//! - [`autocorr`] — autocorrelation features
//! - [`corr`] — Pearson correlation matrices (paper Fig. 11)
//! - [`rmi`] — relative mutual information ranking (paper Table V, Fig. 12)
//! - [`metrics`] — detection counts, F-measure, confusion matrices
//!
//! # Examples
//!
//! Computing the MD anomaly threshold from a profile of summed
//! standard deviations:
//!
//! ```
//! use fadewich_stats::{kde::GaussianKde, rng::Rng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = Rng::seed_from_u64(1);
//! let profile: Vec<f64> = (0..500).map(|_| rng.normal_with(40.0, 6.0)).collect();
//! let kde = GaussianKde::fit(&profile)?;
//! let threshold = kde.quantile(0.99); // the (100 - alpha)-th percentile
//! assert!(threshold > 50.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autocorr;
pub mod checksum;
pub mod corr;
pub mod descriptive;
pub mod histogram;
pub mod kde;
pub mod mac;
pub mod metrics;
pub mod rmi;
pub mod rolling;
pub mod rng;

pub use kde::GaussianKde;
pub use metrics::{ConfusionMatrix, DetectionCounts};
pub use rng::Rng;
pub use rolling::{HistoryBuffer, RollingStd};
