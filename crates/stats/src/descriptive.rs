//! Descriptive statistics over slices of `f64`.
//!
//! These are the batch (non-streaming) counterparts of
//! [`crate::rolling`]; both are unit-tested against each other.

/// Arithmetic mean. Returns `0.0` for an empty slice.
///
/// ```
/// assert_eq!(fadewich_stats::descriptive::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`, as the paper's feature
/// definition does). Returns `0.0` for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample variance (divides by `n − 1`). Returns `0.0` when `n < 2`.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum, ignoring NaNs. Returns `None` for an empty slice.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().filter(|x| !x.is_nan()).fold(None, |acc, x| {
        Some(acc.map_or(x, |a: f64| a.min(x)))
    })
}

/// Maximum, ignoring NaNs. Returns `None` for an empty slice.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().filter(|x| !x.is_nan()).fold(None, |acc, x| {
        Some(acc.map_or(x, |a: f64| a.max(x)))
    })
}

/// Percentile with linear interpolation between order statistics
/// (the same convention as NumPy's default).
///
/// `p` is in percent, e.g. `percentile(xs, 99.0)`.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median (50th percentile).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// A compact five-number-plus summary of a distribution, used when
/// rendering figure data as text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// 50th percentile.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f64]) -> Summary {
        assert!(!xs.is_empty(), "summary of empty slice");
        Summary {
            n: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: min(xs).expect("non-empty"),
            p25: percentile(xs, 25.0),
            median: median(xs),
            p75: percentile(xs, 75.0),
            max: max(xs).expect("non-empty"),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} p25={:.3} med={:.3} p75={:.3} max={:.3}",
            self.n, self.mean, self.std_dev, self.min, self.p25, self.median, self.p75, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_known_values() {
        // Population variance of [1..5] is 2.0.
        assert!((variance(&[1.0, 2.0, 3.0, 4.0, 5.0]) - 2.0).abs() < 1e-12);
        // Sample variance divides by n-1 -> 2.5.
        assert!((sample_variance(&[1.0, 2.0, 3.0, 4.0, 5.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn variance_constant_is_zero() {
        assert_eq!(variance(&[3.0; 10]), 0.0);
        assert_eq!(std_dev(&[3.0; 10]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        // 99th percentile of [1..4]: rank 2.97 -> 3.97.
        assert!((percentile(&xs, 99.0) - 3.97).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 35.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "percentile of empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn min_max_ignore_nan() {
        let xs = [f64::NAN, 2.0, -1.0];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(2.0));
        assert_eq!(min(&[]), None);
    }

    #[test]
    fn summary_is_consistent() {
        let xs: Vec<f64> = (1..=9).map(f64::from).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.n, 9);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert!(s.p25 < s.median && s.median < s.p75);
        assert!(!format!("{s}").is_empty());
    }
}
