//! Property-based tests of the statistics substrate.

use fadewich_stats::descriptive;
use fadewich_stats::histogram::Histogram;
use fadewich_stats::kde::GaussianKde;
use fadewich_stats::metrics::DetectionCounts;
use fadewich_stats::rmi::relative_mutual_information;
use fadewich_stats::rolling::{HistoryBuffer, RollingStd, RollingStdBatch};
use fadewich_testkit::prop::{f64s, u32s, u64s, usizes, vecs, F64Range, VecStrategy};

fn finite_vec(max_len: usize) -> VecStrategy<F64Range> {
    vecs(f64s(-1e4..1e4), 1..max_len)
}

fadewich_testkit::property! {
    fn rolling_std_matches_batch(xs in finite_vec(200), cap in usizes(2..40)) {
        let mut w = RollingStd::new(cap);
        for &x in &xs {
            w.push(x);
        }
        let tail: Vec<f64> = xs.iter().rev().take(cap).rev().copied().collect();
        let batch = descriptive::std_dev(&tail);
        assert!((w.std_dev() - batch).abs() < 1e-6,
            "rolling {} vs batch {}", w.std_dev(), batch);
    }

    fn rolling_mean_matches_batch(xs in finite_vec(200), cap in usizes(2..40)) {
        let mut w = RollingStd::new(cap);
        for &x in &xs {
            w.push(x);
        }
        let tail: Vec<f64> = xs.iter().rev().take(cap).rev().copied().collect();
        assert!((w.mean() - descriptive::mean(&tail)).abs() < 1e-6);
    }

    fn percentile_is_monotone_and_bounded(
        xs in finite_vec(100),
        p1 in f64s(0.0..100.0),
        p2 in f64s(0.0..100.0),
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let a = descriptive::percentile(&xs, lo);
        let b = descriptive::percentile(&xs, hi);
        assert!(a <= b + 1e-12);
        assert!(a >= descriptive::min(&xs).unwrap() - 1e-12);
        assert!(b <= descriptive::max(&xs).unwrap() + 1e-12);
    }

    fn variance_is_non_negative_and_shift_invariant(
        xs in finite_vec(100),
        shift in f64s(-1e3..1e3),
    ) {
        let v = descriptive::variance(&xs);
        assert!(v >= 0.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        assert!((descriptive::variance(&shifted) - v).abs() < 1e-4 * (1.0 + v));
    }

    fn entropy_bounded_by_log2_bins(xs in finite_vec(200), bins in usizes(1..64)) {
        let h = Histogram::of_data(&xs, bins).entropy_bits();
        assert!(h >= 0.0);
        assert!(h <= (bins as f64).log2() + 1e-9, "H = {h} bins = {bins}");
    }

    fn kde_cdf_monotone_in_x(
        xs in finite_vec(50),
        a in f64s(-1e4..1e4),
        b in f64s(-1e4..1e4),
    ) {
        let kde = GaussianKde::fit(&xs).unwrap();
        let (lo, hi) = (a.min(b), a.max(b));
        assert!(kde.cdf(lo) <= kde.cdf(hi) + 1e-12);
        let c = kde.cdf(a);
        assert!((0.0..=1.0).contains(&c));
    }

    fn kde_quantile_round_trip(xs in finite_vec(50), q in f64s(0.01..0.99)) {
        let kde = GaussianKde::fit(&xs).unwrap();
        let x = kde.quantile(q);
        assert!((kde.cdf(x) - q).abs() < 1e-6);
    }

    fn rmi_in_unit_interval(
        xs in finite_vec(150),
        labels in vecs(usizes(0..4), 1..150),
    ) {
        let n = xs.len().min(labels.len());
        let rmi = relative_mutual_information(&xs[..n], &labels[..n], 32);
        assert!((0.0..=1.0).contains(&rmi));
    }

    fn f_measure_bounded(
        tp in usizes(0..1000),
        fp in usizes(0..1000),
        fn_ in usizes(0..1000),
    ) {
        let c = DetectionCounts::new(tp, fp, fn_);
        let f = c.f_measure();
        assert!((0.0..=1.0).contains(&f));
        // The harmonic mean never exceeds either component.
        assert!(f <= c.precision().max(c.recall()) + 1e-12);
        assert!(f <= 2.0 * c.precision().min(c.recall()) + 1e-12);
    }

    fn history_buffer_range_returns_pushed_values(
        xs in vecs(f64s(-100.0..100.0), 1..100),
        cap in usizes(1..50),
    ) {
        let mut h = HistoryBuffer::new(cap);
        for &x in &xs {
            h.push(x);
        }
        let total = xs.len() as u64;
        let retained = cap.min(xs.len()) as u64;
        let start = total - retained;
        let got = h.range(start, total).expect("retained range");
        assert_eq!(got, xs[start as usize..].to_vec());
        // Anything older is unavailable.
        if start > 0 {
            assert!(h.range(start - 1, total).is_none());
        }
    }

    fn shuffle_preserves_elements(xs in vecs(u32s(0..1000), 0..100), seed in u64s(0..1000)) {
        let mut rng = fadewich_stats::rng::Rng::seed_from_u64(seed);
        let mut shuffled = xs.clone();
        rng.shuffle(&mut shuffled);
        let mut a = xs;
        let mut b = shuffled;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}

// Differential pins for the struct-of-arrays rolling-std bank: the
// fast path must agree with the scalar reference **bit for bit**
// (`to_bits`), not merely within epsilon — the controller's `s_t`
// threshold comparisons and checkpoint round-trips depend on exact
// bit patterns. Shrinking narrows any counterexample to the minimal
// push sequence.
fadewich_testkit::property! {
    // Uniform row pushes, with occasional NaN/∞ samples exercising
    // the hold-last guard, against independently fed scalar windows.
    #[cases(96)]
    fn rolling_std_batch_rows_are_bit_identical_to_scalar(
        xs in vecs(f64s(-1e4..1e4), 1..300),
        n_streams in usizes(1..6),
        cap in usizes(2..40),
        seed in u64s(0..1 << 32),
    ) {
        let mut rng = fadewich_stats::rng::Rng::seed_from_u64(seed);
        let mut batch = RollingStdBatch::new(n_streams, cap);
        let mut scalars: Vec<RollingStd> =
            (0..n_streams).map(|_| RollingStd::new(cap)).collect();
        let mut row = vec![0.0; n_streams];
        for &x in &xs {
            for (s, slot) in row.iter_mut().enumerate() {
                *slot = match rng.below(24) {
                    0 => f64::NAN,
                    1 => f64::NEG_INFINITY,
                    _ => x + s as f64 + rng.f64(),
                };
            }
            batch.push_row(&row);
            for (w, &v) in scalars.iter_mut().zip(&row) {
                w.push(v);
            }
            for (s, w) in scalars.iter().enumerate() {
                assert_eq!(batch.std_dev(s).to_bits(), w.std_dev().to_bits());
                assert_eq!(batch.mean(s).to_bits(), w.mean().to_bits());
                assert_eq!(batch.variance(s).to_bits(), w.variance().to_bits());
                assert_eq!(batch.non_finite_count(s), w.non_finite_count());
            }
        }
        // The exported state — the checkpoint representation — agrees
        // field-for-field as well.
        let states = batch.states();
        for (s, w) in scalars.iter().enumerate() {
            assert_eq!(states[s], w.state());
        }
    }

    // Masked delivery: per-stream pushes desynchronize the streams
    // (the engine masks quarantined sensors), forcing the bank off its
    // fused fast path. Still bit-identical, and the state round-trips
    // back into a bank that continues bit-identically.
    #[cases(96)]
    fn rolling_std_batch_masked_pushes_stay_bit_identical(
        xs in vecs(f64s(-1e4..1e4), 1..300),
        n_streams in usizes(1..6),
        cap in usizes(2..40),
        seed in u64s(0..1 << 32),
    ) {
        let mut rng = fadewich_stats::rng::Rng::seed_from_u64(seed);
        let mut batch = RollingStdBatch::new(n_streams, cap);
        let mut scalars: Vec<RollingStd> =
            (0..n_streams).map(|_| RollingStd::new(cap)).collect();
        for &x in &xs {
            for s in 0..n_streams {
                if rng.below(5) == 0 {
                    continue; // masked this tick
                }
                let v = if rng.below(31) == 0 { f64::NAN } else { x + s as f64 + rng.f64() };
                batch.push_one(s, v);
                scalars[s].push(v);
            }
            for (s, w) in scalars.iter().enumerate() {
                assert_eq!(batch.std_dev(s).to_bits(), w.std_dev().to_bits());
            }
        }
        let restored = RollingStdBatch::from_states(&batch.states()).unwrap();
        for (s, w) in scalars.iter_mut().enumerate() {
            assert_eq!(restored.std_dev(s).to_bits(), w.std_dev().to_bits());
        }
        let mut batch = restored;
        for i in 0..20u64 {
            let v = -60.0 + i as f64;
            for (s, w) in scalars.iter_mut().enumerate() {
                batch.push_one(s, v);
                w.push(v);
                assert_eq!(batch.std_dev(s).to_bits(), w.std_dev().to_bits());
            }
        }
    }

    // `range_into` is the allocation-free twin of `range`: identical
    // samples, identical availability verdicts, across arbitrary
    // eviction depths.
    #[cases(96)]
    fn history_range_into_matches_range(
        xs in vecs(f64s(-1e4..1e4), 1..200),
        cap in usizes(1..50),
        start in usizes(0..220),
        span in usizes(0..60),
    ) {
        let mut h = HistoryBuffer::new(cap);
        for &x in &xs {
            h.push(x);
        }
        let (start, end) = (start as u64, (start + span) as u64);
        let mut out = vec![f64::NAN; 7]; // stale garbage must be cleared
        let ok = h.range_into(start, end, &mut out);
        match h.range(start, end) {
            Some(window) => {
                assert!(ok);
                assert_eq!(out.len(), window.len());
                for (a, b) in out.iter().zip(&window) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            None => {
                assert!(!ok);
                assert!(out.is_empty());
            }
        }
    }
}
