//! Fleet end-to-end gates: a fleet of N offices must produce, for
//! every office, the byte-identical decision stream that N independent
//! single-office deployments produce — at any shard count, any thread
//! count, and across a mid-day crash with per-office checkpoint
//! stores (including torn checkpoint writes). Plus the demux front's
//! accounting rules for unknown offices and corrupt frames.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use fadewich_core::config::FadewichParams;
use fadewich_core::kma::Kma;
use fadewich_core::re::RadioEnvironment;
use fadewich_experiments::par;
use fadewich_fleet::day::{
    office_link_seed, run_fleet_day, single_office_day, BufferSink, FleetDayEnv, FleetRecovery,
    FleetSink, OfficeRecovery, OfficeStart, DEFAULT_ADVANCE_EVERY,
};
use fadewich_fleet::runtime::FleetRuntime;
use fadewich_officesim::{Scenario, ScenarioConfig, ScheduleParams, Trace};
use fadewich_runtime::checkpoint::CheckpointStore;
use fadewich_runtime::engine::{EngineConfig, StreamingEngine};
use fadewich_runtime::fault::{FaultInjector, FaultPlan};
use fadewich_runtime::link::LinkModel;
use fadewich_runtime::replay::{self, train_re};
use fadewich_runtime::wire::Frame;
use fadewich_telemetry::Telemetry;

const BASE_LINK_SEED: u64 = 0xF10D;

struct Fixture {
    scenario: Scenario,
    trace: Trace,
    streams: Vec<usize>,
    re: RadioEnvironment,
    cfg: EngineConfig,
    /// Lossy, jittery link so offices diverge and carry degradation
    /// state through checkpoints.
    link: LinkModel,
}

impl Fixture {
    fn env<'s>(&'s self, link: &'s LinkModel) -> FleetDayEnv<'s> {
        FleetDayEnv {
            scenario: &self.scenario,
            trace: &self.trace,
            streams: &self.streams,
            re: &self.re,
            cfg: self.cfg,
            link,
            link_seed: BASE_LINK_SEED,
            day: 1,
            advance_every: DEFAULT_ADVANCE_EVERY,
        }
    }
}

/// Short-day pipeline parameters: the 5-sensor subset's variation
/// windows run shorter than the full array's, so the significance
/// threshold comes down or training finds no labeled windows.
fn short_day_params() -> FadewichParams {
    FadewichParams { t_delta_s: 1.5, feature_window_s: 1.5, ..FadewichParams::default() }
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let config = ScenarioConfig {
            seed: 0xF1EE7,
            days: 2,
            schedule: ScheduleParams {
                day_seconds: 1800.0,
                earliest_arrival_s: 30.0,
                latest_arrival_s: 120.0,
                departures_choices: [3, 3, 4, 4],
                min_seated_s: 60.0,
                absence_bounds_s: (20.0, 45.0),
                min_event_separation_s: 10.0,
                ..ScheduleParams::default()
            },
            ..ScenarioConfig::default()
        };
        let scenario = Scenario::generate(config).unwrap();
        let trace = scenario.simulate().unwrap();
        let subset = scenario.layout().sensor_subset(5);
        let streams = trace.stream_indices_for_subset(&subset);
        let params = short_day_params();
        let re = train_re(&scenario, &trace, &streams, 1, &params).unwrap();
        let link = LinkModel { drop_p: 0.02, dup_p: 0.02, corrupt_p: 0.0, jitter_ticks: 2 };
        let mut cfg = EngineConfig::new(trace.tick_hz(), params);
        cfg.jitter_ticks = 2;
        // Checkpoint often enough that a mid-day crash has warm images.
        cfg.checkpoint_every_ticks = 400;
        Fixture { scenario, trace, streams, re, cfg, link }
    })
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fadewich-fleet-{tag}-{}-{n}", std::process::id()))
}

fn fresh_starts(n: usize) -> Vec<OfficeStart> {
    (0..n).map(|_| OfficeStart::Fresh).collect()
}

/// The headline invariant: every office of a 12-tenant fleet streams
/// byte-identically to its dedicated single-office engine, and the
/// result is invariant under shard count AND worker-thread count.
#[test]
fn fleet_matches_singles_at_any_shard_and_thread_count() {
    let fx = fixture();
    let env = fx.env(&fx.link);
    let n = 12usize;
    let telemetry = Telemetry::disabled();

    let references: Vec<Vec<String>> =
        (0..n).map(|o| single_office_day(&env, o as u16).unwrap()).collect();
    assert!(
        references.iter().any(|a| references.iter().any(|b| a != b)),
        "offices should diverge under a lossy link, or the test proves nothing"
    );

    for threads in [1usize, 8] {
        par::with_threads(threads, || {
            for shards in [1usize, 3, 8] {
                let mut sink = BufferSink::new(n);
                let report =
                    run_fleet_day(&env, fresh_starts(n), shards, None, &mut sink, &telemetry)
                        .unwrap();
                assert!(!report.crashed);
                assert_eq!(report.fleet.frames_rejected(), 0);
                assert_eq!(report.shard_tick_lags.len(), shards);
                for (o, reference) in references.iter().enumerate() {
                    assert_eq!(
                        &sink.lines[o], reference,
                        "office {o} diverged at {shards} shards / {threads} threads"
                    );
                }
            }
        });
    }
}

/// Office 0's delivery stream uses the base link seed unchanged, so a
/// fleet's office 0 is literally the single-office deployment with
/// the same flags — the property `scripts/ci.sh` leans on when it
/// compares `fadewichd fleet` office 0 against `fadewichd serve`.
#[test]
fn office_zero_keeps_the_base_link_seed() {
    assert_eq!(office_link_seed(BASE_LINK_SEED, 0), BASE_LINK_SEED);
    let fx = fixture();
    let groups = fx.trace.receiver_groups(&fx.streams);
    let base = replay::day_deliveries(&fx.trace, &fx.streams, &groups, 1, &fx.link, BASE_LINK_SEED)
        .unwrap();
    let office0 = replay::day_deliveries_for_office(
        &fx.trace,
        &fx.streams,
        &groups,
        1,
        &fx.link,
        office_link_seed(BASE_LINK_SEED, 0),
        0,
    )
    .unwrap();
    assert_eq!(base, office0, "office 0 must stream serve's exact bytes");
    let office1 = replay::day_deliveries_for_office(
        &fx.trace,
        &fx.streams,
        &groups,
        1,
        &fx.link,
        office_link_seed(BASE_LINK_SEED, 1),
        1,
    )
    .unwrap();
    assert_ne!(base, office1, "office 1 must carry its id and its own link randomness");
}

/// A sink that tracks committed byte marks like a real decision log,
/// so checkpoint images record truncation points the resume can honor.
struct MarkSink {
    lines: Vec<Vec<String>>,
    marks: Vec<u64>,
}

impl MarkSink {
    fn new(n: usize) -> MarkSink {
        MarkSink { lines: vec![Vec::new(); n], marks: vec![0; n] }
    }

    /// Drops every line past `mark` committed bytes — what serve's
    /// `set_len(mark)` does to the log file on resume.
    fn truncate_to(&mut self, office: usize, mark: u64) {
        let mut bytes = 0u64;
        let mut keep = 0usize;
        for line in &self.lines[office] {
            let next = bytes + line.len() as u64 + 1;
            if next > mark {
                break;
            }
            bytes = next;
            keep += 1;
        }
        assert_eq!(bytes, mark, "office {office}: mark {mark} is not at a line boundary");
        self.lines[office].truncate(keep);
        self.marks[office] = mark;
    }
}

impl FleetSink for MarkSink {
    fn emit(&mut self, office: u16, line: &str) -> Result<(), String> {
        self.lines[usize::from(office)].push(line.to_string());
        self.marks[usize::from(office)] += line.len() as u64 + 1;
        Ok(())
    }

    fn log_mark(&mut self, office: u16) -> u64 {
        self.marks[usize::from(office)]
    }
}

/// Crash the fleet mid-day, then resume every office from its own
/// checkpoint store — including one office whose saves are torn by the
/// fault injector — and demand the stitched per-office streams equal
/// an uninterrupted fleet run byte for byte.
#[test]
fn crash_mid_day_resumes_every_office_byte_identically() {
    let fx = fixture();
    let env = fx.env(&fx.link);
    let n = 6usize;
    let shards = 3usize;
    let telemetry = Telemetry::disabled();

    // The uninterrupted reference fleet run.
    let mut full = BufferSink::new(n);
    run_fleet_day(&env, fresh_starts(n), shards, None, &mut full, &telemetry).unwrap();

    // Crashed run: per-office stores, office 2's saves torn every
    // second time (a torn fleet sweep in miniature).
    let dirs: Vec<PathBuf> = (0..n).map(|o| scratch_dir(&format!("crash-{o}"))).collect();
    let mut offices: Vec<OfficeRecovery> = dirs
        .iter()
        .map(|d| OfficeRecovery { store: CheckpointStore::open(d).unwrap() })
        .collect();
    let plan = FaultPlan { torn_saves: (0..64).filter(|s| s % 2 == 1).collect(), ..FaultPlan::none() };
    offices[2].store.set_fault_injector(FaultInjector::new(plan, 99));
    let n_ticks = fx.trace.days()[1].n_ticks() as u64;
    let mut recovery =
        FleetRecovery { offices, base_ticks: 0, crash_after_ticks: Some(n_ticks / 2) };
    let mut sink = MarkSink::new(n);
    let crashed_report =
        run_fleet_day(&env, fresh_starts(n), shards, Some(&mut recovery), &mut sink, &telemetry)
            .unwrap();
    assert!(crashed_report.crashed, "the crash stamp never fired");

    // A fresh process: reopen every store, truncate each office's log
    // to its committed mark, resume, and compare.
    let mut starts = Vec::with_capacity(n);
    let mut resumed_any = false;
    for (o, dir) in dirs.iter().enumerate() {
        let mut store = CheckpointStore::open(dir).unwrap();
        let mut snap = store.load_latest().unwrap().snapshot.map(|(_, s)| s);
        match &snap {
            Some(s) => {
                resumed_any = true;
                sink.truncate_to(o, s.log_mark);
            }
            None => sink.truncate_to(o, 0),
        }
        starts.push(OfficeStart::for_day(&mut snap, 1));
    }
    assert!(resumed_any, "no office checkpointed before the crash");
    run_fleet_day(&env, starts, shards, None, &mut sink, &telemetry).unwrap();
    for o in 0..n {
        assert_eq!(sink.lines[o], full.lines[o], "office {o} stitched stream diverged");
    }
    for dir in &dirs {
        std::fs::remove_dir_all(dir).unwrap();
    }
}

/// An office that already finished the day (its checkpoint names a
/// later day) sits the day out: hosted, fed nothing, emits nothing.
#[test]
fn office_ahead_of_the_day_is_skipped() {
    let fx = fixture();
    let env = fx.env(&fx.link);
    let telemetry = Telemetry::disabled();
    let mut sink = BufferSink::new(2);
    let starts = vec![OfficeStart::Fresh, OfficeStart::Skip];
    let report = run_fleet_day(&env, starts, 2, None, &mut sink, &telemetry).unwrap();
    assert!(!sink.lines[0].is_empty());
    assert!(sink.lines[1].is_empty(), "a skipped office must stay silent");
    assert_eq!(report.offices[1].counters.ticks_processed, 0);
    assert_eq!(report.offices[1].summary, "");
}

fn engines_for<'a>(
    fx: &'a Fixture,
    inputs: &'a fadewich_officesim::InputTrace,
    n: usize,
) -> Vec<StreamingEngine<'a>> {
    let groups = fx.trace.receiver_groups(&fx.streams);
    (0..n)
        .map(|_| StreamingEngine::new(fx.cfg, groups.clone(), &fx.re, Kma::new(inputs)).unwrap())
        .collect()
}

/// Demux accounting: a valid frame naming an office the fleet does not
/// host is counted and skipped without derailing the rest of the blob;
/// a corrupt frame is counted and abandons the blob.
#[test]
fn unknown_office_and_corrupt_frames_are_accounted() {
    let fx = fixture();
    let inputs = fx.scenario.input_trace(1, 0);
    let frame = |office: u16, seq: u32| {
        Frame { office, ..Frame::rssi(0, seq, u64::from(seq), vec![1.0, 2.0]) }.encode()
    };

    let mut fleet = FleetRuntime::new(2, engines_for(fx, &inputs, 2)).unwrap();
    let mut blob = frame(0, 0);
    blob.extend_from_slice(&frame(9, 1)); // valid frame, unhosted office
    blob.extend_from_slice(&frame(1, 2)); // must still route
    fleet.ingest(&blob);
    assert_eq!(fleet.counters().frames_demuxed, 2);
    assert_eq!(fleet.counters().frames_unknown_office, 1);
    assert_eq!(fleet.counters().corrupt_crc, 0);

    // CRC corruption: flip a payload byte, keep framing intact.
    let mut fleet = FleetRuntime::new(2, engines_for(fx, &inputs, 2)).unwrap();
    let mut blob = frame(0, 0);
    let tail = frame(1, 1);
    let mid = blob.len() - 3;
    blob[mid] ^= 0x40;
    blob.extend_from_slice(&tail);
    fleet.ingest(&blob);
    assert_eq!(fleet.counters().corrupt_crc, 1, "checksum damage must be counted as CRC");
    assert_eq!(fleet.counters().frames_demuxed, 0, "a corrupt frame abandons the blob");

    // Framing corruption: truncate the last frame.
    let mut fleet = FleetRuntime::new(2, engines_for(fx, &inputs, 2)).unwrap();
    let mut blob = frame(0, 0);
    let tail = frame(1, 1);
    blob.extend_from_slice(&tail[..tail.len() - 4]);
    fleet.ingest(&blob);
    assert_eq!(fleet.counters().frames_demuxed, 1);
    assert_eq!(fleet.counters().corrupt_framing, 1);
}

/// Per-office flood targeting: a deauth storm aimed at office 1 of an
/// authenticated fleet is rejected, rate-limited and attack-quarantined
/// inside office 1's engine alone — office 0 counts zero auth activity
/// and BOTH offices' decision streams stay byte-identical to their
/// unattacked single-office references.
#[test]
fn fleet_contains_a_targeted_flood_without_cross_tenant_damage() {
    use fadewich_core::auth::KeyTable;
    use fadewich_runtime::attack::{AttackKind, AttackModel};
    use fadewich_runtime::engine::EngineAuth;
    use fadewich_stats::rng::Rng;

    let fx = fixture();
    let inputs = fx.scenario.input_trace(1, 0);
    let groups = fx.trace.receiver_groups(&fx.streams);
    let n_sensors = groups.iter().map(|(s, _)| *s).max().unwrap() + 1;
    let keys = KeyTable::derive(0x5EC, n_sensors);
    let n_ticks = 200u64;

    // One tick of valid v4 frames for one office, seeded per office so
    // the two tenants carry different (but reproducible) traffic.
    let tick_blob = |office: u16, tick: u64| -> Vec<u8> {
        let mut rng = Rng::task_stream(7 + u64::from(office), tick);
        let mut blob = Vec::new();
        for (sensor, positions) in &groups {
            let values: Vec<f32> =
                positions.iter().map(|_| -50.0 + rng.normal() as f32 * 0.6).collect();
            let f = Frame { office, ..Frame::rssi(*sensor, tick as u32, tick, values) };
            f.encode_auth_into(keys.get(*sensor).unwrap(), &mut blob);
        }
        blob
    };

    // Unattacked single-office references.
    let mut refs = engines_for(fx, &inputs, 2);
    for e in &mut refs {
        e.set_auth(EngineAuth::new(keys.clone()));
    }
    for t in 0..n_ticks {
        for (o, e) in refs.iter_mut().enumerate() {
            e.ingest_bytes(&tick_blob(o as u16, t));
        }
        if t == n_ticks - 1 {
            for e in &mut refs {
                e.finish(n_ticks);
            }
        }
    }

    // The fleet under attack: a seq-sweeping storm stamped office 1.
    let mut engines = engines_for(fx, &inputs, 2);
    for e in &mut engines {
        e.set_auth(EngineAuth::new(keys.clone()));
    }
    let mut fleet = FleetRuntime::new(2, engines).unwrap();
    let (target_sensor, target_positions) = &groups[1];
    let storm = AttackModel {
        kind: AttackKind::DeauthStorm { frames_per_tick: 3 },
        sensor: *target_sensor,
        payload_width: target_positions.len(),
        from_tick: 50,
        to_tick: 70,
        target_office: Some(1),
    };
    let hostile = storm.injected(&[], &mut Rng::seed_from_u64(0xA77));
    assert_eq!(hostile.len(), 3 * 20);
    let mut next = 0usize;
    for t in 0..n_ticks {
        let mut blob = tick_blob(0, t);
        blob.extend_from_slice(&tick_blob(1, t));
        while next < hostile.len() && hostile[next].0 <= t {
            blob.extend_from_slice(&hostile[next].1);
            next += 1;
        }
        fleet.ingest(&blob);
        fleet.advance();
    }
    fleet.finish_per_office(&[n_ticks, n_ticks]);
    assert_eq!(fleet.counters().frames_rejected(), 0, "the front routes storm frames by office");

    let c1 = fleet.office_mut(1).unwrap().counters().clone();
    assert_eq!(c1.frames_unauthenticated, hostile.len() as u64);
    assert!(c1.frames_rate_limited > 0, "a 60-frame storm must blow the reject budget");
    assert_eq!(c1.attack_quarantines, 1);
    let c0 = fleet.office_mut(0).unwrap().counters().clone();
    assert!(!c0.has_auth_activity(), "the flood must not bleed into office 0");

    for o in 0..2u16 {
        assert_eq!(
            fleet.office_mut(o).unwrap().actions(),
            refs[usize::from(o)].actions(),
            "office {o} decision stream diverged under a contained attack"
        );
    }
}

/// The `reproduce fleet` study runs end to end on a small office
/// count; its internal byte-identity proofs (1 vs 8 shards, fleet vs
/// singles) are part of the run and fail it on any divergence.
#[test]
fn scaling_study_smoke() {
    let scaling = fadewich_fleet::scaling::run_fleet_scaling(0xAB, 4).unwrap();
    assert_eq!(scaling.rows.len(), 1);
    assert_eq!(scaling.rows[0].offices, 4);
    assert!(scaling.rows[0].frames_demuxed > 0);
    assert_eq!(scaling.wall_lines.len(), 1);
    assert!(scaling.wall_lines[0].starts_with("wall_fleet_4_"));
}

/// PR 10 cardinality fix: the per-office `office_*{office="…"}` series
/// are gone; a fleet day exports the bounded health rollup instead,
/// and the whole Prometheus render stays under the pinned cap at a
/// multi-thousand-office scale.
#[test]
fn health_export_is_cardinality_bounded() {
    use fadewich_fleet::health::{
        export_health, HealthState, OfficeStat, MAX_HEALTH_RENDER_LINES, TOP_K_OFFICES,
    };

    // A synthetic 2048-office fleet with a messy mix of states: most
    // healthy, a band of laggards, some quarantines, a few under
    // attack. Building real engines at this scale is a bench concern;
    // the export path only reads counters.
    let stats: Vec<OfficeStat> = (0..2048u16)
        .map(|o| {
            let mut s = OfficeStat {
                office: o,
                ticks_processed: 36_000,
                expected_ticks: 36_000,
                frames_in: 9 * 36_000,
                ..OfficeStat::default()
            };
            if o % 97 == 0 {
                s.ticks_processed -= u64::from(o) % 500 + 1; // laggards
            }
            if o % 401 == 0 {
                s.quarantines = 2;
                s.recoveries = 1;
            }
            if o == 77 || o == 1900 {
                s.attack_quarantines = 1;
            }
            s
        })
        .collect();
    let telemetry = Telemetry::metrics_only();
    let health = export_health(&stats, &telemetry);
    assert_eq!(health.offices(), 2048);
    assert_eq!(health.count(HealthState::UnderAttack), 2);
    assert!(health.worst.len() <= TOP_K_OFFICES);

    let text = telemetry.prometheus_text(false).unwrap();
    let lines = text.lines().count();
    assert!(
        lines <= MAX_HEALTH_RENDER_LINES,
        "render blew the cardinality cap: {lines} lines > {MAX_HEALTH_RENDER_LINES}"
    );
    assert!(
        !text.contains("office_ticks_processed{"),
        "per-office labeled counters must not come back: {text}"
    );
    let labeled =
        text.lines().filter(|l| l.starts_with("fleet_office_tick_lag{office=")).count();
    assert!(labeled <= TOP_K_OFFICES, "{text}");
    // The aggregate the old series summed to is preserved.
    assert!(text.contains("fleet_office_frames_in_total"), "{text}");
}

/// A real fleet day exports the health rollup: state gauges, the
/// aggregate totals, and the lag histogram — and no `{office="…"}`
/// counter series.
#[test]
fn fleet_day_exports_health_rollup() {
    let fx = fixture();
    let env = fx.env(&fx.link);
    let n = 6usize;
    let telemetry = Telemetry::metrics_only();
    let mut sink = BufferSink::new(n);
    let report = run_fleet_day(&env, fresh_starts(n), 3, None, &mut sink, &telemetry).unwrap();
    assert_eq!(report.health.offices(), n as u64);
    assert_eq!(
        report.health.total_ticks_processed,
        report.offices.iter().map(|o| o.counters.ticks_processed).sum::<u64>()
    );
    let summary = report.health.summary_line();
    assert!(summary.starts_with("health  healthy "), "{summary}");

    let text = telemetry.prometheus_text(false).unwrap();
    assert!(text.contains("fleet_health_offices{state=\"healthy\"}"), "{text}");
    assert!(text.contains("fleet_office_ticks_processed_total"), "{text}");
    assert!(text.contains(&format!("fleet_office_tick_lag_ticks_count {n}")), "{text}");
    assert!(!text.contains("office_ticks_processed{office="), "{text}");
}
