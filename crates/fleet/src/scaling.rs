//! The `reproduce fleet` study: N-office scaling of the fleet
//! runtime, with every row's decision streams proven byte-identical
//! to independent single-office runs and invariant under the shard
//! count.
//!
//! Each row hosts `N` tenants of a shared small scenario (one trained
//! model for the whole fleet), streams the serving day through the
//! demux front **twice** — once on 1 shard, once on 8 — and digests
//! every office's rendered decision stream. The two digests must
//! match (sharding cannot change decisions), and a sample of offices
//! is additionally compared line-by-line against dedicated
//! single-office engines. All table fields are seed-deterministic;
//! wall-clock throughput goes on separate `wall_`-prefixed lines so
//! CI can strip them before `cmp`-ing two runs.

use fadewich_core::config::FadewichParams;
use fadewich_experiments::report::TextTable;
use fadewich_officesim::{Scenario, ScenarioConfig, ScheduleParams};
use fadewich_runtime::engine::EngineConfig;
use fadewich_runtime::link::LinkModel;
use fadewich_runtime::replay::train_re;
use fadewich_telemetry::{Clock, Telemetry, WallClock};

use crate::day::{run_fleet_day, single_office_day, BufferSink, FleetDayEnv, OfficeStart};

/// One scaling row's deterministic results plus its wall-clock
/// throughput.
#[derive(Debug, Clone)]
pub struct FleetScalingRow {
    /// Hosted offices.
    pub offices: usize,
    /// Frames the demux front routed (8-shard run).
    pub frames_demuxed: u64,
    /// Decisions across all offices (deauth/screen-saver actions).
    pub decisions: u64,
    /// FNV digest over every office's rendered decision stream.
    pub digest: u64,
    /// Engine ticks per second per office (wall clock, 8-shard run).
    pub wall_ticks_per_sec_per_office: f64,
}

/// The rendered study: a deterministic table plus `wall_` lines.
#[derive(Debug, Clone)]
pub struct FleetScaling {
    /// Deterministic scaling table (byte-identical across runs,
    /// thread counts, and shard counts).
    pub table: TextTable,
    /// `wall_fleet_...` throughput lines, one per row — the only
    /// non-deterministic output, stripped by CI before comparison.
    pub wall_lines: Vec<String>,
    /// The raw rows.
    pub rows: Vec<FleetScalingRow>,
}

/// Sensor subset size for the study — small frames keep a
/// 1000-tenant feed in memory.
const STUDY_SENSORS: usize = 5;

/// Pipeline parameters for the study's short days: the 5-sensor
/// subset perturbs the radio field more briefly than the full array,
/// so the significance threshold (and with it the feature window)
/// comes down to 1.5 s or the training day yields no labeled windows.
fn study_params() -> FadewichParams {
    FadewichParams { t_delta_s: 1.5, feature_window_s: 1.5, ..FadewichParams::default() }
}
/// Shard count for the measured run; the verification run uses 1.
const STUDY_SHARDS: usize = 8;

/// The office counts a study up to `max_offices` evaluates: powers of
/// four capped at the maximum, always ending on the maximum itself.
#[must_use]
pub fn office_counts(max_offices: usize) -> Vec<usize> {
    let max = max_offices.max(1);
    let mut counts = Vec::new();
    let mut n = 4usize;
    while n < max {
        counts.push(n);
        n *= 4;
    }
    counts.push(max);
    counts
}

/// The study's shared scenario: two short days (train on the first,
/// serve the second) so even the thousand-office row's feeds fit in
/// memory.
///
/// # Errors
///
/// Propagates scenario generation/simulation errors.
fn study_scenario(seed: u64) -> Result<(Scenario, fadewich_officesim::Trace), String> {
    let config = ScenarioConfig {
        seed: seed ^ 0xF1EE7,
        days: 2,
        schedule: ScheduleParams {
            day_seconds: 1800.0,
            earliest_arrival_s: 30.0,
            latest_arrival_s: 120.0,
            departures_choices: [3, 3, 4, 4],
            min_seated_s: 60.0,
            absence_bounds_s: (20.0, 45.0),
            min_event_separation_s: 10.0,
            ..ScheduleParams::default()
        },
        ..ScenarioConfig::default()
    };
    let scenario =
        Scenario::generate(config).map_err(|e| format!("fleet scenario: {e:?}"))?;
    let trace = scenario.simulate().map_err(|e| format!("fleet simulate: {e:?}"))?;
    Ok((scenario, trace))
}

fn fnv_line(digest: &mut u64, line: &str) {
    for b in line.as_bytes() {
        *digest = (*digest ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    *digest = (*digest ^ u64::from(b'\n')).wrapping_mul(0x0000_0100_0000_01b3);
}

/// Runs the scaling study up to `max_offices` tenants.
///
/// # Errors
///
/// Propagates scenario/training/engine errors, and reports any
/// divergence between shard counts or against the single-office
/// references as an error — a failed determinism proof must fail the
/// run, not print a quietly wrong table.
pub fn run_fleet_scaling(seed: u64, max_offices: usize) -> Result<FleetScaling, String> {
    // A short 2-day scenario does not guarantee every seed a trainable
    // label set (too few absences, or all windows in one class), so
    // walk deterministic seed variants until training succeeds — the
    // walk depends only on `seed`, keeping the study reproducible.
    let mut picked = None;
    let mut last_err = String::new();
    for attempt in 0u64..16 {
        let (scenario, trace) = study_scenario(seed.wrapping_add(attempt * 0x9E37))?;
        let subset = scenario.layout().sensor_subset(STUDY_SENSORS);
        let streams = trace.stream_indices_for_subset(&subset);
        match train_re(&scenario, &trace, &streams, 1, &study_params()) {
            Ok(re) => {
                picked = Some((scenario, trace, streams, re));
                break;
            }
            Err(e) => last_err = e,
        }
    }
    let Some((scenario, trace, streams, re)) = picked else {
        return Err(format!(
            "fleet scaling: no trainable scenario in 16 seed variants of {seed:#x}: {last_err}"
        ));
    };
    let params = study_params();
    let cfg = EngineConfig::new(trace.tick_hz(), params);
    cfg.validate()?;
    let link = LinkModel::lossless();
    let env = FleetDayEnv {
        scenario: &scenario,
        trace: &trace,
        streams: &streams,
        re: &re,
        cfg,
        link: &link,
        link_seed: 0xF10D ^ seed,
        day: 1,
        advance_every: crate::day::DEFAULT_ADVANCE_EVERY,
    };
    let telemetry = Telemetry::disabled();
    let clock = WallClock;
    let n_ticks = trace.days()[1].n_ticks() as u64;

    let mut table = TextTable::new(
        &format!("Fleet scaling: N offices multiplexed behind one demux front ({STUDY_SHARDS} shards)"),
        &["offices", "frames demuxed", "decisions", "stream digest", "shards 1=8"],
    );
    let mut wall_lines = Vec::new();
    let mut rows = Vec::new();
    for n in office_counts(max_offices) {
        // Measured run on the study shard count.
        let t0 = clock.now_ns();
        let mut sink = BufferSink::new(n);
        let starts: Vec<OfficeStart> = (0..n).map(|_| OfficeStart::Fresh).collect();
        let report = run_fleet_day(&env, starts, STUDY_SHARDS, None, &mut sink, &telemetry)?;
        let wall_ns = clock.now_ns().saturating_sub(t0);

        // Verification run on a single shard must reproduce every
        // office's stream byte for byte.
        let mut sink1 = BufferSink::new(n);
        let starts1: Vec<OfficeStart> = (0..n).map(|_| OfficeStart::Fresh).collect();
        run_fleet_day(&env, starts1, 1, None, &mut sink1, &telemetry)?;
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mut digest1 = digest;
        for o in 0..n {
            for line in &sink.lines[o] {
                fnv_line(&mut digest, line);
            }
            for line in &sink1.lines[o] {
                fnv_line(&mut digest1, line);
            }
        }
        if digest != digest1 {
            return Err(format!(
                "fleet scaling: {n} offices diverge between 1 and {STUDY_SHARDS} shards"
            ));
        }

        // Sample offices against dedicated single-office engines.
        let mut samples = vec![0u16];
        if n > 1 {
            samples.push(1);
            samples.push((n - 1) as u16);
        }
        samples.dedup();
        for &office in &samples {
            let reference = single_office_day(&env, office)?;
            let fleet_lines = &sink.lines[usize::from(office)];
            if fleet_lines != &reference {
                return Err(format!(
                    "fleet scaling: office {office} of {n} diverges from its \
                     single-office run ({} fleet lines vs {} reference lines)",
                    fleet_lines.len(),
                    reference.len()
                ));
            }
        }

        let decisions: u64 = report
            .offices
            .iter()
            .map(|o| o.events.iter().filter(|e| matches!(e, fadewich_runtime::engine::EngineEvent::Decision { .. })).count() as u64)
            .sum();
        let row = FleetScalingRow {
            offices: n,
            frames_demuxed: report.fleet.frames_demuxed,
            decisions,
            digest,
            wall_ticks_per_sec_per_office: if wall_ns > 0 {
                n_ticks as f64 / (wall_ns as f64 / 1e9)
            } else {
                0.0
            },
        };
        table.add_row(vec![
            row.offices.to_string(),
            row.frames_demuxed.to_string(),
            row.decisions.to_string(),
            format!("{:016x}", row.digest),
            "yes".to_string(),
        ]);
        wall_lines.push(format!(
            "wall_fleet_{}_ticks_per_sec_per_office {:.0}",
            row.offices, row.wall_ticks_per_sec_per_office
        ));
        rows.push(row);
    }
    Ok(FleetScaling { table, wall_lines, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn office_counts_end_on_the_maximum() {
        assert_eq!(office_counts(1), vec![1]);
        assert_eq!(office_counts(4), vec![4]);
        assert_eq!(office_counts(32), vec![4, 16, 32]);
        assert_eq!(office_counts(1024), vec![4, 16, 64, 256, 1024]);
    }
}
