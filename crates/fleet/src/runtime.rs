//! The fleet front: one ingestion point demultiplexing a merged frame
//! stream onto per-office [`StreamingEngine`]s grouped into shards.
//!
//! # Data path
//!
//! [`FleetRuntime::ingest`] walks a blob of concatenated wire frames
//! with the zero-copy [`Frame::decode_borrowed`] view: each frame is
//! CRC-validated once at the front, its office id is peeked from the
//! v2 header (v1 frames land on office 0), and the frame's **exact
//! byte slice** is appended to the owning office's queue. No f32
//! payload decode, no `Frame` allocation, no re-encode happens on
//! this path.
//!
//! [`FleetRuntime::advance`] then drains every queue in parallel on
//! the deterministic worker pool
//! ([`par_map_indices`](fadewich_experiments::par::par_map_indices)):
//! task *i* locks shard *i* alone, so shards never contend, and each
//! office engine re-decodes its own frames exactly as a single-office
//! deployment would. Because offices never share mutable state, any
//! shard count and any thread count produce byte-identical per-office
//! results — the invariant `tests/fleet.rs` pins.
//!
//! # Corruption accounting
//!
//! A frame that fails validation has an untrustworthy office field,
//! so it cannot be attributed to a tenant: the fleet counts it
//! ([`FleetCounters::corrupt_crc`] / [`corrupt_framing`]) and
//! abandons the rest of the blob, mirroring the engine's own
//! framing-loss rule. A *valid* frame naming an office outside the
//! fleet is counted under
//! [`FleetCounters::frames_unknown_office`] and skipped — framing is
//! intact, so the rest of the blob still routes.
//!
//! [`corrupt_framing`]: FleetCounters::corrupt_framing

use std::sync::{Mutex, PoisonError};

use fadewich_experiments::par;
use fadewich_runtime::engine::StreamingEngine;
use fadewich_runtime::wire::{Frame, WireError};

use crate::shard::shard_of;

/// Fleet-level rollup counters: everything the demux front observes
/// before frames reach a tenant engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetCounters {
    /// Blobs handed to [`FleetRuntime::ingest`].
    pub blobs_in: u64,
    /// Raw bytes handed to [`FleetRuntime::ingest`].
    pub bytes_in: u64,
    /// Frames validated and routed to an office queue.
    pub frames_demuxed: u64,
    /// Valid frames naming an office the fleet does not host.
    pub frames_unknown_office: u64,
    /// Frames rejected at the front for a checksum mismatch.
    pub corrupt_crc: u64,
    /// Frames rejected at the front for truncation, a bad magic, or an
    /// oversized length.
    pub corrupt_framing: u64,
}

impl FleetCounters {
    /// Total frames the front refused to route.
    pub fn frames_rejected(&self) -> u64 {
        self.frames_unknown_office + self.corrupt_crc + self.corrupt_framing
    }

    /// One deterministic summary line for the fleet rollup stream.
    pub fn summary_line(&self) -> String {
        format!(
            "fleet       demuxed {}  unknown-office {}  corrupt {}  blobs {}  bytes {}",
            self.frames_demuxed,
            self.frames_unknown_office,
            self.corrupt_crc + self.corrupt_framing,
            self.blobs_in,
            self.bytes_in
        )
    }
}

/// One tenant: its engine plus the queue of validated frame bytes
/// awaiting the next [`FleetRuntime::advance`].
struct OfficeSlot<'a> {
    engine: StreamingEngine<'a>,
    queue: Vec<u8>,
}

/// The unit of parallelism: a group of offices drained by one pool
/// task. Offices within a shard are processed in office-id order.
struct Shard<'a> {
    slots: Vec<OfficeSlot<'a>>,
}

/// A single-process fleet of office engines behind one demux front.
///
/// Office *i* of the fleet is `engines[i]` at construction; its shard
/// is fixed by [`shard_of`] and never depends on thread count. All
/// tenants typically share one read-only model (`&RadioEnvironment`
/// behind the engines' lifetime), so hosting a thousand offices costs
/// one model plus per-office controller state.
pub struct FleetRuntime<'a> {
    shards: Vec<Mutex<Shard<'a>>>,
    /// office id → (shard index, slot index within the shard).
    assignment: Vec<(usize, usize)>,
    counters: FleetCounters,
}

impl<'a> FleetRuntime<'a> {
    /// Builds a fleet hosting `engines.len()` offices (office `i` is
    /// `engines[i]`) spread over `n_shards` shards.
    ///
    /// # Errors
    ///
    /// Rejects an empty fleet, a zero shard count, and more offices
    /// than the wire format's `u16` office id can address.
    pub fn new(n_shards: usize, engines: Vec<StreamingEngine<'a>>) -> Result<Self, String> {
        if engines.is_empty() {
            return Err("fleet: need at least one office engine".to_string());
        }
        if n_shards == 0 {
            return Err("fleet: need at least one shard".to_string());
        }
        if engines.len() > usize::from(u16::MAX) + 1 {
            return Err(format!(
                "fleet: {} offices exceed the u16 office-id space",
                engines.len()
            ));
        }
        let mut shards: Vec<Shard<'a>> = (0..n_shards).map(|_| Shard { slots: Vec::new() }).collect();
        let mut assignment = Vec::with_capacity(engines.len());
        for (office, engine) in engines.into_iter().enumerate() {
            let s = shard_of(office as u16, n_shards);
            assignment.push((s, shards[s].slots.len()));
            shards[s].slots.push(OfficeSlot { engine, queue: Vec::new() });
        }
        Ok(FleetRuntime {
            shards: shards.into_iter().map(Mutex::new).collect(),
            assignment,
            counters: FleetCounters::default(),
        })
    }

    /// Number of hosted offices.
    pub fn n_offices(&self) -> usize {
        self.assignment.len()
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Fleet-level demux counters.
    pub fn counters(&self) -> &FleetCounters {
        &self.counters
    }

    /// Demultiplexes one blob of concatenated wire frames onto the
    /// office queues. See the module docs for the validation and
    /// corruption-accounting rules.
    pub fn ingest(&mut self, blob: &[u8]) {
        self.counters.blobs_in += 1;
        self.counters.bytes_in += blob.len() as u64;
        let mut rest = blob;
        while !rest.is_empty() {
            match Frame::decode_borrowed(rest) {
                Ok((view, used)) => {
                    match self.assignment.get(usize::from(view.office)) {
                        Some(&(s, i)) => {
                            let shard = self.shards[s]
                                .get_mut()
                                .unwrap_or_else(PoisonError::into_inner);
                            shard.slots[i].queue.extend_from_slice(&rest[..used]);
                            self.counters.frames_demuxed += 1;
                        }
                        None => self.counters.frames_unknown_office += 1,
                    }
                    rest = &rest[used..];
                }
                Err(WireError::BadChecksum { .. }) => {
                    self.counters.corrupt_crc += 1;
                    return;
                }
                Err(_) => {
                    self.counters.corrupt_framing += 1;
                    return;
                }
            }
        }
    }

    /// Drains every office queue into its engine, shards in parallel
    /// on the worker pool. Task *i* touches only shard *i*, so the
    /// result is byte-identical at any `FADEWICH_THREADS`.
    pub fn advance(&mut self) {
        let shards = &self.shards;
        par::par_map_indices(shards.len(), |i| {
            let mut shard = shards[i].lock().unwrap_or_else(PoisonError::into_inner);
            for slot in &mut shard.slots {
                if slot.queue.is_empty() {
                    continue;
                }
                let mut q = std::mem::take(&mut slot.queue);
                slot.engine.ingest_bytes(&q);
                q.clear();
                slot.queue = q;
            }
        });
    }

    /// Ends the day on every engine (parallel over shards): drains any
    /// queued frames, then pads every office to `expected_ticks` just
    /// like a single-office [`StreamingEngine::finish`].
    pub fn finish_day(&mut self, expected_ticks: u64) {
        let expected = vec![expected_ticks; self.n_offices()];
        self.finish_per_office(&expected);
    }

    /// [`finish_day`](Self::finish_day) with a per-office tick target
    /// — offices sitting a day out (crash recovery's skip case) pass 0
    /// and are left untouched instead of being padded through a day
    /// they never streamed.
    ///
    /// # Panics
    ///
    /// Panics if `expected_ticks.len()` differs from the office count
    /// (a driver bug, not a data condition).
    pub fn finish_per_office(&mut self, expected_ticks: &[u64]) {
        assert_eq!(
            expected_ticks.len(),
            self.n_offices(),
            "finish_per_office: one tick target per office"
        );
        let shards = &self.shards;
        let assignment = &self.assignment;
        par::par_map_indices(shards.len(), |i| {
            let mut shard = shards[i].lock().unwrap_or_else(PoisonError::into_inner);
            // Recover each slot's office id from the assignment table
            // (slot order within a shard is office-id order).
            let members: Vec<usize> = assignment
                .iter()
                .enumerate()
                .filter(|(_, &(s, _))| s == i)
                .map(|(office, _)| office)
                .collect();
            for (slot, office) in shard.slots.iter_mut().zip(members) {
                if !slot.queue.is_empty() {
                    let mut q = std::mem::take(&mut slot.queue);
                    slot.engine.ingest_bytes(&q);
                    q.clear();
                    slot.queue = q;
                }
                if expected_ticks[office] > 0 {
                    slot.engine.finish(expected_ticks[office]);
                }
            }
        });
    }

    /// Mutable access to one office's engine (serial control path:
    /// event flushing, checkpoint snapshots). `None` for an office the
    /// fleet does not host.
    pub fn office_mut(&mut self, office: u16) -> Option<&mut StreamingEngine<'a>> {
        let &(s, i) = self.assignment.get(usize::from(office))?;
        let shard = self.shards[s].get_mut().unwrap_or_else(PoisonError::into_inner);
        Some(&mut shard.slots[i].engine)
    }

    /// Visits every office engine in office-id order (serial).
    pub fn for_each_office(&mut self, mut f: impl FnMut(u16, &mut StreamingEngine<'a>)) {
        for office in 0..self.assignment.len() {
            let (s, i) = self.assignment[office];
            let shard = self.shards[s].get_mut().unwrap_or_else(PoisonError::into_inner);
            f(office as u16, &mut shard.slots[i].engine);
        }
    }

    /// Per-shard tick lag: how far each shard's slowest office trails
    /// the fleet-wide tick frontier. Empty shards report 0.
    pub fn shard_tick_lags(&mut self) -> Vec<u64> {
        let mut mins = vec![u64::MAX; self.shards.len()];
        let mut frontier = 0u64;
        for shard_idx in 0..self.shards.len() {
            let shard = self.shards[shard_idx]
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner);
            for slot in &shard.slots {
                let ticks = slot.engine.counters().ticks_processed;
                frontier = frontier.max(ticks);
                mins[shard_idx] = mins[shard_idx].min(ticks);
            }
        }
        mins.into_iter()
            .map(|m| if m == u64::MAX { 0 } else { frontier - m })
            .collect()
    }
}
