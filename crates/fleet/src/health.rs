//! Fleet health rollup: classify every office into a small state
//! machine and export a **bounded** telemetry footprint regardless of
//! fleet size.
//!
//! The first fleet PR exported three counters *per office*
//! (`office_ticks_processed{office="…"}` and friends). At the
//! ROADMAP's 10k-office target that is 30k Prometheus series from one
//! process — the registry render dwarfs the data it describes and
//! every scrape ships it again. This module replaces the per-office
//! series with:
//!
//! - four rollup gauges, one per [`HealthState`]
//!   (`fleet_health_offices{state="healthy"}` …);
//! - at most [`TOP_K_OFFICES`] per-office gauges for the *worst* tick
//!   lags (`fleet_office_tick_lag{office="…"}`) — the offices an
//!   operator would page on, by name, and nothing else;
//! - unlabeled fleet totals (`fleet_office_ticks_processed_total` …)
//!   that preserve the aggregate the old series summed to;
//! - one log-linear histogram of the per-office lag distribution
//!   (`fleet_office_tick_lag_ticks`), whose bucket count is bounded by
//!   the value range, never the office count.
//!
//! Everything here is a pure function of the per-office
//! [`RuntimeCounters`], so the export stays byte-identical across
//! replays; the cap is pinned by a regression test rendering a
//! synthetic multi-thousand-office fleet.

use fadewich_runtime::counters::RuntimeCounters;
use fadewich_telemetry::Telemetry;

/// How many worst-lag offices keep an `{office="…"}`-labeled series.
pub const TOP_K_OFFICES: usize = 8;

/// Upper bound on the number of Prometheus text lines the health
/// export may add to a registry render, for **any** fleet size. The
/// dominant term is the lag histogram, whose log-linear bucket count
/// is bounded by the `u64` value range (~250 buckets), not by the
/// office count. Pinned by `health_export_is_cardinality_bounded` in
/// `tests/fleet.rs`.
pub const MAX_HEALTH_RENDER_LINES: usize = 300;

/// One office's health classification, worst first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// A sensor crossed its authentication reject budget — active
    /// adversarial traffic, not a fault.
    UnderAttack,
    /// More silence quarantines than recoveries: some sensor is down
    /// right now.
    Quarantined,
    /// Behind the tick frontier or serving masked stream ticks —
    /// degraded coverage, decisions still flowing.
    Degraded,
    /// Keeping up, unmasked, nothing quarantined.
    Healthy,
}

impl HealthState {
    /// All states, worst first (display and export order).
    pub const ALL: [HealthState; 4] = [
        HealthState::UnderAttack,
        HealthState::Quarantined,
        HealthState::Degraded,
        HealthState::Healthy,
    ];

    /// Dense index into per-state arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            HealthState::UnderAttack => 0,
            HealthState::Quarantined => 1,
            HealthState::Degraded => 2,
            HealthState::Healthy => 3,
        }
    }

    /// The `state="…"` label value.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            HealthState::UnderAttack => "under_attack",
            HealthState::Quarantined => "quarantined",
            HealthState::Degraded => "degraded",
            HealthState::Healthy => "healthy",
        }
    }
}

/// The slice of one office's counters the health model reads.
#[derive(Debug, Clone, Copy, Default)]
pub struct OfficeStat {
    /// Office id.
    pub office: u16,
    /// Ticks the office's engine advanced through.
    pub ticks_processed: u64,
    /// Ticks the day would have given a keeping-up office.
    pub expected_ticks: u64,
    /// Frames the engine accepted.
    pub frames_in: u64,
    /// Silence quarantines counted.
    pub quarantines: u64,
    /// Quarantine recoveries counted.
    pub recoveries: u64,
    /// Authentication attack-quarantines counted.
    pub attack_quarantines: u64,
    /// Stream-ticks masked out of the decision statistic.
    pub masked_stream_ticks: u64,
}

impl OfficeStat {
    /// Extracts the health-relevant slice of one engine's counters.
    #[must_use]
    pub fn from_counters(office: u16, expected_ticks: u64, c: &RuntimeCounters) -> OfficeStat {
        OfficeStat {
            office,
            ticks_processed: c.ticks_processed,
            expected_ticks,
            frames_in: c.frames_in,
            quarantines: c.quarantines,
            recoveries: c.recoveries,
            attack_quarantines: c.attack_quarantines,
            masked_stream_ticks: c.masked_stream_ticks,
        }
    }

    /// How far behind the day's tick frontier this office ended.
    #[must_use]
    pub fn tick_lag(&self) -> u64 {
        self.expected_ticks.saturating_sub(self.ticks_processed)
    }

    /// Classifies the office, worst signal wins: under-attack beats
    /// quarantined beats degraded.
    #[must_use]
    pub fn classify(&self) -> HealthState {
        if self.attack_quarantines > 0 {
            HealthState::UnderAttack
        } else if self.quarantines > self.recoveries {
            HealthState::Quarantined
        } else if self.tick_lag() > 0 || self.masked_stream_ticks > 0 {
            HealthState::Degraded
        } else {
            HealthState::Healthy
        }
    }
}

/// The fleet-wide rollup: per-state counts, the top-K worst lags, and
/// the aggregate totals the retired per-office series used to sum to.
#[derive(Debug, Clone, Default)]
pub struct FleetHealth {
    /// Office counts indexed by [`HealthState::index`].
    pub counts: [u64; 4],
    /// Worst offices by tick lag (lag desc, office asc; lag > 0 only),
    /// at most [`TOP_K_OFFICES`] entries of `(office, lag)`.
    pub worst: Vec<(u16, u64)>,
    /// Sum of every office's `ticks_processed`.
    pub total_ticks_processed: u64,
    /// Sum of every office's `frames_in`.
    pub total_frames_in: u64,
    /// Sum of every office's silence quarantines.
    pub total_quarantines: u64,
}

impl FleetHealth {
    /// Rolls `stats` up into counts, totals, and the top-`top_k` worst
    /// lag list.
    #[must_use]
    pub fn assess(stats: &[OfficeStat], top_k: usize) -> FleetHealth {
        let mut health = FleetHealth::default();
        let mut lagged: Vec<(u16, u64)> = Vec::new();
        for s in stats {
            health.counts[s.classify().index()] += 1;
            health.total_ticks_processed += s.ticks_processed;
            health.total_frames_in += s.frames_in;
            health.total_quarantines += s.quarantines;
            let lag = s.tick_lag();
            if lag > 0 {
                lagged.push((s.office, lag));
            }
        }
        lagged.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        lagged.truncate(top_k);
        health.worst = lagged;
        health
    }

    /// Offices in `state`.
    #[must_use]
    pub fn count(&self, state: HealthState) -> u64 {
        self.counts[state.index()]
    }

    /// Total offices assessed.
    #[must_use]
    pub fn offices(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The one-line rollup `fadewichd fleet` prints and the day report
    /// carries — deterministic, logical-tick-only.
    #[must_use]
    pub fn summary_line(&self) -> String {
        let mut line = format!(
            "health  healthy {}  degraded {}  quarantined {}  under_attack {}",
            self.count(HealthState::Healthy),
            self.count(HealthState::Degraded),
            self.count(HealthState::Quarantined),
            self.count(HealthState::UnderAttack),
        );
        if let Some(&(office, lag)) = self.worst.first() {
            line.push_str(&format!("  worst_lag {lag} (office {office})"));
        }
        line
    }

    /// Exports the rollup into `telemetry` with a render footprint
    /// bounded by [`MAX_HEALTH_RENDER_LINES`]: four state gauges, the
    /// top-K lag gauges, the unlabeled totals, and one lag histogram
    /// fed from `stats` (bucket count bounded by the value range).
    pub fn export_into(&self, stats: &[OfficeStat], telemetry: &Telemetry) {
        for state in HealthState::ALL {
            telemetry.gauge_set(
                &format!("fleet_health_offices{{state=\"{}\"}}", state.label()),
                self.count(state) as f64,
            );
        }
        for &(office, lag) in &self.worst {
            telemetry
                .gauge_set(&format!("fleet_office_tick_lag{{office=\"{office}\"}}"), lag as f64);
        }
        telemetry.counter_add("fleet_office_ticks_processed_total", self.total_ticks_processed);
        telemetry.counter_add("fleet_office_frames_in_total", self.total_frames_in);
        telemetry.counter_add("fleet_office_quarantines_total", self.total_quarantines);
        for s in stats {
            telemetry.histo_record("fleet_office_tick_lag_ticks", s.tick_lag());
        }
    }
}

/// Assesses `stats` with the standard top-K and exports the rollup —
/// the one call the day driver makes.
#[must_use]
pub fn export_health(stats: &[OfficeStat], telemetry: &Telemetry) -> FleetHealth {
    let health = FleetHealth::assess(stats, TOP_K_OFFICES);
    health.export_into(stats, telemetry);
    health
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(office: u16, processed: u64, expected: u64) -> OfficeStat {
        OfficeStat {
            office,
            ticks_processed: processed,
            expected_ticks: expected,
            ..OfficeStat::default()
        }
    }

    #[test]
    fn classification_precedence_is_worst_first() {
        let mut s = stat(0, 100, 100);
        assert_eq!(s.classify(), HealthState::Healthy);
        s.masked_stream_ticks = 3;
        assert_eq!(s.classify(), HealthState::Degraded);
        s.quarantines = 2;
        s.recoveries = 1;
        assert_eq!(s.classify(), HealthState::Quarantined);
        s.attack_quarantines = 1;
        assert_eq!(s.classify(), HealthState::UnderAttack);
        // Recovered quarantines alone are not an active outage.
        let recovered =
            OfficeStat { quarantines: 2, recoveries: 2, ..stat(1, 50, 50) };
        assert_eq!(recovered.classify(), HealthState::Healthy);
        // Lag alone degrades.
        assert_eq!(stat(2, 40, 50).classify(), HealthState::Degraded);
    }

    #[test]
    fn assess_ranks_worst_lag_with_stable_ties() {
        let stats = vec![
            stat(0, 100, 100),
            stat(1, 90, 100),  // lag 10
            stat(2, 80, 100),  // lag 20
            stat(3, 90, 100),  // lag 10, ties office 1 — office asc
            stat(4, 100, 100),
        ];
        let health = FleetHealth::assess(&stats, 2);
        assert_eq!(health.worst, vec![(2, 20), (1, 10)]);
        assert_eq!(health.count(HealthState::Healthy), 2);
        assert_eq!(health.count(HealthState::Degraded), 3);
        assert_eq!(health.offices(), 5);
        assert_eq!(health.total_ticks_processed, 460);
        assert_eq!(
            health.summary_line(),
            "health  healthy 2  degraded 3  quarantined 0  under_attack 0  worst_lag 20 (office 2)"
        );
        let calm = FleetHealth::assess(&stats[..1], 2);
        assert_eq!(
            calm.summary_line(),
            "health  healthy 1  degraded 0  quarantined 0  under_attack 0"
        );
    }

    #[test]
    fn export_emits_bounded_series() {
        // Far more offices than TOP_K, all lagging differently.
        let stats: Vec<OfficeStat> =
            (0..100).map(|o| stat(o, u64::from(1000 - o), 1000)).collect();
        let telemetry = Telemetry::metrics_only();
        let health = export_health(&stats, &telemetry);
        assert_eq!(health.worst.len(), TOP_K_OFFICES);
        let text = telemetry.prometheus_text(false).unwrap();
        let labeled = text
            .lines()
            .filter(|l| l.starts_with("fleet_office_tick_lag{office="))
            .count();
        assert_eq!(labeled, TOP_K_OFFICES);
        assert!(text.contains("fleet_health_offices{state=\"healthy\"} 1\n"), "{text}");
        assert!(text.contains("fleet_health_offices{state=\"degraded\"} 99\n"), "{text}");
        assert!(text.contains("fleet_office_ticks_processed_total"), "{text}");
        assert!(text.contains("fleet_office_tick_lag_ticks_count 100"), "{text}");
        assert!(text.lines().count() <= MAX_HEALTH_RENDER_LINES, "{text}");
    }
}
