//! Fleet runtime: multiplex thousands of office engines behind one
//! ingestion front.
//!
//! A FADEWICH deployment is per-office, but an operator hosts many
//! offices. This crate turns the single-office
//! [`StreamingEngine`](fadewich_runtime::engine::StreamingEngine)
//! into a multi-tenant fleet inside one process:
//!
//! - [`shard`] — the deterministic office → shard placement function
//!   (pure, thread-count independent, pinned by tests);
//! - [`runtime`] — [`FleetRuntime`](runtime::FleetRuntime), the demux
//!   front: zero-copy validation of a merged v2 frame stream, byte-
//!   slice routing into per-office queues, parallel drains over the
//!   deterministic worker pool;
//! - [`day`] — the shared day driver: round-interleaved feeds,
//!   per-office checkpoint namespaces and decision logs, crash/resume,
//!   and the single-office reference the fleet is byte-compared to;
//! - [`scaling`] — the `reproduce fleet` study: an N-office scaling
//!   table whose per-office decision streams are proven identical to
//!   N independent single-office runs;
//! - [`health`] — the per-office health rollup
//!   (healthy/degraded/quarantined/under-attack) exported with a
//!   bounded telemetry footprint at any fleet size.
//!
//! The headline invariant, enforced end to end by `tests/fleet.rs`
//! and `scripts/ci.sh`: **a fleet of N offices produces, for every
//! office, the byte-identical decision log that N independent
//! single-office deployments would produce** — at any shard count and
//! any `FADEWICH_THREADS`, across crashes, with one shared read-only
//! model for the whole fleet.
//!
//! The `fadewichd` daemon binary also lives here (`fadewichd fleet`
//! drives this crate; `train`/`serve`/`replay`/`stats` are unchanged).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod day;
pub mod health;
pub mod runtime;
pub mod scaling;
pub mod shard;

pub use day::{office_link_seed, run_fleet_day, AuthTotals, FleetDayEnv, FleetDayReport, OfficeStart};
pub use health::{FleetHealth, HealthState, OfficeStat};
pub use runtime::{FleetCounters, FleetRuntime};
pub use shard::shard_of;
