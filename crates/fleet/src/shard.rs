//! Deterministic office → shard placement.
//!
//! The fleet demultiplexer routes every frame to a shard by hashing
//! the frame's office id. The function below is the **only** place
//! that mapping is defined, and it is a pure function of
//! `(office, n_shards)`:
//!
//! - it never consults the worker-pool size (`FADEWICH_THREADS`), the
//!   host, or any runtime state, so a fleet sharded the same way
//!   produces byte-identical per-office outputs on one thread or
//!   sixty-four;
//! - it is stable across runs and releases — checkpoint directories
//!   and telemetry labels keyed by shard keep meaning the same thing
//!   after a restart.
//!
//! The hash is FNV-1a over the office id's two little-endian bytes,
//! reduced modulo the shard count. FNV-1a is tiny, allocation-free,
//! and mixes the dense small office ids real fleets use (0, 1, 2, …)
//! well enough that shards stay balanced — see the distribution test
//! below, which bounds the max/min shard population for a dense id
//! range.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Maps an office id onto one of `n_shards` shards.
///
/// Pure and deterministic: the result depends only on the arguments.
/// Scheduling (thread count, shard execution order) never changes
/// which shard an office lives on.
///
/// # Panics
///
/// Panics if `n_shards` is zero — a fleet with no shards cannot route
/// anything, and silently defaulting would hide a construction bug.
#[must_use]
pub fn shard_of(office: u16, n_shards: usize) -> usize {
    assert!(n_shards > 0, "shard_of: n_shards must be nonzero");
    let mut h = FNV_OFFSET;
    for b in office.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    (h % n_shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_for_every_office_and_shard_count() {
        for n_shards in [1usize, 2, 3, 7, 8, 64] {
            for office in (0..=u16::MAX).step_by(257) {
                assert!(shard_of(office, n_shards) < n_shards);
            }
            assert!(shard_of(u16::MAX, n_shards) < n_shards);
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        for office in [0u16, 1, 1000, u16::MAX] {
            assert_eq!(shard_of(office, 1), 0);
        }
    }

    #[test]
    fn pinned_assignments_are_stable() {
        // Regression pin: these values are load-bearing — checkpoint
        // namespaces and telemetry labels assume the mapping never
        // drifts between releases.
        assert_eq!(shard_of(0, 8), 5);
        assert_eq!(shard_of(1, 8), 4);
        assert_eq!(shard_of(2, 8), 7);
        assert_eq!(shard_of(3, 8), 6);
        assert_eq!(shard_of(1000, 8), shard_of(1000, 8));
    }

    #[test]
    fn independent_of_thread_pool_size() {
        let baseline: Vec<usize> = (0..512u16).map(|o| shard_of(o, 8)).collect();
        for threads in [1usize, 2, 8] {
            let under_pool = fadewich_experiments::par::with_threads(threads, || {
                (0..512u16).map(|o| shard_of(o, 8)).collect::<Vec<usize>>()
            });
            assert_eq!(under_pool, baseline, "assignment changed under {threads} threads");
        }
    }

    #[test]
    fn dense_office_ids_balance_across_shards() {
        for n_shards in [4usize, 8, 16] {
            let mut pop = vec![0usize; n_shards];
            let n_offices = 1024u16;
            for office in 0..n_offices {
                pop[shard_of(office, n_shards)] += 1;
            }
            let expect = n_offices as usize / n_shards;
            let max = *pop.iter().max().unwrap_or(&0);
            let min = *pop.iter().min().unwrap_or(&0);
            assert!(
                max <= expect * 2 && min >= expect / 2,
                "shards unbalanced for {n_shards} shards: {pop:?}"
            );
        }
    }
}
