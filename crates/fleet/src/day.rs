//! The fleet day driver: feeds every office's delivery stream through
//! one [`FleetRuntime`], round-interleaved, with optional per-office
//! crash recovery. Shared by the `fadewichd fleet` subcommand, the
//! `reproduce fleet` scaling study, and the integration tests, so all
//! three exercise the exact same data path.
//!
//! # Feed model
//!
//! All offices of a fleet share one scenario, one trace, and one
//! read-only model — what differs per office is the office id stamped
//! into its frames and the link seed its delivery randomness draws
//! from ([`office_link_seed`]). Office 0 keeps the base seed and
//! v1 frames, so its byte stream — and therefore its decision log —
//! is **literally** what a single-office `fadewichd serve` run with
//! the same flags produces; `scripts/ci.sh` compares the two with
//! `cmp`.
//!
//! Round *r* of a day delivers each office's *r*-th link delivery in
//! office-id order; every [`advance_every`] rounds the fleet drains
//! its queues in parallel, flushes freshly produced events into the
//! per-office sink, and (when recovering) sweeps checkpoints. Both the
//! interleaving and the sweep schedule are pure functions of the
//! configuration, never of thread count.
//!
//! # Checkpoint namespaces
//!
//! Office `o` checkpoints under `<root>/office-%05d/` — its own
//! [`CheckpointStore`] with its own `decisions.log`, exactly the
//! layout a single-office serve uses, so per-office resume logic is
//! serve's logic verbatim. A torn sweep (crash partway through
//! checkpointing the fleet) is safe: each office resumes from its own
//! newest valid image, and offices whose image is a day behind simply
//! redo that day's tail deterministically.
//!
//! [`advance_every`]: FleetDayEnv::advance_every

use std::path::{Path, PathBuf};

use fadewich_core::kma::Kma;
use fadewich_core::re::RadioEnvironment;
use fadewich_core::stream::ChannelKind;
use fadewich_officesim::{Scenario, Trace};
use fadewich_runtime::checkpoint::{CheckpointStore, Checkpointer, EngineSnapshot};
use fadewich_runtime::counters::{ChannelCounters, RuntimeCounters};
use fadewich_runtime::engine::{EngineConfig, EngineEvent, StreamingEngine};
use fadewich_runtime::link::LinkModel;
use fadewich_runtime::replay::{day_deliveries_for_office, day_deliveries_for_office_into};
use fadewich_telemetry::Telemetry;

use crate::health::{export_health, FleetHealth, OfficeStat};
use crate::runtime::{FleetCounters, FleetRuntime};

/// Rounds between parallel queue drains when the caller has no
/// stronger opinion: large enough to amortize pool dispatch, small
/// enough that events and checkpoints stay fresh.
pub const DEFAULT_ADVANCE_EVERY: u64 = 64;

/// Derives office `office`'s link seed from the fleet's base seed.
///
/// Office 0 keeps the base seed unchanged (its byte stream matches a
/// single-office run with the same flags); every other office mixes
/// its id in via a golden-ratio multiply so neighbouring ids get
/// uncorrelated link randomness.
#[must_use]
pub fn office_link_seed(base: u64, office: u16) -> u64 {
    base ^ u64::from(office).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Renders one engine event exactly the way `fadewichd` prints it —
/// the line format the decision logs, and therefore the byte-identity
/// gates, are built on.
#[must_use]
pub fn event_line(ev: &EngineEvent) -> String {
    match ev {
        EngineEvent::Decision { tick, action } => {
            format!("tick {tick:>6}  t {:>8.1}s  {:?}", action.t, action.kind)
        }
        EngineEvent::SensorQuarantined { sensor, tick } => {
            format!("tick {tick:>6}  sensor {sensor} QUARANTINED")
        }
        EngineEvent::SensorRecovered { sensor, tick } => {
            format!("tick {tick:>6}  sensor {sensor} recovered")
        }
        EngineEvent::SensorAttackQuarantined { sensor, tick } => {
            format!("tick {tick:>6}  sensor {sensor} ATTACK-QUARANTINED")
        }
    }
}

/// The checkpoint namespace of one office under a fleet root.
#[must_use]
pub fn office_dir(root: &Path, office: u16) -> PathBuf {
    root.join(format!("office-{office:05}"))
}

/// Everything a fleet day needs that outlives the day.
pub struct FleetDayEnv<'s> {
    /// The shared scenario (KMA inputs come from it).
    pub scenario: &'s Scenario,
    /// The shared recorded trace.
    pub trace: &'s Trace,
    /// Monitored stream indices (shared by every office).
    pub streams: &'s [usize],
    /// The shared read-only classifier — one copy for the whole fleet.
    pub re: &'s RadioEnvironment,
    /// Engine configuration (identical per office).
    pub cfg: EngineConfig,
    /// The link model every office's deliveries pass through.
    pub link: &'s LinkModel,
    /// Base link seed; see [`office_link_seed`].
    pub link_seed: u64,
    /// Which recorded day to stream.
    pub day: usize,
    /// Rounds between parallel drains ([`DEFAULT_ADVANCE_EVERY`]).
    pub advance_every: u64,
}

/// How one office enters the day.
pub enum OfficeStart {
    /// The office already completed this day before a crash — it is
    /// hosted but fed nothing and emits nothing.
    Skip,
    /// Cold start: fresh engine, day header emitted.
    Fresh,
    /// Resume mid-day from a checkpoint: restored engine, deliveries
    /// before `stream_pos` skipped, no header (it is already in the
    /// committed log prefix).
    Resume(EngineSnapshot),
}

impl OfficeStart {
    /// Derives the start mode for `day` from an office's loaded
    /// checkpoint, consuming the snapshot when this is its day.
    pub fn for_day(resume: &mut Option<EngineSnapshot>, day: usize) -> OfficeStart {
        match resume {
            Some(s) if (s.day as usize) > day => OfficeStart::Skip,
            Some(s) if (s.day as usize) == day => match resume.take() {
                Some(snap) => OfficeStart::Resume(snap),
                None => OfficeStart::Fresh,
            },
            _ => OfficeStart::Fresh,
        }
    }
}

/// Receives each office's decision stream (the lines a single-office
/// serve would print) and answers the recovery layer's questions.
pub trait FleetSink {
    /// One decision-stream line for `office`: day header, event line,
    /// or end-of-day summary.
    ///
    /// # Errors
    ///
    /// Propagated out of the day driver as a decision-log I/O failure.
    fn emit(&mut self, office: u16, line: &str) -> Result<(), String>;

    /// Committed log bytes for `office` — recorded into checkpoint
    /// images so a resume can truncate the uncommitted tail. Sinks
    /// without durable logs return 0.
    fn log_mark(&mut self, office: u16) -> u64 {
        let _ = office;
        0
    }
}

/// A [`FleetSink`] buffering every office's lines in memory — the
/// in-process equivalent of reading each office's decision log back.
#[derive(Debug, Clone)]
pub struct BufferSink {
    /// `lines[o]` is office `o`'s decision stream so far.
    pub lines: Vec<Vec<String>>,
}

impl BufferSink {
    /// A sink for `n_offices` offices.
    #[must_use]
    pub fn new(n_offices: usize) -> BufferSink {
        BufferSink { lines: vec![Vec::new(); n_offices] }
    }

    /// Office `o`'s stream joined with trailing newlines — byte-equal
    /// to the decision log a file sink would have written.
    #[must_use]
    pub fn rendered(&self, office: u16) -> String {
        self.lines[usize::from(office)].iter().fold(String::new(), |mut s, l| {
            s.push_str(l);
            s.push('\n');
            s
        })
    }
}

impl FleetSink for BufferSink {
    fn emit(&mut self, office: u16, line: &str) -> Result<(), String> {
        self.lines[usize::from(office)].push(line.to_string());
        Ok(())
    }
}

/// Per-office durable state for a recovering fleet day.
pub struct OfficeRecovery {
    /// The office's own checkpoint store (`<root>/office-%05d/`).
    pub store: CheckpointStore,
}

/// Fleet-wide recovery context for one day.
pub struct FleetRecovery {
    /// One entry per office, office-id order.
    pub offices: Vec<OfficeRecovery>,
    /// Cumulative ticks of previously completed days — keeps
    /// checkpoint stamps monotone across the run, like serve.
    pub base_ticks: u64,
    /// Stop the day (reporting `crashed`) once the fleet tick frontier
    /// reaches this stamp — the library-level analogue of
    /// `--crash-after-ticks`.
    pub crash_after_ticks: Option<u64>,
}

/// What one office produced over the day.
#[derive(Debug, Clone)]
pub struct OfficeDay {
    /// Events emitted this run (post-resume portion when resumed).
    pub events: Vec<EngineEvent>,
    /// The engine's deterministic end-of-day summary ("" if skipped
    /// or crashed before day end).
    pub summary: String,
    /// Runtime counters at the end of the run.
    pub counters: RuntimeCounters,
}

/// Fleet-wide totals of the per-engine authentication counters — the
/// rollup of each office's spoof/replay/flood accounting. All zero for
/// a legacy-unauthenticated fleet under no attack, in which case the
/// stdout rollup and telemetry export stay byte-identical to the
/// pre-auth output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuthTotals {
    /// Frames rejected for a missing, forged, or mode-mismatched MAC.
    pub frames_unauthenticated: u64,
    /// Valid-MAC frames rejected by the anti-replay windows.
    pub frames_replayed: u64,
    /// Auth rejections beyond some sensor's per-window budget.
    pub frames_rate_limited: u64,
    /// Sensors attack-quarantined across the fleet.
    pub attack_quarantines: u64,
}

impl AuthTotals {
    /// Whether any engine anywhere counted authentication activity.
    #[must_use]
    pub fn any(&self) -> bool {
        *self != AuthTotals::default()
    }

    /// Adds one office's counters into the rollup.
    fn absorb(&mut self, c: &RuntimeCounters) {
        self.frames_unauthenticated += c.frames_unauthenticated;
        self.frames_replayed += c.frames_replayed;
        self.frames_rate_limited += c.frames_rate_limited;
        self.attack_quarantines += c.attack_quarantines;
    }
}

/// Everything [`run_fleet_day`] produced.
#[derive(Debug, Clone)]
pub struct FleetDayReport {
    /// Per-office outcomes, office-id order.
    pub offices: Vec<OfficeDay>,
    /// Fleet-level demux counters for the day.
    pub fleet: FleetCounters,
    /// Per-shard tick lag at the end of the run.
    pub shard_tick_lags: Vec<u64>,
    /// Stream-health counters summed over every office, sliced per
    /// channel kind (indexed by [`ChannelKind::index`]) — the fleet's
    /// rollup of each engine's [`RuntimeCounters::channel`] slices.
    pub channel_totals: [ChannelCounters; ChannelKind::COUNT],
    /// Authentication-counter rollup over every office.
    pub auth_totals: AuthTotals,
    /// Per-office health rollup (bounded-cardinality telemetry view).
    pub health: FleetHealth,
    /// True when `crash_after_ticks` stopped the day early.
    pub crashed: bool,
}

impl FleetDayReport {
    /// True when any non-RSSI channel counted anything fleet-wide —
    /// the condition under which the stdout rollup prints the
    /// per-channel lines (RSSI-only fleets keep their exact
    /// pre-fusion output).
    #[must_use]
    pub fn has_mixed_channels(&self) -> bool {
        ChannelKind::ALL
            .iter()
            .any(|&k| k != ChannelKind::Rssi && self.channel_totals[k.index()] != ChannelCounters::default())
    }
}

/// Streams one day through a fleet of `starts.len()` offices over
/// `n_shards` shards. See the module docs for the feed model; every
/// decision-stream line goes through `sink`, and when `recovery` is
/// present each office checkpoints into its own store at the engine's
/// configured cadence.
///
/// # Errors
///
/// Propagates engine construction/restore failures, layout errors,
/// checkpoint-save failures, and sink I/O errors.
#[allow(clippy::too_many_arguments)]
pub fn run_fleet_day(
    env: &FleetDayEnv<'_>,
    starts: Vec<OfficeStart>,
    n_shards: usize,
    mut recovery: Option<&mut FleetRecovery>,
    sink: &mut dyn FleetSink,
    telemetry: &Telemetry,
) -> Result<FleetDayReport, String> {
    let n_offices = starts.len();
    if let Some(rec) = recovery.as_deref() {
        if rec.offices.len() != n_offices {
            return Err(format!(
                "fleet recovery covers {} offices but the fleet hosts {n_offices}",
                rec.offices.len()
            ));
        }
    }
    let day = env.day;
    let groups = env.trace.receiver_groups(env.streams);
    let inputs = env.scenario.input_trace(day, 0);
    let n_ticks = env.trace.days()[day].n_ticks() as u64;
    let advance_every = env.advance_every.max(1);

    // Per-office delivery feeds, flattened to one buffer + offsets per
    // office so a thousand offices do not cost a thousand Vec<Vec<u8>>.
    let mut feeds: Vec<OfficeFeed> = Vec::with_capacity(n_offices);
    // Build engines and start positions.
    let mut engines: Vec<StreamingEngine<'_>> = Vec::with_capacity(n_offices);
    let mut participating = vec![true; n_offices];
    let mut start_pos = vec![0usize; n_offices];
    let mut checkpointers: Vec<Checkpointer> =
        (0..n_offices).map(|_| Checkpointer::new(env.cfg.checkpoint_every_ticks)).collect();
    for (o, start) in starts.into_iter().enumerate() {
        let office = o as u16;
        let feed = match start {
            OfficeStart::Skip => OfficeFeed::empty(),
            _ => OfficeFeed::deliver(env, &groups, office)?,
        };
        let kma = Kma::new(&inputs);
        let engine = match start {
            OfficeStart::Resume(snap) => {
                if snap.stream_pos as usize > feed.len() {
                    return Err(format!(
                        "office {office}: checkpoint claims {} ingested deliveries but day {day} only has {}",
                        snap.stream_pos,
                        feed.len()
                    ));
                }
                let engine = StreamingEngine::restore(env.cfg, groups.clone(), env.re, kma, &snap)
                    .map_err(|e| format!("office {office}: {e}"))?;
                checkpointers[o].advance(engine.counters().ticks_processed);
                start_pos[o] = snap.stream_pos as usize;
                engine
            }
            OfficeStart::Fresh => {
                let engine = StreamingEngine::new(env.cfg, groups.clone(), env.re, kma)
                    .map_err(|e| format!("office {office}: {e}"))?;
                sink.emit(office, &format!("== day {day} =="))?;
                engine
            }
            OfficeStart::Skip => {
                participating[o] = false;
                StreamingEngine::new(env.cfg, groups.clone(), env.re, kma)
                    .map_err(|e| format!("office {office}: {e}"))?
            }
        };
        feeds.push(feed);
        engines.push(engine);
    }

    let mut fleet = FleetRuntime::new(n_shards, engines)?;
    let max_rounds = feeds.iter().map(OfficeFeed::len).max().unwrap_or(0);
    let mut printed = vec![0usize; n_offices];
    let mut crashed = false;

    let mut round = 0usize;
    while round < max_rounds {
        let stop = (round + advance_every as usize).min(max_rounds);
        for r in round..stop {
            for o in 0..n_offices {
                if participating[o] && r >= start_pos[o] && r < feeds[o].len() {
                    fleet.ingest(feeds[o].get(r));
                }
            }
        }
        fleet.advance();
        round = stop;

        // Control phase (serial): flush fresh events, sweep checkpoints.
        // Order matches serve: events are committed to the log first,
        // then the snapshot records the grown mark, so a resume never
        // loses lines the restored engine will not re-emit.
        let mut frontier = 0u64;
        for o in 0..n_offices {
            if !participating[o] {
                continue;
            }
            let office = o as u16;
            let (events, ticks) = {
                let Some(engine) = fleet.office_mut(office) else { continue };
                let events: Vec<String> =
                    engine.events()[printed[o]..].iter().map(event_line).collect();
                printed[o] = engine.events().len();
                (events, engine.counters().ticks_processed)
            };
            frontier = frontier.max(ticks);
            for line in &events {
                sink.emit(office, line)?;
            }
            if recovery.is_some() && checkpointers[o].due(ticks) {
                let stream_pos = round.min(feeds[o].len()).max(start_pos[o]) as u64;
                let mark = sink.log_mark(office);
                let snap = match fleet.office_mut(office) {
                    Some(engine) => engine.snapshot(day as u32, stream_pos, mark),
                    None => continue,
                };
                if let Some(rec) = recovery.as_deref_mut() {
                    rec.offices[o]
                        .store
                        .save(rec.base_ticks + ticks, &snap)
                        .map_err(|e| format!("office {office}: checkpoint save failed: {e}"))?;
                }
                checkpointers[o].advance(ticks);
            }
        }
        if let Some(rec) = recovery.as_deref() {
            if rec.crash_after_ticks.is_some_and(|n| rec.base_ticks + frontier >= n) {
                crashed = true;
                break;
            }
        }
    }

    if !crashed {
        let expected: Vec<u64> =
            participating.iter().map(|&p| if p { n_ticks } else { 0 }).collect();
        fleet.finish_per_office(&expected);
    }

    // Day end (or crash point): final event flush, summaries, report.
    let mut offices = Vec::with_capacity(n_offices);
    let mut office_stats: Vec<OfficeStat> = Vec::with_capacity(n_offices);
    let mut active = 0u64;
    let mut quarantined = 0u64;
    let mut channel_totals = [ChannelCounters::default(); ChannelKind::COUNT];
    let mut auth_totals = AuthTotals::default();
    for o in 0..n_offices {
        let office = o as u16;
        let Some(engine) = fleet.office_mut(office) else { continue };
        let mut summary = String::new();
        if participating[o] {
            let events: Vec<String> =
                engine.events()[printed[o]..].iter().map(event_line).collect();
            printed[o] = engine.events().len();
            for line in &events {
                sink.emit(office, line)?;
            }
            if !crashed {
                summary = engine.counters().deterministic_summary();
                sink.emit(office, &summary)?;
            }
        }
        let counters = engine.counters().clone();
        auth_totals.absorb(&counters);
        for kind in ChannelKind::ALL {
            let (total, c) = (&mut channel_totals[kind.index()], counters.channel(kind));
            total.frames_in += c.frames_in;
            total.gap_fills += c.gap_fills;
            total.masked_stream_ticks += c.masked_stream_ticks;
            total.quarantines += c.quarantines;
            total.recoveries += c.recoveries;
        }
        if counters.frames_in > 0 {
            active += 1;
        }
        if counters.quarantines > counters.recoveries {
            quarantined += 1;
        }
        // Per-office telemetry goes through the bounded health rollup
        // below instead of one labeled series per office — at the
        // ROADMAP's 10k-office scale the old `office_*{office="…"}`
        // counters made the registry render O(fleet size).
        office_stats.push(OfficeStat::from_counters(
            office,
            if participating[o] { n_ticks } else { 0 },
            &counters,
        ));
        offices.push(OfficeDay {
            events: engine.events().to_vec(),
            summary,
            counters,
        });
    }
    for kind in ChannelKind::ALL {
        let c = &channel_totals[kind.index()];
        if *c == ChannelCounters::default() {
            continue;
        }
        let label = kind.label();
        for (metric, v) in [
            ("frames_in", c.frames_in),
            ("gap_fills", c.gap_fills),
            ("masked_stream_ticks", c.masked_stream_ticks),
            ("quarantines", c.quarantines),
            ("recoveries", c.recoveries),
        ] {
            telemetry.counter_add(&format!("fleet_channel_{label}_{metric}"), v);
        }
    }
    // Auth rollups export only when some engine counted auth activity,
    // so a legacy fleet's metric registry stays byte-identical.
    if auth_totals.any() {
        for (metric, v) in [
            ("frames_unauthenticated", auth_totals.frames_unauthenticated),
            ("frames_replayed", auth_totals.frames_replayed),
            ("frames_rate_limited", auth_totals.frames_rate_limited),
            ("attack_quarantines", auth_totals.attack_quarantines),
        ] {
            telemetry.counter_add(&format!("fleet_auth_{metric}"), v);
        }
    }
    let fleet_counters = fleet.counters().clone();
    telemetry.counter_add("fleet_frames_demuxed", fleet_counters.frames_demuxed);
    telemetry.counter_add("fleet_frames_unknown_office", fleet_counters.frames_unknown_office);
    telemetry
        .counter_add("fleet_frames_corrupt", fleet_counters.corrupt_crc + fleet_counters.corrupt_framing);
    telemetry.gauge_set("fleet_offices_active", active as f64);
    telemetry.gauge_set("fleet_offices_quarantined", quarantined as f64);
    let shard_tick_lags = fleet.shard_tick_lags();
    for (i, lag) in shard_tick_lags.iter().enumerate() {
        telemetry.gauge_set(&format!("fleet_shard_tick_lag{{shard=\"{i}\"}}"), *lag as f64);
    }
    let health = export_health(&office_stats, telemetry);
    Ok(FleetDayReport {
        offices,
        fleet: fleet_counters,
        shard_tick_lags,
        channel_totals,
        auth_totals,
        health,
        crashed,
    })
}

/// Runs office `office`'s day on a dedicated single-office engine —
/// the independent deployment the fleet must be byte-identical to.
/// Returns the decision-stream lines (header + events + summary),
/// rendered exactly as [`run_fleet_day`] emits them.
///
/// # Errors
///
/// Propagates engine construction and layout errors.
pub fn single_office_day(env: &FleetDayEnv<'_>, office: u16) -> Result<Vec<String>, String> {
    let groups = env.trace.receiver_groups(env.streams);
    let inputs = env.scenario.input_trace(env.day, 0);
    let kma = Kma::new(&inputs);
    let mut engine = StreamingEngine::new(env.cfg, groups.clone(), env.re, kma)
        .map_err(|e| format!("office {office}: {e}"))?;
    let deliveries = day_deliveries_for_office(
        env.trace,
        env.streams,
        &groups,
        env.day,
        env.link,
        office_link_seed(env.link_seed, office),
        office,
    )?;
    for bytes in &deliveries {
        engine.ingest_bytes(bytes);
    }
    engine.finish(env.trace.days()[env.day].n_ticks() as u64);
    let mut lines = vec![format!("== day {} ==", env.day)];
    lines.extend(engine.events().iter().map(event_line));
    lines.push(engine.counters().deterministic_summary());
    Ok(lines)
}

/// One office's flattened delivery feed: all delivery blobs in one
/// buffer, delimited by end offsets.
struct OfficeFeed {
    bytes: Vec<u8>,
    ends: Vec<u32>,
}

impl OfficeFeed {
    fn empty() -> OfficeFeed {
        OfficeFeed { bytes: Vec::new(), ends: Vec::new() }
    }

    /// Builds office `office`'s feed straight through the link's
    /// reusable-buffer path — no per-delivery `Vec` is ever allocated.
    fn deliver(
        env: &FleetDayEnv<'_>,
        groups: &[(u16, Vec<usize>)],
        office: u16,
    ) -> Result<OfficeFeed, String> {
        let mut bytes = Vec::new();
        let mut ends = Vec::new();
        day_deliveries_for_office_into(
            env.trace,
            env.streams,
            groups,
            env.day,
            env.link,
            office_link_seed(env.link_seed, office),
            office,
            &mut bytes,
            &mut ends,
        )?;
        Ok(OfficeFeed { bytes, ends: ends.into_iter().map(|e| e as u32).collect() })
    }

    fn len(&self) -> usize {
        self.ends.len()
    }

    fn get(&self, r: usize) -> &[u8] {
        let start = if r == 0 { 0 } else { self.ends[r - 1] as usize };
        &self.bytes[start..self.ends[r] as usize]
    }
}
