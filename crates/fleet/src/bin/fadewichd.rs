//! `fadewichd` — train and serve the FADEWICH pipeline over officesim
//! scenarios, optionally through a lossy link.
//!
//! ```text
//! fadewichd train --out PATH [scenario flags]
//! fadewichd serve --model PATH [scenario flags] [link flags] [recovery flags]
//! fadewichd fleet --model PATH --offices N [--shards N] [scenario flags] [link flags] [recovery flags]
//! fadewichd replay [--model PATH] [scenario flags] [link flags]
//! fadewichd stats PATH
//! ```
//!
//! `train` runs the training phase (MD over the training days, KMA
//! auto-labeling, SMO) and writes a versioned model artifact; it
//! prints only to stderr. `serve` loads an artifact, validates its
//! feature schema against the scenario, and streams the remaining
//! days through the engine **without any training code** — no SMO, no
//! KDE fit at startup. `replay` is the legacy single-process flow:
//! train in memory (or load `--model`) and then stream. A `replay`
//! and a `serve --model` of the same trained scenario print
//! byte-identical decision streams, which `scripts/ci.sh` enforces.
//!
//! Scenario flags: `--days N --seed N --sensors N --train-days N`.
//! Link flags: `--drop P --dup P --corrupt P --jitter TICKS
//! --link-seed N --json`. Bare flags without a subcommand are
//! accepted as `replay` for backwards compatibility.
//!
//! # Telemetry
//!
//! Every subcommand accepts `--trace-out PATH` (structured span/event
//! records as JSONL, stamped with the logical tick clock) and
//! `--metrics-out PATH` (the deterministic metrics-registry dump as
//! JSON). Both are seed-deterministic: two runs with identical flags
//! produce byte-identical files, which `scripts/ci.sh` enforces with
//! `cmp`. Wall-clock latency histograms are deliberately excluded from
//! the dump. `fadewichd stats PATH` pretty-prints a previously written
//! metrics dump; `fadewichd stats --profile TRACE [--collapsed]` folds
//! a trace JSONL into the per-stage span profile (or flamegraph
//! collapsed stacks).
//!
//! # Ops plane
//!
//! `--metrics-addr HOST:PORT` (serve, fleet, replay) starts the
//! in-process HTTP scrape server: `/metrics` (Prometheus text),
//! `/metrics.json`, `/healthz` (503 once any attack-quarantine
//! signal is nonzero), and `/slo` (the standard SLO report, fed from
//! the decision audit trail). `--metrics-addr-file PATH` writes the
//! bound address (useful with port 0); `--hold-secs N` keeps the
//! endpoint up after the run so it can be scraped. The server reads
//! wall time only through the telemetry `Clock` seam and its scrape
//! counters stay out of the deterministic registry.
//!
//! # Crash recovery (serve only)
//!
//! With `--checkpoint-dir PATH`, serve persists a CRC-guarded engine
//! checkpoint every `--checkpoint-every` processed ticks (default: one
//! simulated minute) and tees every stdout line into
//! `PATH/decisions.log`. On startup it loads the newest valid
//! checkpoint, truncates the decision log to the checkpointed
//! committed length, skips the deliveries already ingested, and
//! resumes — the final decision log is **byte-identical** to an
//! uninterrupted run's. Corrupt checkpoints are reported to stderr and
//! skipped (falling back to the previous one, or a cold start).
//! `--crash-after-ticks N` aborts the process mid-stream, for
//! exercising exactly that path (see `scripts/ci.sh`).
//!
//! # Fleet mode
//!
//! `fleet` hosts `--offices N` tenants of the scenario inside one
//! process behind the fleet demux front (see `fadewich_fleet`): one
//! shared read-only model, per-office engines sharded over `--shards`
//! groups on the deterministic worker pool. Office 0 streams the
//! exact bytes a single-office `serve` with the same flags streams,
//! so its decision log is byte-identical to serve's — `scripts/ci.sh`
//! `cmp`s the two. With `--checkpoint-dir ROOT` each office
//! checkpoints under `ROOT/office-%05d/` with its own `decisions.log`,
//! and a crashed fleet resumes every office from its own newest valid
//! image. stdout carries only the deterministic fleet rollup.
//!
//! Exit codes: 2 usage, 3 scenario, 4 model artifact, 5 engine,
//! 6 checkpoint, 7 decision-log I/O.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;

use fadewich_core::artifact::ModelBundle;
use fadewich_core::config::FadewichParams;
use fadewich_core::kma::Kma;
use fadewich_core::re::RadioEnvironment;
use fadewich_fleet::day::{
    event_line, office_dir, run_fleet_day, FleetDayEnv, FleetRecovery, FleetSink, OfficeRecovery,
    OfficeStart, DEFAULT_ADVANCE_EVERY,
};
use fadewich_officesim::{Scenario, ScenarioConfig, ScheduleParams, Trace};
use fadewich_runtime::checkpoint::{CheckpointStore, Checkpointer, EngineSnapshot};
use fadewich_runtime::engine::{EngineConfig, EngineEvent, StreamingEngine};
use fadewich_runtime::link::LinkModel;
use fadewich_runtime::replay;
use fadewich_telemetry::{json, OpsServer, Profile, SloEngine, Telemetry, Value, WallClock};

/// Everything that can take the daemon down, with a distinct exit
/// code per failure class so supervisors can tell a bad flag from a
/// bad disk.
#[derive(Debug)]
enum DaemonError {
    /// Bad command line (exit 2).
    Usage(String),
    /// Scenario generation or simulation failed (exit 3).
    Scenario(String),
    /// Model artifact load/save/schema failure (exit 4).
    Artifact(String),
    /// Engine construction, training, or streaming failure (exit 5).
    Engine(String),
    /// Checkpoint store failure (exit 6).
    Checkpoint(String),
    /// Decision-log I/O failure (exit 7).
    Io(String),
}

impl DaemonError {
    fn exit_code(&self) -> i32 {
        match self {
            DaemonError::Usage(_) => 2,
            DaemonError::Scenario(_) => 3,
            DaemonError::Artifact(_) => 4,
            DaemonError::Engine(_) => 5,
            DaemonError::Checkpoint(_) => 6,
            DaemonError::Io(_) => 7,
        }
    }
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Usage(m) => write!(f, "{m}"),
            DaemonError::Scenario(m) => write!(f, "scenario: {m}"),
            DaemonError::Artifact(m) => write!(f, "model artifact: {m}"),
            DaemonError::Engine(m) => write!(f, "engine: {m}"),
            DaemonError::Checkpoint(m) => write!(f, "checkpoint: {m}"),
            DaemonError::Io(m) => write!(f, "decision log: {m}"),
        }
    }
}

enum Command {
    Train { out: PathBuf },
    Serve { model: PathBuf },
    Fleet { model: PathBuf },
    Replay { model: Option<PathBuf> },
    Stats { path: PathBuf, profile: bool, collapsed: bool },
}

struct Args {
    command: Command,
    days: usize,
    seed: u64,
    sensors: usize,
    train_days: usize,
    link: LinkModel,
    link_seed: u64,
    json: bool,
    offices: usize,
    shards: usize,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: Option<u64>,
    crash_after_ticks: Option<u64>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    metrics_addr: Option<String>,
    metrics_addr_file: Option<PathBuf>,
    hold_secs: u64,
}

impl Args {
    fn default_args(command: Command) -> Args {
        Args {
            command,
            days: 2,
            seed: 0xD3B,
            sensors: 9,
            train_days: 1,
            link: LinkModel::lossless(),
            link_seed: 0xF10D,
            json: false,
            offices: 8,
            shards: 8,
            checkpoint_dir: None,
            checkpoint_every: None,
            crash_after_ticks: None,
            trace_out: None,
            metrics_out: None,
            metrics_addr: None,
            metrics_addr_file: None,
            hold_secs: 0,
        }
    }
}

const USAGE: &str = "usage: fadewichd <train --out PATH | serve --model PATH | fleet --model PATH | replay [--model PATH] | stats PATH | stats --profile TRACE [--collapsed]> \
[--days N] [--seed N] [--sensors N] [--train-days N] \
[--offices N] [--shards N] \
[--drop P] [--dup P] [--corrupt P] [--jitter TICKS] [--link-seed N] [--json] \
[--checkpoint-dir PATH] [--checkpoint-every TICKS] [--crash-after-ticks N] \
[--trace-out PATH] [--metrics-out PATH] \
[--metrics-addr HOST:PORT] [--metrics-addr-file PATH] [--hold-secs N]";

fn parse_args() -> Result<Args, String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("stats") {
        let mut profile = false;
        let mut collapsed = false;
        let mut path: Option<PathBuf> = None;
        for a in &raw[1..] {
            match a.as_str() {
                "--profile" => profile = true,
                "--collapsed" => collapsed = true,
                p if !p.starts_with('-') && path.is_none() => path = Some(PathBuf::from(p)),
                other => return Err(format!("stats: unexpected argument {other}\n{USAGE}")),
            }
        }
        let what = if profile { "a trace JSONL" } else { "a metrics JSON" };
        let path = path.ok_or_else(|| format!("stats needs {what} path\n{USAGE}"))?;
        if collapsed && !profile {
            return Err(format!("--collapsed only applies to stats --profile\n{USAGE}"));
        }
        return Ok(Args::default_args(Command::Stats { path, profile, collapsed }));
    }
    let (command_word, flag_start) = match raw.first().map(String::as_str) {
        Some("train") | Some("serve") | Some("fleet") | Some("replay") => (raw[0].clone(), 1),
        // Legacy flat-flag invocation: treat as replay.
        _ => ("replay".to_string(), 0),
    };
    let mut out: Option<PathBuf> = None;
    let mut model: Option<PathBuf> = None;
    let mut fleet_flags = false;
    let mut args = Args::default_args(Command::Replay { model: None });
    let mut it = raw[flag_start..].iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--model" => model = Some(PathBuf::from(value("--model")?)),
            "--days" => args.days = parse(&value("--days")?)?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--sensors" => args.sensors = parse(&value("--sensors")?)?,
            "--train-days" => args.train_days = parse(&value("--train-days")?)?,
            "--drop" => args.link.drop_p = parse(&value("--drop")?)?,
            "--dup" => args.link.dup_p = parse(&value("--dup")?)?,
            "--corrupt" => args.link.corrupt_p = parse(&value("--corrupt")?)?,
            "--jitter" => args.link.jitter_ticks = parse(&value("--jitter")?)?,
            "--link-seed" => args.link_seed = parse(&value("--link-seed")?)?,
            "--json" => args.json = true,
            "--offices" => {
                args.offices = parse(&value("--offices")?)?;
                fleet_flags = true;
            }
            "--shards" => {
                args.shards = parse(&value("--shards")?)?;
                fleet_flags = true;
            }
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(PathBuf::from(value("--checkpoint-dir")?))
            }
            "--checkpoint-every" => {
                args.checkpoint_every = Some(parse(&value("--checkpoint-every")?)?)
            }
            "--crash-after-ticks" => {
                args.crash_after_ticks = Some(parse(&value("--crash-after-ticks")?)?)
            }
            "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
            "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")?),
            "--metrics-addr-file" => {
                args.metrics_addr_file = Some(PathBuf::from(value("--metrics-addr-file")?))
            }
            "--hold-secs" => args.hold_secs = parse(&value("--hold-secs")?)?,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    args.command = match command_word.as_str() {
        "train" => {
            let out = out.ok_or_else(|| format!("train needs --out PATH\n{USAGE}"))?;
            Command::Train { out }
        }
        "serve" => {
            let model = model.ok_or_else(|| format!("serve needs --model PATH\n{USAGE}"))?;
            Command::Serve { model }
        }
        "fleet" => {
            let model = model.ok_or_else(|| format!("fleet needs --model PATH\n{USAGE}"))?;
            Command::Fleet { model }
        }
        _ => Command::Replay { model },
    };
    if !matches!(args.command, Command::Serve { .. } | Command::Fleet { .. })
        && (args.checkpoint_dir.is_some()
            || args.checkpoint_every.is_some()
            || args.crash_after_ticks.is_some())
    {
        return Err(format!(
            "--checkpoint-dir/--checkpoint-every/--crash-after-ticks only apply to serve and fleet\n{USAGE}"
        ));
    }
    if args.crash_after_ticks.is_some() && args.checkpoint_dir.is_none() {
        return Err(format!("--crash-after-ticks needs --checkpoint-dir\n{USAGE}"));
    }
    if fleet_flags && !matches!(args.command, Command::Fleet { .. }) {
        return Err(format!("--offices/--shards only apply to fleet\n{USAGE}"));
    }
    if matches!(args.command, Command::Fleet { .. }) && (args.offices == 0 || args.shards == 0) {
        return Err(format!("fleet needs at least one office and one shard\n{USAGE}"));
    }
    if args.metrics_addr.is_some() && matches!(args.command, Command::Train { .. }) {
        return Err(format!("--metrics-addr only applies to serve, fleet, and replay\n{USAGE}"));
    }
    if (args.metrics_addr_file.is_some() || args.hold_secs > 0) && args.metrics_addr.is_none() {
        return Err(format!("--metrics-addr-file/--hold-secs need --metrics-addr\n{USAGE}"));
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad value {s:?}: {e}"))
}

/// The crash-recovery context for a checkpointed serve: the store, the
/// decision-log tee, and how many log bytes are committed so far.
struct RecoveryCtx {
    store: CheckpointStore,
    log: std::fs::File,
    log_mark: u64,
}

/// Prints one line to stdout and, when recovering, tees it into the
/// decision log so a resumed run can pick up exactly where the bytes
/// stop.
fn emit(line: &str, recovery: &mut Option<RecoveryCtx>) -> Result<(), DaemonError> {
    println!("{line}");
    if let Some(ctx) = recovery {
        ctx.log
            .write_all(line.as_bytes())
            .and_then(|()| ctx.log.write_all(b"\n"))
            .map_err(|e| DaemonError::Io(format!("writing: {e}")))?;
        ctx.log_mark += line.len() as u64 + 1;
    }
    Ok(())
}

/// Prints every engine event not yet printed; returns the new printed
/// count. The line format is the fleet crate's [`event_line`], shared
/// so fleet logs and serve logs are rendered by the same code.
fn flush_events(
    engine: &StreamingEngine<'_>,
    printed: usize,
    recovery: &mut Option<RecoveryCtx>,
) -> Result<usize, DaemonError> {
    let events = engine.events();
    for ev in &events[printed..] {
        emit(&event_line(ev), recovery)?;
    }
    Ok(events.len())
}

/// Streams (or resumes) one day incrementally: ingest a delivery,
/// print what it produced, checkpoint when due, crash when told to.
/// `base_ticks` is the cumulative tick count of all previously served
/// days, so checkpoint stamps grow monotonically across the run.
#[allow(clippy::too_many_arguments)]
fn drive_day(
    scenario: &Scenario,
    trace: &Trace,
    streams: &[usize],
    re: &RadioEnvironment,
    day: usize,
    cfg: EngineConfig,
    args: &Args,
    recovery: &mut Option<RecoveryCtx>,
    base_ticks: u64,
    resume: Option<&EngineSnapshot>,
    telemetry: &Telemetry,
) -> Result<(), DaemonError> {
    let groups = trace.receiver_groups(streams);
    let inputs = scenario.input_trace(day, 0);
    let kma = Kma::new(&inputs);
    let mut checkpointer = Checkpointer::new(cfg.checkpoint_every_ticks);
    let (mut engine, start) = match resume {
        Some(snap) => {
            let engine = StreamingEngine::restore(cfg, groups.clone(), re, kma, snap)
                .map_err(DaemonError::Engine)?;
            // Everything up to the checkpoint was already printed and
            // committed pre-crash; the day header included.
            checkpointer.advance(engine.counters().ticks_processed);
            (engine, snap.stream_pos as usize)
        }
        None => {
            let engine = StreamingEngine::new(cfg, groups.clone(), re, kma)
                .map_err(DaemonError::Engine)?;
            emit(&format!("== day {day} =="), recovery)?;
            (engine, 0)
        }
    };
    engine.set_telemetry(telemetry.clone());
    let deliveries =
        replay::day_deliveries(trace, streams, &groups, day, &args.link, args.link_seed)
            .map_err(DaemonError::Engine)?;
    if start > deliveries.len() {
        return Err(DaemonError::Checkpoint(format!(
            "checkpoint claims {start} ingested deliveries but day {day} only has {}",
            deliveries.len()
        )));
    }
    let mut printed = 0usize;
    for (i, bytes) in deliveries.iter().enumerate().skip(start) {
        engine.ingest_bytes(bytes);
        printed = flush_events(&engine, printed, recovery)?;
        let ticks = engine.counters().ticks_processed;
        if let Some(ctx) = recovery.as_mut() {
            if checkpointer.due(ticks) {
                let snap = engine.snapshot(day as u32, (i + 1) as u64, ctx.log_mark);
                ctx.store
                    .save(base_ticks + ticks, &snap)
                    .map_err(|e| DaemonError::Checkpoint(e.to_string()))?;
                telemetry.counter_add("checkpoint_saves", 1);
                telemetry.event(
                    ticks,
                    "checkpoint_saved",
                    None,
                    &[
                        ("stamp", Value::U64(base_ticks + ticks)),
                        ("stream_pos", Value::U64((i + 1) as u64)),
                    ],
                );
                checkpointer.advance(ticks);
            }
        }
        if args.crash_after_ticks.is_some_and(|n| base_ticks + ticks >= n) {
            eprintln!(
                "fadewichd: injected crash at tick {} (--crash-after-ticks)",
                base_ticks + ticks
            );
            std::process::abort();
        }
    }
    engine.finish(trace.days()[day].n_ticks() as u64);
    flush_events(&engine, printed, recovery)?;
    engine.counters().export_into(telemetry);
    telemetry.counter_add("runtime_days_streamed", 1);
    emit(&engine.counters().deterministic_summary(), recovery)?;
    // Wall-clock latency goes to stderr so stdout stays
    // byte-comparable between `replay` and `serve --model`.
    eprintln!("{}", engine.counters().latency_summary());
    if args.json {
        emit(&engine.counters().to_json(), recovery)?;
    }
    Ok(())
}

/// Streams every post-training day through the engine, printing the
/// decision stream to stdout. Identical for `replay` and `serve`: the
/// only difference between them is where `re` came from. When
/// `resume` carries a loaded checkpoint, already-complete days are
/// skipped and the checkpointed day continues from its recorded
/// delivery position.
#[allow(clippy::too_many_arguments)]
fn stream_days(
    scenario: &Scenario,
    trace: &Trace,
    streams: &[usize],
    re: &RadioEnvironment,
    cfg: EngineConfig,
    args: &Args,
    mut recovery: Option<RecoveryCtx>,
    mut resume: Option<EngineSnapshot>,
    telemetry: &Telemetry,
) -> Result<(), DaemonError> {
    let mut base_ticks: u64 = 0;
    for day in args.train_days..trace.days().len() {
        let n_ticks = trace.days()[day].n_ticks() as u64;
        if resume.as_ref().is_some_and(|s| day < s.day as usize) {
            // Fully committed before the crash: its output is already
            // in the decision log, below the checkpointed mark.
            base_ticks += n_ticks;
            continue;
        }
        let snap = if resume.as_ref().is_some_and(|s| s.day as usize == day) {
            resume.take()
        } else {
            None
        };
        drive_day(
            scenario, trace, streams, re, day, cfg, args, &mut recovery, base_ticks,
            snap.as_ref(), telemetry,
        )?;
        base_ticks += n_ticks;
    }
    Ok(())
}

/// Opens the checkpoint directory, reports and skips corrupt images,
/// truncates the decision log to the committed mark, and returns the
/// recovery context plus the snapshot to resume from (if any).
fn open_recovery(
    dir: &std::path::Path,
    trace: &Trace,
    train_days: usize,
    telemetry: &Telemetry,
) -> Result<(RecoveryCtx, Option<EngineSnapshot>), DaemonError> {
    let mut store =
        CheckpointStore::open(dir).map_err(|e| DaemonError::Checkpoint(e.to_string()))?;
    let outcome = store.load_latest().map_err(|e| DaemonError::Checkpoint(e.to_string()))?;
    for (path, err) in &outcome.rejected {
        telemetry.counter_add("checkpoint_corrupt_skipped", 1);
        eprintln!("fadewichd: skipping corrupt checkpoint {}: {err}", path.display());
    }
    let snapshot = match outcome.snapshot {
        Some((stamp, snap)) => {
            let day = snap.day as usize;
            if day < train_days || day >= trace.days().len() {
                return Err(DaemonError::Checkpoint(format!(
                    "checkpoint is for day {day}, outside the served range \
                     {train_days}..{}",
                    trace.days().len()
                )));
            }
            eprintln!(
                "fadewichd: resuming day {day} from checkpoint stamp {stamp} \
                 ({} deliveries ingested, {} log bytes committed)",
                snap.stream_pos, snap.log_mark
            );
            telemetry.counter_add("checkpoint_restores", 1);
            telemetry.event(
                snap.counters.ticks_processed,
                "checkpoint_restored",
                None,
                &[
                    ("stamp", Value::U64(stamp)),
                    ("day", Value::U64(u64::from(snap.day))),
                    ("stream_pos", Value::U64(snap.stream_pos)),
                ],
            );
            Some(snap)
        }
        None => {
            eprintln!("fadewichd: no usable checkpoint, cold start");
            telemetry.counter_add("checkpoint_cold_starts", 1);
            None
        }
    };
    let log_path = dir.join("decisions.log");
    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .read(true)
        .write(true)
        // Deliberately not truncate(true): the committed prefix up to
        // the checkpointed mark must survive; set_len below trims only
        // the uncommitted tail.
        .truncate(false)
        .open(&log_path)
        .map_err(|e| DaemonError::Io(format!("opening {}: {e}", log_path.display())))?;
    let log_mark = snapshot.as_ref().map_or(0, |s| s.log_mark);
    log.set_len(log_mark)
        .and_then(|()| log.seek(SeekFrom::Start(log_mark)).map(|_| ()))
        .map_err(|e| DaemonError::Io(format!("truncating {}: {e}", log_path.display())))?;
    Ok((RecoveryCtx { store, log, log_mark }, snapshot))
}

/// Builds the run's telemetry handle from the `--trace-out` /
/// `--metrics-out` flags: a streaming JSONL writer when traces are
/// requested, metrics-only when just the registry matters, disabled
/// (zero overhead, bit-identical behavior) otherwise.
fn open_telemetry(args: &Args) -> Result<Telemetry, DaemonError> {
    match (&args.trace_out, &args.metrics_out) {
        (Some(path), _) => {
            let f = std::fs::File::create(path)
                .map_err(|e| DaemonError::Io(format!("creating {}: {e}", path.display())))?;
            Ok(Telemetry::to_writer(Box::new(std::io::BufWriter::new(f))))
        }
        (None, Some(_)) => Ok(Telemetry::metrics_only()),
        // A scrape endpoint needs a live registry even when nothing is
        // written to disk.
        (None, None) if args.metrics_addr.is_some() => Ok(Telemetry::metrics_only()),
        (None, None) => Ok(Telemetry::disabled()),
    }
}

/// Starts the ops-plane scrape server when `--metrics-addr` was
/// given: attaches the standard SLO set (fed from the audit trail as
/// the run emits it) and publishes the bound address for scripts that
/// asked for an ephemeral port.
fn open_ops_server(
    args: &Args,
    telemetry: &Telemetry,
    tick_hz: f64,
) -> Result<Option<OpsServer>, DaemonError> {
    let Some(addr) = &args.metrics_addr else { return Ok(None) };
    telemetry.set_slo(SloEngine::standard(tick_hz));
    let server = OpsServer::bind(addr, telemetry.clone(), std::sync::Arc::new(WallClock))
        .map_err(|e| DaemonError::Io(format!("binding {addr}: {e}")))?;
    eprintln!("fadewichd: ops server on http://{}/", server.local_addr());
    if let Some(path) = &args.metrics_addr_file {
        std::fs::write(path, format!("{}\n", server.local_addr()))
            .map_err(|e| DaemonError::Io(format!("writing {}: {e}", path.display())))?;
    }
    Ok(Some(server))
}

/// End-of-run telemetry commit: flush the trace writer (surfacing any
/// deferred write error) and write the deterministic metrics dump.
fn finish_telemetry(args: &Args, telemetry: &Telemetry) -> Result<(), DaemonError> {
    telemetry
        .flush()
        .map_err(|e| DaemonError::Io(format!("writing trace out: {e}")))?;
    if let Some(path) = &args.metrics_out {
        let body = telemetry.metrics_json(false).unwrap_or_default();
        std::fs::write(path, body + "\n")
            .map_err(|e| DaemonError::Io(format!("writing {}: {e}", path.display())))?;
    }
    Ok(())
}

/// `fadewichd stats --profile TRACE`: folds a `--trace-out` JSONL into
/// the per-stage span profile — self/total tick tables, or collapsed
/// stacks (one `path self_ticks` line per call path, the flamegraph
/// input format) with `--collapsed`.
fn run_profile_stats(path: &std::path::Path, collapsed: bool) -> Result<(), DaemonError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| DaemonError::Io(format!("reading {}: {e}", path.display())))?;
    let profile = Profile::from_jsonl(&text)
        .map_err(|e| DaemonError::Usage(format!("{} is not a trace JSONL: {e}", path.display())))?;
    if profile.is_empty() {
        println!("(no spans in trace)");
        return Ok(());
    }
    if collapsed {
        print!("{}", profile.collapsed());
    } else {
        print!("{}", profile.table());
    }
    Ok(())
}

/// `fadewichd stats PATH`: parses a `--metrics-out` dump and
/// pretty-prints its counters, gauges, and histogram summaries.
fn run_stats(path: &std::path::Path) -> Result<(), DaemonError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| DaemonError::Io(format!("reading {}: {e}", path.display())))?;
    let root = json::parse(&text)
        .map_err(|e| DaemonError::Usage(format!("{} is not a metrics dump: {e}", path.display())))?;
    let section = |name: &str| -> Vec<(String, json::Json)> {
        root.get(name)
            .and_then(|s| s.members())
            .map(<[(String, json::Json)]>::to_vec)
            .unwrap_or_default()
    };
    let fmt_num = |j: &json::Json| -> String {
        j.as_num().map_or_else(|| "?".to_string(), |n| format!("{n}"))
    };
    let counters = section("counters");
    let gauges = section("gauges");
    let histos = section("histograms");
    if counters.is_empty() && gauges.is_empty() && histos.is_empty() {
        println!("(empty metrics dump)");
        return Ok(());
    }
    let width = counters
        .iter()
        .chain(&gauges)
        .chain(&histos)
        .map(|(k, _)| k.len())
        .max()
        .unwrap_or(0);
    if !counters.is_empty() {
        println!("counters");
        for (k, v) in &counters {
            println!("  {k:<width$}  {}", fmt_num(v));
        }
    }
    if !gauges.is_empty() {
        println!("gauges");
        for (k, v) in &gauges {
            println!("  {k:<width$}  {}", fmt_num(v));
        }
    }
    if !histos.is_empty() {
        println!("histograms");
        for (k, h) in &histos {
            let field = |f: &str| h.get(f).map_or_else(|| "?".to_string(), |v| fmt_num(v));
            println!(
                "  {k:<width$}  count {}  mean {}  p50 {}  p99 {}  max {}",
                field("count"),
                field("mean"),
                field("p50"),
                field("p99"),
                field("max"),
            );
        }
    }
    Ok(())
}

/// A [`FleetSink`] writing each office's decision stream to its own
/// `decisions.log` under the fleet checkpoint root. Without a root
/// (`logs[o]` is `None` everywhere) lines are dropped and only the
/// stdout rollup survives — fine for a fleet nobody intends to resume.
struct FleetLogSink {
    /// Per office: the open log plus its committed byte count.
    logs: Vec<Option<(std::fs::File, u64)>>,
}

impl FleetSink for FleetLogSink {
    fn emit(&mut self, office: u16, line: &str) -> Result<(), String> {
        if let Some((log, mark)) = &mut self.logs[usize::from(office)] {
            log.write_all(line.as_bytes())
                .and_then(|()| log.write_all(b"\n"))
                .map_err(|e| format!("office {office} decision log: writing: {e}"))?;
            *mark += line.len() as u64 + 1;
        }
        Ok(())
    }

    fn log_mark(&mut self, office: u16) -> u64 {
        self.logs[usize::from(office)].as_ref().map_or(0, |&(_, mark)| mark)
    }
}

/// Opens one office's checkpoint namespace under the fleet root:
/// loads its newest valid image (reporting corrupt ones), validates
/// the checkpointed day, and truncates its decision log to the
/// committed mark — serve's `open_recovery`, per tenant.
fn open_office_recovery(
    root: &std::path::Path,
    office: u16,
    trace: &Trace,
    train_days: usize,
    telemetry: &Telemetry,
) -> Result<(OfficeRecovery, (std::fs::File, u64), Option<EngineSnapshot>), DaemonError> {
    let dir = office_dir(root, office);
    let mut store =
        CheckpointStore::open(&dir).map_err(|e| DaemonError::Checkpoint(e.to_string()))?;
    let outcome = store.load_latest().map_err(|e| DaemonError::Checkpoint(e.to_string()))?;
    for (path, err) in &outcome.rejected {
        telemetry.counter_add("checkpoint_corrupt_skipped", 1);
        eprintln!(
            "fadewichd: office {office}: skipping corrupt checkpoint {}: {err}",
            path.display()
        );
    }
    let snapshot = match outcome.snapshot {
        Some((stamp, snap)) => {
            let day = snap.day as usize;
            if day < train_days || day >= trace.days().len() {
                return Err(DaemonError::Checkpoint(format!(
                    "office {office}: checkpoint is for day {day}, outside the served range \
                     {train_days}..{}",
                    trace.days().len()
                )));
            }
            eprintln!(
                "fadewichd: office {office}: resuming day {day} from checkpoint stamp {stamp}"
            );
            telemetry.counter_add("checkpoint_restores", 1);
            Some(snap)
        }
        None => None,
    };
    let log_path = dir.join("decisions.log");
    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .read(true)
        .write(true)
        .truncate(false)
        .open(&log_path)
        .map_err(|e| DaemonError::Io(format!("opening {}: {e}", log_path.display())))?;
    let log_mark = snapshot.as_ref().map_or(0, |s| s.log_mark);
    log.set_len(log_mark)
        .and_then(|()| log.seek(SeekFrom::Start(log_mark)).map(|_| ()))
        .map_err(|e| DaemonError::Io(format!("truncating {}: {e}", log_path.display())))?;
    Ok((OfficeRecovery { store }, (log, log_mark), snapshot))
}

/// Classifies a fleet-library error string into the daemon's exit-code
/// taxonomy.
fn fleet_err(e: String) -> DaemonError {
    if e.contains("checkpoint") {
        DaemonError::Checkpoint(e)
    } else if e.contains("decision log") {
        DaemonError::Io(e)
    } else {
        DaemonError::Engine(e)
    }
}

/// `fadewichd fleet`: streams every served day through an
/// `--offices`-tenant fleet, printing the deterministic rollup to
/// stdout. Per-office decision streams go to
/// `<checkpoint-dir>/office-%05d/decisions.log` when a root is given.
fn run_fleet(
    scenario: &Scenario,
    trace: &Trace,
    streams: &[usize],
    re: &RadioEnvironment,
    cfg: EngineConfig,
    args: &Args,
    telemetry: &Telemetry,
) -> Result<(), DaemonError> {
    let n = args.offices;
    let mut logs: Vec<Option<(std::fs::File, u64)>> = Vec::with_capacity(n);
    let mut resumes: Vec<Option<EngineSnapshot>> = vec![None; n];
    let mut recovery: Option<FleetRecovery> = match &args.checkpoint_dir {
        Some(root) => {
            let mut offices = Vec::with_capacity(n);
            let mut cold = 0usize;
            for o in 0..n {
                let (office, log, snap) =
                    open_office_recovery(root, o as u16, trace, args.train_days, telemetry)?;
                offices.push(office);
                logs.push(Some(log));
                if snap.is_none() {
                    cold += 1;
                }
                resumes[o] = snap;
            }
            if cold == n {
                eprintln!("fadewichd fleet: no usable checkpoints, cold start");
                telemetry.counter_add("checkpoint_cold_starts", 1);
            }
            Some(FleetRecovery {
                offices,
                base_ticks: 0,
                crash_after_ticks: args.crash_after_ticks,
            })
        }
        None => {
            logs.resize_with(n, || None);
            None
        }
    };
    let mut sink = FleetLogSink { logs };

    let mut base_ticks = 0u64;
    for day in args.train_days..trace.days().len() {
        let n_ticks = trace.days()[day].n_ticks() as u64;
        let starts: Vec<OfficeStart> =
            resumes.iter_mut().map(|r| OfficeStart::for_day(r, day)).collect();
        if let Some(rec) = recovery.as_mut() {
            rec.base_ticks = base_ticks;
        }
        let env = FleetDayEnv {
            scenario,
            trace,
            streams,
            re,
            cfg,
            link: &args.link,
            link_seed: args.link_seed,
            day,
            advance_every: DEFAULT_ADVANCE_EVERY,
        };
        let report = run_fleet_day(&env, starts, args.shards, recovery.as_mut(), &mut sink, telemetry)
            .map_err(fleet_err)?;
        if report.crashed {
            eprintln!(
                "fadewichd fleet: injected crash during day {day} (--crash-after-ticks)"
            );
            std::process::abort();
        }
        let decisions: u64 = report
            .offices
            .iter()
            .map(|o| {
                o.events.iter().filter(|e| matches!(e, EngineEvent::Decision { .. })).count() as u64
            })
            .sum();
        let active =
            report.offices.iter().filter(|o| o.counters.frames_in > 0).count();
        let quarantined = report
            .offices
            .iter()
            .filter(|o| o.counters.quarantines > o.counters.recoveries)
            .count();
        let max_lag = report.shard_tick_lags.iter().copied().max().unwrap_or(0);
        println!("== fleet day {day} ==");
        println!("{}", report.fleet.summary_line());
        println!(
            "offices {n}  active {active}  quarantined {quarantined}  decisions {decisions}"
        );
        println!("max shard tick lag {max_lag}  shards {}", args.shards);
        println!("{}", report.health.summary_line());
        if report.has_mixed_channels() {
            // Per-channel fleet rollup — printed only for mixed
            // deployments so RSSI-only fleets keep their exact
            // pre-fusion stdout.
            for kind in fadewich_core::stream::ChannelKind::ALL {
                let c = &report.channel_totals[kind.index()];
                println!(
                    "channel {:<5}  frames {}  gap-fills {}  masked {}  quarantines {}  recoveries {}",
                    kind.label(),
                    c.frames_in,
                    c.gap_fills,
                    c.masked_stream_ticks,
                    c.quarantines,
                    c.recoveries
                );
            }
        }
        if report.auth_totals.any() {
            // Auth rollup — printed only when some engine counted
            // spoof/replay/flood activity, so an unauthenticated fleet
            // keeps its exact pre-auth stdout.
            let a = &report.auth_totals;
            println!(
                "auth         unauthenticated {}  replayed {}  rate-limited {}  attack-quarantines {}",
                a.frames_unauthenticated,
                a.frames_replayed,
                a.frames_rate_limited,
                a.attack_quarantines
            );
        }
        base_ticks += n_ticks;
    }
    Ok(())
}

fn run() -> Result<(), DaemonError> {
    let args = parse_args().map_err(DaemonError::Usage)?;
    if let Command::Stats { path, profile, collapsed } = &args.command {
        return if *profile { run_profile_stats(path, *collapsed) } else { run_stats(path) };
    }
    let config = ScenarioConfig {
        seed: args.seed,
        days: args.days,
        schedule: ScheduleParams {
            day_seconds: 2.0 * 3600.0,
            departures_choices: [3, 3, 4, 4],
            min_seated_s: 400.0,
            absence_bounds_s: (90.0, 300.0),
            ..ScheduleParams::default()
        },
        ..ScenarioConfig::default()
    };
    let scenario = Scenario::generate(config).map_err(|e| DaemonError::Scenario(format!("{e:?}")))?;
    let trace = scenario.simulate().map_err(|e| DaemonError::Scenario(format!("{e:?}")))?;
    let subset = scenario.layout().sensor_subset(args.sensors);
    let streams = trace.stream_indices_for_subset(&subset);
    let params = FadewichParams::default();
    // Validate the full engine configuration up front for every
    // subcommand, so a degenerate knob fails fast instead of after
    // minutes of training or mid-serve.
    let mut cfg = EngineConfig::new(trace.tick_hz(), params);
    if let Some(every) = args.checkpoint_every {
        cfg.checkpoint_every_ticks = every;
    }
    cfg.validate().map_err(DaemonError::Engine)?;
    let telemetry = open_telemetry(&args)?;
    let ops = open_ops_server(&args, &telemetry, trace.tick_hz())?;

    let result = match &args.command {
        Command::Stats { .. } => unreachable!("handled before scenario generation"),
        Command::Train { out } => {
            eprintln!(
                "fadewichd train: {} day(s), {} sensors / {} streams, train {} day(s)",
                args.days,
                args.sensors,
                streams.len(),
                args.train_days
            );
            let bundle = replay::train_model(&scenario, &trace, &streams, args.train_days, &params)
                .map_err(DaemonError::Engine)?;
            bundle.save(out).map_err(|e| DaemonError::Artifact(e.to_string()))?;
            let svm = bundle.re.svm();
            eprintln!(
                "fadewichd train: wrote {} ({} bytes, {} classes, {} machines, {} support vectors, profile {} values)",
                out.display(),
                bundle.encode().len(),
                svm.classes().len(),
                svm.machines().len(),
                svm.machines().iter().map(|(_, _, m)| m.n_support_vectors()).sum::<usize>(),
                bundle.md.values.len(),
            );
            finish_telemetry(&args, &telemetry)
        }
        Command::Serve { model } => {
            let bundle = ModelBundle::load(model).map_err(|e| DaemonError::Artifact(e.to_string()))?;
            replay::validate_schema(&bundle, &trace, &streams).map_err(DaemonError::Artifact)?;
            eprintln!(
                "fadewichd serve: model {} over {} day(s), {} sensors / {} streams, link {:?}",
                model.display(),
                args.days,
                args.sensors,
                streams.len(),
                args.link
            );
            let (recovery, resume) = match &args.checkpoint_dir {
                Some(dir) => {
                    let (ctx, snap) = open_recovery(dir, &trace, args.train_days, &telemetry)?;
                    (Some(ctx), snap)
                }
                None => (None, None),
            };
            stream_days(
                &scenario, &trace, &streams, &bundle.re, cfg, &args, recovery, resume,
                &telemetry,
            )?;
            finish_telemetry(&args, &telemetry)
        }
        Command::Fleet { model } => {
            let bundle = ModelBundle::load(model).map_err(|e| DaemonError::Artifact(e.to_string()))?;
            replay::validate_schema(&bundle, &trace, &streams).map_err(DaemonError::Artifact)?;
            eprintln!(
                "fadewichd fleet: model {} hosting {} office(s) over {} shard(s), {} day(s), {} sensors / {} streams, link {:?}",
                model.display(),
                args.offices,
                args.shards,
                args.days,
                args.sensors,
                streams.len(),
                args.link
            );
            run_fleet(&scenario, &trace, &streams, &bundle.re, cfg, &args, &telemetry)?;
            finish_telemetry(&args, &telemetry)
        }
        Command::Replay { model } => {
            eprintln!(
                "fadewichd: {} day(s), {} sensors / {} streams, train {} day(s), link {:?}",
                args.days,
                args.sensors,
                streams.len(),
                args.train_days,
                args.link
            );
            let re = match model {
                Some(path) => {
                    let bundle =
                        ModelBundle::load(path).map_err(|e| DaemonError::Artifact(e.to_string()))?;
                    replay::validate_schema(&bundle, &trace, &streams)
                        .map_err(DaemonError::Artifact)?;
                    bundle.re
                }
                None => replay::train_re(&scenario, &trace, &streams, args.train_days, &params)
                    .map_err(DaemonError::Engine)?,
            };
            stream_days(&scenario, &trace, &streams, &re, cfg, &args, None, None, &telemetry)?;
            finish_telemetry(&args, &telemetry)
        }
    };
    if let Some(server) = ops {
        if result.is_ok() && args.hold_secs > 0 {
            // Keep the scrape endpoint up after the run so operators
            // (and the CI curl smoke) can read the final registry.
            eprintln!("fadewichd: holding ops server for {}s (--hold-secs)", args.hold_secs);
            std::thread::sleep(std::time::Duration::from_secs(args.hold_secs));
        }
        server.shutdown();
    }
    result
}

fn main() {
    if let Err(e) = run() {
        eprintln!("fadewichd: {e}");
        std::process::exit(e.exit_code());
    }
}
