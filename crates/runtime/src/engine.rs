//! The live deauthentication engine.
//!
//! [`StreamingEngine`] is the station-side loop: bytes in, decisions
//! out. It decodes wire frames, reassembles them through the
//! [`ReorderBuffer`](crate::reorder::ReorderBuffer), and — as the
//! watermark closes each tick — rebuilds a full per-stream sample row
//! to advance MD → RE → Controller by exactly one tick:
//!
//! - a stream whose sample is missing this tick is **gap-filled** with
//!   its last seen value, for at most `staleness_cap_ticks` ticks;
//! - past the cap (or before a stream's first sample) the stream is
//!   **masked** out of `s_t` via the core's masked-step API, so a dead
//!   sensor degrades detection sensitivity instead of poisoning it;
//! - sensor quarantine/recovery transitions and every controller
//!   action surface as structured [`EngineEvent`]s, with totals in
//!   [`RuntimeCounters`].
//!
//! With a lossless transport the rebuilt rows equal the recorded trace
//! bit-for-bit and every tick closes unmasked, so decisions match the
//! batch pipeline exactly — the parity test in `tests/parity.rs` holds
//! the two byte-identical.
//!
//! The engine has two **authentication modes**. By default it runs
//! legacy-unauthenticated: v1–v3 frames are accepted exactly as every
//! pre-auth deployment did (byte-identical decisions and stdout), and
//! v4 authenticated frames are rejected — a station without keys
//! cannot verify them. [`StreamingEngine::set_auth`] switches to
//! authenticated mode: only v4 frames whose keyed MAC verifies are
//! accepted, the reorder buffer's sequence-space anti-replay window is
//! armed, and every auth rejection is charged to the claimed sensor's
//! reject-budget window — a sensor flooded past its budget is
//! **attack-quarantined** ([`EngineEvent::SensorAttackQuarantined`], a
//! sticky observability flag that never drops valid frames, so a
//! contained attack leaves the decision stream untouched).
//!
//! The stream set is **channel-typed**: every sensor group carries a
//! [`ChannelKind`], RSSI streams occupy the row prefix handed to
//! MD/RE, and ambient-light streams occupy the suffix routed to the
//! controller's light-detector bank each tick. The historical untyped
//! constructors ([`StreamingEngine::new`] /
//! [`StreamingEngine::restore`]) lift to the all-RSSI special case,
//! which stays byte-identical to the pre-refactor engine; gap-fill
//! staleness and sender quarantine deadlines are per channel kind
//! (see [`EngineConfig::staleness_cap_ticks_for`]).

use std::sync::Arc;

use fadewich_core::auth::KeyTable;
use fadewich_core::config::FadewichParams;
use fadewich_core::controller::{Action, Controller};
use fadewich_core::fusion::FusionConfig;
use fadewich_core::kma::Kma;
use fadewich_core::re::RadioEnvironment;
use fadewich_core::stream::{rssi_groups, ChannelKind, SensorGroup, StreamSchema};
use fadewich_telemetry::{Clock, Telemetry, Value, WallClock};

use crate::checkpoint::EngineSnapshot;
use crate::counters::RuntimeCounters;
use crate::reorder::{PushOutcome, ReorderBuffer, ReorderConfig, SenderEvent};
use crate::wire::{Frame, FrameView, WireError};

/// Streaming-engine knobs on top of the core pipeline parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Sampling rate of the sensor deployment.
    pub tick_hz: f64,
    /// Core pipeline parameters (MD/RE/controller).
    pub params: FadewichParams,
    /// Reordering bound the transport guarantees (see
    /// [`ReorderConfig::jitter_ticks`]).
    pub jitter_ticks: u64,
    /// Silence (in ticks behind the global frontier) after which a
    /// sensor is quarantined.
    pub quarantine_after_ticks: u64,
    /// How long a missing sample may be gap-filled before the stream
    /// is masked instead.
    pub staleness_cap_ticks: u64,
    /// How often `fadewichd serve` persists a crash-recovery
    /// checkpoint, in processed ticks.
    pub checkpoint_every_ticks: u64,
    /// Ambient-light override of [`EngineConfig::staleness_cap_ticks`]
    /// — light levels drift slowly, so a stale lux reading stays
    /// usable longer than a stale RSSI sample. `None` inherits the
    /// global cap.
    pub light_staleness_cap_ticks: Option<u64>,
    /// Ambient-light override of
    /// [`EngineConfig::quarantine_after_ticks`]. `None` inherits the
    /// global deadline.
    pub light_quarantine_after_ticks: Option<u64>,
}

impl EngineConfig {
    /// Defaults tuned for the paper's 5 Hz deployment: absorb up to
    /// 4 ticks of reorder, gap-fill up to 2 s, quarantine after 5 s of
    /// silence, checkpoint once a minute.
    pub fn new(tick_hz: f64, params: FadewichParams) -> EngineConfig {
        EngineConfig {
            tick_hz,
            params,
            jitter_ticks: 4,
            quarantine_after_ticks: (5.0 * tick_hz).round() as u64,
            staleness_cap_ticks: (2.0 * tick_hz).round() as u64,
            checkpoint_every_ticks: (60.0 * tick_hz) as u64,
            light_staleness_cap_ticks: None,
            light_quarantine_after_ticks: None,
        }
    }

    /// The gap-fill cap for one channel kind: the per-kind override
    /// when set, the global knob otherwise.
    pub fn staleness_cap_ticks_for(&self, kind: ChannelKind) -> u64 {
        match kind {
            ChannelKind::Rssi => self.staleness_cap_ticks,
            ChannelKind::AmbientLight => {
                self.light_staleness_cap_ticks.unwrap_or(self.staleness_cap_ticks)
            }
        }
    }

    /// The quarantine deadline for one channel kind: the per-kind
    /// override when set, the global knob otherwise.
    pub fn quarantine_after_ticks_for(&self, kind: ChannelKind) -> u64 {
        match kind {
            ChannelKind::Rssi => self.quarantine_after_ticks,
            ChannelKind::AmbientLight => {
                self.light_quarantine_after_ticks.unwrap_or(self.quarantine_after_ticks)
            }
        }
    }

    /// Rejects configurations that would wedge or silently disable the
    /// runtime: a zero/non-finite tick rate, degenerate streaming
    /// knobs (a zero jitter bound stalls the watermark on the first
    /// missing frame; a quarantine deadline inside the jitter bound
    /// quarantines healthy sensors; a zero checkpoint cadence would
    /// checkpoint never — or on integer wraparound, "always"), and any
    /// core-parameter violation via
    /// [`FadewichParams::validate`](fadewich_core::config::FadewichParams::validate).
    ///
    /// # Errors
    ///
    /// A description of the first offending knob.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.tick_hz.is_finite() && self.tick_hz > 0.0) {
            return Err(format!("tick_hz {} must be finite and positive", self.tick_hz));
        }
        self.params.validate()?;
        if self.jitter_ticks == 0 {
            return Err("jitter_ticks must be at least 1".to_string());
        }
        if self.staleness_cap_ticks == 0 {
            return Err("staleness_cap_ticks must be at least 1".to_string());
        }
        if self.quarantine_after_ticks <= self.jitter_ticks {
            return Err(format!(
                "quarantine_after_ticks {} must exceed jitter_ticks {} (healthy \
                 senders may legitimately lag by the jitter bound)",
                self.quarantine_after_ticks, self.jitter_ticks
            ));
        }
        if self.checkpoint_every_ticks == 0 {
            return Err("checkpoint_every_ticks must be at least 1".to_string());
        }
        if self.light_staleness_cap_ticks == Some(0) {
            return Err("light_staleness_cap_ticks must be at least 1".to_string());
        }
        if let Some(q) = self.light_quarantine_after_ticks {
            if q <= self.jitter_ticks {
                return Err(format!(
                    "light_quarantine_after_ticks {q} must exceed jitter_ticks {} (healthy \
                     senders may legitimately lag by the jitter bound)",
                    self.jitter_ticks
                ));
            }
        }
        Ok(())
    }
}

/// A structured record of something the engine observed or decided.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// The controller acted (deauth, alert, …) at a tick.
    Decision {
        /// Watermark tick the action was taken at.
        tick: u64,
        /// The controller action.
        action: Action,
    },
    /// A sensor went silent past the deadline; its streams are masked.
    SensorQuarantined {
        /// The sensor id.
        sensor: u16,
        /// Watermark tick of the decision.
        tick: u64,
    },
    /// A quarantined sensor resumed delivering frames.
    SensorRecovered {
        /// The sensor id.
        sensor: u16,
        /// Tick of the frame that revived it.
        tick: u64,
    },
    /// Authentication rejections charged to a sensor exceeded its
    /// reject budget — someone is actively spoofing, replaying or
    /// flooding under that identity. Distinct from
    /// [`EngineEvent::SensorQuarantined`] (staleness): the attack
    /// quarantine is a sticky observability flag and never drops the
    /// sensor's valid frames, so a contained attack cannot perturb
    /// decisions.
    SensorAttackQuarantined {
        /// The claimed sensor id the rejections were charged to.
        sensor: u16,
        /// Claimed tick of the rejection that tripped the budget.
        tick: u64,
    },
}

/// Per-sensor authentication/rate-limit state, checkpointed alongside
/// the reorder state so a restored engine resumes mid-attack with the
/// same budgets and quarantine flags. All-default for
/// legacy-unauthenticated engines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SensorAuthState {
    /// Start tick of the current reject-budget window (aligned to
    /// [`EngineAuth::window_ticks`] so bucketing is deterministic
    /// regardless of when the first rejection lands).
    pub window_start_tick: u64,
    /// Authentication rejections charged to this sensor inside the
    /// current window.
    pub rejected_in_window: u32,
    /// Sticky attack-quarantine flag — set once the budget is
    /// exceeded, never cleared for the rest of the day.
    pub quarantined: bool,
}

/// Authenticated-mode configuration: the per-sensor key table plus the
/// reject-budget knobs that bound how loudly an attacker can knock
/// before the engine flags the targeted identity.
///
/// Keys are keyed by **sensor id** alone (not `(kind, sensor)`): a
/// deployment where an RF and a light sensor share an id shares the
/// key between them, matching how
/// [`KeyTable::derive`](fadewich_core::auth::KeyTable::derive) covers
/// an id range.
#[derive(Debug, Clone)]
pub struct EngineAuth {
    /// Per-sensor MAC keys (usually
    /// [`ModelBundle::keys`](fadewich_core::artifact::ModelBundle)).
    pub keys: KeyTable,
    /// Width of the reject-budget window, in claimed-frame ticks.
    /// Windows are aligned (`start = tick / window * window`).
    pub window_ticks: u64,
    /// Auth rejections tolerated per sensor per window before the
    /// excess counts as rate-limited and the sensor is
    /// attack-quarantined.
    pub reject_budget: u32,
}

impl EngineAuth {
    /// Auth config with the default containment knobs: a 64-tick
    /// window (~13 s at 5 Hz) tolerating 16 rejections — far above
    /// benign corruption rates, far below any useful flood.
    pub fn new(keys: KeyTable) -> EngineAuth {
        EngineAuth { keys, window_ticks: 64, reject_budget: 16 }
    }
}

/// Validates a typed sensor layout and returns the stream schema it
/// spans: positions must partition `0..n`, `(kind, sensor)` ids must
/// be unique, and the RSSI streams must occupy the row prefix so the
/// engine can hand `row[..n_rssi]` to MD/RE untouched.
fn check_layout(groups: &[SensorGroup]) -> Result<StreamSchema, String> {
    let n_streams: usize = groups.iter().map(|g| g.positions.len()).sum();
    let mut seen = vec![false; n_streams];
    for &p in groups.iter().flat_map(|g| &g.positions) {
        if p >= n_streams || seen[p] {
            return Err("receiver groups must partition the stream set".to_string());
        }
        seen[p] = true;
    }
    if n_streams == 0 {
        return Err("engine needs at least one stream".to_string());
    }
    for (i, g) in groups.iter().enumerate() {
        if groups[..i].iter().any(|h| h.sensor == g.sensor && h.kind == g.kind) {
            return Err(format!("duplicate {} sensor id {}", g.kind, g.sensor));
        }
    }
    let schema = StreamSchema::from_groups(groups);
    if !schema.rssi_is_prefix() {
        return Err(
            "RSSI streams must occupy the row prefix (other kinds the suffix)".to_string()
        );
    }
    Ok(schema)
}

/// The station-side streaming engine. See the module docs.
#[derive(Debug)]
pub struct StreamingEngine<'a> {
    cfg: EngineConfig,
    controller: Controller<'a>,
    reorder: ReorderBuffer,
    /// The typed sensor layout — which streams each sensor fills and
    /// what channel they carry (`Trace::receiver_groups` lifts to the
    /// all-RSSI case, `Trace::fused_groups` builds mixed ones).
    groups: Vec<SensorGroup>,
    n_streams: usize,
    /// Width of the RSSI row prefix handed to MD/RE; positions
    /// `n_rssi..n_streams` are ambient-light streams routed to
    /// [`Controller::observe_light`]. Equal to `n_streams` for the
    /// all-RSSI layouts every pre-refactor deployment had.
    n_rssi: usize,
    last_value: Vec<f64>,
    last_seen: Vec<Option<u64>>,
    row: Vec<f64>,
    mask: Vec<bool>,
    counters: RuntimeCounters,
    events: Vec<EngineEvent>,
    /// Authenticated-mode configuration; `None` = legacy mode. Config,
    /// not state — [`StreamingEngine::set_auth`] must be reapplied
    /// after a restore, exactly like telemetry and the clock.
    auth: Option<EngineAuth>,
    /// Per-sensor reject budgets and attack-quarantine flags, indexed
    /// like `groups`. This *is* state and rides the checkpoint.
    auth_state: Vec<SensorAuthState>,
    /// Latency-stage time source. Wall clock by default; tests inject
    /// a [`fadewich_telemetry::ManualClock`] to make latency numbers
    /// deterministic. Never consulted on any decision path.
    clock: Arc<dyn Clock>,
    telemetry: Telemetry,
    /// Row-major block of consecutive *unmasked* ticks awaiting a
    /// batched controller advance ([`Controller::step_batch`]). Always
    /// flushed before a public call returns, so every externally
    /// observable state — counters, actions, events, snapshots — is
    /// exactly what per-tick stepping would have produced.
    batch_rows: Vec<f64>,
    /// First tick of the pending batch (meaningful only while
    /// `batch_rows` is non-empty).
    batch_start: u64,
    /// Scratch for the per-tick action counts of a flushed batch.
    batch_counts: Vec<usize>,
}

/// Upper bound on buffered ticks per batched controller advance; keeps
/// the tail-padding path in [`StreamingEngine::finish`] from staging an
/// entire lost day in memory at once.
const MAX_BATCH_TICKS: usize = 1024;

impl<'a> StreamingEngine<'a> {
    /// Builds an engine for an all-RSSI deployment described by the
    /// legacy `(sensor, positions)` layout (e.g. from
    /// `Trace::receiver_groups`), a trained RE classifier and the
    /// day's KMA source. Exactly
    /// [`StreamingEngine::with_layout`] over the lifted layout and an
    /// RSSI-only fusion configuration — the pre-refactor behavior is
    /// the all-RSSI special case of the typed path, and the parity
    /// suite holds it byte-identical.
    ///
    /// # Errors
    ///
    /// Rejects an empty/inconsistent layout and propagates controller
    /// construction errors.
    pub fn new(
        cfg: EngineConfig,
        groups: Vec<(u16, Vec<usize>)>,
        re: &'a RadioEnvironment,
        kma: Kma<'a>,
    ) -> Result<StreamingEngine<'a>, String> {
        StreamingEngine::with_layout(cfg, rssi_groups(groups), FusionConfig::rssi_only(), re, kma)
    }

    /// Builds an engine over a typed sensor layout: the RSSI prefix
    /// feeds MD/RE as always, ambient-light streams feed the
    /// controller's light-detector bank, and `fusion.mode` arbitrates
    /// who may deauthenticate.
    ///
    /// # Errors
    ///
    /// Rejects an empty/inconsistent layout, a layout whose RSSI
    /// streams are not the row prefix, a light-stream count
    /// disagreeing with `fusion.light_workstations`, and propagates
    /// config/controller construction errors.
    pub fn with_layout(
        cfg: EngineConfig,
        groups: Vec<SensorGroup>,
        fusion: FusionConfig,
        re: &'a RadioEnvironment,
        kma: Kma<'a>,
    ) -> Result<StreamingEngine<'a>, String> {
        cfg.validate()?;
        let schema = check_layout(&groups)?;
        let n_streams = schema.n_streams();
        let n_rssi = schema.count(ChannelKind::Rssi);
        let n_light = schema.count(ChannelKind::AmbientLight);
        if n_light != fusion.light_workstations.len() {
            return Err(format!(
                "layout has {n_light} light streams but the fusion config maps {}",
                fusion.light_workstations.len()
            ));
        }
        let controller = Controller::with_fusion(n_rssi, cfg.tick_hz, cfg.params, re, kma, fusion)?;
        let reorder = Self::build_reorder(&cfg, &groups);
        Ok(StreamingEngine {
            cfg,
            controller,
            reorder,
            n_streams,
            n_rssi,
            last_value: vec![0.0; n_streams],
            last_seen: vec![None; n_streams],
            row: vec![0.0; n_streams],
            mask: vec![false; n_streams],
            counters: RuntimeCounters::default(),
            events: Vec::new(),
            auth: None,
            auth_state: vec![SensorAuthState::default(); groups.len()],
            clock: Arc::new(WallClock),
            telemetry: Telemetry::disabled(),
            groups,
            batch_rows: Vec::new(),
            batch_start: 0,
            batch_counts: Vec::new(),
        })
    }

    /// A reorder buffer for this layout, with the per-kind quarantine
    /// overrides applied per sender. Thresholds are config, not state:
    /// restore rebuilds them through here too.
    fn build_reorder(cfg: &EngineConfig, groups: &[SensorGroup]) -> ReorderBuffer {
        let mut reorder = ReorderBuffer::new(ReorderConfig {
            n_senders: groups.len(),
            jitter_ticks: cfg.jitter_ticks,
            quarantine_after_ticks: cfg.quarantine_after_ticks,
        });
        for (sender, g) in groups.iter().enumerate() {
            reorder.set_sender_quarantine(sender, cfg.quarantine_after_ticks_for(g.kind));
        }
        reorder
    }

    /// Number of monitored streams (all channel kinds).
    pub fn n_streams(&self) -> usize {
        self.n_streams
    }

    /// Width of the RSSI row prefix MD/RE consume; the remaining
    /// `n_streams() - n_rssi_streams()` positions are ambient-light
    /// streams.
    pub fn n_rssi_streams(&self) -> usize {
        self.n_rssi
    }

    /// Attaches a telemetry handle. Spans and metrics flow through it
    /// from here on, cascaded into the controller and MD layers so the
    /// decision audit trail is causally linked end to end. A disabled
    /// handle (the default) keeps the engine bit-identical to the
    /// uninstrumented build.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.controller.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Replaces the latency time source (tests inject a manual clock).
    /// Latency histograms are observability only — the clock is never
    /// consulted on a decision path.
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// Switches the core pipeline between the optimized batched hot
    /// paths (default) and the original scalar reference paths; see
    /// [`Controller::set_reference_paths`]. Decisions, events and
    /// checkpoints are bit-identical either way — the e2e pin test in
    /// `tests/parity.rs` holds the two runs byte-equal.
    pub fn set_reference_paths(&mut self, reference: bool) {
        self.controller.set_reference_paths(reference);
    }

    /// Switches the engine into **authenticated mode**: from here on,
    /// [`StreamingEngine::ingest_bytes`] accepts only v4 frames whose
    /// keyed MAC verifies against `auth.keys`, the reorder buffer's
    /// per-sensor anti-replay window is armed, and auth rejections are
    /// charged against the claimed sensor's reject budget (see
    /// [`EngineAuth`]). Call before ingesting any frames. Auth is
    /// config, not state — reapply after
    /// [`StreamingEngine::restore_with_layout`], exactly like
    /// telemetry; the per-sensor budgets and quarantine flags
    /// themselves ride the checkpoint.
    ///
    /// # Panics
    ///
    /// If `auth.window_ticks` is zero (the budget window would never
    /// advance).
    pub fn set_auth(&mut self, auth: EngineAuth) {
        assert!(auth.window_ticks > 0, "auth window_ticks must be at least 1");
        self.reorder.set_anti_replay(true);
        self.auth = Some(auth);
    }

    /// Whether the engine is in authenticated mode.
    pub fn is_authenticated(&self) -> bool {
        self.auth.is_some()
    }

    /// Feeds raw wire bytes (one or more concatenated frames). Frames
    /// for unknown sensors are counted as corrupt and skipped; a
    /// decode error abandons the rest of the buffer (framing is lost).
    ///
    /// This is the **untrusted boundary**: in authenticated mode every
    /// frame's MAC is verified here and rejects never reach engine
    /// state ([`StreamingEngine::ingest_frame`] is the trusted,
    /// already-decoded path and bypasses verification).
    pub fn ingest_bytes(&mut self, mut bytes: &[u8]) {
        while !bytes.is_empty() {
            self.counters.bytes_in += bytes.len() as u64;
            let t0 = self.clock.now_ns();
            let decoded = Frame::decode_borrowed(bytes);
            self.counters.decode.record_ns(self.clock.now_ns().saturating_sub(t0));
            match decoded {
                Ok((view, used)) => {
                    self.counters.bytes_in -= (bytes.len() - used) as u64;
                    let frame = self.authenticate(&view).then(|| view.to_frame());
                    bytes = &bytes[used..];
                    if let Some(frame) = frame {
                        self.ingest_frame_inner(frame);
                    }
                }
                Err(WireError::BadChecksum { .. }) => {
                    self.counters.corrupt_crc += 1;
                    break;
                }
                Err(_) => {
                    // Truncated / BadMagic / BadLength: framing is lost.
                    self.counters.corrupt_framing += 1;
                    break;
                }
            }
        }
        self.flush_batch();
    }

    /// Feeds one already-decoded frame. This is the **trusted** path —
    /// a [`Frame`] carries no MAC, so no verification happens here;
    /// untrusted wire input must come through
    /// [`StreamingEngine::ingest_bytes`].
    pub fn ingest_frame(&mut self, frame: Frame) {
        self.ingest_frame_inner(frame);
        self.flush_batch();
    }

    /// Authentication gate for one wire frame. Legacy mode: v1–v3 pass
    /// untouched (byte-identical to the pre-auth engine), v4 is
    /// rejected — no keys to verify with. Authenticated mode: only a
    /// v4 frame whose MAC verifies under the claimed sensor's key
    /// passes; legacy frames, unknown key ids and bad MACs are all
    /// mode/auth mismatches. Every rejection increments
    /// `frames_unauthenticated` and is charged to the claimed sensor's
    /// reject budget.
    fn authenticate(&mut self, view: &FrameView<'_>) -> bool {
        let ok = match &self.auth {
            None => !view.is_authenticated(),
            Some(auth) => {
                view.is_authenticated()
                    && auth.keys.get(view.sensor).is_some_and(|key| view.verify_mac(key))
            }
        };
        if !ok {
            self.counters.frames_unauthenticated += 1;
            self.auth_reject(view.channel, view.sensor, view.tick);
        }
        ok
    }

    /// Charges one authentication rejection (bad/missing MAC or
    /// replay) to the claimed `(channel, sensor)` identity. Rejections
    /// beyond the per-window budget count as rate-limited, and the
    /// first over-budget window trips the sticky attack quarantine.
    /// Unknown claimed identities are skipped — there is no budget row
    /// to charge (the rejection itself was already counted).
    ///
    /// All bookkeeping: rejected frames were dropped *before* this
    /// call, so the quarantine never suppresses valid frames and a
    /// contained attack leaves the decision stream bit-identical to a
    /// clean run.
    fn auth_reject(&mut self, channel: ChannelKind, sensor: u16, tick: u64) {
        let Some(auth) = &self.auth else {
            return;
        };
        let (window_ticks, budget) = (auth.window_ticks, auth.reject_budget);
        let Some(sender) =
            self.groups.iter().position(|g| g.sensor == sensor && g.kind == channel)
        else {
            return;
        };
        let mut st = self.auth_state[sender];
        let window_start = (tick / window_ticks) * window_ticks;
        if window_start != st.window_start_tick {
            st.window_start_tick = window_start;
            st.rejected_in_window = 0;
        }
        st.rejected_in_window = st.rejected_in_window.saturating_add(1);
        if st.rejected_in_window > budget {
            self.counters.frames_rate_limited += 1;
            if !st.quarantined {
                st.quarantined = true;
                self.counters.attack_quarantines += 1;
                let kind = self.groups[sender].kind;
                let mut attrs = vec![("sensor", Value::U64(u64::from(sensor)))];
                if kind != ChannelKind::Rssi {
                    attrs.push(("channel", Value::Str(kind.label().to_string())));
                }
                self.telemetry.event(tick, "sensor_attack_quarantined", None, &attrs);
                self.events.push(EngineEvent::SensorAttackQuarantined { sensor, tick });
            }
        }
        self.auth_state[sender] = st;
    }

    fn ingest_frame_inner(&mut self, frame: Frame) {
        // Sensor ids are namespaced per channel kind, so the lookup
        // keys on the (kind, sensor) pair.
        let Some(sender) = self
            .groups
            .iter()
            .position(|g| g.sensor == frame.sensor && g.kind == frame.channel)
        else {
            self.counters.corrupt_unknown_sensor += 1;
            return;
        };
        if frame.values.len() != self.groups[sender].positions.len() {
            self.counters.corrupt_unknown_sensor += 1;
            return;
        }
        self.counters.frames_in += 1;
        self.counters.channel_mut(frame.channel).frames_in += 1;
        let (channel, sensor, tick) = (frame.channel, frame.sensor, frame.tick);
        let outcome = self.reorder.push(sender, frame.seq, frame.tick, frame.values);
        if outcome == PushOutcome::Replayed {
            // A byte-exact capture passes the MAC, so replay is the
            // anti-replay window's catch: charge it to the sensor's
            // reject budget like any other auth rejection.
            self.auth_reject(channel, sensor, tick);
        }
        let bundles = self.reorder.poll();
        self.absorb_reorder_events();
        for b in bundles {
            self.process_tick(b.tick, &b.reports);
        }
    }

    /// End-of-stream: drains the reorder buffer and, if the day is
    /// known to run to `expected_ticks`, advances the pipeline through
    /// any fully-lost tail ticks so tick indexing matches the batch
    /// run.
    pub fn finish(&mut self, expected_ticks: u64) {
        let bundles = self.reorder.flush();
        self.absorb_reorder_events();
        for b in bundles {
            self.process_tick(b.tick, &b.reports);
        }
        let empty: Vec<Option<Vec<f32>>> = vec![None; self.groups.len()];
        while self.ticks_ingested() < expected_ticks {
            let tick = self.ticks_ingested();
            self.process_tick(tick, &empty);
        }
        self.flush_batch();
    }

    /// Ticks the pipeline has consumed, counting those still staged in
    /// the pending batch.
    fn ticks_ingested(&self) -> u64 {
        self.counters.ticks_processed + (self.batch_rows.len() / self.n_streams) as u64
    }

    fn absorb_reorder_events(&mut self) {
        let (duplicates, late, reordered) = self.reorder.counters();
        self.counters.frames_duplicate = duplicates;
        self.counters.frames_late = late;
        self.counters.frames_reordered = reordered;
        self.counters.frames_replayed = self.reorder.replayed();
        for ev in self.reorder.take_events() {
            // Telemetry events name the channel only for non-RSSI
            // sensors, keeping all-RSSI traces byte-identical to the
            // pre-refactor engine's.
            match ev {
                SenderEvent::Quarantined { sender, at_tick } => {
                    self.counters.quarantines += 1;
                    let kind = self.groups[sender].kind;
                    self.counters.channel_mut(kind).quarantines += 1;
                    let sensor = self.groups[sender].sensor;
                    let mut attrs = vec![("sensor", Value::U64(u64::from(sensor)))];
                    if kind != ChannelKind::Rssi {
                        attrs.push(("channel", Value::Str(kind.label().to_string())));
                    }
                    self.telemetry.event(at_tick, "sensor_quarantined", None, &attrs);
                    self.events.push(EngineEvent::SensorQuarantined { sensor, tick: at_tick });
                }
                SenderEvent::Recovered { sender, at_tick } => {
                    self.counters.recoveries += 1;
                    let kind = self.groups[sender].kind;
                    self.counters.channel_mut(kind).recoveries += 1;
                    let sensor = self.groups[sender].sensor;
                    let mut attrs = vec![("sensor", Value::U64(u64::from(sensor)))];
                    if kind != ChannelKind::Rssi {
                        attrs.push(("channel", Value::Str(kind.label().to_string())));
                    }
                    self.telemetry.event(at_tick, "sensor_recovered", None, &attrs);
                    self.events.push(EngineEvent::SensorRecovered { sensor, tick: at_tick });
                }
            }
        }
    }

    fn process_tick(&mut self, tick: u64, reports: &[Option<Vec<f32>>]) {
        let mut any_masked = false;
        for (sender, g) in self.groups.iter().enumerate() {
            match &reports[sender] {
                Some(values) => {
                    for (&pos, &v) in g.positions.iter().zip(values) {
                        self.row[pos] = v as f64;
                        self.mask[pos] = false;
                        self.last_value[pos] = v as f64;
                        self.last_seen[pos] = Some(tick);
                    }
                }
                None => {
                    let cap = self.cfg.staleness_cap_ticks_for(g.kind);
                    for &pos in &g.positions {
                        let age = self.last_seen[pos].map(|seen| tick.saturating_sub(seen));
                        match age {
                            Some(age) if age <= cap => {
                                self.row[pos] = self.last_value[pos];
                                self.mask[pos] = false;
                                self.counters.gap_fills += 1;
                                self.counters.channel_mut(g.kind).gap_fills += 1;
                            }
                            _ => {
                                self.row[pos] = self.last_value[pos];
                                self.mask[pos] = true;
                                any_masked = true;
                                self.counters.masked_stream_ticks += 1;
                                self.counters.channel_mut(g.kind).masked_stream_ticks += 1;
                            }
                        }
                    }
                }
            }
        }
        self.counters.watermark_lag_max =
            self.counters.watermark_lag_max.max(self.reorder.max_watermark_lag());
        if self.n_rssi < self.n_streams {
            // Typed path: the RSSI prefix steps MD/RE per tick (masked
            // or not), then the light suffix feeds the detector bank.
            // Batching is a pure-RSSI optimization; a fused layout
            // takes the per-tick path so light observations interleave
            // with RF steps in tick order.
            let t0 = self.clock.now_ns();
            let n_rf = self.controller.step_masked(
                tick as usize,
                &self.row[..self.n_rssi],
                &self.mask[..self.n_rssi],
            );
            let n_light = self.controller.observe_light(
                tick as usize,
                &self.row[self.n_rssi..],
                &self.mask[self.n_rssi..],
            );
            self.counters.step.record_ns(self.clock.now_ns().saturating_sub(t0));
            self.counters.ticks_processed += 1;
            let actions = self.controller.actions();
            for action in &actions[actions.len() - (n_rf + n_light)..] {
                self.events.push(EngineEvent::Decision { tick, action: *action });
            }
            return;
        }
        if !any_masked {
            // Hot path: stage the tick for a batched controller advance
            // (MD sweeps the whole block, FSM replays per tick —
            // bit-identical, see `Controller::step_batch`). Flushed at
            // the latest when the enclosing public call returns.
            if !self.batch_rows.is_empty()
                && tick != self.batch_start + (self.batch_rows.len() / self.n_streams) as u64
            {
                self.flush_batch();
            }
            if self.batch_rows.is_empty() {
                self.batch_start = tick;
            }
            self.batch_rows.extend_from_slice(&self.row);
            if self.batch_rows.len() / self.n_streams >= MAX_BATCH_TICKS {
                self.flush_batch();
            }
            return;
        }
        // Degraded tick: advance everything staged before it, then take
        // the per-tick masked path.
        self.flush_batch();
        let controller = &mut self.controller;
        let (row, mask) = (&self.row, &self.mask);
        let t0 = self.clock.now_ns();
        let n_new = controller.step_masked(tick as usize, row, mask);
        self.counters.step.record_ns(self.clock.now_ns().saturating_sub(t0));
        self.counters.ticks_processed += 1;
        let actions = self.controller.actions();
        for action in &actions[actions.len() - n_new..] {
            self.events.push(EngineEvent::Decision { tick, action: *action });
        }
    }

    /// Runs the controller over the staged block of unmasked ticks and
    /// attributes the emitted actions back to their ticks.
    fn flush_batch(&mut self) {
        if self.batch_rows.is_empty() {
            return;
        }
        let n_ticks = self.batch_rows.len() / self.n_streams;
        self.batch_counts.clear();
        let rows = std::mem::take(&mut self.batch_rows);
        let t0 = self.clock.now_ns();
        let total =
            self.controller.step_batch(self.batch_start as usize, &rows, &mut self.batch_counts);
        self.counters.step.record_ns(self.clock.now_ns().saturating_sub(t0));
        self.batch_rows = rows;
        self.batch_rows.clear();
        self.counters.ticks_processed += n_ticks as u64;
        let actions = self.controller.actions();
        let mut next = actions.len() - total;
        for (i, &count) in self.batch_counts.iter().enumerate() {
            let tick = self.batch_start + i as u64;
            for action in &actions[next..next + count] {
                self.events.push(EngineEvent::Decision { tick, action: *action });
            }
            next += count;
        }
    }

    /// Everything the controller has done so far.
    pub fn actions(&self) -> &[Action] {
        self.controller.actions()
    }

    /// The structured event log, in occurrence order.
    pub fn events(&self) -> &[EngineEvent] {
        &self.events
    }

    /// The runtime counters so far.
    pub fn counters(&self) -> &RuntimeCounters {
        &self.counters
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Captures the complete engine state for crash recovery. Call at
    /// a **delivery boundary** — after ingesting whole link
    /// deliveries, never between the frames of one — so `stream_pos`
    /// (deliveries fully ingested) exactly describes what the
    /// checkpoint contains. `log_mark` is the committed decision-log
    /// byte length; both are the driver's resume coordinates.
    ///
    /// The latency histograms are deliberately dropped: they are
    /// wall-clock measurements, not replayable state.
    pub fn snapshot(&self, day: u32, stream_pos: u64, log_mark: u64) -> EngineSnapshot {
        EngineSnapshot {
            day,
            stream_pos,
            log_mark,
            events_emitted: self.events.len() as u64,
            groups: self.groups.clone(),
            last_value: self.last_value.clone(),
            last_seen: self.last_seen.clone(),
            counters: RuntimeCounters {
                decode: Default::default(),
                step: Default::default(),
                ..self.counters.clone()
            },
            reorder: self.reorder.state(),
            auth_state: self.auth_state.clone(),
            controller: self.controller.runtime_state(),
            kma_clocks: self.controller.kma_clock_state(),
        }
    }

    /// Rebuilds an engine from a checkpoint so that feeding it the
    /// remaining deliveries of the day reproduces an uninterrupted
    /// run's decisions bit-for-bit. The all-RSSI counterpart of
    /// [`StreamingEngine::restore_with_layout`], exactly as
    /// [`StreamingEngine::new`] is of [`StreamingEngine::with_layout`].
    ///
    /// The restored event log starts **empty**: everything up to
    /// [`EngineSnapshot::events_emitted`] was already emitted before
    /// the crash, and the driver stitches the two logs together.
    ///
    /// # Errors
    ///
    /// Rejects a snapshot whose sensor layout does not match
    /// `groups`, whose KMA clock fingerprint does not match this
    /// scenario at the checkpointed time (resuming against the wrong
    /// trace would silently produce wrong decisions), or whose
    /// internal state fails any structural invariant.
    pub fn restore(
        cfg: EngineConfig,
        groups: Vec<(u16, Vec<usize>)>,
        re: &'a RadioEnvironment,
        kma: Kma<'a>,
        snap: &EngineSnapshot,
    ) -> Result<StreamingEngine<'a>, String> {
        StreamingEngine::restore_with_layout(
            cfg,
            rssi_groups(groups),
            FusionConfig::rssi_only(),
            re,
            kma,
            snap,
        )
    }

    /// [`StreamingEngine::restore`] over a typed layout and fusion
    /// configuration: the light-detector bank resumes bit-exactly from
    /// the snapshot alongside the RF state, so mixed-channel
    /// deployments crash-recover with the same byte-identical
    /// guarantee as all-RSSI ones.
    ///
    /// # Errors
    ///
    /// Everything [`StreamingEngine::restore`] rejects, plus a
    /// snapshot whose light-detector count disagrees with `fusion`.
    pub fn restore_with_layout(
        cfg: EngineConfig,
        groups: Vec<SensorGroup>,
        fusion: FusionConfig,
        re: &'a RadioEnvironment,
        kma: Kma<'a>,
        snap: &EngineSnapshot,
    ) -> Result<StreamingEngine<'a>, String> {
        cfg.validate()?;
        let schema = check_layout(&groups)?;
        let n_streams = schema.n_streams();
        let n_rssi = schema.count(ChannelKind::Rssi);
        let n_light = schema.count(ChannelKind::AmbientLight);
        if n_light != fusion.light_workstations.len() {
            return Err(format!(
                "layout has {n_light} light streams but the fusion config maps {}",
                fusion.light_workstations.len()
            ));
        }
        if snap.groups != groups {
            return Err("checkpoint sensor layout does not match this deployment".to_string());
        }
        let controller = Controller::from_runtime_state_fused(
            n_rssi,
            cfg.tick_hz,
            cfg.params,
            re,
            kma,
            fusion,
            &snap.controller,
        )?;
        // Compare the checkpointed KMA idle clocks against this
        // scenario's, bit-exactly: a mismatch means the checkpoint is
        // being resumed against a different input trace.
        let clocks = controller.kma_clock_state();
        let bits = |o: Option<f64>| o.map(f64::to_bits);
        if clocks.len() != snap.kma_clocks.len()
            || !clocks.iter().zip(&snap.kma_clocks).all(|(&a, &b)| bits(a) == bits(b))
        {
            return Err(
                "checkpoint KMA clocks do not match this scenario (wrong input trace?)"
                    .to_string(),
            );
        }
        let mut reorder = ReorderBuffer::from_state(
            ReorderConfig {
                n_senders: groups.len(),
                jitter_ticks: cfg.jitter_ticks,
                quarantine_after_ticks: cfg.quarantine_after_ticks,
            },
            &snap.reorder,
        )?;
        // Per-kind quarantine deadlines are config, not state — they
        // are reapplied here exactly as construction applies them.
        for (sender, g) in groups.iter().enumerate() {
            reorder.set_sender_quarantine(sender, cfg.quarantine_after_ticks_for(g.kind));
        }
        if snap.last_value.len() != n_streams || snap.last_seen.len() != n_streams {
            return Err(format!(
                "checkpoint gap-fill state covers {} streams, deployment has {n_streams}",
                snap.last_value.len()
            ));
        }
        if snap.last_value.iter().any(|v| !v.is_finite()) {
            return Err("checkpoint last-value state contains non-finite samples".to_string());
        }
        if snap.auth_state.len() != groups.len() {
            return Err(format!(
                "checkpoint auth state covers {} sensors, deployment has {}",
                snap.auth_state.len(),
                groups.len()
            ));
        }
        Ok(StreamingEngine {
            cfg,
            controller,
            reorder,
            n_streams,
            n_rssi,
            last_value: snap.last_value.clone(),
            last_seen: snap.last_seen.clone(),
            row: vec![0.0; n_streams],
            mask: vec![false; n_streams],
            counters: snap.counters.clone(),
            events: Vec::new(),
            auth: None,
            auth_state: snap.auth_state.clone(),
            clock: Arc::new(WallClock),
            telemetry: Telemetry::disabled(),
            groups,
            batch_rows: Vec::new(),
            batch_start: 0,
            batch_counts: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadewich_core::features::TrainingSample;
    use fadewich_officesim::InputTrace;
    use fadewich_stats::rng::Rng;

    /// A tiny trained classifier (the engine only needs *a* valid RE).
    fn tiny_re(n_streams: usize) -> RadioEnvironment {
        use fadewich_core::features::extract_features;
        use fadewich_officesim::DayTrace;
        let mut rng = Rng::seed_from_u64(1);
        let params = FadewichParams::default();
        let mut samples = Vec::new();
        for i in 0..20 {
            let sd = if i % 2 == 1 { 4.0 } else { 0.6 };
            let mut day = DayTrace::with_capacity(n_streams, 30);
            for _ in 0..30 {
                let row: Vec<f64> = (0..n_streams).map(|_| -50.0 + rng.normal() * sd).collect();
                day.push_row(&row);
            }
            let streams: Vec<usize> = (0..n_streams).collect();
            let features = extract_features(&day, &streams, 0, 5.0, &params);
            samples.push(TrainingSample { features, label: i % 2 });
        }
        RadioEnvironment::train(&samples, None, &mut rng).unwrap()
    }

    fn quiet_inputs() -> InputTrace {
        let busy: Vec<f64> = (0..600).step_by(3).map(|s| s as f64).collect();
        InputTrace::from_times(vec![busy.clone(), busy])
    }

    /// Two sensors × two streams each.
    fn groups() -> Vec<(u16, Vec<usize>)> {
        vec![(0u16, vec![0, 1]), (1u16, vec![2, 3])]
    }

    fn engine_cfg() -> EngineConfig {
        let params = FadewichParams { profile_init_s: 30.0, ..Default::default() };
        let mut cfg = EngineConfig::new(5.0, params);
        cfg.jitter_ticks = 2;
        cfg.quarantine_after_ticks = 10;
        cfg.staleness_cap_ticks = 3;
        cfg
    }

    /// Two RF sensors × two streams each, plus one light sensor on the
    /// suffix position — the smallest mixed-channel deployment.
    fn mixed_groups() -> Vec<SensorGroup> {
        vec![
            SensorGroup::rssi(0, vec![0, 1]),
            SensorGroup::rssi(1, vec![2, 3]),
            SensorGroup { sensor: 0, kind: ChannelKind::AmbientLight, positions: vec![4] },
        ]
    }

    fn fusion_cfg(mode: fadewich_core::fusion::DecisionMode) -> FusionConfig {
        FusionConfig { mode, light_workstations: vec![0], ..FusionConfig::rssi_only() }
    }

    /// One tick of frames for the mixed layout: RF rows plus a lux
    /// sample (`None` skips the light sensor).
    fn feed_mixed_tick(engine: &mut StreamingEngine<'_>, tick: u64, lux: Option<f64>) {
        let mut rng = Rng::task_stream(99, tick);
        for (sensor, positions) in groups() {
            let values: Vec<f32> =
                positions.iter().map(|_| -50.0 + rng.normal() as f32 * 0.6).collect();
            engine.ingest_frame(Frame::rssi(sensor, tick as u32, tick, values));
        }
        if let Some(lux) = lux {
            engine.ingest_frame(Frame {
                office: 0,
                channel: ChannelKind::AmbientLight,
                sensor: 0,
                seq: tick as u32,
                tick,
                values: vec![lux as f32],
            });
        }
    }

    fn feed_tick(engine: &mut StreamingEngine<'_>, tick: u64, skip_sensor: Option<u16>) {
        let mut rng = Rng::task_stream(99, tick);
        for (sensor, positions) in groups() {
            if Some(sensor) == skip_sensor {
                continue;
            }
            let values: Vec<f32> =
                positions.iter().map(|_| -50.0 + rng.normal() as f32 * 0.6).collect();
            engine.ingest_frame(Frame::rssi(sensor, tick as u32, tick, values));
        }
    }

    #[test]
    fn rejects_bad_layouts() {
        let re = tiny_re(4);
        let inputs = quiet_inputs();
        let bad = vec![(0u16, vec![0, 1]), (1u16, vec![1, 2])];
        assert!(StreamingEngine::new(engine_cfg(), bad, &re, Kma::new(&inputs)).is_err());
        assert!(StreamingEngine::new(engine_cfg(), vec![], &re, Kma::new(&inputs)).is_err());
    }

    #[test]
    fn corrupt_bytes_are_counted_not_fatal() {
        let re = tiny_re(4);
        let inputs = quiet_inputs();
        let mut e = StreamingEngine::new(engine_cfg(), groups(), &re, Kma::new(&inputs)).unwrap();
        let mut bytes =
            Frame::rssi(0, 0, 0, vec![-50.0, -50.0]).encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        e.ingest_bytes(&bytes);
        assert_eq!(e.counters().frames_corrupt(), 1);
        assert_eq!(e.counters().corrupt_crc, 1);
        assert_eq!(e.counters().frames_in, 0);
    }

    #[test]
    fn corrupt_frames_are_counted_per_reason() {
        let re = tiny_re(4);
        let inputs = quiet_inputs();
        let mut e = StreamingEngine::new(engine_cfg(), groups(), &re, Kma::new(&inputs)).unwrap();
        // Bad CRC: flip a payload byte so the checksum disagrees.
        let mut crc = Frame::rssi(0, 0, 0, vec![-50.0, -50.0]).encode();
        let mid = crc.len() / 2;
        crc[mid] ^= 0xFF;
        e.ingest_bytes(&crc);
        // Bad framing: garbage that cannot even carry the magic.
        e.ingest_bytes(&[0u8; 6]);
        // Unknown sensor id, and a known sensor with the wrong payload
        // width — both rejected at the engine boundary.
        e.ingest_frame(Frame::rssi(77, 0, 0, vec![-50.0, -50.0]));
        e.ingest_frame(Frame::rssi(0, 0, 0, vec![-50.0]));
        let c = e.counters();
        assert_eq!(c.corrupt_crc, 1);
        assert_eq!(c.corrupt_framing, 1);
        assert_eq!(c.corrupt_unknown_sensor, 2);
        assert_eq!(c.frames_corrupt(), 4);
        assert_eq!(c.frames_in, 0);
    }

    #[test]
    fn short_gap_is_filled_long_gap_is_masked() {
        let re = tiny_re(4);
        let inputs = quiet_inputs();
        let mut e = StreamingEngine::new(engine_cfg(), groups(), &re, Kma::new(&inputs)).unwrap();
        // 20 clean ticks, then sensor 1 goes silent for good.
        for t in 0..20 {
            feed_tick(&mut e, t, None);
        }
        for t in 20..40 {
            feed_tick(&mut e, t, Some(1));
        }
        e.finish(40);
        let c = e.counters();
        assert_eq!(c.ticks_processed, 40);
        // First `staleness_cap` missing ticks gap-fill, the rest mask.
        assert!(c.gap_fills >= 2 * 3, "gap fills: {}", c.gap_fills);
        assert!(c.masked_stream_ticks > 0, "nothing was masked");
        assert_eq!(c.quarantines, 1);
        assert!(e
            .events()
            .iter()
            .any(|ev| matches!(ev, EngineEvent::SensorQuarantined { sensor: 1, .. })));
    }

    #[test]
    fn quarantined_sensor_recovers() {
        let re = tiny_re(4);
        let inputs = quiet_inputs();
        let mut e = StreamingEngine::new(engine_cfg(), groups(), &re, Kma::new(&inputs)).unwrap();
        for t in 0..15 {
            feed_tick(&mut e, t, None);
        }
        for t in 15..30 {
            feed_tick(&mut e, t, Some(1));
        }
        for t in 30..45 {
            feed_tick(&mut e, t, None);
        }
        e.finish(45);
        assert_eq!(e.counters().quarantines, 1);
        assert_eq!(e.counters().recoveries, 1);
        assert!(e
            .events()
            .iter()
            .any(|ev| matches!(ev, EngineEvent::SensorRecovered { sensor: 1, .. })));
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let re = tiny_re(4);
        let inputs = quiet_inputs();
        let cases: Vec<(&str, EngineConfig)> = vec![
            ("nan tick_hz", EngineConfig { tick_hz: f64::NAN, ..engine_cfg() }),
            ("zero tick_hz", EngineConfig { tick_hz: 0.0, ..engine_cfg() }),
            ("zero jitter", EngineConfig { jitter_ticks: 0, ..engine_cfg() }),
            ("zero staleness cap", EngineConfig { staleness_cap_ticks: 0, ..engine_cfg() }),
            (
                "quarantine inside jitter",
                EngineConfig { jitter_ticks: 10, quarantine_after_ticks: 10, ..engine_cfg() },
            ),
            ("zero checkpoint cadence", EngineConfig { checkpoint_every_ticks: 0, ..engine_cfg() }),
        ];
        for (what, cfg) in cases {
            assert!(cfg.validate().is_err(), "{what} should be rejected");
            assert!(
                StreamingEngine::new(cfg, groups(), &re, Kma::new(&inputs)).is_err(),
                "engine built with {what}"
            );
        }
        assert!(engine_cfg().validate().is_ok());
        assert!(EngineConfig::new(5.0, FadewichParams::default()).validate().is_ok());
    }

    #[test]
    fn permanently_dead_sensor_degrades_but_never_stalls() {
        // Satellite: a sensor that dies and never comes back. The
        // watermark must keep advancing on the survivor's frames alone,
        // the dead streams must transition gap-fill → masked, and the
        // counters must record the degradation.
        let re = tiny_re(4);
        let inputs = quiet_inputs();
        let mut e = StreamingEngine::new(engine_cfg(), groups(), &re, Kma::new(&inputs)).unwrap();
        for t in 0..20 {
            feed_tick(&mut e, t, None);
        }
        for t in 20..200 {
            feed_tick(&mut e, t, Some(1));
        }
        e.finish(200);
        let c = e.counters();
        assert_eq!(c.ticks_processed, 200, "watermark stalled behind the dead sensor");
        // Streams 2 and 3 gap-fill for the staleness cap (3 ticks each)
        // then mask for the remaining ~177 ticks of the day.
        assert_eq!(c.gap_fills, 2 * 3);
        assert_eq!(c.masked_stream_ticks, 2 * (180 - 3));
        assert_eq!(c.quarantines, 1, "the dead sensor should be quarantined exactly once");
        assert_eq!(c.recoveries, 0, "a dead sensor must not fake a recovery");
        assert!(e
            .events()
            .iter()
            .any(|ev| matches!(ev, EngineEvent::SensorQuarantined { sensor: 1, .. })));
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let re = tiny_re(4);
        let inputs = quiet_inputs();
        let mut full =
            StreamingEngine::new(engine_cfg(), groups(), &re, Kma::new(&inputs)).unwrap();
        let mut pre = StreamingEngine::new(engine_cfg(), groups(), &re, Kma::new(&inputs)).unwrap();
        // A day with a mid-run outage so the snapshot catches gap-fill,
        // mask and quarantine state in flight.
        let feed = |e: &mut StreamingEngine<'_>, t: u64| {
            let skip = if (40..60).contains(&t) { Some(1) } else { None };
            feed_tick(e, t, skip);
        };
        for t in 0..300 {
            feed(&mut full, t);
        }
        full.finish(300);

        let cut = 150u64;
        for t in 0..cut {
            feed(&mut pre, t);
        }
        let snap = pre.snapshot(0, cut, 0);
        let events_before = snap.events_emitted as usize;
        let mut post =
            StreamingEngine::restore(engine_cfg(), groups(), &re, Kma::new(&inputs), &snap)
                .unwrap();
        // The snapshot must round-trip through the restored engine —
        // modulo the stitching metadata, since restored logs start
        // empty by design.
        let mut roundtrip = post.snapshot(0, cut, 0);
        assert_eq!(roundtrip.events_emitted, 0);
        assert_eq!(roundtrip.controller.n_actions, 0);
        roundtrip.events_emitted = snap.events_emitted;
        roundtrip.controller.n_actions = snap.controller.n_actions;
        assert_eq!(roundtrip, snap);
        for t in cut..300 {
            feed(&mut post, t);
        }
        post.finish(300);

        let stitched_actions: Vec<_> = pre.actions()[..snap.controller.n_actions as usize]
            .iter()
            .chain(post.actions())
            .copied()
            .collect();
        assert_eq!(full.actions(), &stitched_actions[..]);
        let stitched: Vec<EngineEvent> = pre.events()[..events_before]
            .iter()
            .chain(post.events())
            .cloned()
            .collect();
        assert_eq!(full.events(), &stitched[..]);
        let (a, b) = (full.counters(), post.counters());
        assert_eq!(a.deterministic_summary(), b.deterministic_summary());
        assert_eq!(
            (a.gap_fills, a.masked_stream_ticks, a.quarantines, a.recoveries),
            (b.gap_fills, b.masked_stream_ticks, b.quarantines, b.recoveries)
        );
    }

    #[test]
    fn restore_rejects_mismatched_deployments() {
        let re = tiny_re(4);
        let inputs = quiet_inputs();
        let mut e = StreamingEngine::new(engine_cfg(), groups(), &re, Kma::new(&inputs)).unwrap();
        for t in 0..30 {
            feed_tick(&mut e, t, None);
        }
        let snap = e.snapshot(0, 30, 0);

        // Different sensor layout.
        let other = vec![(0u16, vec![0, 1, 2, 3])];
        assert!(
            StreamingEngine::restore(engine_cfg(), other, &re, Kma::new(&inputs), &snap).is_err()
        );
        // Same layout, different scenario: the KMA fingerprint differs.
        let other_inputs = InputTrace::from_times(vec![vec![1.0], vec![2.0]]);
        assert!(StreamingEngine::restore(
            engine_cfg(),
            groups(),
            &re,
            Kma::new(&other_inputs),
            &snap
        )
        .is_err());
        // Corrupted gap-fill state.
        let mut bad = snap.clone();
        bad.last_value[0] = f64::NAN;
        assert!(
            StreamingEngine::restore(engine_cfg(), groups(), &re, Kma::new(&inputs), &bad).is_err()
        );
    }

    #[test]
    fn out_of_order_within_jitter_is_transparent() {
        let re = tiny_re(4);
        let inputs = quiet_inputs();
        let mut a = StreamingEngine::new(engine_cfg(), groups(), &re, Kma::new(&inputs)).unwrap();
        let mut b = StreamingEngine::new(engine_cfg(), groups(), &re, Kma::new(&inputs)).unwrap();
        // Engine a: in order. Engine b: each sensor's frames swapped in
        // pairs (displacement 1 ≤ jitter 2).
        let mut frames = Vec::new();
        for t in 0..30u64 {
            let mut rng = Rng::task_stream(5, t);
            for (sensor, positions) in groups() {
                let values: Vec<f32> =
                    positions.iter().map(|_| -50.0 + rng.normal() as f32 * 0.6).collect();
                frames.push(Frame::rssi(sensor, t as u32, t, values));
            }
        }
        for f in &frames {
            a.ingest_frame(f.clone());
        }
        for pair in frames.chunks(4) {
            for f in pair.iter().rev() {
                b.ingest_frame(f.clone());
            }
        }
        a.finish(30);
        b.finish(30);
        assert_eq!(a.actions(), b.actions());
        assert_eq!(a.counters().gap_fills, 0);
        assert_eq!(b.counters().gap_fills, 0);
        assert!(b.counters().frames_reordered > 0);
    }

    #[test]
    fn mixed_layouts_are_validated() {
        use fadewich_core::fusion::DecisionMode;
        let re = tiny_re(4);
        let inputs = quiet_inputs();
        // A light stream inside the RSSI prefix is rejected.
        let interleaved = vec![
            SensorGroup { sensor: 0, kind: ChannelKind::AmbientLight, positions: vec![0] },
            SensorGroup::rssi(0, vec![1, 2]),
            SensorGroup::rssi(1, vec![3, 4]),
        ];
        let err = StreamingEngine::with_layout(
            engine_cfg(),
            interleaved,
            fusion_cfg(DecisionMode::RssiOnly),
            &re,
            Kma::new(&inputs),
        )
        .unwrap_err();
        assert!(err.contains("prefix"), "{err}");
        // Light-stream count must match the fusion mapping.
        let err = StreamingEngine::with_layout(
            engine_cfg(),
            mixed_groups(),
            FusionConfig::rssi_only(),
            &re,
            Kma::new(&inputs),
        )
        .unwrap_err();
        assert!(err.contains("light streams"), "{err}");
        // Sensor ids are namespaced per kind: RF 0 and light 0 coexist,
        // but two light sensors sharing an id are rejected.
        assert!(StreamingEngine::with_layout(
            engine_cfg(),
            mixed_groups(),
            fusion_cfg(DecisionMode::RssiOnly),
            &re,
            Kma::new(&inputs),
        )
        .is_ok());
        let dup = vec![
            SensorGroup::rssi(0, vec![0, 1, 2, 3]),
            SensorGroup { sensor: 5, kind: ChannelKind::AmbientLight, positions: vec![4] },
            SensorGroup { sensor: 5, kind: ChannelKind::AmbientLight, positions: vec![5] },
        ];
        let err = StreamingEngine::with_layout(
            engine_cfg(),
            dup,
            FusionConfig {
                mode: DecisionMode::RssiOnly,
                light_workstations: vec![0, 1],
                ..FusionConfig::rssi_only()
            },
            &re,
            Kma::new(&inputs),
        )
        .unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn per_channel_knobs_gap_fill_and_quarantine_independently() {
        // Satellite: staleness and quarantine deadlines are per channel
        // kind. The light sensor goes silent mid-day; its stream must
        // gap-fill for the *light* cap (6 ticks, not the RSSI 3) and
        // quarantine at the *light* deadline (20 ticks, not 10), while
        // the healthy RF sensors never trip either.
        use fadewich_core::fusion::DecisionMode;
        let re = tiny_re(4);
        let inputs = quiet_inputs();
        let mut cfg = engine_cfg();
        cfg.light_staleness_cap_ticks = Some(6);
        cfg.light_quarantine_after_ticks = Some(20);
        let mut e = StreamingEngine::with_layout(
            cfg,
            mixed_groups(),
            fusion_cfg(DecisionMode::Fused),
            &re,
            Kma::new(&inputs),
        )
        .unwrap();
        assert_eq!(e.n_streams(), 5);
        assert_eq!(e.n_rssi_streams(), 4);
        for t in 0..30 {
            feed_mixed_tick(&mut e, t, Some(420.0));
        }
        for t in 30..60 {
            feed_mixed_tick(&mut e, t, None);
        }
        e.finish(60);
        let c = e.counters();
        assert_eq!(c.ticks_processed, 60);
        let light = c.channel(ChannelKind::AmbientLight);
        let rssi = c.channel(ChannelKind::Rssi);
        assert_eq!(rssi.frames_in, 2 * 60);
        assert_eq!(light.frames_in, 30);
        // Last genuine lux sample at tick 29: ticks 30..=35 gap-fill
        // (age ≤ 6), ticks 36..59 mask.
        assert_eq!(light.gap_fills, 6);
        assert_eq!(light.masked_stream_ticks, 24);
        assert_eq!(rssi.gap_fills, 0);
        assert_eq!(rssi.masked_stream_ticks, 0);
        assert_eq!(light.quarantines, 1);
        assert_eq!(rssi.quarantines, 0);
        // The global totals aggregate the per-channel view.
        assert_eq!(c.gap_fills, 6);
        assert_eq!(c.masked_stream_ticks, 24);
        assert_eq!(c.quarantines, 1);
        assert!(e
            .events()
            .iter()
            .any(|ev| matches!(ev, EngineEvent::SensorQuarantined { sensor: 0, .. })));
    }

    #[test]
    fn fused_snapshot_restore_resumes_bit_identically() {
        // The mixed-channel analogue of
        // `snapshot_restore_resumes_bit_identically`: a light occlusion
        // spans the crash point, so the snapshot captures the detector
        // bank mid-dip, and the resumed run must replay the rest of the
        // day bit-for-bit.
        use fadewich_core::fusion::DecisionMode;
        let re = tiny_re(4);
        let inputs = quiet_inputs();
        let mut cfg = engine_cfg();
        cfg.light_staleness_cap_ticks = Some(6);
        cfg.light_quarantine_after_ticks = Some(20);
        let build = |re, inputs| {
            StreamingEngine::with_layout(
                cfg,
                mixed_groups(),
                fusion_cfg(DecisionMode::LightOnly),
                re,
                Kma::new(inputs),
            )
            .unwrap()
        };
        // Lux: occupied dip from tick 100 through 260, with a short
        // light-sensor outage at 130..140 so gap-fill state is also in
        // flight at the cut.
        let lux_at = |t: u64| {
            if (130..140).contains(&t) {
                None
            } else if (100..260).contains(&t) {
                Some(230.0)
            } else {
                Some(420.0)
            }
        };
        let mut full = build(&re, &inputs);
        for t in 0..300 {
            feed_mixed_tick(&mut full, t, lux_at(t));
        }
        full.finish(300);

        let cut = 150u64;
        let mut pre = build(&re, &inputs);
        for t in 0..cut {
            feed_mixed_tick(&mut pre, t, lux_at(t));
        }
        let snap = pre.snapshot(0, cut, 0);
        assert!(!snap.controller.lights.is_empty(), "light bank missing from snapshot");
        let events_before = snap.events_emitted as usize;
        let mut post = StreamingEngine::restore_with_layout(
            cfg,
            mixed_groups(),
            fusion_cfg(DecisionMode::LightOnly),
            &re,
            Kma::new(&inputs),
            &snap,
        )
        .unwrap();
        let mut roundtrip = post.snapshot(0, cut, 0);
        roundtrip.events_emitted = snap.events_emitted;
        roundtrip.controller.n_actions = snap.controller.n_actions;
        assert_eq!(roundtrip, snap);
        for t in cut..300 {
            feed_mixed_tick(&mut post, t, lux_at(t));
        }
        post.finish(300);

        let stitched_actions: Vec<_> = pre.actions()[..snap.controller.n_actions as usize]
            .iter()
            .chain(post.actions())
            .copied()
            .collect();
        assert_eq!(full.actions(), &stitched_actions[..]);
        let stitched: Vec<EngineEvent> = pre.events()[..events_before]
            .iter()
            .chain(post.events())
            .cloned()
            .collect();
        assert_eq!(full.events(), &stitched[..]);
        assert_eq!(
            full.counters().deterministic_summary(),
            post.counters().deterministic_summary()
        );
        // A restore under a different fusion mode is a different
        // deployment: the detector bank still loads (mode is config,
        // not state), but a mismatched light mapping is rejected.
        assert!(StreamingEngine::restore_with_layout(
            cfg,
            mixed_groups(),
            FusionConfig::rssi_only(),
            &re,
            Kma::new(&inputs),
            &snap,
        )
        .is_err());
    }

    /// Keys for the two-sensor test deployment.
    fn test_keys() -> KeyTable {
        KeyTable::derive(0xD3B, 2)
    }

    /// One tick of authenticated v4 wire frames for `groups()`.
    fn feed_tick_v4(engine: &mut StreamingEngine<'_>, tick: u64, keys: &KeyTable) {
        let mut rng = Rng::task_stream(99, tick);
        for (sensor, positions) in groups() {
            let values: Vec<f32> =
                positions.iter().map(|_| -50.0 + rng.normal() as f32 * 0.6).collect();
            let frame = Frame::rssi(sensor, tick as u32, tick, values);
            engine.ingest_bytes(&frame.encode_auth(keys.get(sensor).unwrap()));
        }
    }

    #[test]
    fn authenticated_engine_accepts_valid_v4_and_rejects_spoofs_and_replays() {
        use fadewich_core::auth::AuthKey;
        let re = tiny_re(4);
        let inputs = quiet_inputs();
        let keys = test_keys();
        let mut e = StreamingEngine::new(engine_cfg(), groups(), &re, Kma::new(&inputs)).unwrap();
        e.set_auth(EngineAuth::new(keys.clone()));
        assert!(e.is_authenticated());
        for t in 0..10 {
            feed_tick_v4(&mut e, t, &keys);
        }
        assert_eq!(e.counters().frames_in, 20, "valid v4 frames must flow");
        assert_eq!(e.counters().frames_unauthenticated, 0);

        // A legacy (unauthenticated) frame is a mode mismatch.
        e.ingest_bytes(&Frame::rssi(0, 10, 10, vec![-50.0, -50.0]).encode());
        // A v4 frame forged under the wrong key.
        let forged = Frame::rssi(1, 10, 10, vec![-50.0, -50.0]);
        e.ingest_bytes(&forged.encode_auth(&AuthKey::derive(0xBAD, 1)));
        // A v4 frame claiming a sensor id outside the key table.
        let unknown = Frame::rssi(7, 10, 10, vec![-50.0, -50.0]);
        e.ingest_bytes(&unknown.encode_auth(&AuthKey::derive(0xD3B, 7)));
        assert_eq!(e.counters().frames_unauthenticated, 3);
        assert_eq!(e.counters().frames_in, 20, "no rejected frame reached the engine");

        // A byte-exact replayed capture passes the MAC; the anti-replay
        // window armed by `set_auth` catches it.
        let capture =
            Frame::rssi(0, 10, 10, vec![-50.0, -50.0]).encode_auth(keys.get(0).unwrap());
        e.ingest_bytes(&capture);
        e.ingest_bytes(&capture);
        let c = e.counters();
        assert_eq!(c.frames_replayed, 1);
        assert_eq!(c.frames_unauthenticated, 3, "a replay is not a MAC failure");
        assert!(c.has_auth_activity());
        assert_eq!(c.frames_rate_limited, 0, "4 rejections sit well inside the budget");
    }

    #[test]
    fn legacy_engine_rejects_v4_frames_and_stays_byte_identical_otherwise() {
        let re = tiny_re(4);
        let inputs = quiet_inputs();
        let keys = test_keys();
        let mut e = StreamingEngine::new(engine_cfg(), groups(), &re, Kma::new(&inputs)).unwrap();
        assert!(!e.is_authenticated());
        // v4 frames are rejected without keys to verify them…
        let f = Frame::rssi(0, 0, 0, vec![-50.0, -50.0]);
        e.ingest_bytes(&f.encode_auth(keys.get(0).unwrap()));
        assert_eq!(e.counters().frames_unauthenticated, 1);
        assert_eq!(e.counters().frames_in, 0);
        // …and rejections charge no budget in legacy mode.
        assert_eq!(e.counters().frames_rate_limited, 0);
        assert_eq!(e.counters().attack_quarantines, 0);
        // Legacy frames flow exactly as before.
        e.ingest_bytes(&f.encode());
        assert_eq!(e.counters().frames_in, 1);
    }

    #[test]
    fn flood_is_contained_rate_limited_and_quarantined_without_decision_divergence() {
        use fadewich_core::auth::AuthKey;
        let re = tiny_re(4);
        let inputs = quiet_inputs();
        let keys = test_keys();
        let build = |re, inputs| {
            let mut e =
                StreamingEngine::new(engine_cfg(), groups(), re, Kma::new(inputs)).unwrap();
            e.set_auth(EngineAuth::new(keys.clone()));
            e
        };
        let mut clean = build(&re, &inputs);
        let mut attacked = build(&re, &inputs);
        let wrong_key = AuthKey::derive(0xBAD, 1);
        let mut injected = 0u64;
        for t in 0..60u64 {
            feed_tick_v4(&mut clean, t, &keys);
            feed_tick_v4(&mut attacked, t, &keys);
            if t == 5 {
                // Deauth-storm flood: 30 forged frames claiming sensor
                // 1, sweeping the sequence space.
                for i in 0..30u32 {
                    let forged = Frame::rssi(1, 1000 + i, t, vec![-30.0, -30.0]);
                    attacked.ingest_bytes(&forged.encode_auth(&wrong_key));
                    injected += 1;
                }
            }
        }
        clean.finish(60);
        attacked.finish(60);
        // Containment: every injected frame rejected, zero divergence.
        assert_eq!(clean.actions(), attacked.actions());
        let c = attacked.counters();
        assert_eq!(c.frames_unauthenticated, injected);
        assert_eq!(c.frames_in, clean.counters().frames_in);
        // Budget 16: rejections 17..=30 count as rate-limited, and the
        // first over-budget rejection trips the sticky quarantine once.
        assert_eq!(c.frames_rate_limited, injected - 16);
        assert_eq!(c.attack_quarantines, 1);
        assert_eq!(
            attacked
                .events()
                .iter()
                .filter(
                    |ev| matches!(ev, EngineEvent::SensorAttackQuarantined { sensor: 1, tick: 5 })
                )
                .count(),
            1
        );
        // The attack quarantine is observability, not suppression: the
        // decision stream already proved valid frames kept flowing.
        let decisions = |e: &StreamingEngine<'_>| {
            e.events()
                .iter()
                .filter(|ev| matches!(ev, EngineEvent::Decision { .. }))
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(decisions(&clean), decisions(&attacked));
    }

    #[test]
    fn auth_state_and_replay_windows_survive_checkpoint_restore() {
        use fadewich_core::auth::AuthKey;
        let re = tiny_re(4);
        let inputs = quiet_inputs();
        let keys = test_keys();
        let mut pre = StreamingEngine::new(engine_cfg(), groups(), &re, Kma::new(&inputs)).unwrap();
        pre.set_auth(EngineAuth::new(keys.clone()));
        for t in 0..20 {
            feed_tick_v4(&mut pre, t, &keys);
        }
        // Flood sensor 1 past the budget so the snapshot catches a
        // tripped quarantine and a part-spent window.
        let wrong_key = AuthKey::derive(0xBAD, 1);
        for i in 0..20u32 {
            let forged = Frame::rssi(1, 2000 + i, 19, vec![-30.0, -30.0]);
            pre.ingest_bytes(&forged.encode_auth(&wrong_key));
        }
        assert_eq!(pre.counters().attack_quarantines, 1);
        let replayable = Frame::rssi(0, 19, 19, vec![-50.0, -50.0]);
        let capture = replayable.encode_auth(keys.get(0).unwrap());

        let snap = pre.snapshot(0, 20, 0);
        let mut post =
            StreamingEngine::restore(engine_cfg(), groups(), &re, Kma::new(&inputs), &snap)
                .unwrap();
        // Auth is config: reapply after restore (state rode the snapshot).
        post.set_auth(EngineAuth::new(keys.clone()));
        // The replay window survived: a capture of a pre-crash frame is
        // still rejected after the restore.
        post.ingest_bytes(&capture);
        assert_eq!(post.counters().frames_replayed, pre.counters().frames_replayed + 1);
        // The quarantine flag is sticky across the crash: more flood
        // rejections keep counting as rate-limited but never re-trip it.
        for i in 0..4u32 {
            let forged = Frame::rssi(1, 3000 + i, 20, vec![-30.0, -30.0]);
            post.ingest_bytes(&forged.encode_auth(&wrong_key));
        }
        let c = post.counters();
        assert_eq!(c.attack_quarantines, 1);
        assert_eq!(c.frames_rate_limited, pre.counters().frames_rate_limited + 4);
        assert!(post.events().is_empty(), "a restored sticky flag must not re-emit its event");
        // A snapshot with a truncated auth-state table is rejected.
        let mut bad = snap.clone();
        bad.auth_state.pop();
        assert!(
            StreamingEngine::restore(engine_cfg(), groups(), &re, Kma::new(&inputs), &bad)
                .is_err()
        );
    }
}
