//! `fadewichd` — replay an officesim scenario through the streaming
//! runtime, optionally over a lossy link.
//!
//! ```text
//! fadewichd [--days N] [--seed HEX] [--sensors N] [--train-days N]
//!           [--drop P] [--dup P] [--corrupt P] [--jitter TICKS]
//!           [--link-seed N] [--json]
//! ```
//!
//! Trains RE on the first `--train-days` days (KMA auto-labeling),
//! then streams each remaining day's sensor frames through the link
//! model into the engine. Prints per-day decisions, the runtime
//! counter summary and — with `--json` — the counters as JSON.
//! Decisions and counters are seed-deterministic; only the latency
//! histograms are wall-clock.

use fadewich_core::config::FadewichParams;
use fadewich_officesim::{Scenario, ScenarioConfig, ScheduleParams};
use fadewich_runtime::engine::{EngineConfig, EngineEvent};
use fadewich_runtime::link::LinkModel;
use fadewich_runtime::replay;

struct Args {
    days: usize,
    seed: u64,
    sensors: usize,
    train_days: usize,
    link: LinkModel,
    link_seed: u64,
    json: bool,
}

impl Args {
    fn default_args() -> Args {
        Args {
            days: 2,
            seed: 0xD3B,
            sensors: 9,
            train_days: 1,
            link: LinkModel::lossless(),
            link_seed: 0xF10D,
            json: false,
        }
    }
}

const USAGE: &str = "usage: fadewichd [--days N] [--seed N] [--sensors N] [--train-days N] \
[--drop P] [--dup P] [--corrupt P] [--jitter TICKS] [--link-seed N] [--json]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default_args();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--days" => args.days = parse(&value("--days")?)?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--sensors" => args.sensors = parse(&value("--sensors")?)?,
            "--train-days" => args.train_days = parse(&value("--train-days")?)?,
            "--drop" => args.link.drop_p = parse(&value("--drop")?)?,
            "--dup" => args.link.dup_p = parse(&value("--dup")?)?,
            "--corrupt" => args.link.corrupt_p = parse(&value("--corrupt")?)?,
            "--jitter" => args.link.jitter_ticks = parse(&value("--jitter")?)?,
            "--link-seed" => args.link_seed = parse(&value("--link-seed")?)?,
            "--json" => args.json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad value {s:?}: {e}"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let config = ScenarioConfig {
        seed: args.seed,
        days: args.days,
        schedule: ScheduleParams {
            day_seconds: 2.0 * 3600.0,
            departures_choices: [3, 3, 4, 4],
            min_seated_s: 400.0,
            absence_bounds_s: (90.0, 300.0),
            ..ScheduleParams::default()
        },
        ..ScenarioConfig::default()
    };
    let scenario = Scenario::generate(config).map_err(|e| format!("scenario: {e:?}"))?;
    let trace = scenario.simulate().map_err(|e| format!("simulate: {e:?}"))?;
    let subset = scenario.layout().sensor_subset(args.sensors);
    let streams = trace.stream_indices_for_subset(&subset);
    let params = FadewichParams::default();

    eprintln!(
        "fadewichd: {} day(s), {} sensors / {} streams, train {} day(s), link {:?}",
        args.days,
        args.sensors,
        streams.len(),
        args.train_days,
        args.link
    );
    let re = replay::train_re(&scenario, &trace, &streams, args.train_days, &params)?;

    let cfg = EngineConfig::new(trace.tick_hz(), params);
    for day in args.train_days..trace.days().len() {
        let out = replay::stream_day(
            &scenario, &trace, &streams, &re, day, cfg, &args.link, args.link_seed,
        )?;
        println!("== day {day} ==");
        for ev in &out.events {
            match ev {
                EngineEvent::Decision { tick, action } => {
                    println!("tick {tick:>6}  t {:>8.1}s  {:?}", action.t, action.kind);
                }
                EngineEvent::SensorQuarantined { sensor, tick } => {
                    println!("tick {tick:>6}  sensor {sensor} QUARANTINED");
                }
                EngineEvent::SensorRecovered { sensor, tick } => {
                    println!("tick {tick:>6}  sensor {sensor} recovered");
                }
            }
        }
        println!("{}", out.counters.summary());
        if args.json {
            println!("{}", out.counters.to_json());
        }
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("fadewichd: {e}");
        std::process::exit(1);
    }
}
