//! `fadewichd` — train and serve the FADEWICH pipeline over officesim
//! scenarios, optionally through a lossy link.
//!
//! ```text
//! fadewichd train --out PATH [scenario flags]
//! fadewichd serve --model PATH [scenario flags] [link flags]
//! fadewichd replay [--model PATH] [scenario flags] [link flags]
//! ```
//!
//! `train` runs the training phase (MD over the training days, KMA
//! auto-labeling, SMO) and writes a versioned model artifact; it
//! prints only to stderr. `serve` loads an artifact, validates its
//! feature schema against the scenario, and streams the remaining
//! days through the engine **without any training code** — no SMO, no
//! KDE fit at startup. `replay` is the legacy single-process flow:
//! train in memory (or load `--model`) and then stream. A `replay`
//! and a `serve --model` of the same trained scenario print
//! byte-identical decision streams, which `scripts/ci.sh` enforces.
//!
//! Scenario flags: `--days N --seed N --sensors N --train-days N`.
//! Link flags: `--drop P --dup P --corrupt P --jitter TICKS
//! --link-seed N --json`. Bare flags without a subcommand are
//! accepted as `replay` for backwards compatibility.

use std::path::PathBuf;

use fadewich_core::artifact::ModelBundle;
use fadewich_core::config::FadewichParams;
use fadewich_core::re::RadioEnvironment;
use fadewich_officesim::{Scenario, ScenarioConfig, ScheduleParams, Trace};
use fadewich_runtime::engine::{EngineConfig, EngineEvent};
use fadewich_runtime::link::LinkModel;
use fadewich_runtime::replay;

enum Command {
    Train { out: PathBuf },
    Serve { model: PathBuf },
    Replay { model: Option<PathBuf> },
}

struct Args {
    command: Command,
    days: usize,
    seed: u64,
    sensors: usize,
    train_days: usize,
    link: LinkModel,
    link_seed: u64,
    json: bool,
}

impl Args {
    fn default_args(command: Command) -> Args {
        Args {
            command,
            days: 2,
            seed: 0xD3B,
            sensors: 9,
            train_days: 1,
            link: LinkModel::lossless(),
            link_seed: 0xF10D,
            json: false,
        }
    }
}

const USAGE: &str = "usage: fadewichd <train --out PATH | serve --model PATH | replay [--model PATH]> \
[--days N] [--seed N] [--sensors N] [--train-days N] \
[--drop P] [--dup P] [--corrupt P] [--jitter TICKS] [--link-seed N] [--json]";

fn parse_args() -> Result<Args, String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (command_word, flag_start) = match raw.first().map(String::as_str) {
        Some("train") | Some("serve") | Some("replay") => (raw[0].clone(), 1),
        // Legacy flat-flag invocation: treat as replay.
        _ => ("replay".to_string(), 0),
    };
    let mut out: Option<PathBuf> = None;
    let mut model: Option<PathBuf> = None;
    let mut args = Args::default_args(Command::Replay { model: None });
    let mut it = raw[flag_start..].iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--model" => model = Some(PathBuf::from(value("--model")?)),
            "--days" => args.days = parse(&value("--days")?)?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--sensors" => args.sensors = parse(&value("--sensors")?)?,
            "--train-days" => args.train_days = parse(&value("--train-days")?)?,
            "--drop" => args.link.drop_p = parse(&value("--drop")?)?,
            "--dup" => args.link.dup_p = parse(&value("--dup")?)?,
            "--corrupt" => args.link.corrupt_p = parse(&value("--corrupt")?)?,
            "--jitter" => args.link.jitter_ticks = parse(&value("--jitter")?)?,
            "--link-seed" => args.link_seed = parse(&value("--link-seed")?)?,
            "--json" => args.json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    args.command = match command_word.as_str() {
        "train" => {
            let out = out.ok_or_else(|| format!("train needs --out PATH\n{USAGE}"))?;
            Command::Train { out }
        }
        "serve" => {
            let model = model.ok_or_else(|| format!("serve needs --model PATH\n{USAGE}"))?;
            Command::Serve { model }
        }
        _ => Command::Replay { model },
    };
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad value {s:?}: {e}"))
}

/// Streams every post-training day through the engine, printing the
/// decision stream to stdout. Identical for `replay` and `serve`: the
/// only difference between them is where `re` came from.
fn stream_days(
    scenario: &Scenario,
    trace: &Trace,
    streams: &[usize],
    re: &RadioEnvironment,
    params: &FadewichParams,
    args: &Args,
) -> Result<(), String> {
    let cfg = EngineConfig::new(trace.tick_hz(), *params);
    for day in args.train_days..trace.days().len() {
        let out = replay::stream_day(
            scenario, trace, streams, re, day, cfg, &args.link, args.link_seed,
        )?;
        println!("== day {day} ==");
        for ev in &out.events {
            match ev {
                EngineEvent::Decision { tick, action } => {
                    println!("tick {tick:>6}  t {:>8.1}s  {:?}", action.t, action.kind);
                }
                EngineEvent::SensorQuarantined { sensor, tick } => {
                    println!("tick {tick:>6}  sensor {sensor} QUARANTINED");
                }
                EngineEvent::SensorRecovered { sensor, tick } => {
                    println!("tick {tick:>6}  sensor {sensor} recovered");
                }
            }
        }
        // Wall-clock latency goes to stderr so stdout stays
        // byte-comparable between `replay` and `serve --model`.
        println!("{}", out.counters.deterministic_summary());
        eprintln!("{}", out.counters.latency_summary());
        if args.json {
            println!("{}", out.counters.to_json());
        }
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let config = ScenarioConfig {
        seed: args.seed,
        days: args.days,
        schedule: ScheduleParams {
            day_seconds: 2.0 * 3600.0,
            departures_choices: [3, 3, 4, 4],
            min_seated_s: 400.0,
            absence_bounds_s: (90.0, 300.0),
            ..ScheduleParams::default()
        },
        ..ScenarioConfig::default()
    };
    let scenario = Scenario::generate(config).map_err(|e| format!("scenario: {e:?}"))?;
    let trace = scenario.simulate().map_err(|e| format!("simulate: {e:?}"))?;
    let subset = scenario.layout().sensor_subset(args.sensors);
    let streams = trace.stream_indices_for_subset(&subset);
    let params = FadewichParams::default();

    match &args.command {
        Command::Train { out } => {
            eprintln!(
                "fadewichd train: {} day(s), {} sensors / {} streams, train {} day(s)",
                args.days,
                args.sensors,
                streams.len(),
                args.train_days
            );
            let bundle = replay::train_model(&scenario, &trace, &streams, args.train_days, &params)?;
            bundle.save(out).map_err(|e| e.to_string())?;
            let svm = bundle.re.svm();
            eprintln!(
                "fadewichd train: wrote {} ({} bytes, {} classes, {} machines, {} support vectors, profile {} values)",
                out.display(),
                bundle.encode().len(),
                svm.classes().len(),
                svm.machines().len(),
                svm.machines().iter().map(|(_, _, m)| m.n_support_vectors()).sum::<usize>(),
                bundle.md.values.len(),
            );
            Ok(())
        }
        Command::Serve { model } => {
            let bundle = ModelBundle::load(model).map_err(|e| e.to_string())?;
            replay::validate_schema(&bundle, &trace, &streams)?;
            eprintln!(
                "fadewichd serve: model {} over {} day(s), {} sensors / {} streams, link {:?}",
                model.display(),
                args.days,
                args.sensors,
                streams.len(),
                args.link
            );
            stream_days(&scenario, &trace, &streams, &bundle.re, &params, &args)
        }
        Command::Replay { model } => {
            eprintln!(
                "fadewichd: {} day(s), {} sensors / {} streams, train {} day(s), link {:?}",
                args.days,
                args.sensors,
                streams.len(),
                args.train_days,
                args.link
            );
            let re = match model {
                Some(path) => {
                    let bundle = ModelBundle::load(path).map_err(|e| e.to_string())?;
                    replay::validate_schema(&bundle, &trace, &streams)?;
                    bundle.re
                }
                None => replay::train_re(&scenario, &trace, &streams, args.train_days, &params)?,
            };
            stream_days(&scenario, &trace, &streams, &re, &params, &args)
        }
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("fadewichd: {e}");
        std::process::exit(1);
    }
}
