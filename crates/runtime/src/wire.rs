//! The sensor wire codec.
//!
//! A live deployment's receiving sensors push their per-tick
//! measurements to the central station over an unreliable transport
//! (the paper's nodes used raw 2.4 GHz packets). Each report travels as
//! one self-delimiting binary [`Frame`]. Three header versions are on
//! the wire:
//!
//! ```text
//! v1 (single-office deployments; office id is implicitly 0)
//! offset  size  field
//! 0       2     magic        0xFADE, little-endian
//! 2       2     sensor       receiving sensor id
//! 4       4     seq          per-sensor send sequence number
//! 8       8     tick         day-local tick timestamp
//! 16      2     len          number of f32 samples (≤ MAX_PAYLOAD)
//! 18      4·len payload      samples, f32 little-endian
//! …       4     crc32        IEEE CRC-32 of all preceding bytes
//!
//! v2 (fleet deployments; adds the demux key)
//! offset  size  field
//! 0       2     magic        0xFAD2, little-endian
//! 2       2     office       tenant (office) id — the fleet demux key
//! 4       2     sensor       receiving sensor id
//! 6       4     seq          per-sensor send sequence number
//! 10      8     tick         day-local tick timestamp
//! 18      2     len          number of f32 samples (≤ MAX_PAYLOAD)
//! 20      4·len payload      samples, f32 little-endian
//! …       4     crc32        IEEE CRC-32 of all preceding bytes
//!
//! v3 (heterogeneous sensors; adds the channel kind)
//! offset  size  field
//! 0       2     magic        0xFAD7, little-endian
//! 2       2     office       tenant (office) id — the fleet demux key
//! 4       1     channel      ChannelKind tag (0 = RSSI, 1 = light)
//! 5       2     sensor       receiving sensor id
//! 7       4     seq          per-sensor send sequence number
//! 11      8     tick         day-local tick timestamp
//! 19      2     len          number of f32 samples (≤ MAX_PAYLOAD)
//! 21      4·len payload      samples, f32 little-endian
//! …       4     crc32        IEEE CRC-32 of all preceding bytes
//!
//! v4 (authenticated deployments; adds a keyed-MAC tag)
//! offset  size  field
//! 0       2     magic        0xFAD9, little-endian
//! 2       2     office       tenant (office) id — the fleet demux key
//! 4       1     channel      ChannelKind tag (0 = RSSI, 1 = light)
//! 5       8     mac          SipHash-2-4 tag over every other frame
//!                            byte except the CRC (see below)
//! 13      2     sensor       receiving sensor id
//! 15      4     seq          per-sensor send sequence number
//! 19      8     tick         day-local tick timestamp
//! 27      2     len          number of f32 samples (≤ MAX_PAYLOAD)
//! 29      4·len payload      samples, f32 little-endian
//! …       4     crc32        IEEE CRC-32 of all preceding bytes
//! ```
//!
//! The versions are distinguished by their magic (the three legacy
//! magics are pairwise two bit-flips apart, and the v4 magic is at
//! least *three* flips from each of them, so no ≤2-bit corruption can
//! move a frame across the authenticated/unauthenticated boundary),
//! and a station accepts a mixed stream: v1 frames decode with
//! `office = 0` (the single-office deployments of PR 2–6 are "office
//! 0" of a fleet), v1 and v2 frames both decode with `channel = Rssi`
//! (every pre-fusion sensor was an RSSI receiver), and
//! [`Frame::encode`] always emits the **oldest version that can
//! represent the frame** — v1 for office-0 RSSI, v2 for RSSI, v3 only
//! for non-RSSI channels — so existing byte streams, checkpoint
//! delivery positions and link-corruption draws are unchanged. v4 is
//! never picked implicitly: senders opt into authentication with
//! [`Frame::encode_auth`], which needs the sensor's key. Everything is
//! little-endian. The checksum lets the station reject corrupted
//! frames instead of feeding garbage samples into MD — the reorder
//! buffer then treats the tick as missing, which downstream gap-fill
//! handles gracefully.
//!
//! The v4 MAC is SipHash-2-4 under the sensor's 128-bit key
//! (`fadewich_core::auth`), computed over the frame bytes *minus* the
//! tag field and the trailing CRC — i.e. over `bytes[0..5] ‖
//! bytes[13..total−4]`: magic, office, channel, sensor, seq, tick,
//! len, payload. The CRC is then computed over the whole frame
//! including the tag, so the integrity check still covers every byte
//! on the wire. CRC answers "was this frame damaged?"; the MAC answers
//! "did a keyed sensor send it?" — an attacker without the key can
//! fabricate a frame that passes CRC (it is not a secret), but not one
//! that verifies (see [`FrameView::verify_mac`]).
//!
//! [`Frame::decode_borrowed`] is the zero-copy variant for the fleet
//! demux hot path: it validates exactly like [`Frame::decode`] but
//! returns a [`FrameView`] whose payload is a slice into the input
//! buffer, so routing a frame by office id allocates nothing.
//! Decoding checks framing and CRC only — MAC verification is a
//! separate, keyed step the engine performs per its auth mode.

use fadewich_core::auth::AuthKey;
use fadewich_core::stream::ChannelKind;

/// v1 frame preamble, chosen to make byte-aligned garbage unlikely to
/// parse.
pub const FRAME_MAGIC: u16 = 0xFADE;

/// v2 frame preamble (header carries an office id).
pub const FRAME_MAGIC_V2: u16 = 0xFAD2;

/// v3 frame preamble (header carries an office id and a channel kind).
pub const FRAME_MAGIC_V3: u16 = 0xFAD7;

/// v4 frame preamble (header carries a keyed-MAC tag). Chosen at
/// Hamming distance ≥ 3 from every legacy magic so no ≤2-bit flip
/// crosses the authenticated/unauthenticated boundary.
pub const FRAME_MAGIC_V4: u16 = 0xFAD9;

/// Bytes before the payload in a v1 frame.
pub const HEADER_LEN: usize = 18;

/// Bytes before the payload in a v2 frame (v1 plus the office id).
pub const HEADER_LEN_V2: usize = 20;

/// Bytes before the payload in a v3 frame (v2 plus the channel tag).
pub const HEADER_LEN_V3: usize = 21;

/// Bytes before the payload in a v4 frame (v3 plus the 8-byte MAC tag).
pub const HEADER_LEN_V4: usize = 29;

/// Byte offset of the MAC tag inside a v4 frame (after magic, office,
/// channel).
const MAC_TAG_OFFSET: usize = 5;

/// Hard cap on samples per frame (a 9-sensor office has at most 8
/// streams per receiver; the cap only bounds hostile input).
pub const MAX_PAYLOAD: usize = 4096;

/// One sensor report on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Tenant (office) id; 0 for single-office deployments and for
    /// every v1 frame.
    pub office: u16,
    /// Channel kind of the samples; [`ChannelKind::Rssi`] for every
    /// v1 and v2 frame. Sensor ids are namespaced per kind.
    pub channel: ChannelKind,
    /// Receiving sensor id.
    pub sensor: u16,
    /// Per-sensor send sequence number (monotone at the sender).
    pub seq: u32,
    /// Day-local tick the samples belong to.
    pub tick: u64,
    /// Samples in the sensor's group order (RSSI links for an RF
    /// receiver, lux readings for a light sensor).
    pub values: Vec<f32>,
}

/// A decoded frame whose payload still lives in the caller's buffer —
/// the zero-copy view [`Frame::decode_borrowed`] returns. The payload
/// slice holds the f32 sample bits, little-endian, exactly as they
/// sit on the wire; [`FrameView::value`]/[`FrameView::values`] decode
/// them lazily and [`FrameView::to_frame`] materializes an owned
/// [`Frame`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameView<'a> {
    /// Tenant (office) id (0 for v1 frames).
    pub office: u16,
    /// Channel kind ([`ChannelKind::Rssi`] for v1/v2 frames).
    pub channel: ChannelKind,
    /// Receiving sensor id.
    pub sensor: u16,
    /// Per-sensor send sequence number.
    pub seq: u32,
    /// Day-local tick the samples belong to.
    pub tick: u64,
    payload: &'a [u8],
    /// The carried MAC tag for v4 frames; `None` for v1–v3.
    mac: Option<u64>,
    /// The whole encoded frame (`bytes[..total]`), kept for keyed MAC
    /// verification without re-slicing at the call site.
    raw: &'a [u8],
}

impl<'a> FrameView<'a> {
    /// Number of f32 samples in the payload.
    pub fn len(&self) -> usize {
        self.payload.len() / 4
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// The raw little-endian f32 payload bytes (the borrowed slice).
    pub fn payload_bytes(&self) -> &'a [u8] {
        self.payload
    }

    /// Decodes sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn value(&self, i: usize) -> f32 {
        let o = 4 * i;
        f32::from_le_bytes([
            self.payload[o],
            self.payload[o + 1],
            self.payload[o + 2],
            self.payload[o + 3],
        ])
    }

    /// Iterates the samples without materializing a `Vec`.
    pub fn values(&self) -> impl Iterator<Item = f32> + 'a {
        self.payload
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
    }

    /// Whether the frame arrived with a v4 authenticated header.
    pub fn is_authenticated(&self) -> bool {
        self.mac.is_some()
    }

    /// The carried MAC tag (v4 frames only). Carrying a tag does not
    /// mean the tag is *valid* — see [`FrameView::verify_mac`].
    pub fn mac_tag(&self) -> Option<u64> {
        self.mac
    }

    /// Verifies the v4 MAC tag under `key`: recomputes SipHash-2-4
    /// over the frame bytes minus the tag field and CRC, and compares
    /// against the carried tag. Returns `false` for v1–v3 frames
    /// (nothing to verify) and for any tag mismatch.
    pub fn verify_mac(&self, key: &AuthKey) -> bool {
        match self.mac {
            Some(carried) => {
                let computed = key.tag_parts(
                    &self.raw[..MAC_TAG_OFFSET],
                    &self.raw[MAC_TAG_OFFSET + 8..self.raw.len() - 4],
                );
                computed == carried
            }
            None => false,
        }
    }

    /// Materializes an owned [`Frame`] (allocates the payload `Vec`).
    pub fn to_frame(&self) -> Frame {
        Frame {
            office: self.office,
            channel: self.channel,
            sensor: self.sensor,
            seq: self.seq,
            tick: self.tick,
            values: self.values().collect(),
        }
    }
}

/// Why a byte buffer failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the declared (or minimum) frame length.
    Truncated,
    /// The first two bytes are none of [`FRAME_MAGIC`],
    /// [`FRAME_MAGIC_V2`], [`FRAME_MAGIC_V3`], or [`FRAME_MAGIC_V4`].
    BadMagic,
    /// A v3 header carries an unknown [`ChannelKind`] tag.
    BadChannel(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    BadLength(usize),
    /// The trailing CRC-32 does not match the frame contents.
    BadChecksum {
        /// CRC computed over the received bytes.
        computed: u32,
        /// CRC carried by the frame.
        carried: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadChannel(t) => write!(f, "unknown channel kind tag {t}"),
            WireError::BadLength(n) => write!(f, "declared payload of {n} samples exceeds cap"),
            WireError::BadChecksum { computed, carried } => {
                write!(f, "checksum mismatch: computed {computed:#010x}, carried {carried:#010x}")
            }
        }
    }
}

impl std::error::Error for WireError {}

pub use fadewich_stats::checksum::crc32;

impl Frame {
    /// An office-0 RSSI frame — the shape every pre-fusion sender
    /// produced. Spares single-office call sites the channel field.
    pub fn rssi(sensor: u16, seq: u32, tick: u64, values: Vec<f32>) -> Frame {
        Frame { office: 0, channel: ChannelKind::Rssi, sensor, seq, tick, values }
    }

    /// Encoded size in bytes for the version [`Frame::encode`] picks
    /// (v1 for office-0 RSSI, v2 for RSSI, v3 otherwise).
    pub fn encoded_len(&self) -> usize {
        let header = if self.channel != ChannelKind::Rssi {
            HEADER_LEN_V3
        } else if self.office == 0 {
            HEADER_LEN
        } else {
            HEADER_LEN_V2
        };
        header + 4 * self.values.len() + 4
    }

    /// Appends the encoded frame to `out`, picking the oldest header
    /// version that can represent it: v1 for office-0 RSSI (so
    /// single-office streams are unchanged from the unversioned
    /// codec), v2 for RSSI from a nonzero office, v3 whenever the
    /// channel is not RSSI.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_PAYLOAD`] samples.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        if self.channel != ChannelKind::Rssi {
            self.encode_v3_into(out);
        } else if self.office == 0 {
            self.encode_v1_into(out);
        } else {
            self.encode_v2_into(out);
        }
    }

    fn encode_v1_into(&self, out: &mut Vec<u8>) {
        assert!(self.values.len() <= MAX_PAYLOAD, "payload too large");
        let start = out.len();
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.sensor.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.tick.to_le_bytes());
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in &self.values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32(&out[start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Appends the v2 encoding regardless of office id (office 0 is a
    /// legal v2 frame; [`Frame::encode`] just never picks it, for
    /// byte-compatibility with v1 streams).
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_PAYLOAD`] samples.
    pub fn encode_v2_into(&self, out: &mut Vec<u8>) {
        assert!(self.values.len() <= MAX_PAYLOAD, "payload too large");
        let start = out.len();
        out.extend_from_slice(&FRAME_MAGIC_V2.to_le_bytes());
        out.extend_from_slice(&self.office.to_le_bytes());
        out.extend_from_slice(&self.sensor.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.tick.to_le_bytes());
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in &self.values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32(&out[start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Appends the v3 encoding regardless of office or channel (an
    /// RSSI v3 frame is legal; [`Frame::encode`] just never picks it,
    /// for byte-compatibility with v1/v2 streams).
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_PAYLOAD`] samples.
    pub fn encode_v3_into(&self, out: &mut Vec<u8>) {
        assert!(self.values.len() <= MAX_PAYLOAD, "payload too large");
        let start = out.len();
        out.extend_from_slice(&FRAME_MAGIC_V3.to_le_bytes());
        out.extend_from_slice(&self.office.to_le_bytes());
        out.push(self.channel.tag());
        out.extend_from_slice(&self.sensor.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.tick.to_le_bytes());
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in &self.values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32(&out[start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Encodes the frame into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Encoded size in bytes of the authenticated (v4) representation.
    pub fn encoded_len_auth(&self) -> usize {
        HEADER_LEN_V4 + 4 * self.values.len() + 4
    }

    /// Appends the authenticated v4 encoding: the header carries a
    /// SipHash-2-4 tag under the sensor's `key` over every frame byte
    /// except the tag field itself and the trailing CRC (which is then
    /// computed over the whole frame, tag included). Never picked by
    /// [`Frame::encode`] — authentication is an explicit sender
    /// decision, not a fallback.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_PAYLOAD`] samples.
    pub fn encode_auth_into(&self, key: &AuthKey, out: &mut Vec<u8>) {
        assert!(self.values.len() <= MAX_PAYLOAD, "payload too large");
        let start = out.len();
        out.extend_from_slice(&FRAME_MAGIC_V4.to_le_bytes());
        out.extend_from_slice(&self.office.to_le_bytes());
        out.push(self.channel.tag());
        out.extend_from_slice(&[0u8; 8]); // MAC tag, patched below
        out.extend_from_slice(&self.sensor.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.tick.to_le_bytes());
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in &self.values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let tag = {
            let frame = &out[start..];
            key.tag_parts(&frame[..MAC_TAG_OFFSET], &frame[MAC_TAG_OFFSET + 8..])
        };
        let tag_at = start + MAC_TAG_OFFSET;
        out[tag_at..tag_at + 8].copy_from_slice(&tag.to_le_bytes());
        let crc = crc32(&out[start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Encodes the authenticated v4 frame into a fresh buffer.
    pub fn encode_auth(&self, key: &AuthKey) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len_auth());
        self.encode_auth_into(key, &mut out);
        out
    }

    /// Decodes one frame (either header version) from the start of
    /// `bytes`, returning it and the number of bytes consumed (so
    /// frames can be streamed from a concatenated buffer).
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; the buffer is never consumed on error.
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
        let (view, used) = Frame::decode_borrowed(bytes)?;
        Ok((view.to_frame(), used))
    }

    /// Zero-copy decode: identical validation to [`Frame::decode`]
    /// (magic, length cap, exact framing, CRC-32), but the returned
    /// [`FrameView`] borrows its payload from `bytes` instead of
    /// copying it — the fleet demux peeks the office id and routes the
    /// frame without allocating.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; the buffer is never consumed on error.
    pub fn decode_borrowed(bytes: &[u8]) -> Result<(FrameView<'_>, usize), WireError> {
        if bytes.len() < HEADER_LEN + 4 {
            return Err(WireError::Truncated);
        }
        let magic = u16::from_le_bytes([bytes[0], bytes[1]]);
        let (office, channel, header_len) = match magic {
            FRAME_MAGIC => (0u16, ChannelKind::Rssi, HEADER_LEN),
            FRAME_MAGIC_V2 => {
                (u16::from_le_bytes([bytes[2], bytes[3]]), ChannelKind::Rssi, HEADER_LEN_V2)
            }
            FRAME_MAGIC_V3 | FRAME_MAGIC_V4 => {
                let office = u16::from_le_bytes([bytes[2], bytes[3]]);
                let channel = match ChannelKind::from_tag(bytes[4]) {
                    Some(k) => k,
                    None => return Err(WireError::BadChannel(bytes[4])),
                };
                let header_len =
                    if magic == FRAME_MAGIC_V4 { HEADER_LEN_V4 } else { HEADER_LEN_V3 };
                (office, channel, header_len)
            }
            _ => return Err(WireError::BadMagic),
        };
        if bytes.len() < header_len + 4 {
            return Err(WireError::Truncated);
        }
        // Past the version-specific prefix all three layouts agree on
        // their last 16 header bytes: sensor, seq, tick, len.
        let rest = &bytes[header_len - 16..];
        let sensor = u16::from_le_bytes([rest[0], rest[1]]);
        let seq = u32::from_le_bytes([rest[2], rest[3], rest[4], rest[5]]);
        let tick = u64::from_le_bytes([
            rest[6], rest[7], rest[8], rest[9], rest[10], rest[11], rest[12], rest[13],
        ]);
        let len = u16::from_le_bytes([rest[14], rest[15]]) as usize;
        if len > MAX_PAYLOAD {
            return Err(WireError::BadLength(len));
        }
        let total = header_len + 4 * len + 4;
        if bytes.len() < total {
            return Err(WireError::Truncated);
        }
        let computed = crc32(&bytes[..total - 4]);
        let carried = u32::from_le_bytes([
            bytes[total - 4],
            bytes[total - 3],
            bytes[total - 2],
            bytes[total - 1],
        ]);
        if computed != carried {
            return Err(WireError::BadChecksum { computed, carried });
        }
        let payload = &bytes[header_len..total - 4];
        let mac = (magic == FRAME_MAGIC_V4).then(|| {
            u64::from_le_bytes(
                bytes[MAC_TAG_OFFSET..MAC_TAG_OFFSET + 8].try_into().expect("8-byte tag"),
            )
        });
        Ok((FrameView { office, channel, sensor, seq, tick, payload, mac, raw: &bytes[..total] }, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let f = Frame::rssi(3, 41, 123_456, vec![-50.25, -61.5, 0.0]);
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        let (back, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn round_trip_v2_office() {
        let f = Frame {
            office: 777,
            channel: ChannelKind::Rssi,
            sensor: 3,
            seq: 41,
            tick: 123_456,
            values: vec![-50.25, -61.5, 0.0],
        };
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        assert_eq!(bytes.len(), HEADER_LEN_V2 + 4 * 3 + 4);
        let (back, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn v1_frames_decode_as_office_zero() {
        // The exact pre-fleet byte layout must still decode, with the
        // office defaulted to 0 — old sensors keep working unchanged.
        let f = Frame::rssi(5, 9, 1234, vec![-48.0, -52.5]);
        let bytes = f.encode();
        assert_eq!(u16::from_le_bytes([bytes[0], bytes[1]]), FRAME_MAGIC);
        assert_eq!(bytes.len(), HEADER_LEN + 4 * 2 + 4);
        let (back, _) = Frame::decode(&bytes).unwrap();
        assert_eq!(back.office, 0);
        assert_eq!(back, f);
    }

    #[test]
    fn office_zero_also_round_trips_through_v2() {
        // encode() picks v1 for office 0, but an explicitly v2-encoded
        // office-0 frame is legal and decodes to the same Frame.
        let f = Frame::rssi(2, 7, 99, vec![-44.0]);
        let mut v2 = Vec::new();
        f.encode_v2_into(&mut v2);
        assert_ne!(v2, f.encode(), "v2 bytes differ from the v1 default encoding");
        let (back, used) = Frame::decode(&v2).unwrap();
        assert_eq!(back, f);
        assert_eq!(used, v2.len());
    }

    #[test]
    fn decode_borrowed_matches_owned_decode() {
        // Differential: both paths must agree field-for-field and
        // byte-for-byte on every header version, and reject errors
        // identically (same variant, same consumed-nothing contract).
        let cases = [
            (0u16, ChannelKind::Rssi),
            (1, ChannelKind::Rssi),
            (41, ChannelKind::AmbientLight),
            (u16::MAX, ChannelKind::AmbientLight),
        ];
        for (office, channel) in cases {
            let f = Frame {
                office,
                channel,
                sensor: 3,
                seq: 10 + u32::from(office),
                tick: 5_000 + u64::from(office),
                values: vec![-50.0, -61.25, 7.5, f32::MIN_POSITIVE],
            };
            let bytes = f.encode();
            let (owned, n_owned) = Frame::decode(&bytes).unwrap();
            let (view, n_view) = Frame::decode_borrowed(&bytes).unwrap();
            assert_eq!(n_owned, n_view);
            assert_eq!(view.to_frame(), owned);
            assert_eq!(view.len(), owned.values.len());
            for (i, &v) in owned.values.iter().enumerate() {
                assert_eq!(view.value(i).to_bits(), v.to_bits());
            }
            let lazy: Vec<f32> = view.values().collect();
            assert_eq!(lazy, owned.values);
            // Error parity on corrupted input.
            for byte in 0..bytes.len() {
                let mut dirty = bytes.clone();
                dirty[byte] ^= 0x10;
                assert_eq!(
                    Frame::decode(&dirty).err(),
                    Frame::decode_borrowed(&dirty).err(),
                    "error divergence at byte {byte}"
                );
            }
        }
    }

    #[test]
    fn streams_from_concatenated_buffer() {
        let a = Frame::rssi(0, 0, 0, vec![1.0]);
        let b = Frame { office: 3, ..Frame::rssi(1, 0, 0, vec![2.0, 3.0]) };
        let c = Frame {
            office: 3,
            channel: ChannelKind::AmbientLight,
            ..Frame::rssi(0, 0, 0, vec![415.0])
        };
        let mut buf = a.encode();
        b.encode_into(&mut buf);
        c.encode_into(&mut buf);
        let (fa, na) = Frame::decode(&buf).unwrap();
        let (fb, nb) = Frame::decode(&buf[na..]).unwrap();
        let (fc, nc) = Frame::decode(&buf[na + nb..]).unwrap();
        assert_eq!((fa, fb, fc), (a, b, c));
        assert_eq!(na + nb + nc, buf.len());
    }

    #[test]
    fn round_trip_v3_light_channel() {
        let f = Frame {
            office: 12,
            channel: ChannelKind::AmbientLight,
            sensor: 2,
            seq: 31,
            tick: 9_876,
            values: vec![407.0, 415.0],
        };
        let bytes = f.encode();
        assert_eq!(u16::from_le_bytes([bytes[0], bytes[1]]), FRAME_MAGIC_V3);
        assert_eq!(bytes.len(), f.encoded_len());
        assert_eq!(bytes.len(), HEADER_LEN_V3 + 4 * 2 + 4);
        let (back, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(used, bytes.len());
        // An office-0 light frame still needs the v3 header: the
        // channel, not the office, forces the version.
        let zero = Frame { office: 0, ..f };
        let zb = zero.encode();
        assert_eq!(u16::from_le_bytes([zb[0], zb[1]]), FRAME_MAGIC_V3);
        assert_eq!(Frame::decode(&zb).unwrap().0, zero);
    }

    #[test]
    fn rssi_frames_never_pay_for_the_v3_header() {
        // encode() picks the oldest representable version, but an
        // explicitly v3-encoded RSSI frame is legal and decodes to the
        // same Frame.
        let f = Frame { office: 5, ..Frame::rssi(1, 2, 3, vec![-47.5]) };
        assert_eq!(u16::from_le_bytes([f.encode()[0], f.encode()[1]]), FRAME_MAGIC_V2);
        let mut v3 = Vec::new();
        f.encode_v3_into(&mut v3);
        assert_eq!(u16::from_le_bytes([v3[0], v3[1]]), FRAME_MAGIC_V3);
        let (back, used) = Frame::decode(&v3).unwrap();
        assert_eq!(back, f);
        assert_eq!(used, v3.len());
    }

    #[test]
    fn unknown_channel_tag_rejected() {
        let f = Frame {
            office: 1,
            channel: ChannelKind::AmbientLight,
            ..Frame::rssi(1, 2, 3, vec![400.0])
        };
        let mut bytes = f.encode();
        bytes[4] = 7; // no such ChannelKind
        let crc = crc32(&bytes[..bytes.len() - 4]);
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(Frame::decode(&bytes), Err(WireError::BadChannel(7)));
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let frames = [
            Frame::rssi(7, 9, 77, vec![-48.0, -52.5]),
            Frame { office: 6, ..Frame::rssi(7, 9, 77, vec![-48.0, -52.5]) },
            Frame {
                office: 6,
                channel: ChannelKind::AmbientLight,
                ..Frame::rssi(7, 9, 77, vec![410.0, 395.5])
            },
        ];
        for f in frames {
            let clean = f.encode();
            for byte in 0..clean.len() {
                for bit in 0..8 {
                    let mut dirty = clean.clone();
                    dirty[byte] ^= 1 << bit;
                    match Frame::decode(&dirty) {
                        Err(_) => {}
                        // A flip in the `len` field can only make the frame
                        // longer (or oversize), never decode cleanly. Any
                        // two magics differ in two bits, so no single flip
                        // can turn one version header into another, and a
                        // flipped channel tag fails the CRC.
                        Ok((g, _)) => panic!("flip {byte}:{bit} decoded as {g:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn truncation_and_magic_errors() {
        let f = Frame::rssi(1, 2, 3, vec![4.0]);
        let bytes = f.encode();
        assert_eq!(Frame::decode(&bytes[..10]), Err(WireError::Truncated));
        assert_eq!(Frame::decode(&bytes[..bytes.len() - 1]), Err(WireError::Truncated));
        let mut bad = bytes.clone();
        bad[0] = 0x00;
        assert_eq!(Frame::decode(&bad), Err(WireError::BadMagic));
        // A v2 frame truncated inside its office field is Truncated,
        // not misread as v1.
        let g = Frame { office: 9, ..Frame::rssi(1, 2, 3, vec![4.0]) };
        let v2 = g.encode();
        assert_eq!(Frame::decode(&v2[..HEADER_LEN + 3]), Err(WireError::Truncated));
        // Likewise a v3 frame truncated inside its channel/sensor area.
        let h = Frame {
            channel: ChannelKind::AmbientLight,
            ..Frame::rssi(1, 2, 3, vec![4.0])
        };
        let v3 = h.encode();
        assert_eq!(Frame::decode(&v3[..HEADER_LEN + 4]), Err(WireError::Truncated));
    }

    #[test]
    fn oversize_length_rejected_before_allocation() {
        let f = Frame::rssi(1, 2, 3, vec![4.0]);
        let mut bytes = f.encode();
        let huge = (MAX_PAYLOAD as u16 + 1).to_le_bytes();
        bytes[16] = huge[0];
        bytes[17] = huge[1];
        assert_eq!(Frame::decode(&bytes), Err(WireError::BadLength(MAX_PAYLOAD + 1)));
    }

    #[test]
    fn crc32_known_vector() {
        // The classic zlib check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    fn test_key(sensor: u16) -> AuthKey {
        AuthKey::derive(0xD3B, sensor)
    }

    #[test]
    fn authenticated_round_trip_and_verify() {
        let f = Frame {
            office: 7,
            channel: ChannelKind::Rssi,
            sensor: 3,
            seq: 41,
            tick: 123_456,
            values: vec![-50.25, -61.5, 0.0],
        };
        let key = test_key(3);
        let bytes = f.encode_auth(&key);
        assert_eq!(bytes.len(), f.encoded_len_auth());
        assert_eq!(bytes.len(), HEADER_LEN_V4 + 4 * 3 + 4);
        assert_eq!(u16::from_le_bytes([bytes[0], bytes[1]]), FRAME_MAGIC_V4);
        let (view, used) = Frame::decode_borrowed(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(view.to_frame(), f);
        assert!(view.is_authenticated());
        assert!(view.mac_tag().is_some());
        assert!(view.verify_mac(&key), "a clean frame must verify under its own key");
        assert!(!view.verify_mac(&test_key(4)), "the wrong key must not verify");
        // The owned decode path agrees.
        let (owned, n) = Frame::decode(&bytes).unwrap();
        assert_eq!((owned, n), (f, bytes.len()));
    }

    #[test]
    fn legacy_frames_never_verify() {
        let f = Frame::rssi(3, 41, 77, vec![-50.0]);
        let key = test_key(3);
        for bytes in [f.encode(), {
            let mut b = Vec::new();
            f.encode_v2_into(&mut b);
            b
        }, {
            let mut b = Vec::new();
            f.encode_v3_into(&mut b);
            b
        }] {
            let (view, _) = Frame::decode_borrowed(&bytes).unwrap();
            assert!(!view.is_authenticated());
            assert_eq!(view.mac_tag(), None);
            assert!(!view.verify_mac(&key), "v1–v3 frames carry nothing to verify");
        }
    }

    #[test]
    fn encode_never_picks_v4_implicitly() {
        // Authentication is opt-in: encode() still emits the oldest
        // legacy version, so pre-auth byte streams are untouched.
        for f in [
            Frame::rssi(1, 2, 3, vec![-47.0]),
            Frame { office: 9, ..Frame::rssi(1, 2, 3, vec![-47.0]) },
            Frame {
                office: 9,
                channel: ChannelKind::AmbientLight,
                ..Frame::rssi(1, 2, 3, vec![410.0])
            },
        ] {
            let magic = u16::from_le_bytes([f.encode()[0], f.encode()[1]]);
            assert_ne!(magic, FRAME_MAGIC_V4);
        }
    }

    #[test]
    fn tampered_authenticated_frames_fail_verification() {
        // Flip each payload/header byte, repair the CRC so framing
        // passes, and require the MAC to catch the change (the CRC is
        // not a defense — anyone can recompute it).
        let f = Frame {
            office: 2,
            channel: ChannelKind::Rssi,
            sensor: 1,
            seq: 5,
            tick: 900,
            values: vec![-42.0, -55.5],
        };
        let key = test_key(1);
        let clean = f.encode_auth(&key);
        let n = clean.len();
        for byte in 2..n - 4 {
            let mut forged = clean.clone();
            forged[byte] ^= 0x04;
            let crc = crc32(&forged[..n - 4]);
            forged[n - 4..].copy_from_slice(&crc.to_le_bytes());
            match Frame::decode_borrowed(&forged) {
                // Framing may still reject (e.g. a flip in len or the
                // channel tag); that is an acceptable rejection too.
                Err(_) => {}
                Ok((view, _)) => {
                    assert!(
                        !view.verify_mac(&key),
                        "tampered byte {byte} still verified"
                    );
                }
            }
        }
    }

    #[test]
    fn v4_magic_is_three_flips_from_every_legacy_magic() {
        for legacy in [FRAME_MAGIC, FRAME_MAGIC_V2, FRAME_MAGIC_V3] {
            let dist = (legacy ^ FRAME_MAGIC_V4).count_ones();
            assert!(dist >= 3, "magic {legacy:#06x} is only {dist} flips from v4");
        }
    }

    #[test]
    fn no_two_bit_flip_of_a_v4_frame_decodes_as_any_valid_frame() {
        // The adversarial version-negotiation property: corrupting an
        // authenticated frame by ≤2 bit flips must never yield a
        // *decodable* frame of any version. Magic distance ≥3 blocks
        // version crossings; CRC-32 (Hamming distance 4 at these
        // lengths) blocks everything else; a flip in `len` only makes
        // the frame longer or oversize under exact framing.
        let f = Frame {
            office: 3,
            channel: ChannelKind::Rssi,
            sensor: 2,
            seq: 9,
            tick: 1234,
            values: vec![-48.5, -51.0],
        };
        let clean = f.encode_auth(&test_key(2));
        let n_bits = clean.len() * 8;
        let flip = |buf: &mut [u8], bit: usize| buf[bit / 8] ^= 1 << (bit % 8);
        for a in 0..n_bits {
            // Single flips...
            let mut dirty = clean.clone();
            flip(&mut dirty, a);
            assert!(Frame::decode(&dirty).is_err(), "1-flip at bit {a} decoded");
            // ...and every pair containing `a`.
            for b in a + 1..n_bits {
                let mut dirty = clean.clone();
                flip(&mut dirty, a);
                flip(&mut dirty, b);
                assert!(
                    Frame::decode(&dirty).is_err(),
                    "2-flip at bits {a},{b} decoded"
                );
            }
        }
    }
}
