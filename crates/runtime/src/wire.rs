//! The sensor wire codec.
//!
//! A live deployment's receiving sensors push their per-tick RSSI
//! measurements to the central station over an unreliable transport
//! (the paper's nodes used raw 2.4 GHz packets). Each report travels as
//! one self-delimiting binary [`Frame`]:
//!
//! ```text
//! offset  size  field
//! 0       2     magic        0xFADE, little-endian
//! 2       2     sensor       receiving sensor id
//! 4       4     seq          per-sensor send sequence number
//! 8       8     tick         day-local tick timestamp
//! 16      2     len          number of f32 samples (≤ MAX_PAYLOAD)
//! 18      4·len payload      samples, f32 little-endian
//! …       4     crc32        IEEE CRC-32 of all preceding bytes
//! ```
//!
//! Everything is little-endian. The checksum lets the station reject
//! corrupted frames instead of feeding garbage RSSI into MD — the
//! reorder buffer then treats the tick as missing, which downstream
//! gap-fill handles gracefully.

/// Frame preamble, chosen to make byte-aligned garbage unlikely to
/// parse.
pub const FRAME_MAGIC: u16 = 0xFADE;

/// Bytes before the payload.
pub const HEADER_LEN: usize = 18;

/// Hard cap on samples per frame (a 9-sensor office has at most 8
/// streams per receiver; the cap only bounds hostile input).
pub const MAX_PAYLOAD: usize = 4096;

/// One sensor report on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Receiving sensor id.
    pub sensor: u16,
    /// Per-sensor send sequence number (monotone at the sender).
    pub seq: u32,
    /// Day-local tick the samples belong to.
    pub tick: u64,
    /// RSSI samples in the sensor's `receiver_groups` order.
    pub values: Vec<f32>,
}

/// Why a byte buffer failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the declared (or minimum) frame length.
    Truncated,
    /// The first two bytes are not [`FRAME_MAGIC`].
    BadMagic,
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    BadLength(usize),
    /// The trailing CRC-32 does not match the frame contents.
    BadChecksum {
        /// CRC computed over the received bytes.
        computed: u32,
        /// CRC carried by the frame.
        carried: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadLength(n) => write!(f, "declared payload of {n} samples exceeds cap"),
            WireError::BadChecksum { computed, carried } => {
                write!(f, "checksum mismatch: computed {computed:#010x}, carried {carried:#010x}")
            }
        }
    }
}

impl std::error::Error for WireError {}

pub use fadewich_stats::checksum::crc32;

impl Frame {
    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + 4 * self.values.len() + 4
    }

    /// Appends the encoded frame to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_PAYLOAD`] samples.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        assert!(self.values.len() <= MAX_PAYLOAD, "payload too large");
        let start = out.len();
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.sensor.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.tick.to_le_bytes());
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in &self.values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32(&out[start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Encodes the frame into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Decodes one frame from the start of `bytes`, returning it and
    /// the number of bytes consumed (so frames can be streamed from a
    /// concatenated buffer).
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; the buffer is never consumed on error.
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
        if bytes.len() < HEADER_LEN + 4 {
            return Err(WireError::Truncated);
        }
        let magic = u16::from_le_bytes([bytes[0], bytes[1]]);
        if magic != FRAME_MAGIC {
            return Err(WireError::BadMagic);
        }
        let sensor = u16::from_le_bytes([bytes[2], bytes[3]]);
        let seq = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        let tick = u64::from_le_bytes([
            bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
        ]);
        let len = u16::from_le_bytes([bytes[16], bytes[17]]) as usize;
        if len > MAX_PAYLOAD {
            return Err(WireError::BadLength(len));
        }
        let total = HEADER_LEN + 4 * len + 4;
        if bytes.len() < total {
            return Err(WireError::Truncated);
        }
        let computed = crc32(&bytes[..total - 4]);
        let carried = u32::from_le_bytes([
            bytes[total - 4],
            bytes[total - 3],
            bytes[total - 2],
            bytes[total - 1],
        ]);
        if computed != carried {
            return Err(WireError::BadChecksum { computed, carried });
        }
        let mut values = Vec::with_capacity(len);
        for i in 0..len {
            let o = HEADER_LEN + 4 * i;
            values.push(f32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]));
        }
        Ok((Frame { sensor, seq, tick, values }, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let f = Frame { sensor: 3, seq: 41, tick: 123_456, values: vec![-50.25, -61.5, 0.0] };
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        let (back, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn streams_from_concatenated_buffer() {
        let a = Frame { sensor: 0, seq: 0, tick: 0, values: vec![1.0] };
        let b = Frame { sensor: 1, seq: 0, tick: 0, values: vec![2.0, 3.0] };
        let mut buf = a.encode();
        b.encode_into(&mut buf);
        let (fa, na) = Frame::decode(&buf).unwrap();
        let (fb, nb) = Frame::decode(&buf[na..]).unwrap();
        assert_eq!((fa, fb), (a, b));
        assert_eq!(na + nb, buf.len());
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let f = Frame { sensor: 7, seq: 9, tick: 77, values: vec![-48.0, -52.5] };
        let clean = f.encode();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut dirty = clean.clone();
                dirty[byte] ^= 1 << bit;
                match Frame::decode(&dirty) {
                    Err(_) => {}
                    // A flip in the `len` field can only make the frame
                    // longer (or oversize), never decode cleanly.
                    Ok((g, _)) => panic!("flip {byte}:{bit} decoded as {g:?}"),
                }
            }
        }
    }

    #[test]
    fn truncation_and_magic_errors() {
        let f = Frame { sensor: 1, seq: 2, tick: 3, values: vec![4.0] };
        let bytes = f.encode();
        assert_eq!(Frame::decode(&bytes[..10]), Err(WireError::Truncated));
        assert_eq!(Frame::decode(&bytes[..bytes.len() - 1]), Err(WireError::Truncated));
        let mut bad = bytes.clone();
        bad[0] = 0x00;
        assert_eq!(Frame::decode(&bad), Err(WireError::BadMagic));
    }

    #[test]
    fn oversize_length_rejected_before_allocation() {
        let f = Frame { sensor: 1, seq: 2, tick: 3, values: vec![4.0] };
        let mut bytes = f.encode();
        let huge = (MAX_PAYLOAD as u16 + 1).to_le_bytes();
        bytes[16] = huge[0];
        bytes[17] = huge[1];
        assert_eq!(Frame::decode(&bytes), Err(WireError::BadLength(MAX_PAYLOAD + 1)));
    }

    #[test]
    fn crc32_known_vector() {
        // The classic zlib check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
