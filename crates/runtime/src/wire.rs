//! The sensor wire codec.
//!
//! A live deployment's receiving sensors push their per-tick RSSI
//! measurements to the central station over an unreliable transport
//! (the paper's nodes used raw 2.4 GHz packets). Each report travels as
//! one self-delimiting binary [`Frame`]. Two header versions are on the
//! wire:
//!
//! ```text
//! v1 (single-office deployments; office id is implicitly 0)
//! offset  size  field
//! 0       2     magic        0xFADE, little-endian
//! 2       2     sensor       receiving sensor id
//! 4       4     seq          per-sensor send sequence number
//! 8       8     tick         day-local tick timestamp
//! 16      2     len          number of f32 samples (≤ MAX_PAYLOAD)
//! 18      4·len payload      samples, f32 little-endian
//! …       4     crc32        IEEE CRC-32 of all preceding bytes
//!
//! v2 (fleet deployments; adds the demux key)
//! offset  size  field
//! 0       2     magic        0xFAD2, little-endian
//! 2       2     office       tenant (office) id — the fleet demux key
//! 4       2     sensor       receiving sensor id
//! 6       4     seq          per-sensor send sequence number
//! 10      8     tick         day-local tick timestamp
//! 18      2     len          number of f32 samples (≤ MAX_PAYLOAD)
//! 20      4·len payload      samples, f32 little-endian
//! …       4     crc32        IEEE CRC-32 of all preceding bytes
//! ```
//!
//! The two versions are distinguished by their magic, so a station can
//! accept a mixed stream: a v1 frame decodes with `office = 0` (the
//! single-office deployments of PR 2–6 are "office 0" of a fleet), and
//! [`Frame::encode`] keeps emitting v1 bytes for office 0 so existing
//! byte streams, checkpoint delivery positions and link-corruption
//! draws are unchanged. Everything is little-endian. The checksum lets
//! the station reject corrupted frames instead of feeding garbage RSSI
//! into MD — the reorder buffer then treats the tick as missing, which
//! downstream gap-fill handles gracefully.
//!
//! [`Frame::decode_borrowed`] is the zero-copy variant for the fleet
//! demux hot path: it validates exactly like [`Frame::decode`] but
//! returns a [`FrameView`] whose payload is a slice into the input
//! buffer, so routing a frame by office id allocates nothing.

/// v1 frame preamble, chosen to make byte-aligned garbage unlikely to
/// parse.
pub const FRAME_MAGIC: u16 = 0xFADE;

/// v2 frame preamble (header carries an office id).
pub const FRAME_MAGIC_V2: u16 = 0xFAD2;

/// Bytes before the payload in a v1 frame.
pub const HEADER_LEN: usize = 18;

/// Bytes before the payload in a v2 frame (v1 plus the office id).
pub const HEADER_LEN_V2: usize = 20;

/// Hard cap on samples per frame (a 9-sensor office has at most 8
/// streams per receiver; the cap only bounds hostile input).
pub const MAX_PAYLOAD: usize = 4096;

/// One sensor report on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Tenant (office) id; 0 for single-office deployments and for
    /// every v1 frame.
    pub office: u16,
    /// Receiving sensor id.
    pub sensor: u16,
    /// Per-sensor send sequence number (monotone at the sender).
    pub seq: u32,
    /// Day-local tick the samples belong to.
    pub tick: u64,
    /// RSSI samples in the sensor's `receiver_groups` order.
    pub values: Vec<f32>,
}

/// A decoded frame whose payload still lives in the caller's buffer —
/// the zero-copy view [`Frame::decode_borrowed`] returns. The payload
/// slice holds the f32 sample bits, little-endian, exactly as they
/// sit on the wire; [`FrameView::value`]/[`FrameView::values`] decode
/// them lazily and [`FrameView::to_frame`] materializes an owned
/// [`Frame`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameView<'a> {
    /// Tenant (office) id (0 for v1 frames).
    pub office: u16,
    /// Receiving sensor id.
    pub sensor: u16,
    /// Per-sensor send sequence number.
    pub seq: u32,
    /// Day-local tick the samples belong to.
    pub tick: u64,
    payload: &'a [u8],
}

impl<'a> FrameView<'a> {
    /// Number of f32 samples in the payload.
    pub fn len(&self) -> usize {
        self.payload.len() / 4
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// The raw little-endian f32 payload bytes (the borrowed slice).
    pub fn payload_bytes(&self) -> &'a [u8] {
        self.payload
    }

    /// Decodes sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn value(&self, i: usize) -> f32 {
        let o = 4 * i;
        f32::from_le_bytes([
            self.payload[o],
            self.payload[o + 1],
            self.payload[o + 2],
            self.payload[o + 3],
        ])
    }

    /// Iterates the samples without materializing a `Vec`.
    pub fn values(&self) -> impl Iterator<Item = f32> + 'a {
        self.payload
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
    }

    /// Materializes an owned [`Frame`] (allocates the payload `Vec`).
    pub fn to_frame(&self) -> Frame {
        Frame {
            office: self.office,
            sensor: self.sensor,
            seq: self.seq,
            tick: self.tick,
            values: self.values().collect(),
        }
    }
}

/// Why a byte buffer failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the declared (or minimum) frame length.
    Truncated,
    /// The first two bytes are neither [`FRAME_MAGIC`] nor
    /// [`FRAME_MAGIC_V2`].
    BadMagic,
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    BadLength(usize),
    /// The trailing CRC-32 does not match the frame contents.
    BadChecksum {
        /// CRC computed over the received bytes.
        computed: u32,
        /// CRC carried by the frame.
        carried: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadLength(n) => write!(f, "declared payload of {n} samples exceeds cap"),
            WireError::BadChecksum { computed, carried } => {
                write!(f, "checksum mismatch: computed {computed:#010x}, carried {carried:#010x}")
            }
        }
    }
}

impl std::error::Error for WireError {}

pub use fadewich_stats::checksum::crc32;

impl Frame {
    /// Encoded size in bytes (v1 for office 0, v2 otherwise — the
    /// format [`Frame::encode`] picks).
    pub fn encoded_len(&self) -> usize {
        let header = if self.office == 0 { HEADER_LEN } else { HEADER_LEN_V2 };
        header + 4 * self.values.len() + 4
    }

    /// Appends the encoded frame to `out`: v1 bytes for office 0 (so
    /// single-office streams are unchanged from the unversioned
    /// codec), v2 bytes otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_PAYLOAD`] samples.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        if self.office == 0 {
            self.encode_v1_into(out);
        } else {
            self.encode_v2_into(out);
        }
    }

    fn encode_v1_into(&self, out: &mut Vec<u8>) {
        assert!(self.values.len() <= MAX_PAYLOAD, "payload too large");
        let start = out.len();
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.sensor.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.tick.to_le_bytes());
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in &self.values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32(&out[start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Appends the v2 encoding regardless of office id (office 0 is a
    /// legal v2 frame; [`Frame::encode`] just never picks it, for
    /// byte-compatibility with v1 streams).
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_PAYLOAD`] samples.
    pub fn encode_v2_into(&self, out: &mut Vec<u8>) {
        assert!(self.values.len() <= MAX_PAYLOAD, "payload too large");
        let start = out.len();
        out.extend_from_slice(&FRAME_MAGIC_V2.to_le_bytes());
        out.extend_from_slice(&self.office.to_le_bytes());
        out.extend_from_slice(&self.sensor.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.tick.to_le_bytes());
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in &self.values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32(&out[start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Encodes the frame into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Decodes one frame (either header version) from the start of
    /// `bytes`, returning it and the number of bytes consumed (so
    /// frames can be streamed from a concatenated buffer).
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; the buffer is never consumed on error.
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
        let (view, used) = Frame::decode_borrowed(bytes)?;
        Ok((view.to_frame(), used))
    }

    /// Zero-copy decode: identical validation to [`Frame::decode`]
    /// (magic, length cap, exact framing, CRC-32), but the returned
    /// [`FrameView`] borrows its payload from `bytes` instead of
    /// copying it — the fleet demux peeks the office id and routes the
    /// frame without allocating.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]; the buffer is never consumed on error.
    pub fn decode_borrowed(bytes: &[u8]) -> Result<(FrameView<'_>, usize), WireError> {
        if bytes.len() < HEADER_LEN + 4 {
            return Err(WireError::Truncated);
        }
        let magic = u16::from_le_bytes([bytes[0], bytes[1]]);
        let (office, header_len) = match magic {
            FRAME_MAGIC => (0u16, HEADER_LEN),
            FRAME_MAGIC_V2 => (u16::from_le_bytes([bytes[2], bytes[3]]), HEADER_LEN_V2),
            _ => return Err(WireError::BadMagic),
        };
        if bytes.len() < header_len + 4 {
            return Err(WireError::Truncated);
        }
        // Past the (v1) or (v2, office) prefix the two layouts agree.
        let rest = &bytes[header_len - 16..];
        let sensor = u16::from_le_bytes([rest[0], rest[1]]);
        let seq = u32::from_le_bytes([rest[2], rest[3], rest[4], rest[5]]);
        let tick = u64::from_le_bytes([
            rest[6], rest[7], rest[8], rest[9], rest[10], rest[11], rest[12], rest[13],
        ]);
        let len = u16::from_le_bytes([rest[14], rest[15]]) as usize;
        if len > MAX_PAYLOAD {
            return Err(WireError::BadLength(len));
        }
        let total = header_len + 4 * len + 4;
        if bytes.len() < total {
            return Err(WireError::Truncated);
        }
        let computed = crc32(&bytes[..total - 4]);
        let carried = u32::from_le_bytes([
            bytes[total - 4],
            bytes[total - 3],
            bytes[total - 2],
            bytes[total - 1],
        ]);
        if computed != carried {
            return Err(WireError::BadChecksum { computed, carried });
        }
        let payload = &bytes[header_len..total - 4];
        Ok((FrameView { office, sensor, seq, tick, payload }, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let f = Frame {
            office: 0,
            sensor: 3,
            seq: 41,
            tick: 123_456,
            values: vec![-50.25, -61.5, 0.0],
        };
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        let (back, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn round_trip_v2_office() {
        let f = Frame {
            office: 777,
            sensor: 3,
            seq: 41,
            tick: 123_456,
            values: vec![-50.25, -61.5, 0.0],
        };
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        assert_eq!(bytes.len(), HEADER_LEN_V2 + 4 * 3 + 4);
        let (back, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn v1_frames_decode_as_office_zero() {
        // The exact pre-fleet byte layout must still decode, with the
        // office defaulted to 0 — old sensors keep working unchanged.
        let f =
            Frame { office: 0, sensor: 5, seq: 9, tick: 1234, values: vec![-48.0, -52.5] };
        let bytes = f.encode();
        assert_eq!(u16::from_le_bytes([bytes[0], bytes[1]]), FRAME_MAGIC);
        assert_eq!(bytes.len(), HEADER_LEN + 4 * 2 + 4);
        let (back, _) = Frame::decode(&bytes).unwrap();
        assert_eq!(back.office, 0);
        assert_eq!(back, f);
    }

    #[test]
    fn office_zero_also_round_trips_through_v2() {
        // encode() picks v1 for office 0, but an explicitly v2-encoded
        // office-0 frame is legal and decodes to the same Frame.
        let f = Frame { office: 0, sensor: 2, seq: 7, tick: 99, values: vec![-44.0] };
        let mut v2 = Vec::new();
        f.encode_v2_into(&mut v2);
        assert_ne!(v2, f.encode(), "v2 bytes differ from the v1 default encoding");
        let (back, used) = Frame::decode(&v2).unwrap();
        assert_eq!(back, f);
        assert_eq!(used, v2.len());
    }

    #[test]
    fn decode_borrowed_matches_owned_decode() {
        // Differential: both paths must agree field-for-field and
        // byte-for-byte on every header version, and reject errors
        // identically (same variant, same consumed-nothing contract).
        for office in [0u16, 1, 41, u16::MAX] {
            let f = Frame {
                office,
                sensor: 3,
                seq: 10 + u32::from(office),
                tick: 5_000 + u64::from(office),
                values: vec![-50.0, -61.25, 7.5, f32::MIN_POSITIVE],
            };
            let bytes = f.encode();
            let (owned, n_owned) = Frame::decode(&bytes).unwrap();
            let (view, n_view) = Frame::decode_borrowed(&bytes).unwrap();
            assert_eq!(n_owned, n_view);
            assert_eq!(view.to_frame(), owned);
            assert_eq!(view.len(), owned.values.len());
            for (i, &v) in owned.values.iter().enumerate() {
                assert_eq!(view.value(i).to_bits(), v.to_bits());
            }
            let lazy: Vec<f32> = view.values().collect();
            assert_eq!(lazy, owned.values);
            // Error parity on corrupted input.
            for byte in 0..bytes.len() {
                let mut dirty = bytes.clone();
                dirty[byte] ^= 0x10;
                assert_eq!(
                    Frame::decode(&dirty).err(),
                    Frame::decode_borrowed(&dirty).err(),
                    "error divergence at byte {byte}"
                );
            }
        }
    }

    #[test]
    fn streams_from_concatenated_buffer() {
        let a = Frame { office: 0, sensor: 0, seq: 0, tick: 0, values: vec![1.0] };
        let b = Frame { office: 3, sensor: 1, seq: 0, tick: 0, values: vec![2.0, 3.0] };
        let mut buf = a.encode();
        b.encode_into(&mut buf);
        let (fa, na) = Frame::decode(&buf).unwrap();
        let (fb, nb) = Frame::decode(&buf[na..]).unwrap();
        assert_eq!((fa, fb), (a, b));
        assert_eq!(na + nb, buf.len());
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        for office in [0u16, 6] {
            let f = Frame { office, sensor: 7, seq: 9, tick: 77, values: vec![-48.0, -52.5] };
            let clean = f.encode();
            for byte in 0..clean.len() {
                for bit in 0..8 {
                    let mut dirty = clean.clone();
                    dirty[byte] ^= 1 << bit;
                    match Frame::decode(&dirty) {
                        Err(_) => {}
                        // A flip in the `len` field can only make the frame
                        // longer (or oversize), never decode cleanly. The
                        // two magics differ in two bits, so no single flip
                        // can turn one version header into the other.
                        Ok((g, _)) => panic!("flip {byte}:{bit} decoded as {g:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn truncation_and_magic_errors() {
        let f = Frame { office: 0, sensor: 1, seq: 2, tick: 3, values: vec![4.0] };
        let bytes = f.encode();
        assert_eq!(Frame::decode(&bytes[..10]), Err(WireError::Truncated));
        assert_eq!(Frame::decode(&bytes[..bytes.len() - 1]), Err(WireError::Truncated));
        let mut bad = bytes.clone();
        bad[0] = 0x00;
        assert_eq!(Frame::decode(&bad), Err(WireError::BadMagic));
        // A v2 frame truncated inside its office field is Truncated,
        // not misread as v1.
        let g = Frame { office: 9, sensor: 1, seq: 2, tick: 3, values: vec![4.0] };
        let v2 = g.encode();
        assert_eq!(Frame::decode(&v2[..HEADER_LEN + 3]), Err(WireError::Truncated));
    }

    #[test]
    fn oversize_length_rejected_before_allocation() {
        let f = Frame { office: 0, sensor: 1, seq: 2, tick: 3, values: vec![4.0] };
        let mut bytes = f.encode();
        let huge = (MAX_PAYLOAD as u16 + 1).to_le_bytes();
        bytes[16] = huge[0];
        bytes[17] = huge[1];
        assert_eq!(Frame::decode(&bytes), Err(WireError::BadLength(MAX_PAYLOAD + 1)));
    }

    #[test]
    fn crc32_known_vector() {
        // The classic zlib check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
