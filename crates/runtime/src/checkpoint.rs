//! Crash-safe engine checkpoints.
//!
//! `fadewichd serve` is a long-lived process; a crash must not cost a
//! cold MD retrain or hours of missed deauthentications. This module
//! persists the *complete* engine state — the in-flight MD
//! profile/run state, the controller FSM with every session flag, the
//! reorder watermark and quarantine map, the runtime counters, and a
//! KMA idle-clock fingerprint — in a length-prefixed, CRC-32-guarded
//! binary image in the style of the model artifact
//! (`fadewich-core::artifact`). Restoring from a checkpoint and
//! replaying the remaining deliveries produces a decision stream
//! **byte-identical** to an uninterrupted run; `tests/crash_recovery.rs`
//! proves it for random crash points, and proves that *every*
//! single-bit-flipped image is rejected with a [`CheckpointError`]
//! rather than a panic or a silently wrong resume.
//!
//! # Binary layout (version 4)
//!
//! ```text
//! offset  size      field
//! 0       4         magic        "FWCP", byte-literal
//! 4       2         version      u16 little-endian, currently 4
//! 6       8         stamp        u64 little-endian, monotonic tick stamp
//! 14      4         body_len     u32 little-endian
//! 18      body_len  body         see below
//! …       4         crc32        IEEE CRC-32 of ALL preceding bytes
//! ```
//!
//! The total length must be exactly `18 + body_len + 4` (exact-length
//! framing, as in the artifact): a corrupted `body_len` fails the
//! length check and every other corruption fails magic, version, or
//! the checksum. All multi-byte values are little-endian; `f64`s are
//! raw IEEE-754 bits so a resumed run reproduces every decision
//! bit-exactly. `Option`s encode as a `0/1` flag byte followed by the
//! value when present; any other flag is rejected as malformed.
//!
//! Body, in order: `day`, `stream_pos`, `log_mark`, `events_emitted`,
//! the sensor `groups` layout (version 3 tags each group with its
//! validated [`ChannelKind`] byte — the typed-stream refactor is why
//! version-2 images no longer decode), the gap-fill state
//! (`last_value`, `last_seen`), the fourteen deterministic counters
//! (version 2 split the corrupt-frame total into its three per-reason
//! counters — CRC, framing, unknown sensor) followed by the version-3
//! per-channel counter blocks (five `u64`s per [`ChannelKind`], in tag
//! order) and the four version-4 authentication counters
//! (unauthenticated, replayed, rate-limited, attack-quarantines), the
//! reorder state
//! (watermark, frontiers, sequence highs, quarantine flags, cumulative
//! counts — version 4 adds the replay count and the per-sender
//! anti-replay bitmaps — and pending payloads), the version-4
//! per-sensor authentication state (reject-budget window start,
//! rejections charged in the window, the sticky attack-quarantine
//! flag), the controller state (full MD runtime
//! state, FSM tag, per-session flag bytes, feature histories,
//! `rule1_done`, `prev_t`, `n_actions`, and — new in version 3 — the
//! ambient-light detector bank plus the fused-mode corroboration clock
//! `last_window_tick`), and the KMA clock fingerprint. Latency
//! histograms are deliberately *not* persisted — they are wall-clock
//! observations, the one non-deterministic part of a run.
//!
//! # Atomic writes, staleness, retention
//!
//! [`CheckpointStore::save`] writes to a dot-prefixed temp file in the
//! same directory and `rename`s it into place, so a crash mid-write
//! leaves either the previous checkpoint or a temp file the loader
//! never considers — never a half-written `ckpt-*.fwcp`. Stamps must
//! be strictly monotonic per store ([`CheckpointError::Stale`]
//! otherwise); filenames embed the stamp zero-padded to 20 digits so
//! lexicographic order equals numeric order. The newest `RETAIN`
//! checkpoints are kept; [`CheckpointStore::load_latest`] walks them
//! newest-first, skipping (and reporting) every corrupt image, and
//! returns the first that decodes — or none, meaning cold start.

use std::path::{Path, PathBuf};

use fadewich_core::controller::{ControllerState, SessionState, SystemState};
use fadewich_core::fusion::LightDetectorState;
use fadewich_core::md::{MdRuntimeState, MdSnapshot};
use fadewich_core::stream::{ChannelKind, SensorGroup};
use fadewich_core::windows::{VariationWindow, WindowTrackerState};
use fadewich_stats::checksum::crc32;
use fadewich_stats::rolling::{HistoryState, RollingStdState};

use crate::counters::RuntimeCounters;
use crate::engine::SensorAuthState;
use crate::fault::{FaultInjector, FaultLog, WriteFault};
use crate::reorder::ReorderState;

/// Checkpoint preamble: `b"FWCP"` (FadeWich CheckPoint).
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"FWCP";

/// The format version this build reads and writes.
pub const CHECKPOINT_VERSION: u16 = 4;

/// Bytes before the body: magic + version + stamp + body length.
pub const HEADER_LEN: usize = 18;

/// How many checkpoints a store keeps on disk: the newest plus one
/// fallback, so a corrupted latest image still resumes warm.
pub const RETAIN: usize = 2;

/// The complete engine state at one delivery boundary. Everything a
/// [`StreamingEngine`](crate::engine::StreamingEngine) needs to resume
/// exactly where it stopped, plus the resume coordinates the driver
/// needs (`day`, `stream_pos`, `log_mark`, `events_emitted`).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    /// Which scenario day the engine was streaming.
    pub day: u32,
    /// Link deliveries fully ingested before the capture. A resume
    /// replays the day's delivery sequence from this index — i.e.
    /// discards everything at or below the checkpointed watermark.
    pub stream_pos: u64,
    /// Committed bytes of the decision log. Recovery truncates the log
    /// here before appending, so a crash between checkpoint and exit
    /// cannot duplicate output lines.
    pub log_mark: u64,
    /// Engine events emitted before the capture (for stitching the
    /// pre-crash event stream to the post-resume one).
    pub events_emitted: u64,
    /// The typed sensor layout contract: per sensor, its channel kind
    /// and the engine-row positions it fills.
    pub groups: Vec<SensorGroup>,
    /// Per-stream last sample value (gap-fill source).
    pub last_value: Vec<f64>,
    /// Per-stream tick of the last genuine sample.
    pub last_seen: Vec<Option<u64>>,
    /// Deterministic runtime counters. The latency histograms are
    /// zeroed: wall-clock is not part of the replayable state.
    pub counters: RuntimeCounters,
    /// Complete reorder-buffer state.
    pub reorder: ReorderState,
    /// Per-sensor authentication/rate-limit state, indexed like
    /// `groups`. All-default for legacy-unauthenticated engines (it is
    /// encoded either way — the image layout does not depend on the
    /// auth mode).
    pub auth_state: Vec<SensorAuthState>,
    /// Complete controller state (including the MD runtime state).
    pub controller: ControllerState,
    /// Per-workstation KMA idle clocks at `controller.prev_t` — a
    /// fingerprint of the input trace, checked on restore to catch a
    /// checkpoint resumed against the wrong scenario.
    pub kma_clocks: Vec<Option<f64>>,
}

/// Why a checkpoint could not be written, read, or trusted.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// Fewer bytes than the declared (or minimum) checkpoint length.
    Truncated,
    /// The first four bytes are not [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The checkpoint was written by an incompatible format version.
    UnsupportedVersion(u16),
    /// Bytes past the declared end of the checkpoint.
    TrailingBytes,
    /// The trailing CRC-32 does not match the checkpoint contents.
    BadChecksum {
        /// CRC computed over the received bytes.
        computed: u32,
        /// CRC carried by the checkpoint.
        carried: u32,
    },
    /// Framing was intact but the contents are not a valid state.
    Malformed(String),
    /// A save was attempted with a stamp at or behind the newest one.
    Stale {
        /// The rejected stamp.
        stamp: u64,
        /// The newest stamp the store has seen.
        newest: u64,
    },
    /// The checkpoint decodes but cannot drive this engine (layout or
    /// scenario mismatch).
    Incompatible(String),
    /// Reading or writing a checkpoint file failed.
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "truncated checkpoint"),
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic (not a checkpoint)"),
            CheckpointError::UnsupportedVersion(v) => write!(
                f,
                "unsupported checkpoint version {v} (this build reads {CHECKPOINT_VERSION})"
            ),
            CheckpointError::TrailingBytes => write!(f, "trailing bytes after checkpoint"),
            CheckpointError::BadChecksum { computed, carried } => {
                write!(f, "checksum mismatch: computed {computed:#010x}, carried {carried:#010x}")
            }
            CheckpointError::Malformed(why) => write!(f, "malformed checkpoint: {why}"),
            CheckpointError::Stale { stamp, newest } => {
                write!(f, "stale checkpoint stamp {stamp} (newest is {newest})")
            }
            CheckpointError::Incompatible(why) => write!(f, "incompatible checkpoint: {why}"),
            CheckpointError::Io(why) => write!(f, "checkpoint i/o error: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Sequential little-endian reader over the checkpoint body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        if self.bytes.len() - self.pos < n {
            return Err(CheckpointError::Malformed(format!("body ends inside {what}")));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, CheckpointError> {
        Ok(self.take(1, what)?[0])
    }

    fn flag(&mut self, what: &str) -> Result<bool, CheckpointError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            n => Err(CheckpointError::Malformed(format!("{what} flag {n} is not 0/1"))),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, CheckpointError> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CheckpointError> {
        let s = self.take(8, what)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    fn usize(&mut self, what: &str) -> Result<usize, CheckpointError> {
        let v = self.u64(what)?;
        usize::try_from(v)
            .map_err(|_| CheckpointError::Malformed(format!("{what} {v} overflows usize")))
    }

    fn f64(&mut self, what: &str) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn opt_u64(&mut self, what: &str) -> Result<Option<u64>, CheckpointError> {
        Ok(if self.flag(what)? { Some(self.u64(what)?) } else { None })
    }

    fn opt_f64(&mut self, what: &str) -> Result<Option<f64>, CheckpointError> {
        Ok(if self.flag(what)? { Some(self.f64(what)?) } else { None })
    }

    /// Reads `n` f64s, with the length pre-checked against the
    /// remaining body so a hostile count cannot trigger a huge
    /// allocation.
    fn f64_vec(&mut self, n: usize, what: &str) -> Result<Vec<f64>, CheckpointError> {
        let s = self.take(8 * n, what)?;
        Ok(s.chunks_exact(8)
            .map(|c| {
                f64::from_bits(u64::from_le_bytes([
                    c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
                ]))
            })
            .collect())
    }

    /// Reads `n` f32s (reorder payloads travel as `f32` on the wire).
    fn f32_vec(&mut self, n: usize, what: &str) -> Result<Vec<f32>, CheckpointError> {
        let s = self.take(4 * n, what)?;
        Ok(s.chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
            .collect())
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn push_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn push_len(out: &mut Vec<u8>, n: usize, what: &str) {
    assert!(n <= u32::MAX as usize, "{what} count {n} overflows the u32 length prefix");
    push_u32(out, n as u32);
}

fn push_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            out.push(1);
            push_u64(out, x);
        }
        None => out.push(0),
    }
}

fn push_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            out.push(1);
            push_f64(out, x);
        }
        None => out.push(0),
    }
}

fn push_f64_slice(out: &mut Vec<u8>, vs: &[f64], what: &str) {
    push_len(out, vs.len(), what);
    for &v in vs {
        push_f64(out, v);
    }
}

fn encode_md(body: &mut Vec<u8>, md: &MdRuntimeState) {
    push_opt_f64(body, md.snapshot.threshold);
    push_f64_slice(body, &md.snapshot.values, "profile value");
    push_len(body, md.stream_stds.len(), "rolling window");
    for w in &md.stream_stds {
        push_u64(body, w.capacity as u64);
        push_f64_slice(body, &w.samples, "rolling sample");
        push_f64(body, w.offset);
        push_f64(body, w.sum);
        push_f64(body, w.sum_sq);
        push_u64(body, w.pushes);
        push_u64(body, w.non_finite);
    }
    push_u64(body, md.ticks_seen as u64);
    push_f64_slice(body, &md.queue, "queue value");
    push_u64(body, md.queue_anomalous as u64);
    push_u64(body, md.rejected_streak as u64);
    let t = &md.tracker;
    push_u64(body, t.hangover_ticks as u64);
    push_opt_u64(body, t.open_start.map(|v| v as u64));
    push_u64(body, t.last_anomalous as u64);
    push_u64(body, t.quiet_run as u64);
    push_len(body, t.closed.len(), "closed window");
    for w in &t.closed {
        push_u64(body, w.start_tick as u64);
        push_u64(body, w.end_tick as u64);
    }
}

fn decode_md(cur: &mut Cursor<'_>) -> Result<MdRuntimeState, CheckpointError> {
    let threshold = cur.opt_f64("md threshold")?;
    let n = cur.u32("profile length")? as usize;
    let values = cur.f64_vec(n, "profile values")?;
    let n_windows = cur.u32("rolling window count")? as usize;
    let mut stream_stds = Vec::with_capacity(n_windows.min(4096));
    for i in 0..n_windows {
        let what = format!("rolling window {i}");
        let capacity = cur.usize(&what)?;
        let len = cur.u32(&what)? as usize;
        let samples = cur.f64_vec(len, &what)?;
        let offset = cur.f64(&what)?;
        let sum = cur.f64(&what)?;
        let sum_sq = cur.f64(&what)?;
        let pushes = cur.u64(&what)?;
        let non_finite = cur.u64(&what)?;
        stream_stds.push(RollingStdState {
            capacity,
            samples,
            offset,
            sum,
            sum_sq,
            pushes,
            non_finite,
        });
    }
    let ticks_seen = cur.usize("md ticks_seen")?;
    let qn = cur.u32("queue length")? as usize;
    let queue = cur.f64_vec(qn, "queue values")?;
    let queue_anomalous = cur.usize("queue anomalous")?;
    let rejected_streak = cur.usize("rejected streak")?;
    let hangover_ticks = cur.usize("tracker hangover")?;
    let open_start = match cur.opt_u64("tracker open start")? {
        Some(v) => Some(usize::try_from(v).map_err(|_| {
            CheckpointError::Malformed(format!("tracker open start {v} overflows usize"))
        })?),
        None => None,
    };
    let last_anomalous = cur.usize("tracker last anomalous")?;
    let quiet_run = cur.usize("tracker quiet run")?;
    let n_closed = cur.u32("closed window count")? as usize;
    let mut closed = Vec::with_capacity(n_closed.min(4096));
    for i in 0..n_closed {
        let what = format!("closed window {i}");
        closed.push(VariationWindow {
            start_tick: cur.usize(&what)?,
            end_tick: cur.usize(&what)?,
        });
    }
    Ok(MdRuntimeState {
        snapshot: MdSnapshot { values, threshold },
        stream_stds,
        ticks_seen,
        queue,
        queue_anomalous,
        rejected_streak,
        tracker: WindowTrackerState {
            hangover_ticks,
            open_start,
            last_anomalous,
            quiet_run,
            closed,
        },
    })
}

fn encode_controller(body: &mut Vec<u8>, c: &ControllerState) {
    encode_md(body, &c.md);
    body.push(match c.system_state {
        SystemState::Quiet => 0,
        SystemState::Noisy => 1,
    });
    push_len(body, c.sessions.len(), "session");
    for s in &c.sessions {
        body.push(
            u8::from(s.logged_in) | (u8::from(s.in_alert) << 1) | (u8::from(s.screensaver_on) << 2),
        );
    }
    push_len(body, c.histories.len(), "history");
    for h in &c.histories {
        push_u64(body, h.capacity as u64);
        push_f64_slice(body, &h.samples, "history sample");
        push_u64(body, h.total);
    }
    body.push(u8::from(c.rule1_done));
    push_len(body, c.lights.len(), "light detector");
    for l in &c.lights {
        push_f64(body, l.baseline);
        body.push(u8::from(l.initialized) | (u8::from(l.armed) << 1));
        push_u64(body, l.occupied_run);
        push_u64(body, l.release_run);
    }
    push_opt_u64(body, c.last_window_tick);
    push_f64(body, c.prev_t);
    push_u64(body, c.n_actions);
}

fn decode_controller(cur: &mut Cursor<'_>) -> Result<ControllerState, CheckpointError> {
    let md = decode_md(cur)?;
    let system_state = match cur.u8("system state")? {
        0 => SystemState::Quiet,
        1 => SystemState::Noisy,
        n => return Err(CheckpointError::Malformed(format!("system state tag {n} is unknown"))),
    };
    let n_sessions = cur.u32("session count")? as usize;
    let mut sessions = Vec::with_capacity(n_sessions.min(4096));
    for i in 0..n_sessions {
        let bits = cur.u8(&format!("session {i}"))?;
        if bits > 0b111 {
            return Err(CheckpointError::Malformed(format!(
                "session {i} flag byte {bits:#04x} has unknown bits"
            )));
        }
        sessions.push(SessionState {
            logged_in: bits & 1 != 0,
            in_alert: bits & 2 != 0,
            screensaver_on: bits & 4 != 0,
        });
    }
    let n_histories = cur.u32("history count")? as usize;
    let mut histories = Vec::with_capacity(n_histories.min(4096));
    for i in 0..n_histories {
        let what = format!("history {i}");
        let capacity = cur.usize(&what)?;
        let len = cur.u32(&what)? as usize;
        let samples = cur.f64_vec(len, &what)?;
        let total = cur.u64(&what)?;
        histories.push(HistoryState { capacity, samples, total });
    }
    let rule1_done = cur.flag("rule1_done")?;
    let n_lights = cur.u32("light detector count")? as usize;
    let mut lights = Vec::with_capacity(n_lights.min(4096));
    for i in 0..n_lights {
        let what = format!("light detector {i}");
        let baseline = cur.f64(&what)?;
        let bits = cur.u8(&what)?;
        if bits > 0b11 {
            return Err(CheckpointError::Malformed(format!(
                "light detector {i} flag byte {bits:#04x} has unknown bits"
            )));
        }
        lights.push(LightDetectorState {
            baseline,
            initialized: bits & 1 != 0,
            armed: bits & 2 != 0,
            occupied_run: cur.u64(&what)?,
            release_run: cur.u64(&what)?,
        });
    }
    let last_window_tick = cur.opt_u64("last window tick")?;
    let prev_t = cur.f64("prev_t")?;
    let n_actions = cur.u64("action count")?;
    Ok(ControllerState {
        md,
        system_state,
        sessions,
        histories,
        rule1_done,
        lights,
        last_window_tick,
        prev_t,
        n_actions,
    })
}

fn encode_reorder(body: &mut Vec<u8>, r: &ReorderState) {
    push_u64(body, r.next_emit);
    push_len(body, r.frontier.len(), "sender");
    for &f in &r.frontier {
        push_opt_u64(body, f);
    }
    for &m in &r.max_seq {
        match m {
            Some(v) => {
                body.push(1);
                push_u32(body, v);
            }
            None => body.push(0),
        }
    }
    for &q in &r.quarantined {
        body.push(u8::from(q));
    }
    for &w in &r.replay_seen {
        push_u64(body, w);
    }
    push_u64(body, r.duplicates);
    push_u64(body, r.late);
    push_u64(body, r.reordered);
    push_u64(body, r.replayed);
    push_u64(body, r.max_lag);
    push_len(body, r.pending.len(), "pending tick");
    for (tick, reports) in &r.pending {
        push_u64(body, *tick);
        for rep in reports {
            match rep {
                Some(values) => {
                    body.push(1);
                    push_len(body, values.len(), "pending payload value");
                    for &v in values {
                        push_f32(body, v);
                    }
                }
                None => body.push(0),
            }
        }
    }
}

fn decode_reorder(cur: &mut Cursor<'_>) -> Result<ReorderState, CheckpointError> {
    let next_emit = cur.u64("reorder next_emit")?;
    let n_senders = cur.u32("reorder sender count")? as usize;
    let mut frontier = Vec::with_capacity(n_senders.min(4096));
    for i in 0..n_senders {
        frontier.push(cur.opt_u64(&format!("frontier {i}"))?);
    }
    let mut max_seq = Vec::with_capacity(n_senders.min(4096));
    for i in 0..n_senders {
        let what = format!("max_seq {i}");
        max_seq.push(if cur.flag(&what)? { Some(cur.u32(&what)?) } else { None });
    }
    let mut quarantined = Vec::with_capacity(n_senders.min(4096));
    for i in 0..n_senders {
        quarantined.push(cur.flag(&format!("quarantine flag {i}"))?);
    }
    let mut replay_seen = Vec::with_capacity(n_senders.min(4096));
    for i in 0..n_senders {
        replay_seen.push(cur.u64(&format!("replay bitmap {i}"))?);
    }
    let duplicates = cur.u64("duplicates")?;
    let late = cur.u64("late frames")?;
    let reordered = cur.u64("reordered frames")?;
    let replayed = cur.u64("replayed frames")?;
    let max_lag = cur.u64("max watermark lag")?;
    let n_pending = cur.u32("pending tick count")? as usize;
    let mut pending = Vec::with_capacity(n_pending.min(4096));
    for i in 0..n_pending {
        let what = format!("pending tick {i}");
        let tick = cur.u64(&what)?;
        let mut reports = Vec::with_capacity(n_senders.min(4096));
        for _ in 0..n_senders {
            reports.push(if cur.flag(&what)? {
                let len = cur.u32(&what)? as usize;
                Some(cur.f32_vec(len, &what)?)
            } else {
                None
            });
        }
        pending.push((tick, reports));
    }
    Ok(ReorderState {
        next_emit,
        frontier,
        max_seq,
        quarantined,
        duplicates,
        late,
        reordered,
        replayed,
        replay_seen,
        max_lag,
        pending,
    })
}

impl EngineSnapshot {
    /// Serializes the snapshot into the version-3 binary image,
    /// stamped with the run's monotonic tick stamp.
    pub fn encode(&self, stamp: u64) -> Vec<u8> {
        let mut body = Vec::new();
        push_u32(&mut body, self.day);
        push_u64(&mut body, self.stream_pos);
        push_u64(&mut body, self.log_mark);
        push_u64(&mut body, self.events_emitted);

        push_len(&mut body, self.groups.len(), "sensor group");
        for g in &self.groups {
            push_u32(&mut body, u32::from(g.sensor));
            body.push(g.kind.tag());
            push_len(&mut body, g.positions.len(), "group position");
            for &p in &g.positions {
                push_u64(&mut body, p as u64);
            }
        }
        push_f64_slice(&mut body, &self.last_value, "last value");
        push_len(&mut body, self.last_seen.len(), "last seen");
        for &s in &self.last_seen {
            push_opt_u64(&mut body, s);
        }

        let c = &self.counters;
        for v in [
            c.frames_in,
            c.bytes_in,
            c.corrupt_crc,
            c.corrupt_framing,
            c.corrupt_unknown_sensor,
            c.frames_duplicate,
            c.frames_late,
            c.frames_reordered,
            c.ticks_processed,
            c.gap_fills,
            c.masked_stream_ticks,
            c.quarantines,
            c.recoveries,
            c.watermark_lag_max,
        ] {
            push_u64(&mut body, v);
        }
        for &kind in &ChannelKind::ALL {
            let ch = c.channel(kind);
            for v in
                [ch.frames_in, ch.gap_fills, ch.masked_stream_ticks, ch.quarantines, ch.recoveries]
            {
                push_u64(&mut body, v);
            }
        }
        for v in [
            c.frames_unauthenticated,
            c.frames_replayed,
            c.frames_rate_limited,
            c.attack_quarantines,
        ] {
            push_u64(&mut body, v);
        }

        encode_reorder(&mut body, &self.reorder);

        push_len(&mut body, self.auth_state.len(), "auth state");
        for st in &self.auth_state {
            push_u64(&mut body, st.window_start_tick);
            push_u32(&mut body, st.rejected_in_window);
            body.push(u8::from(st.quarantined));
        }

        encode_controller(&mut body, &self.controller);

        push_len(&mut body, self.kma_clocks.len(), "kma clock");
        for &clk in &self.kma_clocks {
            push_opt_f64(&mut body, clk);
        }

        let mut out = Vec::with_capacity(HEADER_LEN + body.len() + 4);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&stamp.to_le_bytes());
        assert!(
            body.len() <= u32::MAX as usize,
            "checkpoint body overflows the u32 length prefix"
        );
        push_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        let crc = crc32(&out);
        push_u32(&mut out, crc);
        out
    }

    /// Decodes one checkpoint image, returning its stamp and the
    /// snapshot. Framing and checksum are verified before any field is
    /// interpreted; structural tags (flags, FSM state) are validated
    /// here, while cross-field semantics are enforced by the
    /// `from_state`/`from_runtime_state` constructors at restore time —
    /// either way a bad image surfaces as an error, never a panic.
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`] except
    /// [`Stale`](CheckpointError::Stale),
    /// [`Incompatible`](CheckpointError::Incompatible) and
    /// [`Io`](CheckpointError::Io).
    pub fn decode(bytes: &[u8]) -> Result<(u64, EngineSnapshot), CheckpointError> {
        if bytes.len() < HEADER_LEN + 4 {
            return Err(CheckpointError::Truncated);
        }
        if bytes[..4] != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let stamp = u64::from_le_bytes([
            bytes[6], bytes[7], bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13],
        ]);
        let body_len =
            u32::from_le_bytes([bytes[14], bytes[15], bytes[16], bytes[17]]) as usize;
        let total = match HEADER_LEN.checked_add(body_len).and_then(|n| n.checked_add(4)) {
            Some(t) => t,
            None => return Err(CheckpointError::Truncated),
        };
        if bytes.len() < total {
            return Err(CheckpointError::Truncated);
        }
        if bytes.len() > total {
            return Err(CheckpointError::TrailingBytes);
        }
        let computed = crc32(&bytes[..total - 4]);
        let carried = u32::from_le_bytes([
            bytes[total - 4],
            bytes[total - 3],
            bytes[total - 2],
            bytes[total - 1],
        ]);
        if computed != carried {
            return Err(CheckpointError::BadChecksum { computed, carried });
        }

        let mut cur = Cursor::new(&bytes[HEADER_LEN..total - 4]);
        let day = cur.u32("day")?;
        let stream_pos = cur.u64("stream position")?;
        let log_mark = cur.u64("log mark")?;
        let events_emitted = cur.u64("events emitted")?;

        let n_groups = cur.u32("sensor group count")? as usize;
        let mut groups = Vec::with_capacity(n_groups.min(4096));
        for i in 0..n_groups {
            let what = format!("sensor group {i}");
            let sensor = cur.u32(&what)?;
            let sensor = u16::try_from(sensor).map_err(|_| {
                CheckpointError::Malformed(format!("sensor id {sensor} overflows u16"))
            })?;
            let tag = cur.u8(&what)?;
            let kind = ChannelKind::from_tag(tag).ok_or_else(|| {
                CheckpointError::Malformed(format!("sensor group {i} channel tag {tag} is unknown"))
            })?;
            let n_pos = cur.u32(&what)? as usize;
            let mut positions = Vec::with_capacity(n_pos.min(4096));
            for _ in 0..n_pos {
                positions.push(cur.usize(&what)?);
            }
            groups.push(SensorGroup { sensor, kind, positions });
        }
        let n_values = cur.u32("last value count")? as usize;
        let last_value = cur.f64_vec(n_values, "last values")?;
        let n_seen = cur.u32("last seen count")? as usize;
        let mut last_seen = Vec::with_capacity(n_seen.min(4096));
        for i in 0..n_seen {
            last_seen.push(cur.opt_u64(&format!("last seen {i}"))?);
        }

        let mut counters = RuntimeCounters::default();
        for slot in [
            &mut counters.frames_in,
            &mut counters.bytes_in,
            &mut counters.corrupt_crc,
            &mut counters.corrupt_framing,
            &mut counters.corrupt_unknown_sensor,
            &mut counters.frames_duplicate,
            &mut counters.frames_late,
            &mut counters.frames_reordered,
            &mut counters.ticks_processed,
            &mut counters.gap_fills,
            &mut counters.masked_stream_ticks,
            &mut counters.quarantines,
            &mut counters.recoveries,
            &mut counters.watermark_lag_max,
        ] {
            *slot = cur.u64("counter")?;
        }
        for &kind in &ChannelKind::ALL {
            let ch = counters.channel_mut(kind);
            for slot in [
                &mut ch.frames_in,
                &mut ch.gap_fills,
                &mut ch.masked_stream_ticks,
                &mut ch.quarantines,
                &mut ch.recoveries,
            ] {
                *slot = cur.u64("channel counter")?;
            }
        }
        for slot in [
            &mut counters.frames_unauthenticated,
            &mut counters.frames_replayed,
            &mut counters.frames_rate_limited,
            &mut counters.attack_quarantines,
        ] {
            *slot = cur.u64("auth counter")?;
        }

        let reorder = decode_reorder(&mut cur)?;

        let n_auth = cur.u32("auth state count")? as usize;
        let mut auth_state = Vec::with_capacity(n_auth.min(4096));
        for i in 0..n_auth {
            let what = format!("auth state {i}");
            auth_state.push(SensorAuthState {
                window_start_tick: cur.u64(&what)?,
                rejected_in_window: cur.u32(&what)?,
                quarantined: cur.flag(&what)?,
            });
        }

        let controller = decode_controller(&mut cur)?;

        let n_clocks = cur.u32("kma clock count")? as usize;
        let mut kma_clocks = Vec::with_capacity(n_clocks.min(4096));
        for i in 0..n_clocks {
            kma_clocks.push(cur.opt_f64(&format!("kma clock {i}"))?);
        }

        if !cur.done() {
            return Err(CheckpointError::Malformed("unconsumed bytes inside body".to_string()));
        }

        Ok((
            stamp,
            EngineSnapshot {
                day,
                stream_pos,
                log_mark,
                events_emitted,
                groups,
                last_value,
                last_seen,
                counters,
                reorder,
                auth_state,
                controller,
                kma_clocks,
            },
        ))
    }
}

/// How [`CheckpointStore::save`] handles transient write failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts after the first failure (0 = fail immediately).
    pub max_retries: u32,
    /// Base sleep between attempts; attempt `k` sleeps `k × backoff`.
    pub backoff: std::time::Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_retries: 3, backoff: std::time::Duration::from_millis(25) }
    }
}

/// What [`CheckpointStore::load_latest`] found on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadOutcome {
    /// The newest checkpoint that decoded cleanly, with its stamp —
    /// `None` means cold start.
    pub snapshot: Option<(u64, EngineSnapshot)>,
    /// Newer files that were skipped, with why each was rejected.
    pub rejected: Vec<(PathBuf, CheckpointError)>,
}

/// A directory of stamped checkpoint files with atomic writes,
/// staleness enforcement, bounded retention, and (for tests and the
/// recovery experiment) deterministic fault injection.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    last_stamp: Option<u64>,
    faults: Option<FaultInjector>,
    retry: RetryPolicy,
}

fn checkpoint_file_name(stamp: u64) -> String {
    // Zero-padded to the full u64 width so lexicographic filename
    // order equals numeric stamp order.
    format!("ckpt-{stamp:020}.fwcp")
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the directory cannot be created.
    pub fn open(dir: &Path) -> Result<CheckpointStore, CheckpointError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| CheckpointError::Io(format!("creating {}: {e}", dir.display())))?;
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            last_stamp: None,
            faults: None,
            retry: RetryPolicy::default(),
        })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Installs a deterministic fault injector consulted on every
    /// save.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// What the installed injector has done so far, if one is set.
    pub fn fault_log(&self) -> Option<FaultLog> {
        self.faults.as_ref().map(FaultInjector::log)
    }

    /// Overrides the transient-failure retry policy.
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The newest stamp this store has saved or loaded.
    pub fn last_stamp(&self) -> Option<u64> {
        self.last_stamp
    }

    /// Atomically persists one snapshot under a strictly increasing
    /// stamp and prunes everything but the newest [`RETAIN`] files.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Stale`] for a non-increasing stamp;
    /// [`CheckpointError::Io`] when the write (after retries) fails.
    pub fn save(&mut self, stamp: u64, snapshot: &EngineSnapshot) -> Result<PathBuf, CheckpointError> {
        if let Some(newest) = self.last_stamp {
            if stamp <= newest {
                return Err(CheckpointError::Stale { stamp, newest });
            }
        }
        let bytes = snapshot.encode(stamp);
        let fault = match self.faults.as_mut() {
            Some(inj) => inj.next_save(bytes.len()),
            None => WriteFault::None,
        };
        // Torn/bit-flip faults silently corrupt what reaches the disk;
        // the writer has no way to notice (that is the point — load
        // must catch it).
        let disk_bytes = FaultInjector::corrupt(fault, &bytes);
        let name = checkpoint_file_name(stamp);
        let tmp = self.dir.join(format!(".{name}.tmp"));
        let path = self.dir.join(&name);
        let mut attempt: u32 = 0;
        loop {
            let result = if fault == WriteFault::Transient && attempt == 0 {
                Err("injected transient write error".to_string())
            } else {
                std::fs::write(&tmp, &disk_bytes)
                    .and_then(|()| std::fs::rename(&tmp, &path))
                    .map_err(|e| e.to_string())
            };
            match result {
                Ok(()) => break,
                Err(_) if attempt < self.retry.max_retries => {
                    attempt += 1;
                    std::thread::sleep(self.retry.backoff * attempt);
                }
                Err(e) => {
                    return Err(CheckpointError::Io(format!(
                        "writing {} (after {attempt} retries): {e}",
                        path.display()
                    )))
                }
            }
        }
        self.last_stamp = Some(stamp);
        self.prune();
        Ok(path)
    }

    /// Best-effort retention: failing to delete an old checkpoint must
    /// not fail the save that just succeeded.
    fn prune(&self) {
        let mut names = self.checkpoint_names().unwrap_or_default();
        names.sort();
        while names.len() > RETAIN {
            let victim = names.remove(0);
            let _ = std::fs::remove_file(self.dir.join(victim));
        }
    }

    fn checkpoint_names(&self) -> Result<Vec<String>, CheckpointError> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| CheckpointError::Io(format!("listing {}: {e}", self.dir.display())))?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry
                .map_err(|e| CheckpointError::Io(format!("listing {}: {e}", self.dir.display())))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("ckpt-") && name.ends_with(".fwcp") {
                names.push(name);
            }
        }
        Ok(names)
    }

    /// Walks the on-disk checkpoints newest-first and returns the
    /// first that decodes cleanly, reporting every newer file it had
    /// to skip. No valid checkpoint at all means cold start
    /// (`snapshot: None`) — corruption degrades, it never aborts.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] only when the directory itself cannot
    /// be listed; unreadable or corrupt *files* land in
    /// [`LoadOutcome::rejected`] instead.
    pub fn load_latest(&mut self) -> Result<LoadOutcome, CheckpointError> {
        let mut names = self.checkpoint_names()?;
        names.sort();
        names.reverse();
        let mut rejected = Vec::new();
        for name in names {
            let path = self.dir.join(&name);
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    rejected.push((path, CheckpointError::Io(format!("reading: {e}"))));
                    continue;
                }
            };
            match EngineSnapshot::decode(&bytes) {
                Ok((stamp, snapshot)) => {
                    self.last_stamp = Some(self.last_stamp.unwrap_or(0).max(stamp));
                    return Ok(LoadOutcome { snapshot: Some((stamp, snapshot)), rejected });
                }
                Err(e) => rejected.push((path, e)),
            }
        }
        Ok(LoadOutcome { snapshot: None, rejected })
    }
}

/// Decides *when* to checkpoint: every `every` processed ticks.
#[derive(Debug, Clone, Copy)]
pub struct Checkpointer {
    every: u64,
    next_at: u64,
}

impl Checkpointer {
    /// Checkpoints are due each time `every` more ticks have been
    /// processed (clamped to at least 1).
    pub fn new(every: u64) -> Checkpointer {
        let every = every.max(1);
        Checkpointer { every, next_at: every }
    }

    /// Whether a checkpoint is due at `ticks_processed`.
    pub fn due(&self, ticks_processed: u64) -> bool {
        ticks_processed >= self.next_at
    }

    /// Records that a checkpoint was taken at `ticks_processed`.
    pub fn advance(&mut self, ticks_processed: u64) {
        while self.next_at <= ticks_processed {
            self.next_at += self.every;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    /// A unique scratch directory per test invocation.
    fn scratch_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("fadewich-ckpt-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A small but fully populated snapshot exercising every branch of
    /// the codec: Some/None options, open window, quarantined sender,
    /// pending payloads with holes, and a mixed-channel layout with a
    /// live light-detector bank.
    fn sample_snapshot() -> EngineSnapshot {
        use crate::counters::ChannelCounters;
        let mut counters = RuntimeCounters {
            frames_in: 84,
            bytes_in: 2000,
            frames_duplicate: 1,
            ticks_processed: 42,
            gap_fills: 3,
            masked_stream_ticks: 2,
            quarantines: 1,
            frames_unauthenticated: 5,
            frames_replayed: 2,
            frames_rate_limited: 1,
            attack_quarantines: 1,
            watermark_lag_max: 4,
            ..Default::default()
        };
        *counters.channel_mut(ChannelKind::Rssi) = ChannelCounters {
            frames_in: 84,
            gap_fills: 3,
            masked_stream_ticks: 2,
            quarantines: 1,
            recoveries: 0,
        };
        *counters.channel_mut(ChannelKind::AmbientLight) =
            ChannelCounters { frames_in: 42, gap_fills: 1, ..Default::default() };
        EngineSnapshot {
            day: 1,
            stream_pos: 42,
            log_mark: 1234,
            events_emitted: 7,
            groups: vec![
                SensorGroup::rssi(0, vec![0, 1]),
                SensorGroup { sensor: 0, kind: ChannelKind::AmbientLight, positions: vec![2] },
            ],
            last_value: vec![-50.0, -49.5, 410.25],
            last_seen: vec![Some(41), None, Some(40)],
            counters,
            reorder: ReorderState {
                next_emit: 42,
                frontier: vec![Some(43), Some(41)],
                max_seq: vec![Some(43), None],
                quarantined: vec![false, true],
                duplicates: 1,
                late: 2,
                reordered: 3,
                replayed: 2,
                replay_seen: vec![0b1011, 0],
                max_lag: 4,
                pending: vec![
                    (42, vec![Some(vec![-50.0, -49.0]), None]),
                    (43, vec![None, Some(vec![-48.5])]),
                ],
            },
            auth_state: vec![
                SensorAuthState { window_start_tick: 0, rejected_in_window: 3, quarantined: false },
                SensorAuthState { window_start_tick: 64, rejected_in_window: 17, quarantined: true },
            ],
            controller: ControllerState {
                md: MdRuntimeState {
                    snapshot: MdSnapshot { values: vec![1.0, 2.0], threshold: Some(4.0) },
                    stream_stds: vec![
                        RollingStdState {
                            capacity: 4,
                            samples: vec![1.0, 2.0],
                            offset: 1.5,
                            sum: 0.5,
                            sum_sq: 2.0,
                            pushes: 6,
                            non_finite: 0,
                        };
                        2
                    ],
                    ticks_seen: 42,
                    queue: vec![3.0, 3.5],
                    queue_anomalous: 1,
                    rejected_streak: 0,
                    tracker: WindowTrackerState {
                        hangover_ticks: 15,
                        open_start: Some(30),
                        last_anomalous: 40,
                        quiet_run: 2,
                        closed: vec![VariationWindow { start_tick: 3, end_tick: 9 }],
                    },
                },
                system_state: SystemState::Noisy,
                sessions: vec![
                    SessionState { logged_in: true, in_alert: true, screensaver_on: false },
                    SessionState { logged_in: false, in_alert: false, screensaver_on: false },
                ],
                histories: vec![
                    HistoryState { capacity: 8, samples: vec![-50.0; 8], total: 42 };
                    2
                ],
                rule1_done: true,
                lights: vec![LightDetectorState {
                    baseline: 411.5,
                    initialized: true,
                    armed: true,
                    occupied_run: 120,
                    release_run: 2,
                }],
                last_window_tick: Some(38),
                prev_t: 8.2,
                n_actions: 5,
            },
            kma_clocks: vec![Some(7.5), None],
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let snap = sample_snapshot();
        let bytes = snap.encode(777);
        let (stamp, back) = EngineSnapshot::decode(&bytes).unwrap();
        assert_eq!(stamp, 777);
        assert_eq!(back, snap);
        // Canonical encoding.
        assert_eq!(back.encode(777), bytes);
    }

    #[test]
    fn framing_errors() {
        let bytes = sample_snapshot().encode(9);
        assert_eq!(EngineSnapshot::decode(&bytes[..3]), Err(CheckpointError::Truncated));
        assert_eq!(
            EngineSnapshot::decode(&bytes[..bytes.len() - 1]),
            Err(CheckpointError::Truncated)
        );
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(EngineSnapshot::decode(&long), Err(CheckpointError::TrailingBytes));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(EngineSnapshot::decode(&bad), Err(CheckpointError::BadMagic));
        let mut vers = bytes.clone();
        vers[4] = 9;
        assert_eq!(EngineSnapshot::decode(&vers), Err(CheckpointError::UnsupportedVersion(9)));
        let mut flip = bytes;
        flip[HEADER_LEN + 20] ^= 0x04;
        assert!(matches!(
            EngineSnapshot::decode(&flip),
            Err(CheckpointError::BadChecksum { .. })
        ));
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        // The acceptance property: no single-bit corruption anywhere in
        // the image — header, stamp, length, body, or CRC — survives
        // decoding, and none panics.
        let bytes = sample_snapshot().encode(31);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    EngineSnapshot::decode(&corrupt).is_err(),
                    "flip of byte {byte} bit {bit} was accepted"
                );
            }
        }
    }

    #[test]
    fn every_truncation_prefix_is_rejected() {
        let bytes = sample_snapshot().encode(31);
        for len in 0..bytes.len() {
            assert!(
                EngineSnapshot::decode(&bytes[..len]).is_err(),
                "prefix of {len} bytes was accepted"
            );
        }
    }

    #[test]
    fn store_save_load_round_trip_with_retention() {
        let dir = scratch_dir("retention");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let snap = sample_snapshot();
        for stamp in [10, 20, 30] {
            store.save(stamp, &snap).unwrap();
        }
        let names = store.checkpoint_names().unwrap();
        assert_eq!(names.len(), RETAIN, "retention kept {names:?}");
        let out = store.load_latest().unwrap();
        let (stamp, loaded) = out.snapshot.unwrap();
        assert_eq!(stamp, 30);
        assert_eq!(loaded, snap);
        assert!(out.rejected.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_stamps_rejected() {
        let dir = scratch_dir("stale");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let snap = sample_snapshot();
        store.save(5, &snap).unwrap();
        assert_eq!(
            store.save(5, &snap),
            Err(CheckpointError::Stale { stamp: 5, newest: 5 })
        );
        assert_eq!(
            store.save(4, &snap),
            Err(CheckpointError::Stale { stamp: 4, newest: 5 })
        );
        // A reopened store learns the newest stamp from disk.
        let mut reopened = CheckpointStore::open(&dir).unwrap();
        reopened.load_latest().unwrap();
        assert_eq!(
            reopened.save(3, &snap),
            Err(CheckpointError::Stale { stamp: 3, newest: 5 })
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = scratch_dir("fallback");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let snap = sample_snapshot();
        store.save(1, &snap).unwrap();
        store.save(2, &snap).unwrap();
        // Corrupt the newest file on disk.
        let newest = dir.join(checkpoint_file_name(2));
        let mut bytes = std::fs::read(&newest).unwrap();
        bytes[HEADER_LEN + 5] ^= 0x40;
        std::fs::write(&newest, &bytes).unwrap();

        let out = store.load_latest().unwrap();
        let (stamp, loaded) = out.snapshot.unwrap();
        assert_eq!(stamp, 1, "should fall back to the older checkpoint");
        assert_eq!(loaded, snap);
        assert_eq!(out.rejected.len(), 1);
        assert!(matches!(out.rejected[0].1, CheckpointError::BadChecksum { .. }));

        // Corrupt the older one too: clean cold start, both reported.
        let older = dir.join(checkpoint_file_name(1));
        std::fs::write(&older, b"FWCPgarbage").unwrap();
        let out = store.load_latest().unwrap();
        assert!(out.snapshot.is_none());
        assert_eq!(out.rejected.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_is_skipped_at_load() {
        use crate::fault::FaultPlan;
        let dir = scratch_dir("torn");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.set_fault_injector(FaultInjector::new(
            FaultPlan { torn_saves: vec![1], ..FaultPlan::none() },
            11,
        ));
        let snap = sample_snapshot();
        store.save(1, &snap).unwrap();
        store.save(2, &snap).unwrap(); // torn, but "succeeds"
        assert_eq!(store.fault_log().unwrap().torn, 1);
        let out = store.load_latest().unwrap();
        assert_eq!(out.snapshot.unwrap().0, 1);
        assert_eq!(out.rejected.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_error_retries_then_succeeds() {
        use crate::fault::FaultPlan;
        let dir = scratch_dir("transient");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.set_retry(RetryPolicy {
            max_retries: 2,
            backoff: std::time::Duration::from_millis(1),
        });
        store.set_fault_injector(FaultInjector::new(
            FaultPlan { transient_saves: vec![0], ..FaultPlan::none() },
            11,
        ));
        let snap = sample_snapshot();
        store.save(1, &snap).unwrap();
        let out = store.load_latest().unwrap();
        assert_eq!(out.snapshot.unwrap().0, 1);
        assert!(out.rejected.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_error_without_retries_fails_visibly() {
        use crate::fault::FaultPlan;
        let dir = scratch_dir("transient-hard");
        let mut store = CheckpointStore::open(&dir).unwrap();
        store.set_retry(RetryPolicy {
            max_retries: 0,
            backoff: std::time::Duration::from_millis(1),
        });
        store.set_fault_injector(FaultInjector::new(
            FaultPlan { transient_saves: vec![0], ..FaultPlan::none() },
            11,
        ));
        let snap = sample_snapshot();
        assert!(matches!(store.save(1, &snap), Err(CheckpointError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpointer_cadence() {
        let mut ck = Checkpointer::new(10);
        assert!(!ck.due(9));
        assert!(ck.due(10));
        assert!(ck.due(23));
        ck.advance(23);
        assert!(!ck.due(29));
        assert!(ck.due(30));
        // Zero clamps to every tick.
        let ck = Checkpointer::new(0);
        assert!(ck.due(1));
    }

    #[test]
    fn error_displays_are_descriptive() {
        for e in [
            CheckpointError::Truncated,
            CheckpointError::BadMagic,
            CheckpointError::UnsupportedVersion(7),
            CheckpointError::TrailingBytes,
            CheckpointError::BadChecksum { computed: 1, carried: 2 },
            CheckpointError::Malformed("x".to_string()),
            CheckpointError::Stale { stamp: 1, newest: 2 },
            CheckpointError::Incompatible("y".to_string()),
            CheckpointError::Io("z".to_string()),
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
