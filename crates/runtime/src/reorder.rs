//! Watermark-based stream reassembly.
//!
//! Frames arrive out of order, duplicated, late or not at all. The
//! [`ReorderBuffer`] turns that mess back into a strictly in-order
//! sequence of per-tick bundles, using per-sender *frontiers* (highest
//! tick seen from each sender) and a configurable jitter bound:
//!
//! - tick `T` **closes** once every live sender has either delivered
//!   its frame for `T` or advanced its frontier to `T + jitter_ticks`
//!   (the transport's reordering guarantee: a frame can be at most
//!   `jitter_ticks` behind the sender's newest);
//! - a sender whose frontier lags the global frontier by more than
//!   `quarantine_after_ticks` is **quarantined**: the buffer stops
//!   waiting for it, so one dead sensor cannot stall the watermark. A
//!   fresh frame from a quarantined sender recovers it. The deadline
//!   defaults to the config value but can be tightened or loosened per
//!   sender ([`ReorderBuffer::set_sender_quarantine`]) — e.g. a slow
//!   ambient-light sensor tolerating more silence than an RSSI link.
//!
//! The buffer reports duplicates, late frames and sequence-number
//! regressions, plus the current watermark lag — everything the engine
//! surfaces in its runtime counters.
//!
//! # Anti-replay windows
//!
//! When the engine runs authenticated, a captured-and-replayed frame
//! carries a *valid* MAC — the replay defense is sequence-space, not
//! cryptographic. [`ReorderBuffer::set_anti_replay`] arms a classic
//! IPsec/DTLS-style sliding window per sender: a 64-bit bitmap over
//! the sequence numbers at and below the sender's high-water mark.
//! A frame whose seq was already accepted (or fell off the 64-seq
//! window) returns [`PushOutcome::Replayed`] and touches **nothing** —
//! not the frontier, not the quarantine state — so replayed captures
//! can neither advance the watermark nor resurrect a quarantined
//! sender. Like the per-sender quarantine deadline, the arm/disarm
//! flag is configuration (the engine reapplies it on restore); the
//! bitmaps themselves are state and checkpoint with the buffer.

use std::collections::BTreeMap;

/// Reassembly parameters.
#[derive(Debug, Clone, Copy)]
pub struct ReorderConfig {
    /// Number of senders (sensors) feeding the buffer.
    pub n_senders: usize,
    /// Maximum reordering the transport may introduce, in ticks: a
    /// frame for tick `T` arrives before any frame with tick
    /// `≥ T + jitter_ticks` from the same sender.
    pub jitter_ticks: u64,
    /// A sender lagging the global frontier by more than this many
    /// ticks is quarantined (the default for every sender; see
    /// [`ReorderBuffer::set_sender_quarantine`] for per-sender
    /// overrides).
    pub quarantine_after_ticks: u64,
}

/// One closed tick: per-sender payloads, `None` where a sender's frame
/// never arrived.
#[derive(Debug, Clone, PartialEq)]
pub struct TickBundle {
    /// The tick that closed.
    pub tick: u64,
    /// Payloads indexed by sender.
    pub reports: Vec<Option<Vec<f32>>>,
}

/// What [`ReorderBuffer::push`] did with a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Accepted and buffered.
    Buffered,
    /// A frame for this (sender, tick) was already buffered or emitted.
    Duplicate,
    /// The tick has already been emitted; the frame is dropped.
    Late,
    /// Anti-replay is armed and this sequence number was already
    /// accepted (or fell off the replay window); the frame is dropped
    /// without touching frontier or quarantine state.
    Replayed,
}

/// Sender liveness transitions, in occurrence order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderEvent {
    /// The sender went silent past the deadline.
    Quarantined {
        /// The affected sender.
        sender: usize,
        /// Global frontier when the decision was made.
        at_tick: u64,
    },
    /// A quarantined sender delivered a fresh frame.
    Recovered {
        /// The affected sender.
        sender: usize,
        /// The fresh frame's tick.
        at_tick: u64,
    },
}

/// The complete reassembly state for crash-safe checkpointing: the
/// watermark, per-sender frontiers/sequence highs/quarantine flags,
/// the cumulative counters, and every buffered-but-unemitted payload.
/// Pending liveness *events* are deliberately absent: capture only at
/// delivery boundaries, after [`ReorderBuffer::take_events`] has
/// drained them into the engine's log.
#[derive(Debug, Clone, PartialEq)]
pub struct ReorderState {
    /// Next tick to emit (the watermark).
    pub next_emit: u64,
    /// Highest tick seen per sender.
    pub frontier: Vec<Option<u64>>,
    /// Highest sequence number seen per sender.
    pub max_seq: Vec<Option<u32>>,
    /// Per-sender quarantine flags.
    pub quarantined: Vec<bool>,
    /// Cumulative duplicate frames.
    pub duplicates: u64,
    /// Cumulative late frames.
    pub late: u64,
    /// Cumulative sequence regressions.
    pub reordered: u64,
    /// Cumulative frames rejected by the anti-replay window.
    pub replayed: u64,
    /// Per-sender anti-replay bitmaps (bit `d` set ⇔ seq `max_seq − d`
    /// was accepted). All zeros while anti-replay is disarmed.
    pub replay_seen: Vec<u64>,
    /// Largest watermark lag ever observed.
    pub max_lag: u64,
    /// Buffered payloads, ticks strictly ascending, all `≥ next_emit`.
    pub pending: Vec<(u64, Vec<Option<Vec<f32>>>)>,
}

/// The reorder buffer. See the module docs for the watermark rules.
#[derive(Debug, Clone)]
pub struct ReorderBuffer {
    cfg: ReorderConfig,
    /// Buffered payloads per tick (sparse; only ticks ≥ `next_emit`).
    pending: BTreeMap<u64, Vec<Option<Vec<f32>>>>,
    /// Next tick to emit.
    next_emit: u64,
    /// Highest tick seen per sender (`None` before its first frame).
    frontier: Vec<Option<u64>>,
    /// Highest sequence number seen per sender.
    max_seq: Vec<Option<u32>>,
    quarantined: Vec<bool>,
    /// Per-sender quarantine deadlines; config-derived, not part of
    /// [`ReorderState`] (the engine reapplies overrides on restore).
    thresholds: Vec<u64>,
    /// Whether the sliding anti-replay window is armed; config-derived
    /// like `thresholds` (the engine reapplies it on restore).
    anti_replay: bool,
    /// Per-sender anti-replay bitmaps (state; see [`ReorderState`]).
    replay_seen: Vec<u64>,
    events: Vec<SenderEvent>,
    duplicates: u64,
    late: u64,
    reordered: u64,
    replayed: u64,
    max_lag: u64,
}

impl ReorderBuffer {
    /// Creates an empty buffer.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_senders == 0`.
    pub fn new(cfg: ReorderConfig) -> ReorderBuffer {
        assert!(cfg.n_senders > 0, "need at least one sender");
        ReorderBuffer {
            pending: BTreeMap::new(),
            next_emit: 0,
            frontier: vec![None; cfg.n_senders],
            max_seq: vec![None; cfg.n_senders],
            quarantined: vec![false; cfg.n_senders],
            thresholds: vec![cfg.quarantine_after_ticks; cfg.n_senders],
            anti_replay: false,
            replay_seen: vec![0; cfg.n_senders],
            events: Vec::new(),
            duplicates: 0,
            late: 0,
            reordered: 0,
            replayed: 0,
            max_lag: 0,
            cfg,
        }
    }

    /// Arms (or disarms) the sliding anti-replay window. Like the
    /// per-sender quarantine deadline this is configuration, not
    /// checkpointable state — the engine reapplies it on restore. The
    /// bitmaps keep accumulating across disarm/re-arm.
    pub fn set_anti_replay(&mut self, armed: bool) {
        self.anti_replay = armed;
    }

    /// Whether the anti-replay window is armed.
    pub fn anti_replay(&self) -> bool {
        self.anti_replay
    }

    /// Sliding-window replay check: returns `true` when `seq` was
    /// already accepted from `sender` (or is older than the 64-seq
    /// window); otherwise records it and returns `false`.
    fn is_replay(&mut self, sender: usize, seq: u32) -> bool {
        let bitmap = &mut self.replay_seen[sender];
        match self.max_seq[sender] {
            None => {
                *bitmap = 1;
                false
            }
            Some(m) if seq > m => {
                let shift = u64::from(seq - m);
                *bitmap = if shift >= 64 { 0 } else { *bitmap << shift };
                *bitmap |= 1;
                false
            }
            Some(m) => {
                let diff = u64::from(m - seq);
                if diff >= 64 {
                    return true;
                }
                let bit = 1u64 << diff;
                if *bitmap & bit != 0 {
                    return true;
                }
                *bitmap |= bit;
                false
            }
        }
    }

    /// Offers one decoded frame.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is out of range.
    pub fn push(&mut self, sender: usize, seq: u32, tick: u64, values: Vec<f32>) -> PushOutcome {
        assert!(sender < self.cfg.n_senders, "sender out of range");
        if self.anti_replay && self.is_replay(sender, seq) {
            // Rejected before frontier/quarantine updates: a replayed
            // capture must not advance the watermark or recover a
            // quarantined sender.
            self.replayed += 1;
            return PushOutcome::Replayed;
        }
        match self.max_seq[sender] {
            Some(m) if seq < m => self.reordered += 1,
            _ => self.max_seq[sender] = Some(seq.max(self.max_seq[sender].unwrap_or(0))),
        }
        if self.frontier[sender].map_or(true, |f| tick > f) {
            self.frontier[sender] = Some(tick);
        }
        if self.quarantined[sender] {
            self.quarantined[sender] = false;
            self.events.push(SenderEvent::Recovered { sender, at_tick: tick });
        }
        if tick < self.next_emit {
            self.late += 1;
            return PushOutcome::Late;
        }
        let slot = &mut self
            .pending
            .entry(tick)
            .or_insert_with(|| vec![None; self.cfg.n_senders])[sender];
        if slot.is_some() {
            self.duplicates += 1;
            return PushOutcome::Duplicate;
        }
        *slot = Some(values);
        PushOutcome::Buffered
    }

    /// Highest tick seen from any sender.
    pub fn global_frontier(&self) -> Option<u64> {
        self.frontier.iter().flatten().copied().max()
    }

    /// Ticks between the global frontier and the next emission — how
    /// far reassembly trails ingestion right now.
    pub fn watermark_lag(&self) -> u64 {
        self.global_frontier().map_or(0, |g| (g + 1).saturating_sub(self.next_emit))
    }

    /// Largest watermark lag ever observed by [`ReorderBuffer::poll`].
    pub fn max_watermark_lag(&self) -> u64 {
        self.max_lag
    }

    fn refresh_quarantine(&mut self) {
        let Some(global) = self.global_frontier() else { return };
        for sender in 0..self.cfg.n_senders {
            if self.quarantined[sender] {
                continue;
            }
            let lag = match self.frontier[sender] {
                Some(f) => global.saturating_sub(f),
                // Never heard from: lag measured from the stream start.
                None => global + 1,
            };
            if lag > self.thresholds[sender] {
                self.quarantined[sender] = true;
                self.events.push(SenderEvent::Quarantined { sender, at_tick: global });
            }
        }
    }

    /// Whether `sender` is currently quarantined.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is out of range.
    pub fn is_quarantined(&self, sender: usize) -> bool {
        self.quarantined[sender]
    }

    /// Overrides one sender's quarantine deadline (ticks of silence
    /// tolerated past the global frontier). The override is part of
    /// the configuration, not the checkpointable state: a restored
    /// buffer starts from the config default and the engine reapplies
    /// per-channel overrides.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is out of range.
    pub fn set_sender_quarantine(&mut self, sender: usize, ticks: u64) {
        self.thresholds[sender] = ticks;
    }

    /// The quarantine deadline currently applied to `sender`.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is out of range.
    pub fn sender_quarantine(&self, sender: usize) -> u64 {
        self.thresholds[sender]
    }

    /// Drains liveness transitions recorded since the last call.
    pub fn take_events(&mut self) -> Vec<SenderEvent> {
        std::mem::take(&mut self.events)
    }

    /// Cumulative (duplicates, late frames, sequence regressions).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.duplicates, self.late, self.reordered)
    }

    /// Cumulative frames rejected by the anti-replay window.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    fn closeable(&self, tick: u64) -> bool {
        let bundle = self.pending.get(&tick);
        (0..self.cfg.n_senders).all(|s| {
            self.quarantined[s]
                || bundle.is_some_and(|b| b[s].is_some())
                || self.frontier[s].is_some_and(|f| f >= tick + self.cfg.jitter_ticks)
        })
    }

    /// Emits every tick the watermark has closed, in order.
    pub fn poll(&mut self) -> Vec<TickBundle> {
        self.refresh_quarantine();
        self.max_lag = self.max_lag.max(self.watermark_lag());
        let mut out = Vec::new();
        let Some(global) = self.global_frontier() else { return out };
        while self.next_emit <= global && self.closeable(self.next_emit) {
            let reports = self
                .pending
                .remove(&self.next_emit)
                .unwrap_or_else(|| vec![None; self.cfg.n_senders]);
            out.push(TickBundle { tick: self.next_emit, reports });
            self.next_emit += 1;
        }
        out
    }

    /// Exports the full reassembly state for checkpointing. Call only
    /// after [`ReorderBuffer::take_events`] has drained pending
    /// liveness events — they are not part of the state (see
    /// [`ReorderState`]).
    pub fn state(&self) -> ReorderState {
        debug_assert!(self.events.is_empty(), "capture after take_events");
        ReorderState {
            next_emit: self.next_emit,
            frontier: self.frontier.clone(),
            max_seq: self.max_seq.clone(),
            quarantined: self.quarantined.clone(),
            duplicates: self.duplicates,
            late: self.late,
            reordered: self.reordered,
            replayed: self.replayed,
            replay_seen: self.replay_seen.clone(),
            max_lag: self.max_lag,
            pending: self.pending.iter().map(|(&t, b)| (t, b.clone())).collect(),
        }
    }

    /// Rebuilds a buffer from an exported state. Subsequent pushes and
    /// polls behave identically to the buffer the state was captured
    /// from.
    ///
    /// # Errors
    ///
    /// Returns a description when the state disagrees with `cfg`
    /// (per-sender vector lengths) or is internally inconsistent
    /// (pending ticks unsorted, behind the watermark, or with the wrong
    /// report width).
    pub fn from_state(cfg: ReorderConfig, state: &ReorderState) -> Result<ReorderBuffer, String> {
        if cfg.n_senders == 0 {
            return Err("need at least one sender".to_string());
        }
        for (name, len) in [
            ("frontier", state.frontier.len()),
            ("max_seq", state.max_seq.len()),
            ("quarantined", state.quarantined.len()),
            ("replay_seen", state.replay_seen.len()),
        ] {
            if len != cfg.n_senders {
                return Err(format!(
                    "{name} covers {len} senders but the layout has {}",
                    cfg.n_senders
                ));
            }
        }
        let mut pending = BTreeMap::new();
        let mut prev: Option<u64> = None;
        for (tick, reports) in &state.pending {
            if prev.is_some_and(|p| *tick <= p) {
                return Err(format!("pending ticks not strictly ascending at {tick}"));
            }
            prev = Some(*tick);
            if *tick < state.next_emit {
                return Err(format!(
                    "pending tick {tick} is behind the watermark {}",
                    state.next_emit
                ));
            }
            if reports.len() != cfg.n_senders {
                return Err(format!(
                    "pending tick {tick} carries {} reports for {} senders",
                    reports.len(),
                    cfg.n_senders
                ));
            }
            pending.insert(*tick, reports.clone());
        }
        Ok(ReorderBuffer {
            pending,
            next_emit: state.next_emit,
            frontier: state.frontier.clone(),
            max_seq: state.max_seq.clone(),
            quarantined: state.quarantined.clone(),
            thresholds: vec![cfg.quarantine_after_ticks; cfg.n_senders],
            anti_replay: false,
            replay_seen: state.replay_seen.clone(),
            events: Vec::new(),
            duplicates: state.duplicates,
            late: state.late,
            reordered: state.reordered,
            replayed: state.replayed,
            max_lag: state.max_lag,
            cfg,
        })
    }

    /// End-of-stream: emits everything still buffered, in order, with
    /// `None` for frames that never arrived.
    pub fn flush(&mut self) -> Vec<TickBundle> {
        let mut out = self.poll();
        let Some(last) = self.pending.keys().next_back().copied().or(self.global_frontier())
        else {
            return out;
        };
        while self.next_emit <= last {
            let reports = self
                .pending
                .remove(&self.next_emit)
                .unwrap_or_else(|| vec![None; self.cfg.n_senders]);
            out.push(TickBundle { tick: self.next_emit, reports });
            self.next_emit += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, jitter: u64) -> ReorderConfig {
        ReorderConfig { n_senders: n, jitter_ticks: jitter, quarantine_after_ticks: 1000 }
    }

    fn payload(x: f32) -> Vec<f32> {
        vec![x]
    }

    #[test]
    fn in_order_frames_emit_with_zero_jitter() {
        let mut rb = ReorderBuffer::new(cfg(2, 0));
        assert_eq!(rb.push(0, 0, 0, payload(1.0)), PushOutcome::Buffered);
        assert!(rb.poll().is_empty(), "tick 0 must wait for sender 1");
        rb.push(1, 0, 0, payload(2.0));
        let out = rb.poll();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tick, 0);
        assert_eq!(out[0].reports, vec![Some(payload(1.0)), Some(payload(2.0))]);
    }

    #[test]
    fn jitter_bound_closes_missing_slots() {
        // Sender 1 skips tick 0 entirely; once its frontier reaches
        // jitter past 0, tick 0 closes with a hole.
        let mut rb = ReorderBuffer::new(cfg(2, 2));
        rb.push(0, 0, 0, payload(1.0));
        rb.push(1, 0, 1, payload(9.0));
        assert!(rb.poll().is_empty(), "frontier 1 < 0 + jitter");
        rb.push(1, 1, 2, payload(8.0));
        let out = rb.poll();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].reports, vec![Some(payload(1.0)), None]);
    }

    #[test]
    fn duplicates_and_late_frames_counted() {
        let mut rb = ReorderBuffer::new(cfg(1, 0));
        rb.push(0, 0, 0, payload(1.0));
        assert_eq!(rb.push(0, 1, 0, payload(1.0)), PushOutcome::Duplicate);
        assert_eq!(rb.poll().len(), 1);
        assert_eq!(rb.push(0, 2, 0, payload(1.0)), PushOutcome::Late);
        assert_eq!(rb.counters(), (1, 1, 0));
    }

    #[test]
    fn sequence_regression_counted_as_reordered() {
        let mut rb = ReorderBuffer::new(cfg(1, 4));
        rb.push(0, 5, 5, payload(1.0));
        rb.push(0, 3, 3, payload(1.0));
        assert_eq!(rb.counters(), (0, 0, 1));
    }

    #[test]
    fn silent_sender_quarantined_then_recovers() {
        let mut rb = ReorderBuffer::new(ReorderConfig {
            n_senders: 2,
            jitter_ticks: 0,
            quarantine_after_ticks: 3,
        });
        for t in 0..6 {
            rb.push(0, t as u32, t, payload(1.0));
        }
        let out = rb.poll();
        // Sender 1 was quarantined (lag 6 > 3), unblocking everything.
        assert_eq!(out.len(), 6);
        assert!(rb.is_quarantined(1));
        assert_eq!(
            rb.take_events(),
            vec![SenderEvent::Quarantined { sender: 1, at_tick: 5 }]
        );
        rb.push(1, 0, 6, payload(2.0));
        assert!(!rb.is_quarantined(1));
        assert_eq!(rb.take_events(), vec![SenderEvent::Recovered { sender: 1, at_tick: 6 }]);
    }

    #[test]
    fn per_sender_quarantine_overrides_the_config_default() {
        // Three senders; sender 1 gets a tight 2-tick deadline, sender
        // 2 a loose 20-tick one (e.g. a slow light sensor). Only the
        // tight one is quarantined when both go silent for 6 ticks.
        let c = ReorderConfig { n_senders: 3, jitter_ticks: 0, quarantine_after_ticks: 5 };
        let mut rb = ReorderBuffer::new(c);
        assert_eq!(rb.sender_quarantine(1), 5);
        rb.set_sender_quarantine(1, 2);
        rb.set_sender_quarantine(2, 20);
        for t in 0..7u64 {
            rb.push(0, t as u32, t, payload(t as f32));
        }
        rb.poll();
        assert!(rb.is_quarantined(1), "tight deadline must trip at lag 7");
        assert!(!rb.is_quarantined(2), "loose deadline must hold at lag 7");
        assert_eq!(
            rb.take_events(),
            vec![SenderEvent::Quarantined { sender: 1, at_tick: 6 }]
        );
        // The loose sender eventually trips too, at its own deadline.
        for t in 7..22u64 {
            rb.push(0, t as u32, t, payload(t as f32));
        }
        rb.poll();
        assert!(rb.is_quarantined(2));
    }

    #[test]
    fn flush_drains_everything_in_order() {
        let mut rb = ReorderBuffer::new(cfg(2, 5));
        rb.push(0, 0, 2, payload(1.0));
        rb.push(1, 0, 4, payload(2.0));
        let out = rb.flush();
        assert_eq!(out.iter().map(|b| b.tick).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(out[2].reports[0], Some(payload(1.0)));
        assert_eq!(out[4].reports[1], Some(payload(2.0)));
        // Idempotent once drained.
        assert!(rb.flush().is_empty());
    }

    #[test]
    fn watermark_lag_tracks_frontier_distance() {
        let mut rb = ReorderBuffer::new(cfg(2, 0));
        rb.push(0, 0, 9, payload(1.0));
        assert_eq!(rb.watermark_lag(), 10);
        rb.poll();
        assert_eq!(rb.max_watermark_lag(), 10);
    }

    #[test]
    fn state_round_trip_continues_identically() {
        // Build up a messy mid-flight buffer: holes, a quarantined
        // sender, buffered future ticks.
        let c = ReorderConfig { n_senders: 3, jitter_ticks: 2, quarantine_after_ticks: 4 };
        let mut rb = ReorderBuffer::new(c);
        for t in 0..8u64 {
            rb.push(0, t as u32, t, payload(t as f32));
            if t % 2 == 0 {
                rb.push(1, t as u32, t, payload(10.0 + t as f32));
            }
            // Sender 2 silent: quarantined along the way.
        }
        rb.poll();
        rb.take_events();
        let state = rb.state();
        let mut restored = ReorderBuffer::from_state(c, &state).unwrap();
        assert_eq!(restored.state(), state, "round trip changed the state");
        // Continue both identically.
        for t in 8..14u64 {
            for s in 0..3 {
                assert_eq!(
                    rb.push(s, t as u32, t, payload(t as f32)),
                    restored.push(s, t as u32, t, payload(t as f32)),
                    "push diverged at tick {t} sender {s}"
                );
            }
            assert_eq!(rb.poll(), restored.poll(), "poll diverged at tick {t}");
            assert_eq!(rb.take_events(), restored.take_events());
        }
        assert_eq!(rb.flush(), restored.flush());
        assert_eq!(rb.counters(), restored.counters());
        assert_eq!(rb.max_watermark_lag(), restored.max_watermark_lag());
    }

    #[test]
    fn bad_states_rejected() {
        let c = cfg(2, 1);
        let mut rb = ReorderBuffer::new(c);
        rb.push(0, 0, 0, payload(1.0));
        let good = rb.state();
        assert!(ReorderBuffer::from_state(c, &good).is_ok());

        // Per-sender vectors disagreeing with the layout.
        let mut bad = good.clone();
        bad.frontier.pop();
        assert!(ReorderBuffer::from_state(c, &bad).is_err());
        let mut bad = good.clone();
        bad.quarantined.push(false);
        assert!(ReorderBuffer::from_state(c, &bad).is_err());
        let mut bad = good.clone();
        bad.replay_seen.pop();
        assert!(ReorderBuffer::from_state(c, &bad).is_err());
        // Pending tick behind the watermark.
        let mut bad = good.clone();
        bad.next_emit = 5;
        assert!(ReorderBuffer::from_state(c, &bad).is_err());
        // Unsorted pending ticks.
        let mut bad = good.clone();
        bad.pending = vec![(3, vec![None, None]), (2, vec![None, None])];
        assert!(ReorderBuffer::from_state(c, &bad).is_err());
        // Wrong report width.
        let mut bad = good.clone();
        bad.pending = vec![(0, vec![None])];
        assert!(ReorderBuffer::from_state(c, &bad).is_err());
    }

    #[test]
    fn replay_window_rejects_repeats_and_stale_seqs() {
        let mut rb = ReorderBuffer::new(cfg(1, 4));
        rb.set_anti_replay(true);
        assert!(rb.anti_replay());
        // Fresh seqs accept, including out-of-order within the window.
        assert_eq!(rb.push(0, 5, 5, payload(1.0)), PushOutcome::Buffered);
        assert_eq!(rb.push(0, 3, 3, payload(1.0)), PushOutcome::Buffered);
        // Exact repeats are replays, whether of the max or an in-window seq.
        assert_eq!(rb.push(0, 5, 5, payload(1.0)), PushOutcome::Replayed);
        assert_eq!(rb.push(0, 3, 3, payload(1.0)), PushOutcome::Replayed);
        // Advance far; everything ≥ 64 behind the new max is too old.
        assert_eq!(rb.push(0, 100, 100, payload(1.0)), PushOutcome::Buffered);
        assert_eq!(rb.push(0, 36, 36, payload(1.0)), PushOutcome::Replayed);
        assert_eq!(rb.push(0, 37, 37, payload(1.0)), PushOutcome::Buffered);
        assert_eq!(rb.replayed(), 3);
        // Duplicate/late accounting is untouched by replay rejections:
        // only the two genuine seq regressions (3 after 5, 37 after
        // 100) count as reordered; the three replays count nowhere else.
        assert_eq!(rb.counters(), (0, 0, 2), "replays must not leak into legacy counters");
    }

    #[test]
    fn replayed_frames_do_not_recover_quarantine_or_advance_the_frontier() {
        let c = ReorderConfig { n_senders: 2, jitter_ticks: 0, quarantine_after_ticks: 3 };
        let mut rb = ReorderBuffer::new(c);
        rb.set_anti_replay(true);
        rb.push(1, 0, 0, payload(9.0));
        for t in 0..6u64 {
            rb.push(0, t as u32, t, payload(1.0));
        }
        rb.poll();
        assert!(rb.is_quarantined(1));
        rb.take_events();
        let frontier_before = rb.global_frontier();
        // Replaying sender 1's captured frame must not resurrect it.
        assert_eq!(rb.push(1, 0, 0, payload(9.0)), PushOutcome::Replayed);
        assert!(rb.is_quarantined(1), "a replayed capture must not recover the sender");
        assert!(rb.take_events().is_empty());
        assert_eq!(rb.global_frontier(), frontier_before);
        // A genuinely fresh frame still recovers it.
        assert_eq!(rb.push(1, 1, 6, payload(9.5)), PushOutcome::Buffered);
        assert!(!rb.is_quarantined(1));
    }

    #[test]
    fn disarmed_buffer_is_byte_identical_to_the_legacy_behavior() {
        // With anti-replay off (the default), a replayed seq is just a
        // duplicate/late frame exactly as before the window landed.
        let mut rb = ReorderBuffer::new(cfg(1, 0));
        rb.push(0, 0, 0, payload(1.0));
        assert_eq!(rb.push(0, 0, 0, payload(1.0)), PushOutcome::Duplicate);
        assert_eq!(rb.replayed(), 0);
        assert!(rb.state().replay_seen.iter().all(|&b| b == 0));
    }

    #[test]
    fn replay_state_survives_checkpoint_round_trip() {
        let c = cfg(2, 2);
        let mut rb = ReorderBuffer::new(c);
        rb.set_anti_replay(true);
        for t in 0..10u64 {
            rb.push(0, t as u32, t, payload(t as f32));
            rb.push(1, (t * 2) as u32, t, payload(t as f32));
        }
        rb.push(0, 4, 4, payload(0.0)); // one replay on the books
        rb.poll();
        rb.take_events();
        let state = rb.state();
        assert_eq!(state.replayed, 1);
        let mut restored = ReorderBuffer::from_state(c, &state).unwrap();
        restored.set_anti_replay(true); // config reapplied, like quarantine overrides
        assert_eq!(restored.state(), state);
        // Both continue identically, including replay verdicts.
        for (seq, tick) in [(4u32, 4u64), (10, 10), (10, 10), (9, 9)] {
            assert_eq!(
                rb.push(0, seq, tick, payload(1.0)),
                restored.push(0, seq, tick, payload(1.0)),
                "diverged at seq {seq}"
            );
        }
        assert_eq!(rb.replayed(), restored.replayed());
    }

    #[test]
    fn sustained_duplicates_do_not_stall_the_watermark() {
        // Sender 1 wedges: it resends its tick-5 frame forever while
        // sender 0 keeps advancing. Every resend counts as a duplicate
        // (or a late frame once tick 5 is emitted) — and because *any*
        // frame from a quarantined sender recovers it, the wedged
        // sender churns through quarantine/recovery cycles. The
        // watermark must keep advancing regardless: sender 0's ticks
        // all close, with holes where sender 1 never delivered.
        let c = ReorderConfig { n_senders: 2, jitter_ticks: 1, quarantine_after_ticks: 8 };
        let mut rb = ReorderBuffer::new(c);
        let mut emitted = Vec::new();
        for t in 0..100u64 {
            rb.push(0, t as u32, t, payload(t as f32));
            if t >= 5 {
                rb.push(1, 5, 5, payload(55.0));
            }
            emitted.extend(rb.poll());
        }
        emitted.extend(rb.flush());
        let ticks: Vec<u64> = emitted.iter().map(|b| b.tick).collect();
        assert_eq!(ticks, (0..100).collect::<Vec<_>>(), "watermark stalled");
        // Sender 0's payloads all made it through.
        assert!(emitted.iter().all(|b| b.reports[0].is_some()));
        // Sender 1 contributed exactly its one wedged frame.
        let from_1 = emitted.iter().filter(|b| b.reports[1].is_some()).count();
        assert_eq!(from_1, 1);
        let (dup, late, _) = rb.counters();
        assert!(dup + late >= 90, "resends uncounted: dup {dup} late {late}");
        // The wedged sender cycled through quarantine at least once,
        // and each resend recovered it (documented churn behavior).
        let events = rb.take_events();
        let quarantines =
            events.iter().filter(|e| matches!(e, SenderEvent::Quarantined { sender: 1, .. }));
        assert!(quarantines.count() >= 1, "events: {events:?}");
    }
}
