//! Seeded attacker models for the adversarial robustness suite.
//!
//! The threat model (DESIGN.md §15): an active adversary who can
//! transmit on the sensor uplink — inject frames under a claimed
//! sensor identity, replay byte-exact captures, and flood the station
//! — but holds no per-sensor MAC key. An [`AttackModel`] splices an
//! attacker's frames into a clean send stream exactly as
//! [`LinkModel`](crate::link::LinkModel) perturbs one: seeded, so a
//! run under attack is as reproducible as a clean one (callers draw
//! the [`Rng`] from `Rng::task_stream`).
//!
//! The family mirrors the containment study
//! (`fadewich-experiments::attacks`):
//!
//! - [`AttackKind::ForgedMac`] — low-rate spoofing under an
//!   attacker-chosen key, plausible seq/tick/values;
//! - [`AttackKind::AbsentMac`] — legacy (unauthenticated) frames
//!   injected at an authenticated station, the downgrade probe;
//! - [`AttackKind::ReplayCapture`] — byte-exact captures of genuine
//!   frames re-sent after a delay (the MAC verifies — only the
//!   anti-replay window catches these);
//! - [`AttackKind::DeauthStorm`] — a high-rate forged flood sweeping
//!   the sequence space with hostile RSSI values, the wireless
//!   deauthentication storm transposed onto the sensor plane.

use fadewich_core::auth::AuthKey;
use fadewich_core::stream::ChannelKind;
use fadewich_stats::rng::Rng;

use crate::wire::Frame;

/// What the attacker transmits while the attack window is open.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackKind {
    /// Spoofed v4 frames signed under a random attacker key, with
    /// plausible sequence numbers and values — the quiet
    /// impersonation attempt.
    ForgedMac {
        /// Forged frames injected per active tick.
        frames_per_tick: u32,
    },
    /// Unauthenticated v1 frames claiming the target sensor — the
    /// downgrade probe against an authenticated station.
    AbsentMac {
        /// Injected frames per active tick.
        frames_per_tick: u32,
    },
    /// Captures each genuine frame sent inside the window with
    /// probability `capture_p` and re-sends it byte-exact
    /// `delay_ticks` later.
    ReplayCapture {
        /// Probability a passing frame is captured for replay.
        capture_p: f64,
        /// How many ticks after the original send the replay arrives.
        delay_ticks: u64,
    },
    /// A deauth-storm flood: `frames_per_tick` forged frames per
    /// active tick, sweeping the sequence space upward with hostile
    /// (departure-shaped) RSSI values.
    DeauthStorm {
        /// Forged frames injected per active tick.
        frames_per_tick: u32,
    },
}

/// A seeded attacker: one [`AttackKind`] aimed at one claimed sensor
/// identity over a tick window. [`AttackModel::apply`] splices the
/// attack into a clean send stream deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackModel {
    /// What the attacker transmits.
    pub kind: AttackKind,
    /// The claimed (spoofed) sensor identity.
    pub sensor: u16,
    /// Payload width of the forged frames — attackers mimic the
    /// deployment's group width so rejection happens on
    /// authentication, not on a trivial length check.
    pub payload_width: usize,
    /// First tick of the attack window.
    pub from_tick: u64,
    /// One past the last tick of the attack window.
    pub to_tick: u64,
    /// Office id stamped into forged frames; `None` forges office 0.
    /// The fleet runtime routes by office id, so this is the
    /// per-office targeting knob.
    pub target_office: Option<u16>,
}

impl AttackModel {
    /// Whether the attacker is transmitting at `tick`.
    pub fn is_active(&self, tick: u64) -> bool {
        (self.from_tick..self.to_tick).contains(&tick)
    }

    /// Frames the attacker would inject over the whole window, in
    /// send order — before any splice with genuine traffic.
    /// `clean` is the genuine `(send tick, bytes)` stream the
    /// attacker can observe (replay capture draws from it; forgery
    /// kinds ignore it).
    pub fn injected(&self, clean: &[(u64, Vec<u8>)], rng: &mut Rng) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        match self.kind {
            AttackKind::ReplayCapture { capture_p, delay_ticks } => {
                for (tick, bytes) in clean {
                    if self.is_active(*tick) && rng.bernoulli(capture_p) {
                        out.push((tick + delay_ticks, bytes.clone()));
                    }
                }
            }
            AttackKind::AbsentMac { frames_per_tick } => {
                for tick in self.from_tick..self.to_tick {
                    for _ in 0..frames_per_tick {
                        out.push((tick, self.forged_frame(tick, rng).encode()));
                    }
                }
            }
            AttackKind::ForgedMac { frames_per_tick } => {
                // The attacker holds no deployment key; every forgery
                // is signed under a freshly drawn one.
                let key = AuthKey::derive(rng.next_u64(), self.sensor);
                for tick in self.from_tick..self.to_tick {
                    for _ in 0..frames_per_tick {
                        out.push((tick, self.forged_frame(tick, rng).encode_auth(&key)));
                    }
                }
            }
            AttackKind::DeauthStorm { frames_per_tick } => {
                let key = AuthKey::derive(rng.next_u64(), self.sensor);
                let mut seq = (self.from_tick as u32).wrapping_mul(7);
                for tick in self.from_tick..self.to_tick {
                    for _ in 0..frames_per_tick {
                        // Sweep the sequence space so no two flood
                        // frames collide in the anti-replay window.
                        seq = seq.wrapping_add(1);
                        let mut frame = self.forged_frame(tick, rng);
                        frame.seq = seq;
                        // Departure-shaped hostile values: strong,
                        // stable RSSI that would read as "left".
                        for v in &mut frame.values {
                            *v = -30.0 + rng.normal() as f32 * 0.2;
                        }
                        out.push((tick, frame.encode_auth(&key)));
                    }
                }
            }
        }
        out
    }

    /// Splices the attack into a clean send stream: the result holds
    /// every clean frame plus every injected one, sorted by send tick
    /// with ties broken clean-first (the attacker cannot pre-empt a
    /// frame already on the air at the same tick).
    pub fn apply(&self, clean: &[(u64, Vec<u8>)], rng: &mut Rng) -> Vec<(u64, Vec<u8>)> {
        let injected = self.injected(clean, rng);
        // Stable two-way merge by tick: clean frames keep their
        // relative order and precede injected frames of the same tick.
        let mut merged: Vec<(u64, usize, Vec<u8>)> = Vec::with_capacity(clean.len() + injected.len());
        for (tick, bytes) in clean {
            merged.push((*tick, 0, bytes.clone()));
        }
        for (tick, bytes) in injected {
            merged.push((tick, 1, bytes));
        }
        merged.sort_by_key(|&(tick, src, _)| (tick, src));
        merged.into_iter().map(|(tick, _, bytes)| (tick, bytes)).collect()
    }

    /// A plausible-looking forged frame claiming the target identity.
    fn forged_frame(&self, tick: u64, rng: &mut Rng) -> Frame {
        Frame {
            office: self.target_office.unwrap_or(0),
            channel: ChannelKind::Rssi,
            sensor: self.sensor,
            seq: tick as u32,
            tick,
            values: (0..self.payload_width)
                .map(|_| (-50.0 + rng.normal() * 0.6) as f32)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::FrameView;
    use fadewich_core::auth::KeyTable;

    fn clean_stream(keys: &KeyTable, ticks: u64) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        for t in 0..ticks {
            for sensor in 0..2u16 {
                let f = Frame::rssi(sensor, t as u32, t, vec![-50.0, -50.0]);
                out.push((t, f.encode_auth(keys.get(sensor).unwrap())));
            }
        }
        out
    }

    fn storm(from: u64, to: u64) -> AttackModel {
        AttackModel {
            kind: AttackKind::DeauthStorm { frames_per_tick: 5 },
            sensor: 1,
            payload_width: 2,
            from_tick: from,
            to_tick: to,
            target_office: None,
        }
    }

    #[test]
    fn attacks_are_deterministic_for_a_seed() {
        let keys = KeyTable::derive(1, 2);
        let clean = clean_stream(&keys, 20);
        let a = storm(5, 10).apply(&clean, &mut Rng::seed_from_u64(3));
        let b = storm(5, 10).apply(&clean, &mut Rng::seed_from_u64(3));
        assert_eq!(a, b);
        let c = storm(5, 10).apply(&clean, &mut Rng::seed_from_u64(4));
        assert_ne!(a, c, "a different seed must redraw the forgeries");
    }

    #[test]
    fn splice_preserves_clean_frames_and_window() {
        let keys = KeyTable::derive(1, 2);
        let clean = clean_stream(&keys, 20);
        let out = storm(5, 10).apply(&clean, &mut Rng::seed_from_u64(3));
        assert_eq!(out.len(), clean.len() + 5 * 5);
        // Every clean frame survives the splice, in order.
        let clean_survivors: Vec<&Vec<u8>> =
            out.iter().map(|(_, b)| b).filter(|b| clean.iter().any(|(_, c)| &c == b)).collect();
        assert_eq!(clean_survivors.len(), clean.len());
        // Injected frames sit inside the window.
        for (tick, bytes) in &out {
            if !clean.iter().any(|(_, c)| c == bytes) {
                assert!((5..10).contains(tick), "flood frame outside window at {tick}");
            }
        }
        // Ticks are sorted.
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn forged_frames_decode_but_never_verify_under_deployment_keys() {
        let keys = KeyTable::derive(1, 2);
        let atk = storm(0, 3);
        let frames = atk.injected(&[], &mut Rng::seed_from_u64(9));
        assert_eq!(frames.len(), 3 * 5);
        let mut seqs = Vec::new();
        for (_, bytes) in &frames {
            let (view, _) = Frame::decode_borrowed(bytes).unwrap();
            assert!(view.is_authenticated(), "storm frames must be v4");
            assert_eq!(view.sensor, 1);
            assert!(
                !view.verify_mac(keys.get(1).unwrap()),
                "an attacker forgery must not verify under the real key"
            );
            seqs.push(view.seq);
        }
        // The storm sweeps the seq space: no collisions.
        let mut uniq = seqs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seqs.len(), "storm seqs must not collide");
    }

    #[test]
    fn replay_capture_reemits_byte_exact_frames_delayed() {
        let keys = KeyTable::derive(1, 2);
        let clean = clean_stream(&keys, 30);
        let atk = AttackModel {
            kind: AttackKind::ReplayCapture { capture_p: 1.0, delay_ticks: 4 },
            sensor: 0,
            payload_width: 2,
            from_tick: 10,
            to_tick: 15,
            target_office: None,
        };
        let injected = atk.injected(&clean, &mut Rng::seed_from_u64(2));
        // capture_p = 1: every frame in the window is replayed.
        assert_eq!(injected.len(), 2 * 5);
        for (tick, bytes) in &injected {
            let original = clean.iter().find(|(_, c)| c == bytes).expect("byte-exact capture");
            assert_eq!(*tick, original.0 + 4);
            // The replay still verifies — only anti-replay catches it.
            let (view, _) = Frame::decode_borrowed(bytes).unwrap();
            assert!(view.verify_mac(keys.get(view.sensor).unwrap()));
        }
    }

    #[test]
    fn absent_mac_frames_are_legacy_encoded() {
        let atk = AttackModel {
            kind: AttackKind::AbsentMac { frames_per_tick: 2 },
            sensor: 1,
            payload_width: 2,
            from_tick: 0,
            to_tick: 4,
            target_office: Some(3),
        };
        let injected = atk.injected(&[], &mut Rng::seed_from_u64(5));
        assert_eq!(injected.len(), 8);
        for (_, bytes) in &injected {
            let (view, _): (FrameView<'_>, usize) = Frame::decode_borrowed(bytes).unwrap();
            assert!(!view.is_authenticated(), "downgrade frames must be legacy");
            assert_eq!(view.office, 3, "office targeting must be stamped in");
        }
    }
}
