//! Deterministic fault injection for the crash-recovery layer.
//!
//! Recovery code that is never exercised is broken code. This module
//! generates *seeded, reproducible* disk-failure schedules so the
//! checkpoint tests (and the recovery experiment) can prove the
//! invariants the tentpole demands — "crash at any tick, resume from
//! the last checkpoint ⇒ identical decision stream" and "any corrupted
//! checkpoint is rejected, never silently resumed" — without flaky
//! real-world I/O races:
//!
//! - a **torn** write persists only a prefix of the checkpoint (the
//!   classic crash-during-write outcome on a non-atomic filesystem);
//! - a **bit flip** persists the full length with one bit inverted
//!   (media corruption); both *look like success* to the writer and
//!   must be caught at load time by the CRC/framing;
//! - a **transient** write error fails the first attempt visibly (think
//!   `ENOSPC` racing a log rotation) and is retried with bounded
//!   backoff by the store;
//! - a **crash tick** stops the whole process mid-day (`fadewichd
//!   serve --crash-after-ticks` aborts; the in-process harness simply
//!   stops feeding).
//!
//! The plan is threaded into
//! [`CheckpointStore`](crate::checkpoint::CheckpointStore), which
//! consults it once per save.

use fadewich_stats::rng::Rng;

/// What the injector does to one checkpoint save.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The write goes through untouched.
    None,
    /// Only the first `keep` bytes reach the disk; the writer still
    /// sees success (silent corruption, caught at load).
    Torn {
        /// Bytes that survive.
        keep: usize,
    },
    /// One bit of the persisted image is inverted; the writer still
    /// sees success (silent corruption, caught at load).
    BitFlip {
        /// Absolute bit index into the encoded checkpoint.
        bit: usize,
    },
    /// The first write attempt fails with an I/O error; retries are
    /// clean.
    Transient,
}

/// A seeded schedule of faults, indexed by save ordinal (the first
/// checkpoint save is ordinal 0).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Abort the process after this many engine ticks, if set. Applied
    /// by the driver (`fadewichd serve`), not the store.
    pub crash_after_ticks: Option<u64>,
    /// Save ordinals whose write is torn.
    pub torn_saves: Vec<u64>,
    /// Save ordinals whose persisted image gets one bit flipped.
    pub bitflip_saves: Vec<u64>,
    /// Save ordinals whose first write attempt fails transiently.
    pub transient_saves: Vec<u64>,
}

impl FaultPlan {
    /// The empty plan: no faults, no crash.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Draws a reproducible plan for a run expected to save roughly
    /// `expected_saves` checkpoints: each save ordinal independently
    /// gets a torn write, a bit flip, or a transient error with the
    /// given probability (mutually exclusive, in that precedence).
    ///
    /// # Panics
    ///
    /// `fault_p` must be a probability in `[0, 1]`. An out-of-range
    /// value is a caller bug — silently clamping it would make a
    /// mistyped rate (say `10.0` for 10%) fault every single save and
    /// still look like a valid plan.
    pub fn seeded(seed: u64, expected_saves: u64, fault_p: f64) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&fault_p),
            "fault_p must be a probability in [0, 1], got {fault_p}"
        );
        let mut rng = Rng::seed_from_u64(seed);
        let mut plan = FaultPlan::none();
        for save in 0..expected_saves {
            if !rng.bernoulli(fault_p) {
                continue;
            }
            match rng.below(3) {
                0 => plan.torn_saves.push(save),
                1 => plan.bitflip_saves.push(save),
                _ => plan.transient_saves.push(save),
            }
        }
        plan
    }
}

/// What the injector has actually done so far — tests assert against
/// this instead of trusting the plan blindly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Torn writes performed.
    pub torn: u64,
    /// Bit flips performed.
    pub bit_flips: u64,
    /// Transient errors raised.
    pub transients: u64,
}

/// Executes a [`FaultPlan`] against a sequence of checkpoint saves.
/// Positions (which byte is cut, which bit flips) are drawn from a
/// seeded [`Rng`], so the same seed corrupts the same bits every run.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Rng,
    saves: u64,
    log: FaultLog,
}

impl FaultInjector {
    /// Wraps a plan; `seed` drives the corruption positions.
    pub fn new(plan: FaultPlan, seed: u64) -> FaultInjector {
        FaultInjector { plan, rng: Rng::seed_from_u64(seed), saves: 0, log: FaultLog::default() }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// What has been injected so far.
    pub fn log(&self) -> FaultLog {
        self.log
    }

    /// Consumes the next save ordinal and decides its fate.
    /// `encoded_len` is the checkpoint size in bytes, needed to pick a
    /// cut point or a bit index inside the image.
    pub fn next_save(&mut self, encoded_len: usize) -> WriteFault {
        let save = self.saves;
        self.saves += 1;
        if self.plan.torn_saves.contains(&save) && encoded_len > 0 {
            self.log.torn += 1;
            // Keep at least one byte and lose at least one: a torn
            // write that kept everything would not be a fault.
            return WriteFault::Torn { keep: 1 + self.rng.below(encoded_len.max(2) - 1) };
        }
        if self.plan.bitflip_saves.contains(&save) && encoded_len > 0 {
            self.log.bit_flips += 1;
            return WriteFault::BitFlip { bit: self.rng.below(encoded_len * 8) };
        }
        if self.plan.transient_saves.contains(&save) {
            self.log.transients += 1;
            return WriteFault::Transient;
        }
        WriteFault::None
    }

    /// Applies a silent-corruption fault to an encoded image. Returns
    /// the bytes that actually reach the disk ([`WriteFault::Transient`]
    /// and [`WriteFault::None`] leave them untouched — the transient
    /// failure happens at the write call, not in the data).
    pub fn corrupt(fault: WriteFault, bytes: &[u8]) -> Vec<u8> {
        match fault {
            WriteFault::Torn { keep } => bytes[..keep.min(bytes.len())].to_vec(),
            WriteFault::BitFlip { bit } => {
                let mut out = bytes.to_vec();
                if !out.is_empty() {
                    let idx = (bit / 8) % out.len();
                    out[idx] ^= 1 << (bit % 8);
                }
                out
            }
            WriteFault::None | WriteFault::Transient => bytes.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 100, 0.3);
        let b = FaultPlan::seeded(42, 100, 0.3);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 100, 0.3);
        assert_ne!(a, c, "different seeds should differ (vanishingly unlikely to match)");
        let total = a.torn_saves.len() + a.bitflip_saves.len() + a.transient_saves.len();
        assert!(total > 10 && total < 60, "~30 of 100 saves should fault, got {total}");
    }

    #[test]
    fn injector_follows_the_plan_in_order() {
        let plan = FaultPlan {
            crash_after_ticks: None,
            torn_saves: vec![0],
            bitflip_saves: vec![2],
            transient_saves: vec![3],
        };
        let mut inj = FaultInjector::new(plan, 7);
        assert!(matches!(inj.next_save(100), WriteFault::Torn { .. }));
        assert_eq!(inj.next_save(100), WriteFault::None);
        assert!(matches!(inj.next_save(100), WriteFault::BitFlip { .. }));
        assert_eq!(inj.next_save(100), WriteFault::Transient);
        assert_eq!(inj.next_save(100), WriteFault::None);
        assert_eq!(inj.log(), FaultLog { torn: 1, bit_flips: 1, transients: 1 });
    }

    #[test]
    fn torn_keeps_a_strict_prefix() {
        let plan = FaultPlan { torn_saves: vec![0], ..FaultPlan::none() };
        for seed in 0..50 {
            let mut inj = FaultInjector::new(plan.clone(), seed);
            let WriteFault::Torn { keep } = inj.next_save(64) else {
                panic!("expected a torn write");
            };
            assert!(keep >= 1 && keep < 64, "keep {keep} must lose at least one byte");
        }
    }

    #[test]
    fn corrupt_applies_exactly_one_fault() {
        let bytes: Vec<u8> = (0..64u8).collect();
        let torn = FaultInjector::corrupt(WriteFault::Torn { keep: 10 }, &bytes);
        assert_eq!(torn, &bytes[..10]);
        let flipped = FaultInjector::corrupt(WriteFault::BitFlip { bit: 83 }, &bytes);
        assert_eq!(flipped.len(), bytes.len());
        let diff: Vec<usize> =
            (0..bytes.len()).filter(|&i| flipped[i] != bytes[i]).collect();
        assert_eq!(diff.len(), 1);
        assert_eq!((flipped[diff[0]] ^ bytes[diff[0]]).count_ones(), 1);
        assert_eq!(FaultInjector::corrupt(WriteFault::None, &bytes), bytes);
        assert_eq!(FaultInjector::corrupt(WriteFault::Transient, &bytes), bytes);
    }

    #[test]
    fn every_drawn_corruption_fault_actually_mutates_the_image() {
        // A Torn{keep: len} or an out-of-range BitFlip would report a
        // fault in the log while persisting a pristine image — the
        // recovery tests would then "pass" without exercising the CRC
        // rejection path at all. Sweep seeds and image sizes to prove
        // every drawn fault changes the bytes that reach the disk.
        let plan = FaultPlan {
            crash_after_ticks: None,
            torn_saves: vec![0],
            bitflip_saves: vec![1],
            transient_saves: vec![],
        };
        for seed in 0..100 {
            for len in [2usize, 3, 64, 1031] {
                let bytes: Vec<u8> = (0..len).map(|i| (i * 37) as u8).collect();
                let mut inj = FaultInjector::new(plan.clone(), seed);
                let torn = inj.next_save(len);
                assert!(matches!(torn, WriteFault::Torn { .. }), "{torn:?}");
                let cut = FaultInjector::corrupt(torn, &bytes);
                assert!(
                    !cut.is_empty() && cut.len() < len && cut == bytes[..cut.len()],
                    "torn write must persist a strict non-empty prefix (seed {seed}, len {len})"
                );
                let flip = inj.next_save(len);
                assert!(matches!(flip, WriteFault::BitFlip { .. }), "{flip:?}");
                let flipped = FaultInjector::corrupt(flip, &bytes);
                assert_eq!(flipped.len(), len);
                let changed: Vec<usize> =
                    (0..len).filter(|&i| flipped[i] != bytes[i]).collect();
                assert_eq!(changed.len(), 1, "seed {seed}, len {len}: {changed:?}");
                assert_eq!((flipped[changed[0]] ^ bytes[changed[0]]).count_ones(), 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "fault_p must be a probability")]
    fn seeded_rejects_a_rate_above_one() {
        let _ = FaultPlan::seeded(1, 10, 10.0);
    }

    #[test]
    #[should_panic(expected = "fault_p must be a probability")]
    fn seeded_rejects_a_negative_rate() {
        let _ = FaultPlan::seeded(1, 10, -0.1);
    }

    #[test]
    fn seeded_accepts_the_probability_endpoints() {
        let never = FaultPlan::seeded(1, 20, 0.0);
        assert_eq!(never, FaultPlan::none());
        let always = FaultPlan::seeded(1, 20, 1.0);
        let total = always.torn_saves.len()
            + always.bitflip_saves.len()
            + always.transient_saves.len();
        assert_eq!(total, 20, "p = 1 must fault every save");
    }
}
