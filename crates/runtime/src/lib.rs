//! Online streaming runtime — the live counterpart of the batch
//! pipeline.
//!
//! The paper's deployment is inherently online: nine wall sensors
//! stream RSSI to a central station that must deauthenticate within
//! seconds of a departure. This crate provides that station loop for
//! the reproduction:
//!
//! - [`wire`] — the compact binary frame codec (seq, sensor, tick,
//!   payload, CRC-32) sensors would speak, including the v4
//!   keyed-MAC authenticated framing;
//! - [`reorder`] — watermark-based reassembly tolerating out-of-order
//!   delivery, duplicates, jitter and bounded loss, with sensor
//!   quarantine/recovery;
//! - [`engine`] — the tick-at-a-time MD → RE → Controller advance with
//!   hold-last-value gap-fill, masked-stream degradation and
//!   structured events;
//! - [`counters`] — runtime counters plus per-stage latency
//!   histograms, printable and JSON-dumpable;
//! - [`link`] — a seeded lossy-link model for replays;
//! - [`replay`] — scenario-driven replay and the batch reference the
//!   parity test compares against;
//! - [`checkpoint`] — crash-safe, CRC-guarded engine snapshots with
//!   atomic writes, staleness enforcement and bounded retention;
//! - [`fault`] — seeded, reproducible disk-fault schedules (torn
//!   writes, bit flips, transient errors, crash ticks) that exercise
//!   the recovery paths deterministically;
//! - [`attack`] — seeded adversary models (forged/absent-MAC
//!   injection, byte-exact replay, deauth-storm floods) that the
//!   containment study splices into clean sensor streams.
//!
//! The load-bearing invariant: over a lossless link the engine's
//! decisions are **byte-identical** to the batch pipeline's
//! (`tests/parity.rs`); under loss it degrades gracefully and
//! observably instead of failing.
//!
//! # Examples
//!
//! ```
//! use fadewich_runtime::reorder::{ReorderBuffer, ReorderConfig};
//!
//! let mut rb = ReorderBuffer::new(ReorderConfig {
//!     n_senders: 2,
//!     jitter_ticks: 1,
//!     quarantine_after_ticks: 50,
//! });
//! // Frames arrive out of order; ticks still come out in order.
//! rb.push(0, 0, 1, vec![-51.0]);
//! rb.push(1, 0, 1, vec![-47.0]);
//! rb.push(0, 1, 0, vec![-50.0]);
//! rb.push(1, 1, 0, vec![-48.0]);
//! let ticks: Vec<u64> = rb.flush().iter().map(|b| b.tick).collect();
//! assert_eq!(ticks, vec![0, 1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod attack;
pub mod checkpoint;
pub mod counters;
pub mod engine;
pub mod fault;
pub mod link;
pub mod reorder;
pub mod replay;
pub mod wire;

pub use attack::{AttackKind, AttackModel};
pub use checkpoint::{
    CheckpointError, CheckpointStore, Checkpointer, EngineSnapshot, LoadOutcome, RetryPolicy,
};
pub use counters::{LatencyHisto, RuntimeCounters};
pub use engine::{EngineAuth, EngineConfig, EngineEvent, SensorAuthState, StreamingEngine};
pub use fault::{FaultInjector, FaultLog, FaultPlan, WriteFault};
pub use link::LinkModel;
pub use reorder::{ReorderBuffer, ReorderConfig, ReorderState, TickBundle};
pub use wire::{Frame, FrameView, WireError};
