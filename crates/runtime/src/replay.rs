//! Scenario-driven replay: the glue between `officesim` recordings and
//! the streaming engine.
//!
//! A replay reproduces the deployed workflow end to end: train RE on
//! the first days with KMA auto-labeling (exactly as the batch
//! deployment experiment does, same ordering and seed), then stream
//! each remaining day's sensor reports through a [`LinkModel`] into a
//! [`StreamingEngine`]. The batch reference
//! ([`batch_day_actions`]) steps a plain [`Controller`] over the same
//! recorded matrix, so a lossless replay must produce byte-identical
//! decisions — the invariant `tests/parity.rs` enforces.

use fadewich_core::artifact::{FeatureSchema, ModelBundle};
use fadewich_core::auth::KeyTable;
use fadewich_core::config::FadewichParams;
use fadewich_core::controller::{Action, Controller};
use fadewich_core::features::{extract_features, TrainingSample, FEATURES_PER_STREAM};
use fadewich_core::kma::Kma;
use fadewich_core::md::{run_md_over_day, MovementDetector};
use fadewich_core::re::{auto_label, AutoLabelParams, RadioEnvironment};
use fadewich_core::fusion::{DecisionMode, FusionConfig};
use fadewich_core::stream::{ChannelKind, SensorGroup};
use fadewich_officesim::{Scenario, StreamKind, Trace};
use fadewich_stats::rng::Rng;

use crate::checkpoint::{CheckpointStore, Checkpointer, EngineSnapshot};
use crate::counters::RuntimeCounters;
use crate::engine::{EngineConfig, EngineEvent, StreamingEngine};
use crate::link::LinkModel;
use crate::wire::Frame;

/// RE training seed — shared with the batch deployment experiment so
/// both pipelines compare like for like.
pub const TRAIN_SEED: u64 = 0xDE9107;

/// Maps the simulator's native stream tag onto the canonical wire /
/// engine channel kind. (`officesim` sits below `fadewich-core` in the
/// dependency graph, so the conversion lives up here.)
pub fn channel_kind_of(kind: StreamKind) -> ChannelKind {
    match kind {
        StreamKind::Rssi => ChannelKind::Rssi,
        StreamKind::AmbientLight => ChannelKind::AmbientLight,
    }
}

/// The typed sensor layout of a (possibly light-enabled) trace: the
/// RF receiver groups on the row prefix, one ambient-light group per
/// monitored workstation on the suffix.
pub fn typed_groups(trace: &Trace, streams: &[usize]) -> Vec<SensorGroup> {
    trace
        .fused_groups(streams)
        .into_iter()
        .map(|(sensor, kind, positions)| SensorGroup {
            sensor,
            kind: channel_kind_of(kind),
            positions,
        })
        .collect()
}

/// The fusion configuration a light-enabled trace implies: one light
/// stream per recorded workstation photosensor, arbitrated by `mode`.
/// For an RSSI-only trace this degenerates to
/// [`FusionConfig::rssi_only`] with the requested mode.
pub fn fusion_for_trace(trace: &Trace, mode: DecisionMode) -> FusionConfig {
    FusionConfig {
        mode,
        light_workstations: trace.light_sensors().iter().map(|&w| w as usize).collect(),
        ..FusionConfig::rssi_only()
    }
}

/// Everything one streamed day produced.
#[derive(Debug, Clone)]
pub struct DayReplay {
    /// Which recorded day was streamed.
    pub day: usize,
    /// The controller's action log.
    pub actions: Vec<Action>,
    /// Structured events (decisions, quarantines, recoveries).
    pub events: Vec<EngineEvent>,
    /// Runtime counters for the day.
    pub counters: RuntimeCounters,
}

/// Trains RE on the first `train_days` of a scenario with KMA
/// auto-labeling (the deployment workflow's training phase).
///
/// # Errors
///
/// Returns a message for an invalid split, MD failures, or a training
/// set too small to fit a classifier.
pub fn train_re(
    scenario: &Scenario,
    trace: &Trace,
    streams: &[usize],
    train_days: usize,
    params: &FadewichParams,
) -> Result<RadioEnvironment, String> {
    let n_days = trace.days().len();
    if train_days == 0 || train_days >= n_days {
        return Err(format!("need 1..{} training days, got {train_days}", n_days - 1));
    }
    let hz = trace.tick_hz();
    let label_params = AutoLabelParams::default();
    let mut samples: Vec<TrainingSample> = Vec::new();
    for day in 0..train_days {
        let run = run_md_over_day(&trace.days()[day], streams, hz, *params)?;
        let inputs = scenario.input_trace(day, 0);
        let kma = Kma::new(&inputs);
        for w in run.significant_windows(params.t_delta_ticks(hz)) {
            let Some(label) = auto_label(&kma, w.start_s(hz), &label_params) else {
                continue;
            };
            samples.push(TrainingSample {
                features: extract_features(&trace.days()[day], streams, w.start_tick, hz, params),
                label,
            });
        }
    }
    let mut rng = Rng::seed_from_u64(TRAIN_SEED);
    RadioEnvironment::train(&samples, None, &mut rng)
        .map_err(|e| format!("training phase failed: {e}"))
}

/// Runs the full training phase and packs the result — parameters,
/// feature schema, MD's learned profile/threshold from the last
/// training day, and the trained RE classifier — into a versioned
/// [`ModelBundle`] ready for [`ModelBundle::save`].
///
/// The classifier is the exact [`train_re`] output (same ordering,
/// same [`TRAIN_SEED`]), so decisions served from the saved artifact
/// are byte-identical to an in-memory-trained engine.
///
/// # Errors
///
/// Propagates [`train_re`] and [`MovementDetector::new`] errors.
pub fn train_model(
    scenario: &Scenario,
    trace: &Trace,
    streams: &[usize],
    train_days: usize,
    params: &FadewichParams,
) -> Result<ModelBundle, String> {
    let re = train_re(scenario, trace, streams, train_days, params)?;
    let hz = trace.tick_hz();
    // MD's exportable state comes from a clean pass over the last
    // training day — the same cold-start detector the batch and
    // streaming paths use, so the snapshot reflects deployment
    // conditions rather than some partially warmed intermediate.
    let mut md = MovementDetector::new(streams.len(), hz, *params)?;
    let day = &trace.days()[train_days - 1];
    let mut row = vec![0.0f64; streams.len()];
    for tick in 0..day.n_ticks() {
        let full = day.row(tick);
        for (dst, &s) in row.iter_mut().zip(streams) {
            *dst = full[s] as f64;
        }
        md.step(tick, &row);
    }
    Ok(ModelBundle {
        params: *params,
        schema: FeatureSchema::rssi(
            hz,
            streams.iter().map(|&s| s as u32).collect(),
            FEATURES_PER_STREAM,
        ),
        md: md.snapshot(),
        re,
        // Training stays keyless: authenticated deployments attach a
        // derived KeyTable explicitly, so pre-auth artifacts (and their
        // pinned fixtures) keep encoding byte-identically.
        keys: None,
    })
}

/// Checks a loaded artifact against the live deployment before
/// serving: sampling rate, monitored streams, and feature layout must
/// all match what the model was trained on.
///
/// # Errors
///
/// Returns a description of the first mismatch.
pub fn validate_schema(
    bundle: &ModelBundle,
    trace: &Trace,
    streams: &[usize],
) -> Result<(), String> {
    let schema = &bundle.schema;
    if schema.tick_hz != trace.tick_hz() {
        return Err(format!(
            "model trained at {} Hz but deployment runs at {} Hz",
            schema.tick_hz,
            trace.tick_hz()
        ));
    }
    let live: Vec<u32> = streams.iter().map(|&s| s as u32).collect();
    if schema.stream_ids != live {
        return Err(format!(
            "model monitors streams {:?} but deployment monitors {live:?}",
            schema.stream_ids
        ));
    }
    if schema.features_per_stream != FEATURES_PER_STREAM {
        return Err(format!(
            "model uses {} features per stream but this build extracts {FEATURES_PER_STREAM}",
            schema.features_per_stream
        ));
    }
    Ok(())
}

/// The batch reference: drives a plain [`Controller`] over the
/// recorded day matrix and returns its action log.
///
/// # Errors
///
/// Propagates controller construction errors.
pub fn batch_day_actions(
    scenario: &Scenario,
    trace: &Trace,
    streams: &[usize],
    re: &RadioEnvironment,
    day: usize,
    params: &FadewichParams,
) -> Result<Vec<Action>, String> {
    let hz = trace.tick_hz();
    let inputs = scenario.input_trace(day, 0);
    let kma = Kma::new(&inputs);
    let mut controller = Controller::new(streams.len(), hz, *params, re, kma)?;
    let day_trace = &trace.days()[day];
    let mut row = vec![0.0f64; streams.len()];
    for tick in 0..day_trace.n_ticks() {
        let full = day_trace.row(tick);
        for (dst, &s) in row.iter_mut().zip(streams) {
            *dst = full[s] as f64;
        }
        controller.step(tick, &row);
    }
    Ok(controller.actions().to_vec())
}

/// The exact byte deliveries one day's sensor traffic produces after
/// passing through `link`: reports framed in send order with
/// per-sensor sequence numbers, then dropped/duplicated/jittered by the
/// link model seeded from `Rng::task_stream(link_seed, day)`.
///
/// This is the day's *replayable delivery sequence* — the unit the
/// crash-recovery layer counts. A checkpoint records how many
/// deliveries were fully ingested (`stream_pos`), and a resume replays
/// the same sequence from that index, so determinism here is what
/// makes resumed decisions byte-identical.
///
/// # Errors
///
/// Rejects a report for a sensor absent from `groups` (the layout
/// contract between `Trace::sensor_reports` and
/// `Trace::receiver_groups` was broken).
pub fn day_deliveries(
    trace: &Trace,
    streams: &[usize],
    groups: &[(u16, Vec<usize>)],
    day: usize,
    link: &LinkModel,
    link_seed: u64,
) -> Result<Vec<Vec<u8>>, String> {
    day_deliveries_for_office(trace, streams, groups, day, link, link_seed, 0)
}

/// [`day_deliveries`] with the frames stamped for a fleet tenant.
///
/// Office 0 produces the exact byte stream `day_deliveries` always has
/// (v1 frames); any other id emits v2 frames carrying the office field
/// the fleet demux routes on. The link seed is the caller's to vary per
/// office, so each tenant sees an independent loss pattern.
///
/// # Errors
///
/// Same layout contract as [`day_deliveries`].
#[allow(clippy::too_many_arguments)]
pub fn day_deliveries_for_office(
    trace: &Trace,
    streams: &[usize],
    groups: &[(u16, Vec<usize>)],
    day: usize,
    link: &LinkModel,
    link_seed: u64,
    office: u16,
) -> Result<Vec<Vec<u8>>, String> {
    let frames = framed_day(trace, streams, groups, day, office)?;
    let mut rng = Rng::task_stream(link_seed, day as u64);
    Ok(link.deliver(&frames, &mut rng))
}

/// The reusable-buffer form of [`day_deliveries_for_office`]: the
/// day's arrival stream lands back-to-back in `bytes`, with `ends[i]`
/// the exclusive end offset of delivery `i` (see
/// [`LinkModel::deliver_into`]). Byte-for-byte the same deliveries in
/// the same order as the owned form — the fleet feed builder uses
/// this to skip the per-delivery allocations.
///
/// # Errors
///
/// Same layout contract as [`day_deliveries`].
#[allow(clippy::too_many_arguments)]
pub fn day_deliveries_for_office_into(
    trace: &Trace,
    streams: &[usize],
    groups: &[(u16, Vec<usize>)],
    day: usize,
    link: &LinkModel,
    link_seed: u64,
    office: u16,
    bytes: &mut Vec<u8>,
    ends: &mut Vec<usize>,
) -> Result<(), String> {
    let frames = framed_day(trace, streams, groups, day, office)?;
    let mut rng = Rng::task_stream(link_seed, day as u64);
    link.deliver_into(&frames, &mut rng, bytes, ends);
    Ok(())
}

/// One day's encoded send stream before the link: `(send tick, bytes)`
/// in send order with per-sensor sequence numbers. The framing half of
/// [`day_deliveries_for_office`]; hot streaming paths feed it through
/// [`LinkModel::deliver_into`] instead of materializing owned
/// deliveries.
///
/// # Errors
///
/// Same layout contract as [`day_deliveries`].
fn framed_day(
    trace: &Trace,
    streams: &[usize],
    groups: &[(u16, Vec<usize>)],
    day: usize,
    office: u16,
) -> Result<Vec<(u64, Vec<u8>)>, String> {
    let mut seq = vec![0u32; groups.len()];
    let reports = trace.sensor_reports(day, streams);
    let mut frames: Vec<(u64, Vec<u8>)> = Vec::with_capacity(reports.len());
    for r in reports {
        let sender = groups.iter().position(|(s, _)| *s == r.sensor).ok_or_else(|| {
            format!("sensor {} reports frames but is not in the receiver layout", r.sensor)
        })?;
        let frame = Frame {
            office,
            channel: channel_kind_of(r.kind),
            sensor: r.sensor,
            seq: seq[sender],
            tick: r.tick,
            values: r.values,
        };
        seq[sender] = seq[sender].wrapping_add(1);
        frames.push((r.tick, frame.encode()));
    }
    Ok(frames)
}

/// [`framed_day`]'s authenticated form: one day's send stream with
/// every report encoded as a v4 frame signed under the sender's key
/// from `keys` — what an authenticated deployment's radio actually
/// puts on the air. The attack studies splice
/// [`AttackModel`](crate::attack::AttackModel) forgeries into this
/// stream; an engine running [`set_auth`](crate::engine::StreamingEngine::set_auth)
/// with the same table accepts exactly the genuine frames.
///
/// # Errors
///
/// Same layout contract as [`day_deliveries`], plus every reporting
/// sensor must have a key in `keys`.
pub fn signed_day_frames(
    trace: &Trace,
    streams: &[usize],
    groups: &[(u16, Vec<usize>)],
    day: usize,
    office: u16,
    keys: &KeyTable,
) -> Result<Vec<(u64, Vec<u8>)>, String> {
    let mut seq = vec![0u32; groups.len()];
    let reports = trace.sensor_reports(day, streams);
    let mut frames: Vec<(u64, Vec<u8>)> = Vec::with_capacity(reports.len());
    for r in reports {
        let sender = groups.iter().position(|(s, _)| *s == r.sensor).ok_or_else(|| {
            format!("sensor {} reports frames but is not in the receiver layout", r.sensor)
        })?;
        let key = keys
            .get(r.sensor)
            .ok_or_else(|| format!("sensor {} has no key in the deployment table", r.sensor))?;
        let frame = Frame {
            office,
            channel: channel_kind_of(r.kind),
            sensor: r.sensor,
            seq: seq[sender],
            tick: r.tick,
            values: r.values,
        };
        seq[sender] = seq[sender].wrapping_add(1);
        frames.push((r.tick, frame.encode_auth(key)));
    }
    Ok(frames)
}

/// [`day_deliveries`] over a channel-typed sensor layout: reports come
/// from [`Trace::sensor_reports_fused`] (RF receivers then light
/// sensors, tick-major), each framed with its channel kind, so the
/// byte stream is what a fused deployment's radio would actually see.
///
/// Light-sensor and RF sensor ids share a number space but not a
/// channel, so the sender lookup matches on `(sensor, kind)`.
///
/// # Errors
///
/// Rejects a report whose `(sensor, kind)` pair is absent from
/// `groups` (the layout contract between
/// [`Trace::sensor_reports_fused`] and [`typed_groups`] was broken).
pub fn fused_day_deliveries(
    trace: &Trace,
    streams: &[usize],
    groups: &[SensorGroup],
    day: usize,
    link: &LinkModel,
    link_seed: u64,
) -> Result<Vec<Vec<u8>>, String> {
    let frames = framed_day_fused(trace, streams, groups, day)?;
    let mut rng = Rng::task_stream(link_seed, day as u64);
    Ok(link.deliver(&frames, &mut rng))
}

/// The framing half of [`fused_day_deliveries`], mirroring
/// [`framed_day`] over a channel-typed layout.
///
/// # Errors
///
/// Same layout contract as [`fused_day_deliveries`].
fn framed_day_fused(
    trace: &Trace,
    streams: &[usize],
    groups: &[SensorGroup],
    day: usize,
) -> Result<Vec<(u64, Vec<u8>)>, String> {
    let mut seq = vec![0u32; groups.len()];
    let reports = trace.sensor_reports_fused(day, streams);
    let mut frames: Vec<(u64, Vec<u8>)> = Vec::with_capacity(reports.len());
    for r in reports {
        let kind = channel_kind_of(r.kind);
        let sender = groups
            .iter()
            .position(|g| g.sensor == r.sensor && g.kind == kind)
            .ok_or_else(|| {
                format!(
                    "{} sensor {} reports frames but is not in the typed layout",
                    kind.label(),
                    r.sensor
                )
            })?;
        let frame = Frame {
            office: 0,
            channel: kind,
            sensor: r.sensor,
            seq: seq[sender],
            tick: r.tick,
            values: r.values,
        };
        seq[sender] = seq[sender].wrapping_add(1);
        frames.push((r.tick, frame.encode()));
    }
    Ok(frames)
}

/// Streams one recorded day of a light-enabled trace through `link`
/// into an engine built over the trace's typed layout, with decisions
/// arbitrated by `fusion`. The link randomness is seeded exactly as
/// [`stream_day`] seeds it, so an `fusion.mode == RssiOnly` replay of a
/// light-free trace is byte-identical to the untyped path.
///
/// # Errors
///
/// Propagates engine construction and layout errors (including a
/// fusion config whose workstation map disagrees with the trace).
#[allow(clippy::too_many_arguments)]
pub fn stream_day_fused(
    scenario: &Scenario,
    trace: &Trace,
    streams: &[usize],
    re: &RadioEnvironment,
    day: usize,
    cfg: EngineConfig,
    fusion: FusionConfig,
    link: &LinkModel,
    link_seed: u64,
    telemetry: &fadewich_telemetry::Telemetry,
) -> Result<DayReplay, String> {
    let groups = typed_groups(trace, streams);
    let inputs = scenario.input_trace(day, 0);
    let kma = Kma::new(&inputs);
    let mut engine = StreamingEngine::with_layout(cfg, groups.clone(), fusion, re, kma)?;
    engine.set_telemetry(telemetry.clone());
    // Hot path: one flat arrival buffer for the whole day instead of
    // an owned Vec per delivery. Same RNG stream, same byte stream.
    let frames = framed_day_fused(trace, streams, &groups, day)?;
    let mut rng = Rng::task_stream(link_seed, day as u64);
    let (mut arrivals, mut ends) = (Vec::new(), Vec::new());
    link.deliver_into(&frames, &mut rng, &mut arrivals, &mut ends);
    let mut start = 0;
    for &end in &ends {
        engine.ingest_bytes(&arrivals[start..end]);
        start = end;
    }
    engine.finish(trace.days()[day].n_ticks() as u64);
    engine.counters().export_into(telemetry);
    telemetry.counter_add("runtime_days_streamed", 1);

    Ok(DayReplay {
        day,
        actions: engine.actions().to_vec(),
        events: engine.events().to_vec(),
        counters: engine.counters().clone(),
    })
}

/// [`stream_day_checkpointed`] over a typed layout: checkpoints carry
/// the channel-kind tags and the light detector bank, and a crash
/// stops dead mid-delivery exactly as in the RSSI-only variant.
///
/// # Errors
///
/// Propagates engine construction, layout, and checkpoint-save errors.
#[allow(clippy::too_many_arguments)]
pub fn stream_day_checkpointed_fused(
    scenario: &Scenario,
    trace: &Trace,
    streams: &[usize],
    re: &RadioEnvironment,
    day: usize,
    cfg: EngineConfig,
    fusion: FusionConfig,
    link: &LinkModel,
    link_seed: u64,
    store: &mut CheckpointStore,
    crash_after: Option<u64>,
) -> Result<DayReplay, String> {
    let groups = typed_groups(trace, streams);
    let inputs = scenario.input_trace(day, 0);
    let kma = Kma::new(&inputs);
    let mut engine = StreamingEngine::with_layout(cfg, groups.clone(), fusion, re, kma)?;
    let mut checkpointer = Checkpointer::new(cfg.checkpoint_every_ticks);
    let deliveries = fused_day_deliveries(trace, streams, &groups, day, link, link_seed)?;
    let mut crashed = false;
    for (i, bytes) in deliveries.iter().enumerate() {
        engine.ingest_bytes(bytes);
        let stream_pos = (i + 1) as u64;
        let ticks = engine.counters().ticks_processed;
        if checkpointer.due(ticks) {
            let snap = engine.snapshot(day as u32, stream_pos, 0);
            store.save(ticks, &snap).map_err(|e| format!("checkpoint save failed: {e}"))?;
            checkpointer.advance(ticks);
        }
        if crash_after.is_some_and(|n| stream_pos >= n) {
            crashed = true;
            break;
        }
    }
    if !crashed {
        engine.finish(trace.days()[day].n_ticks() as u64);
    }
    Ok(DayReplay {
        day,
        actions: engine.actions().to_vec(),
        events: engine.events().to_vec(),
        counters: engine.counters().clone(),
    })
}

/// [`resume_day`] over a typed layout. The fusion config is deployment
/// configuration, not checkpointed state, so the caller passes the same
/// `fusion` the crashed process ran with; the restore rejects a
/// snapshot whose light detector bank disagrees with it.
///
/// # Errors
///
/// Propagates engine restore, layout, and day-mismatch errors.
#[allow(clippy::too_many_arguments)]
pub fn resume_day_fused(
    scenario: &Scenario,
    trace: &Trace,
    streams: &[usize],
    re: &RadioEnvironment,
    cfg: EngineConfig,
    fusion: FusionConfig,
    link: &LinkModel,
    link_seed: u64,
    snap: &EngineSnapshot,
) -> Result<DayReplay, String> {
    let day = snap.day as usize;
    if day >= trace.days().len() {
        return Err(format!(
            "checkpoint is for day {day} but the scenario has {} days",
            trace.days().len()
        ));
    }
    let groups = typed_groups(trace, streams);
    let inputs = scenario.input_trace(day, 0);
    let kma = Kma::new(&inputs);
    let mut engine = StreamingEngine::restore_with_layout(cfg, groups.clone(), fusion, re, kma, snap)?;
    let deliveries = fused_day_deliveries(trace, streams, &groups, day, link, link_seed)?;
    if snap.stream_pos as usize > deliveries.len() {
        return Err(format!(
            "checkpoint claims {} ingested deliveries but the day only has {}",
            snap.stream_pos,
            deliveries.len()
        ));
    }
    for bytes in &deliveries[snap.stream_pos as usize..] {
        engine.ingest_bytes(bytes);
    }
    engine.finish(trace.days()[day].n_ticks() as u64);
    Ok(DayReplay {
        day,
        actions: engine.actions().to_vec(),
        events: engine.events().to_vec(),
        counters: engine.counters().clone(),
    })
}

/// Streams one recorded day through `link` into a fresh engine.
///
/// Sensor reports are framed in send order with per-sensor sequence
/// numbers; the link's randomness comes from
/// `Rng::task_stream(link_seed, day)` so replays are deterministic and
/// per-day independent.
///
/// # Errors
///
/// Propagates engine construction errors.
pub fn stream_day(
    scenario: &Scenario,
    trace: &Trace,
    streams: &[usize],
    re: &RadioEnvironment,
    day: usize,
    cfg: EngineConfig,
    link: &LinkModel,
    link_seed: u64,
) -> Result<DayReplay, String> {
    stream_day_with_telemetry(
        scenario,
        trace,
        streams,
        re,
        day,
        cfg,
        link,
        link_seed,
        &fadewich_telemetry::Telemetry::disabled(),
    )
}

/// [`stream_day`] with a telemetry handle threaded through the engine:
/// the decision audit trail (MD window spans, RE margins, rule
/// verdicts), quarantine/recovery events, and — at end of day — the
/// runtime counters all land in the handle's sink/registry. Trace
/// ticks are the day-local logical tick clock, so two replays of the
/// same seeded scenario emit byte-identical traces.
///
/// # Errors
///
/// Propagates engine construction errors.
#[allow(clippy::too_many_arguments)]
pub fn stream_day_with_telemetry(
    scenario: &Scenario,
    trace: &Trace,
    streams: &[usize],
    re: &RadioEnvironment,
    day: usize,
    cfg: EngineConfig,
    link: &LinkModel,
    link_seed: u64,
    telemetry: &fadewich_telemetry::Telemetry,
) -> Result<DayReplay, String> {
    let groups = trace.receiver_groups(streams);
    let inputs = scenario.input_trace(day, 0);
    let kma = Kma::new(&inputs);
    let mut engine = StreamingEngine::new(cfg, groups.clone(), re, kma)?;
    engine.set_telemetry(telemetry.clone());
    // Hot path: one flat arrival buffer for the whole day instead of
    // an owned Vec per delivery. Same RNG stream, same byte stream.
    let frames = framed_day(trace, streams, &groups, day, 0)?;
    let mut rng = Rng::task_stream(link_seed, day as u64);
    let (mut arrivals, mut ends) = (Vec::new(), Vec::new());
    link.deliver_into(&frames, &mut rng, &mut arrivals, &mut ends);
    let mut start = 0;
    for &end in &ends {
        engine.ingest_bytes(&arrivals[start..end]);
        start = end;
    }
    engine.finish(trace.days()[day].n_ticks() as u64);
    engine.counters().export_into(telemetry);
    telemetry.counter_add("runtime_days_streamed", 1);

    Ok(DayReplay {
        day,
        actions: engine.actions().to_vec(),
        events: engine.events().to_vec(),
        counters: engine.counters().clone(),
    })
}

/// Like [`stream_day`], but persists a checkpoint into `store` at the
/// engine's configured cadence ([`EngineConfig::checkpoint_every_ticks`],
/// always at delivery boundaries, stamped with the day-local processed
/// tick count) and, when `crash_after` is set, stops dead after that
/// many deliveries — no flush, no tail padding — exactly like a
/// process crash. The partial [`DayReplay`] is what the dying process
/// had produced so far.
///
/// # Errors
///
/// Propagates engine construction, layout, and checkpoint-save errors.
pub fn stream_day_checkpointed(
    scenario: &Scenario,
    trace: &Trace,
    streams: &[usize],
    re: &RadioEnvironment,
    day: usize,
    cfg: EngineConfig,
    link: &LinkModel,
    link_seed: u64,
    store: &mut CheckpointStore,
    crash_after: Option<u64>,
) -> Result<DayReplay, String> {
    let groups = trace.receiver_groups(streams);
    let inputs = scenario.input_trace(day, 0);
    let kma = Kma::new(&inputs);
    let mut engine = StreamingEngine::new(cfg, groups.clone(), re, kma)?;
    let mut checkpointer = Checkpointer::new(cfg.checkpoint_every_ticks);
    let deliveries = day_deliveries(trace, streams, &groups, day, link, link_seed)?;
    let mut crashed = false;
    for (i, bytes) in deliveries.iter().enumerate() {
        engine.ingest_bytes(bytes);
        let stream_pos = (i + 1) as u64;
        let ticks = engine.counters().ticks_processed;
        if checkpointer.due(ticks) {
            let snap = engine.snapshot(day as u32, stream_pos, 0);
            store.save(ticks, &snap).map_err(|e| format!("checkpoint save failed: {e}"))?;
            checkpointer.advance(ticks);
        }
        if crash_after.is_some_and(|n| stream_pos >= n) {
            crashed = true;
            break;
        }
    }
    if !crashed {
        engine.finish(trace.days()[day].n_ticks() as u64);
    }
    Ok(DayReplay {
        day,
        actions: engine.actions().to_vec(),
        events: engine.events().to_vec(),
        counters: engine.counters().clone(),
    })
}

/// Resumes a crashed day from a checkpoint: rebuilds the engine from
/// `snap`, replays the same deterministic delivery sequence from
/// `snap.stream_pos`, and runs the day to completion. The returned
/// action/event logs contain only the **post-resume** portion; stitch
/// them after the first `snap.controller.n_actions` actions /
/// `snap.events_emitted` events of the crashed run to reconstruct the
/// full day.
///
/// # Errors
///
/// Propagates engine restore, layout, and day-mismatch errors.
pub fn resume_day(
    scenario: &Scenario,
    trace: &Trace,
    streams: &[usize],
    re: &RadioEnvironment,
    cfg: EngineConfig,
    link: &LinkModel,
    link_seed: u64,
    snap: &EngineSnapshot,
) -> Result<DayReplay, String> {
    let day = snap.day as usize;
    if day >= trace.days().len() {
        return Err(format!(
            "checkpoint is for day {day} but the scenario has {} days",
            trace.days().len()
        ));
    }
    let groups = trace.receiver_groups(streams);
    let inputs = scenario.input_trace(day, 0);
    let kma = Kma::new(&inputs);
    let mut engine = StreamingEngine::restore(cfg, groups.clone(), re, kma, snap)?;
    let deliveries = day_deliveries(trace, streams, &groups, day, link, link_seed)?;
    if snap.stream_pos as usize > deliveries.len() {
        return Err(format!(
            "checkpoint claims {} ingested deliveries but the day only has {}",
            snap.stream_pos,
            deliveries.len()
        ));
    }
    for bytes in &deliveries[snap.stream_pos as usize..] {
        engine.ingest_bytes(bytes);
    }
    engine.finish(trace.days()[day].n_ticks() as u64);
    Ok(DayReplay {
        day,
        actions: engine.actions().to_vec(),
        events: engine.events().to_vec(),
        counters: engine.counters().clone(),
    })
}
