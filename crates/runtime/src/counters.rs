//! Runtime observability: counters and per-stage latency histograms.
//!
//! Everything the engine does to keep running under loss is counted
//! here, printable as a human summary ([`RuntimeCounters::summary`])
//! and dumpable as JSON ([`RuntimeCounters::to_json`] — hand-rolled,
//! the workspace has no serde). Latencies are wall-clock and therefore
//! the one non-deterministic output of a replay; decisions and all
//! other counters are seed-reproducible.
//!
//! Timing goes through the engine's [`fadewich_telemetry::Clock`]
//! handle — this module only *stores* durations, it never reads the
//! wall clock itself (the `Instant::now()` lint in `scripts/ci.sh`
//! keeps it that way). [`RuntimeCounters::export_into`] mirrors every
//! counter into the shared telemetry registry for `--metrics-out` and
//! Prometheus exposition.

use fadewich_core::stream::ChannelKind;
use fadewich_telemetry::Telemetry;

/// Log₂-bucketed latency histogram (bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds; bucket 0 also takes sub-µs samples).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHisto {
    buckets: [u64; 20],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl LatencyHisto {
    /// Records one duration in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        let us = ns / 1000;
        let idx = if us == 0 { 0 } else { (63 - us.leading_zeros()) as usize };
        self.buckets[idx.min(self.buckets.len() - 1)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 { 0 } else { (self.sum_ns / self.count as u128) as u64 }
    }

    /// Largest recorded sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Upper bucket bound (µs) below which `q` of samples fall —
    /// a conservative percentile read off the histogram.
    ///
    /// Samples past the top bucket saturate into it, so whenever the
    /// requested quantile lands on the histogram's final populated
    /// bucket the nominal bound is clamped up to cover the observed
    /// maximum — otherwise `quantile_us(1.0)` could sit *below*
    /// [`max_ns`](Self::max_ns).
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let max_us = self.max_ns.div_ceil(1000);
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let bound = 1u64 << (i + 1);
                return if seen == self.count { bound.max(max_us) } else { bound };
            }
        }
        max_us.max(1u64 << self.buckets.len())
    }

    fn json(&self) -> String {
        let buckets: Vec<String> = self.buckets.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"count\":{},\"mean_ns\":{},\"max_ns\":{},\"p50_us\":{},\"p99_us\":{},\"buckets\":[{}]}}",
            self.count,
            self.mean_ns(),
            self.max_ns,
            self.quantile_us(0.50),
            self.quantile_us(0.99),
            buckets.join(",")
        )
    }

    /// Mirrors the recorded samples into a wall-clock registry
    /// histogram (bucket-approximated: each log₂ bucket re-records its
    /// count at the bucket's lower bound; count, max and quantile
    /// bounds survive, exact sums do not).
    fn export_into(&self, telemetry: &Telemetry, name: &str) {
        for (i, &c) in self.buckets.iter().enumerate() {
            let ns = (1u64 << i) * 1000;
            for _ in 0..c {
                telemetry.histo_record_wall(name, ns);
            }
        }
    }
}

/// The stream-health counters that are worth slicing per channel kind
/// once a deployment mixes RSSI links with other sensor modalities.
/// Each field is a channel-local share of the matching
/// [`RuntimeCounters`] total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelCounters {
    /// Frames of this channel kind accepted into the reorder buffer.
    pub frames_in: u64,
    /// Missing samples of this kind patched by hold-last-value.
    pub gap_fills: u64,
    /// Stream-ticks of this kind masked out (stale or quarantined).
    pub masked_stream_ticks: u64,
    /// Senders of this kind quarantined for silence.
    pub quarantines: u64,
    /// Quarantined senders of this kind that came back.
    pub recoveries: u64,
}

impl ChannelCounters {
    /// True when nothing of this kind was ever observed — the
    /// condition under which the summary omits the channel breakdown.
    pub fn is_empty(&self) -> bool {
        *self == ChannelCounters::default()
    }

    fn json(&self) -> String {
        format!(
            "{{\"frames_in\":{},\"gap_fills\":{},\"masked_stream_ticks\":{},\
             \"quarantines\":{},\"recoveries\":{}}}",
            self.frames_in,
            self.gap_fills,
            self.masked_stream_ticks,
            self.quarantines,
            self.recoveries
        )
    }
}

/// Everything a replay/live run counts. Fields are public so the
/// engine (and tests) can add to them directly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeCounters {
    /// Frames successfully decoded and offered to the reorder buffer.
    pub frames_in: u64,
    /// Raw bytes ingested (including rejected frames).
    pub bytes_in: u64,
    /// Byte buffers rejected for a CRC-32 mismatch.
    pub corrupt_crc: u64,
    /// Byte buffers rejected for framing damage (bad magic, bad
    /// length, truncation).
    pub corrupt_framing: u64,
    /// Well-formed frames rejected at the engine boundary: unknown
    /// sensor id or a payload that disagrees with the sensor layout.
    pub corrupt_unknown_sensor: u64,
    /// Frames for a (sensor, tick) slot that was already filled.
    pub frames_duplicate: u64,
    /// Frames that arrived after their tick had been emitted.
    pub frames_late: u64,
    /// Sequence-number regressions observed (out-of-order delivery).
    pub frames_reordered: u64,
    /// Ticks advanced through MD → RE → Controller.
    pub ticks_processed: u64,
    /// Missing samples patched by hold-last-value.
    pub gap_fills: u64,
    /// Stream-ticks masked out of `s_t` (stale or quarantined).
    pub masked_stream_ticks: u64,
    /// Sensors quarantined for silence.
    pub quarantines: u64,
    /// Quarantined sensors that came back.
    pub recoveries: u64,
    /// Frames rejected for an authentication mismatch with the engine
    /// mode: in an authenticated deployment, any v1–v3 frame and any
    /// v4 frame whose MAC does not verify; in a legacy deployment, any
    /// v4 frame (the station has no keys to verify it with).
    pub frames_unauthenticated: u64,
    /// Authenticated frames rejected by the sequence-space anti-replay
    /// window (a captured-and-replayed frame carries a *valid* MAC).
    pub frames_replayed: u64,
    /// Auth rejections beyond a sensor's per-window reject budget —
    /// the flood tail the containment layer stops attributing one by
    /// one.
    pub frames_rate_limited: u64,
    /// Sensors attack-quarantined for exceeding their reject budget.
    pub attack_quarantines: u64,
    /// Largest observed distance between ingest frontier and emission.
    pub watermark_lag_max: u64,
    /// Per-channel-kind slices of the stream-health counters, indexed
    /// by [`ChannelKind::index`]. Pure-RSSI deployments leave every
    /// non-RSSI slot empty, and the summary then omits the breakdown.
    pub channels: [ChannelCounters; ChannelKind::COUNT],
    /// Wire-decode stage latency.
    pub decode: LatencyHisto,
    /// Per-tick pipeline (MD → RE → Controller) latency.
    pub step: LatencyHisto,
}

impl RuntimeCounters {
    /// Mutable access to one channel's counter slice.
    pub fn channel_mut(&mut self, kind: ChannelKind) -> &mut ChannelCounters {
        &mut self.channels[kind.index()]
    }

    /// One channel's counter slice.
    pub fn channel(&self, kind: ChannelKind) -> &ChannelCounters {
        &self.channels[kind.index()]
    }

    /// True when any non-RSSI channel has counted anything — the
    /// summary only prints the per-channel breakdown for deployments
    /// that actually mix modalities, keeping pure-RSSI stdout
    /// byte-identical to pre-fusion builds.
    pub fn has_mixed_channels(&self) -> bool {
        ChannelKind::ALL
            .iter()
            .any(|&k| k != ChannelKind::Rssi && !self.channel(k).is_empty())
    }
    /// Total rejected frames across every cause — the headline number
    /// the summary and checkpoint layers have always reported, now
    /// derived from the per-reason counters.
    pub fn frames_corrupt(&self) -> u64 {
        self.corrupt_crc + self.corrupt_framing + self.corrupt_unknown_sensor
    }

    /// True when any authentication counter is nonzero. The summary
    /// only prints the auth line for deployments that actually saw
    /// auth activity, keeping legacy-unauthenticated stdout
    /// byte-identical to pre-auth builds.
    pub fn has_auth_activity(&self) -> bool {
        self.frames_unauthenticated != 0
            || self.frames_replayed != 0
            || self.frames_rate_limited != 0
            || self.attack_quarantines != 0
    }

    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        format!("{}\n{}", self.deterministic_summary(), self.latency_summary())
    }

    /// The seed-deterministic counter lines of [`summary`](Self::summary)
    /// — everything except wall-clock latency. `fadewichd` prints this
    /// to stdout, keeping a `replay` and a `serve --model` of the same
    /// scenario byte-comparable (the train/serve parity gate in
    /// `scripts/ci.sh` relies on it).
    pub fn deterministic_summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "frames      in {}  corrupt {}  duplicate {}  late {}  reordered {}\n",
            self.frames_in,
            self.frames_corrupt(),
            self.frames_duplicate,
            self.frames_late,
            self.frames_reordered
        ));
        s.push_str(&format!(
            "ticks       processed {}  gap-fills {}  masked stream-ticks {}\n",
            self.ticks_processed, self.gap_fills, self.masked_stream_ticks
        ));
        s.push_str(&format!(
            "sensors     quarantines {}  recoveries {}  watermark lag max {} ticks",
            self.quarantines, self.recoveries, self.watermark_lag_max
        ));
        if self.has_auth_activity() {
            s.push_str(&format!(
                "\nauth        unauthenticated {}  replayed {}  rate-limited {}  \
                 attack-quarantines {}",
                self.frames_unauthenticated,
                self.frames_replayed,
                self.frames_rate_limited,
                self.attack_quarantines
            ));
        }
        if self.has_mixed_channels() {
            for kind in ChannelKind::ALL {
                let c = self.channel(kind);
                s.push_str(&format!(
                    "\nchannel     {:<5}  frames {}  gap-fills {}  masked {}  \
                     quarantines {}  recoveries {}",
                    kind.label(),
                    c.frames_in,
                    c.gap_fills,
                    c.masked_stream_ticks,
                    c.quarantines,
                    c.recoveries
                ));
            }
        }
        s
    }

    /// The wall-clock latency line: the only non-deterministic part of
    /// the summary.
    pub fn latency_summary(&self) -> String {
        format!(
            "latency     decode mean {} ns (p99 < {} us)  step mean {} ns (p99 < {} us, max {} us)",
            self.decode.mean_ns(),
            self.decode.quantile_us(0.99),
            self.step.mean_ns(),
            self.step.quantile_us(0.99),
            self.step.max_ns() / 1000
        )
    }

    /// JSON object with every counter and both histograms. The
    /// `frames_corrupt` total is kept for dashboard compatibility,
    /// next to the per-reason breakdown.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"frames_in\":{},\"bytes_in\":{},\"frames_corrupt\":{},\"corrupt_crc\":{},\
             \"corrupt_framing\":{},\"corrupt_unknown_sensor\":{},\"frames_duplicate\":{},\
             \"frames_late\":{},\"frames_reordered\":{},\"ticks_processed\":{},\"gap_fills\":{},\
             \"masked_stream_ticks\":{},\"quarantines\":{},\"recoveries\":{},\
             \"frames_unauthenticated\":{},\"frames_replayed\":{},\"frames_rate_limited\":{},\
             \"attack_quarantines\":{},\
             \"watermark_lag_max\":{},\"channels\":{{{}}},\"decode\":{},\"step\":{}}}",
            self.frames_in,
            self.bytes_in,
            self.frames_corrupt(),
            self.corrupt_crc,
            self.corrupt_framing,
            self.corrupt_unknown_sensor,
            self.frames_duplicate,
            self.frames_late,
            self.frames_reordered,
            self.ticks_processed,
            self.gap_fills,
            self.masked_stream_ticks,
            self.quarantines,
            self.recoveries,
            self.frames_unauthenticated,
            self.frames_replayed,
            self.frames_rate_limited,
            self.attack_quarantines,
            self.watermark_lag_max,
            ChannelKind::ALL
                .iter()
                .map(|&k| format!("\"{}\":{}", k.label(), self.channel(k).json()))
                .collect::<Vec<_>>()
                .join(","),
            self.decode.json(),
            self.step.json()
        )
    }

    /// Folds every counter into the shared telemetry registry under
    /// `runtime_*` names (counters accumulate across days; the
    /// watermark lag becomes a gauge holding the worst value seen).
    pub fn export_into(&self, telemetry: &Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        for (name, v) in [
            ("runtime_frames_in", self.frames_in),
            ("runtime_bytes_in", self.bytes_in),
            ("runtime_frames_corrupt", self.frames_corrupt()),
            ("runtime_corrupt_crc", self.corrupt_crc),
            ("runtime_corrupt_framing", self.corrupt_framing),
            ("runtime_corrupt_unknown_sensor", self.corrupt_unknown_sensor),
            ("runtime_frames_duplicate", self.frames_duplicate),
            ("runtime_frames_late", self.frames_late),
            ("runtime_frames_reordered", self.frames_reordered),
            ("runtime_ticks_processed", self.ticks_processed),
            ("runtime_gap_fills", self.gap_fills),
            ("runtime_masked_stream_ticks", self.masked_stream_ticks),
            ("runtime_quarantines", self.quarantines),
            ("runtime_recoveries", self.recoveries),
        ] {
            telemetry.counter_add(name, v);
        }
        // Auth counters only exist in the registry once auth activity
        // happened — legacy runs keep their pre-auth metrics output.
        if self.has_auth_activity() {
            for (name, v) in [
                ("runtime_frames_unauthenticated", self.frames_unauthenticated),
                ("runtime_frames_replayed", self.frames_replayed),
                ("runtime_frames_rate_limited", self.frames_rate_limited),
                ("runtime_attack_quarantines", self.attack_quarantines),
            ] {
                telemetry.counter_add(name, v);
            }
        }
        for kind in ChannelKind::ALL {
            let c = self.channel(kind);
            if c.is_empty() {
                continue;
            }
            let label = kind.label();
            for (metric, v) in [
                ("frames_in", c.frames_in),
                ("gap_fills", c.gap_fills),
                ("masked_stream_ticks", c.masked_stream_ticks),
                ("quarantines", c.quarantines),
                ("recoveries", c.recoveries),
            ] {
                telemetry.counter_add(&format!("runtime_channel_{label}_{metric}"), v);
            }
        }
        let prev = telemetry
            .with_registry(|r| r.counter("runtime_watermark_lag_max"))
            .unwrap_or(0);
        if self.watermark_lag_max > prev {
            telemetry.gauge_set("runtime_watermark_lag_max", self.watermark_lag_max as f64);
        }
        self.decode.export_into(telemetry, "runtime_decode_ns");
        self.step.export_into(telemetry, "runtime_step_ns");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHisto::default();
        for _ in 0..99 {
            h.record_ns(1_500); // 1.5 µs → bucket 0
        }
        h.record_ns(2_000_000); // 2 ms → a high bucket
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.5), 2);
        assert!(h.quantile_us(1.0) >= 2048);
        assert_eq!(h.max_ns(), 2_000_000);
        assert!(h.mean_ns() > 1_500);
    }

    #[test]
    fn top_bucket_quantile_covers_observed_max() {
        // A sample far past the last bucket (2^25 µs ≫ the 2^20 µs
        // top-bucket bound) saturates into bucket 19; the reported
        // quantile bound must still cover it instead of under-reporting
        // the old fixed 2^20.
        let mut h = LatencyHisto::default();
        for _ in 0..9 {
            h.record_ns(1_500);
        }
        let huge_ns = (1u64 << 25) * 1000;
        h.record_ns(huge_ns);
        assert!(
            h.quantile_us(1.0) * 1000 >= h.max_ns(),
            "p100 {} us below max {} ns",
            h.quantile_us(1.0),
            h.max_ns()
        );
        assert_eq!(h.quantile_us(1.0), 1 << 25);
        // Lower quantiles are untouched by the clamp...
        assert_eq!(h.quantile_us(0.5), 2);
        // ...and quantiles stay monotone in q.
        let mut prev = 0;
        for i in 0..=10 {
            let b = h.quantile_us(i as f64 / 10.0);
            assert!(b >= prev, "not monotone at q={}", i as f64 / 10.0);
            prev = b;
        }
    }

    #[test]
    fn json_is_parseable_shape() {
        let mut c = RuntimeCounters::default();
        c.frames_in = 7;
        c.step.record_ns(10_000);
        let j = c.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"frames_in\":7"));
        assert!(j.contains("\"step\":{\"count\":1"));
        // Balanced braces, no trailing commas.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",}") && !j.contains(",]"));
    }

    #[test]
    fn summary_mentions_every_headline_counter() {
        let c = RuntimeCounters::default();
        let s = c.summary();
        for needle in ["frames", "ticks", "sensors", "latency", "watermark lag"] {
            assert!(s.contains(needle), "summary missing {needle}: {s}");
        }
    }

    #[test]
    fn corrupt_split_sums_into_total() {
        let mut c = RuntimeCounters::default();
        c.corrupt_crc = 3;
        c.corrupt_framing = 2;
        c.corrupt_unknown_sensor = 1;
        assert_eq!(c.frames_corrupt(), 6);
        // The summary still reports the derived total on the same line.
        assert!(c.deterministic_summary().contains("corrupt 6"), "{}", c.deterministic_summary());
        let j = c.to_json();
        assert!(j.contains("\"frames_corrupt\":6"));
        assert!(j.contains("\"corrupt_crc\":3"));
        assert!(j.contains("\"corrupt_framing\":2"));
        assert!(j.contains("\"corrupt_unknown_sensor\":1"));
    }

    #[test]
    fn channel_breakdown_only_prints_for_mixed_deployments() {
        // Pure-RSSI runs (even busy ones) keep the exact 3-line
        // summary — the serve/replay stdout-parity gate depends on it.
        let mut c = RuntimeCounters::default();
        c.frames_in = 100;
        c.channel_mut(ChannelKind::Rssi).frames_in = 100;
        assert!(!c.has_mixed_channels());
        assert_eq!(c.deterministic_summary().lines().count(), 3);
        assert!(!c.deterministic_summary().contains("channel"));
        // One light frame flips the breakdown on, for every kind.
        c.channel_mut(ChannelKind::AmbientLight).frames_in = 1;
        assert!(c.has_mixed_channels());
        let s = c.deterministic_summary();
        assert_eq!(s.lines().count(), 3 + ChannelKind::COUNT);
        assert!(s.contains("channel     rssi   frames 100"), "{s}");
        assert!(s.contains("channel     light  frames 1"), "{s}");
    }

    #[test]
    fn auth_line_only_prints_for_authenticated_activity() {
        // Legacy runs keep the exact 3-line summary and a registry
        // without auth metrics — the serve/replay parity gates depend
        // on pre-auth output staying byte-identical.
        let mut c = RuntimeCounters::default();
        c.frames_in = 50;
        assert!(!c.has_auth_activity());
        assert_eq!(c.deterministic_summary().lines().count(), 3);
        assert!(!c.deterministic_summary().contains("auth"));
        let t = Telemetry::metrics_only();
        c.export_into(&t);
        assert!(!t.metrics_json(false).unwrap().contains("unauthenticated"));
        // One auth rejection flips the line (and the metrics) on.
        c.frames_unauthenticated = 3;
        c.frames_replayed = 2;
        c.frames_rate_limited = 1;
        c.attack_quarantines = 1;
        assert!(c.has_auth_activity());
        let s = c.deterministic_summary();
        assert_eq!(s.lines().count(), 4);
        assert!(
            s.contains("auth        unauthenticated 3  replayed 2  rate-limited 1"),
            "{s}"
        );
        assert!(s.contains("attack-quarantines 1"), "{s}");
        let j = c.to_json();
        assert!(j.contains("\"frames_unauthenticated\":3"), "{j}");
        assert!(j.contains("\"frames_replayed\":2"), "{j}");
        assert!(j.contains("\"attack_quarantines\":1"), "{j}");
        let t = Telemetry::metrics_only();
        c.export_into(&t);
        t.with_registry(|r| {
            assert_eq!(r.counter("runtime_frames_unauthenticated"), 3);
            assert_eq!(r.counter("runtime_frames_replayed"), 2);
            assert_eq!(r.counter("runtime_frames_rate_limited"), 1);
            assert_eq!(r.counter("runtime_attack_quarantines"), 1);
        });
    }

    #[test]
    fn channel_counters_appear_in_json_and_registry() {
        let mut c = RuntimeCounters::default();
        c.channel_mut(ChannelKind::Rssi).gap_fills = 4;
        c.channel_mut(ChannelKind::AmbientLight).quarantines = 2;
        let j = c.to_json();
        assert!(j.contains("\"channels\":{\"rssi\":{"), "{j}");
        assert!(j.contains("\"light\":{"), "{j}");
        assert!(j.contains("\"quarantines\":2"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let t = Telemetry::metrics_only();
        c.export_into(&t);
        t.with_registry(|r| {
            assert_eq!(r.counter("runtime_channel_rssi_gap_fills"), 4);
            assert_eq!(r.counter("runtime_channel_light_quarantines"), 2);
        });
    }

    #[test]
    fn export_mirrors_counters_into_registry() {
        let mut c = RuntimeCounters::default();
        c.frames_in = 5;
        c.corrupt_crc = 2;
        c.watermark_lag_max = 9;
        c.step.record_ns(4_000);
        let t = Telemetry::metrics_only();
        c.export_into(&t);
        c.export_into(&t); // two days accumulate
        t.with_registry(|r| {
            assert_eq!(r.counter("runtime_frames_in"), 10);
            assert_eq!(r.counter("runtime_corrupt_crc"), 4);
            assert_eq!(r.histogram("runtime_step_ns").map(|h| h.count()), Some(2));
        });
        // The wall histograms stay out of the deterministic dump.
        assert!(!t.metrics_json(false).unwrap().contains("runtime_step_ns"));
        assert!(t.metrics_json(true).unwrap().contains("runtime_step_ns"));
        // Disabled handles are a no-op.
        c.export_into(&Telemetry::disabled());
    }
}
