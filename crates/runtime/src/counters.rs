//! Runtime observability: counters and per-stage latency histograms.
//!
//! Everything the engine does to keep running under loss is counted
//! here, printable as a human summary ([`RuntimeCounters::summary`])
//! and dumpable as JSON ([`RuntimeCounters::to_json`] — hand-rolled,
//! the workspace has no serde). Latencies are wall-clock and therefore
//! the one non-deterministic output of a replay; decisions and all
//! other counters are seed-reproducible.

use std::time::Instant;

/// Log₂-bucketed latency histogram (bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds; bucket 0 also takes sub-µs samples).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHisto {
    buckets: [u64; 20],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl LatencyHisto {
    /// Records one duration in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        let us = ns / 1000;
        let idx = if us == 0 { 0 } else { (63 - us.leading_zeros()) as usize };
        self.buckets[idx.min(self.buckets.len() - 1)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Times `f` and records the elapsed wall-clock.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record_ns(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        out
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 { 0 } else { (self.sum_ns / self.count as u128) as u64 }
    }

    /// Largest recorded sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Upper bucket bound (µs) below which `q` of samples fall —
    /// a conservative percentile read off the histogram.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return 1u64 << (i + 1);
            }
        }
        1u64 << self.buckets.len()
    }

    fn json(&self) -> String {
        let buckets: Vec<String> = self.buckets.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"count\":{},\"mean_ns\":{},\"max_ns\":{},\"p50_us\":{},\"p99_us\":{},\"buckets\":[{}]}}",
            self.count,
            self.mean_ns(),
            self.max_ns,
            self.quantile_us(0.50),
            self.quantile_us(0.99),
            buckets.join(",")
        )
    }
}

/// Everything a replay/live run counts. Fields are public so the
/// engine (and tests) can add to them directly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeCounters {
    /// Frames successfully decoded and offered to the reorder buffer.
    pub frames_in: u64,
    /// Raw bytes ingested (including rejected frames).
    pub bytes_in: u64,
    /// Byte buffers rejected by the wire codec (checksum/magic/length).
    pub frames_corrupt: u64,
    /// Frames for a (sensor, tick) slot that was already filled.
    pub frames_duplicate: u64,
    /// Frames that arrived after their tick had been emitted.
    pub frames_late: u64,
    /// Sequence-number regressions observed (out-of-order delivery).
    pub frames_reordered: u64,
    /// Ticks advanced through MD → RE → Controller.
    pub ticks_processed: u64,
    /// Missing samples patched by hold-last-value.
    pub gap_fills: u64,
    /// Stream-ticks masked out of `s_t` (stale or quarantined).
    pub masked_stream_ticks: u64,
    /// Sensors quarantined for silence.
    pub quarantines: u64,
    /// Quarantined sensors that came back.
    pub recoveries: u64,
    /// Largest observed distance between ingest frontier and emission.
    pub watermark_lag_max: u64,
    /// Wire-decode stage latency.
    pub decode: LatencyHisto,
    /// Per-tick pipeline (MD → RE → Controller) latency.
    pub step: LatencyHisto,
}

impl RuntimeCounters {
    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        format!("{}\n{}", self.deterministic_summary(), self.latency_summary())
    }

    /// The seed-deterministic counter lines of [`summary`](Self::summary)
    /// — everything except wall-clock latency. `fadewichd` prints this
    /// to stdout, keeping a `replay` and a `serve --model` of the same
    /// scenario byte-comparable (the train/serve parity gate in
    /// `scripts/ci.sh` relies on it).
    pub fn deterministic_summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "frames      in {}  corrupt {}  duplicate {}  late {}  reordered {}\n",
            self.frames_in,
            self.frames_corrupt,
            self.frames_duplicate,
            self.frames_late,
            self.frames_reordered
        ));
        s.push_str(&format!(
            "ticks       processed {}  gap-fills {}  masked stream-ticks {}\n",
            self.ticks_processed, self.gap_fills, self.masked_stream_ticks
        ));
        s.push_str(&format!(
            "sensors     quarantines {}  recoveries {}  watermark lag max {} ticks",
            self.quarantines, self.recoveries, self.watermark_lag_max
        ));
        s
    }

    /// The wall-clock latency line: the only non-deterministic part of
    /// the summary.
    pub fn latency_summary(&self) -> String {
        format!(
            "latency     decode mean {} ns (p99 < {} us)  step mean {} ns (p99 < {} us, max {} us)",
            self.decode.mean_ns(),
            self.decode.quantile_us(0.99),
            self.step.mean_ns(),
            self.step.quantile_us(0.99),
            self.step.max_ns() / 1000
        )
    }

    /// JSON object with every counter and both histograms.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"frames_in\":{},\"bytes_in\":{},\"frames_corrupt\":{},\"frames_duplicate\":{},\
             \"frames_late\":{},\"frames_reordered\":{},\"ticks_processed\":{},\"gap_fills\":{},\
             \"masked_stream_ticks\":{},\"quarantines\":{},\"recoveries\":{},\
             \"watermark_lag_max\":{},\"decode\":{},\"step\":{}}}",
            self.frames_in,
            self.bytes_in,
            self.frames_corrupt,
            self.frames_duplicate,
            self.frames_late,
            self.frames_reordered,
            self.ticks_processed,
            self.gap_fills,
            self.masked_stream_ticks,
            self.quarantines,
            self.recoveries,
            self.watermark_lag_max,
            self.decode.json(),
            self.step.json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHisto::default();
        for _ in 0..99 {
            h.record_ns(1_500); // 1.5 µs → bucket 0
        }
        h.record_ns(2_000_000); // 2 ms → a high bucket
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.5), 2);
        assert!(h.quantile_us(1.0) >= 2048);
        assert_eq!(h.max_ns(), 2_000_000);
        assert!(h.mean_ns() > 1_500);
    }

    #[test]
    fn json_is_parseable_shape() {
        let mut c = RuntimeCounters::default();
        c.frames_in = 7;
        c.step.record_ns(10_000);
        let j = c.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"frames_in\":7"));
        assert!(j.contains("\"step\":{\"count\":1"));
        // Balanced braces, no trailing commas.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",}") && !j.contains(",]"));
    }

    #[test]
    fn summary_mentions_every_headline_counter() {
        let c = RuntimeCounters::default();
        let s = c.summary();
        for needle in ["frames", "ticks", "sensors", "latency", "watermark lag"] {
            assert!(s.contains(needle), "summary missing {needle}: {s}");
        }
    }
}
