//! A configurable lossy transport between sensors and the station.
//!
//! Replay runs pipe encoded frames through a [`LinkModel`] that drops,
//! duplicates, delays and corrupts them with seeded randomness
//! (callers draw the [`Rng`] from `Rng::task_stream`, so replays are
//! deterministic and independent of any other randomness in the run).
//!
//! Delay is quantized in ticks and bounded by `jitter_ticks`, which is
//! exactly the reordering guarantee the reorder buffer's watermark rule
//! assumes: a delayed frame can arrive at most `jitter_ticks` of
//! send-time later than an undelayed one.

use fadewich_stats::rng::Rng;

/// Loss/jitter knobs for a replayed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Probability a frame is dropped outright.
    pub drop_p: f64,
    /// Probability a delivered frame arrives twice.
    pub dup_p: f64,
    /// Probability a delivered copy has one bit flipped in flight.
    pub corrupt_p: f64,
    /// Maximum delivery delay, in ticks (0 = in-order).
    pub jitter_ticks: u64,
}

impl LinkModel {
    /// A perfect link: everything arrives once, in order, intact.
    pub fn lossless() -> LinkModel {
        LinkModel { drop_p: 0.0, dup_p: 0.0, corrupt_p: 0.0, jitter_ticks: 0 }
    }

    /// Whether the link is configured as perfect.
    pub fn is_lossless(&self) -> bool {
        self.drop_p == 0.0 && self.dup_p == 0.0 && self.corrupt_p == 0.0 && self.jitter_ticks == 0
    }

    /// Runs encoded frames through the link. `frames` are `(send tick,
    /// bytes)` in send order; the result is the byte stream in arrival
    /// order. Delivery order sorts by `(send tick + delay)` with ties
    /// broken by send order, so reordering never exceeds
    /// `jitter_ticks`.
    pub fn deliver(&self, frames: &[(u64, Vec<u8>)], rng: &mut Rng) -> Vec<Vec<u8>> {
        let mut bytes = Vec::new();
        let mut ends = Vec::new();
        self.deliver_into(frames, rng, &mut bytes, &mut ends);
        let mut out = Vec::with_capacity(ends.len());
        let mut start = 0;
        for &end in &ends {
            out.push(bytes[start..end].to_vec());
            start = end;
        }
        out
    }

    /// The reusable-buffer form of [`LinkModel::deliver`] for hot
    /// replay loops: delivered frames are appended back-to-back into
    /// `bytes`, with `ends[i]` the exclusive end offset of frame `i`
    /// (frame `i` spans `ends[i-1]..ends[i]`, the first starts at 0).
    /// Both buffers are cleared first, so a caller can hoist them out
    /// of a per-tick loop and amortize the allocations; the RNG draw
    /// order is identical to `deliver`, so the two forms produce the
    /// same arrival stream for the same seed.
    pub fn deliver_into(
        &self,
        frames: &[(u64, Vec<u8>)],
        rng: &mut Rng,
        bytes: &mut Vec<u8>,
        ends: &mut Vec<usize>,
    ) {
        bytes.clear();
        ends.clear();
        if self.is_lossless() {
            for (_, b) in frames {
                bytes.extend_from_slice(b);
                ends.push(bytes.len());
            }
            return;
        }
        // (arrival tick, send idx, start, end) into a scratch copy of
        // the perturbed frames; the sorted spans are then compacted
        // into `bytes` in arrival order.
        let mut staged: Vec<u8> = Vec::new();
        let mut in_flight: Vec<(u64, usize, usize, usize)> = Vec::with_capacity(frames.len());
        for (idx, (tick, frame)) in frames.iter().enumerate() {
            if rng.bernoulli(self.drop_p) {
                continue;
            }
            let copies = if rng.bernoulli(self.dup_p) { 2 } else { 1 };
            for _ in 0..copies {
                let delay = if self.jitter_ticks == 0 {
                    0
                } else {
                    rng.below(self.jitter_ticks as usize + 1) as u64
                };
                let start = staged.len();
                staged.extend_from_slice(frame);
                if rng.bernoulli(self.corrupt_p) {
                    let byte = rng.below(frame.len());
                    let bit = rng.below(8) as u8;
                    staged[start + byte] ^= 1 << bit;
                }
                in_flight.push((tick + delay, idx, start, staged.len()));
            }
        }
        in_flight.sort_by_key(|&(arrival, idx, _, _)| (arrival, idx));
        for (_, _, start, end) in in_flight {
            bytes.extend_from_slice(&staged[start..end]);
            ends.push(bytes.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(n: u64) -> Vec<(u64, Vec<u8>)> {
        (0..n).map(|t| (t, vec![t as u8; 8])).collect()
    }

    #[test]
    fn lossless_is_identity() {
        let fs = frames(20);
        let mut rng = Rng::seed_from_u64(1);
        let out = LinkModel::lossless().deliver(&fs, &mut rng);
        assert_eq!(out, fs.iter().map(|(_, b)| b.clone()).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_for_a_seed() {
        let fs = frames(200);
        let link = LinkModel { drop_p: 0.1, dup_p: 0.05, corrupt_p: 0.02, jitter_ticks: 3 };
        let a = link.deliver(&fs, &mut Rng::seed_from_u64(42));
        let b = link.deliver(&fs, &mut Rng::seed_from_u64(42));
        assert_eq!(a, b);
        let c = link.deliver(&fs, &mut Rng::seed_from_u64(43));
        assert_ne!(a, c, "different seeds should reshuffle the link");
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let fs = frames(2000);
        let link = LinkModel { drop_p: 0.25, dup_p: 0.0, corrupt_p: 0.0, jitter_ticks: 0 };
        let out = link.deliver(&fs, &mut Rng::seed_from_u64(7));
        let rate = 1.0 - out.len() as f64 / fs.len() as f64;
        assert!((rate - 0.25).abs() < 0.05, "observed drop rate {rate}");
    }

    #[test]
    fn deliver_into_matches_deliver_for_the_same_seed() {
        // The reusable-buffer form must draw the RNG in the same order
        // and reconstruct the same arrival stream, lossless and lossy.
        let fs = frames(300);
        let links = [
            LinkModel::lossless(),
            LinkModel { drop_p: 0.1, dup_p: 0.05, corrupt_p: 0.02, jitter_ticks: 3 },
        ];
        for link in links {
            let owned = link.deliver(&fs, &mut Rng::seed_from_u64(42));
            let (mut bytes, mut ends) = (vec![0xAAu8; 7], vec![9usize]);
            link.deliver_into(&fs, &mut Rng::seed_from_u64(42), &mut bytes, &mut ends);
            assert_eq!(ends.len(), owned.len(), "stale buffer contents must be cleared");
            let mut start = 0;
            for (frame, &end) in owned.iter().zip(&ends) {
                assert_eq!(&bytes[start..end], &frame[..]);
                start = end;
            }
            assert_eq!(start, bytes.len(), "spans must cover the whole buffer");
        }
    }

    #[test]
    fn jitter_never_exceeds_bound() {
        // Reconstruct send index from the payload byte and check the
        // arrival displacement stays within the jitter window.
        let fs = frames(200);
        let link = LinkModel { drop_p: 0.0, dup_p: 0.0, corrupt_p: 0.0, jitter_ticks: 4 };
        let out = link.deliver(&fs, &mut Rng::seed_from_u64(9));
        assert_eq!(out.len(), fs.len());
        for (arrival_pos, bytes) in out.iter().enumerate() {
            let sent = bytes[0] as i64;
            // A frame can move at most jitter ticks in either direction
            // of its send position (ticks and positions coincide here).
            assert!(
                (arrival_pos as i64 - sent).abs() <= 4,
                "frame {sent} arrived at {arrival_pos}"
            );
        }
    }
}
