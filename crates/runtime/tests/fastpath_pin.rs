//! End-to-end pin of the optimized hot paths.
//!
//! The batched rolling-std bank, the scratch-buffer feature
//! extraction and the batched SVM vote tally replace the scalar
//! reference arithmetic on the per-tick decision path. This suite
//! streams the same seeded officesim day through
//! [`StreamingEngine`] with the fast paths on (default) and off
//! ([`StreamingEngine::set_reference_paths`]) and holds the two runs
//! **byte-identical**: decision logs, engine events, deterministic
//! counters, mid-day checkpoints, and — when instrumented — the full
//! trace JSONL and metrics JSON.

use std::sync::OnceLock;

use fadewich_core::config::FadewichParams;
use fadewich_core::fusion::DecisionMode;
use fadewich_core::kma::Kma;
use fadewich_officesim::{LightSimParams, Scenario, ScenarioConfig, ScheduleParams, Trace};
use fadewich_runtime::checkpoint::EngineSnapshot;
use fadewich_runtime::engine::EngineConfig;
use fadewich_runtime::link::LinkModel;
use fadewich_runtime::replay;
use fadewich_runtime::{EngineEvent, StreamingEngine};
use fadewich_telemetry::Telemetry;

struct Fixture {
    scenario: Scenario,
    trace: Trace,
    streams: Vec<usize>,
    re: fadewich_core::re::RadioEnvironment,
    params: FadewichParams,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let config = ScenarioConfig {
            seed: 0xD3B,
            days: 2,
            schedule: ScheduleParams {
                day_seconds: 2.0 * 3600.0,
                departures_choices: [3, 3, 4, 4],
                min_seated_s: 400.0,
                absence_bounds_s: (90.0, 300.0),
                ..ScheduleParams::default()
            },
            ..ScenarioConfig::default()
        };
        let scenario = Scenario::generate(config).unwrap();
        let trace = scenario.simulate().unwrap();
        let subset = scenario.layout().sensor_subset(9);
        let streams = trace.stream_indices_for_subset(&subset);
        let params = FadewichParams::default();
        let re = replay::train_re(&scenario, &trace, &streams, 1, &params).unwrap();
        Fixture { scenario, trace, streams, re, params }
    })
}

/// The same office with one photosensor per workstation: the fused
/// engine layout, for pinning the typed (RSSI-prefix + light-suffix)
/// path against the reference arithmetic.
fn fused_fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let config = ScenarioConfig {
            seed: 0xD3B,
            days: 2,
            schedule: ScheduleParams {
                day_seconds: 2.0 * 3600.0,
                departures_choices: [3, 3, 4, 4],
                min_seated_s: 400.0,
                absence_bounds_s: (90.0, 300.0),
                ..ScheduleParams::default()
            },
            light: Some(LightSimParams::default()),
            ..ScenarioConfig::default()
        };
        let scenario = Scenario::generate(config).unwrap();
        let trace = scenario.simulate().unwrap();
        let subset = scenario.layout().sensor_subset(9);
        let streams = trace.stream_indices_for_subset(&subset);
        let params = FadewichParams::default();
        let re = replay::train_re(&scenario, &trace, &streams, 1, &params).unwrap();
        Fixture { scenario, trace, streams, re, params }
    })
}

/// Everything one replay produced that must not depend on which
/// arithmetic path computed it.
struct Outcome {
    actions_debug: String,
    events: Vec<EngineEvent>,
    counters_summary: String,
    snapshots: Vec<EngineSnapshot>,
    trace_jsonl: String,
    metrics_json: String,
}

/// Streams fixture day 1 over `link` with the chosen paths, capturing
/// mid-day checkpoints at fixed delivery positions.
fn run_day(fx: &Fixture, reference: bool, link: &LinkModel, instrument: bool) -> Outcome {
    let groups = fx.trace.receiver_groups(&fx.streams);
    let inputs = fx.scenario.input_trace(1, 0);
    let kma = Kma::new(&inputs);
    let mut cfg = EngineConfig::new(fx.trace.tick_hz(), fx.params);
    cfg.jitter_ticks = 3;
    let telemetry = if instrument { Telemetry::buffering() } else { Telemetry::disabled() };
    let mut engine = StreamingEngine::new(cfg, groups.clone(), &fx.re, kma).unwrap();
    engine.set_reference_paths(reference);
    engine.set_telemetry(telemetry.clone());
    let deliveries =
        replay::day_deliveries(&fx.trace, &fx.streams, &groups, 1, link, 0xF10D).unwrap();
    let snap_at = [deliveries.len() / 3, 2 * deliveries.len() / 3];
    let mut snapshots = Vec::new();
    for (i, bytes) in deliveries.iter().enumerate() {
        engine.ingest_bytes(bytes);
        if snap_at.contains(&(i + 1)) {
            snapshots.push(engine.snapshot(1, (i + 1) as u64, 0));
        }
    }
    engine.finish(fx.trace.days()[1].n_ticks() as u64);
    Outcome {
        actions_debug: format!("{:?}", engine.actions()),
        events: engine.events().to_vec(),
        counters_summary: engine.counters().deterministic_summary(),
        snapshots,
        trace_jsonl: telemetry.trace_string(),
        metrics_json: if instrument { telemetry.metrics_json(false).unwrap() } else { String::new() },
    }
}

/// Streams fused-fixture day 1 through the typed layout (RSSI prefix +
/// light suffix, fused decision mode) with the chosen paths.
fn run_fused_day(fx: &Fixture, reference: bool, link: &LinkModel, instrument: bool) -> Outcome {
    let groups = replay::typed_groups(&fx.trace, &fx.streams);
    let fusion = replay::fusion_for_trace(&fx.trace, DecisionMode::Fused);
    let inputs = fx.scenario.input_trace(1, 0);
    let kma = Kma::new(&inputs);
    let mut cfg = EngineConfig::new(fx.trace.tick_hz(), fx.params);
    cfg.jitter_ticks = 3;
    let telemetry = if instrument { Telemetry::buffering() } else { Telemetry::disabled() };
    let mut engine =
        StreamingEngine::with_layout(cfg, groups.clone(), fusion, &fx.re, kma).unwrap();
    engine.set_reference_paths(reference);
    engine.set_telemetry(telemetry.clone());
    let deliveries =
        replay::fused_day_deliveries(&fx.trace, &fx.streams, &groups, 1, link, 0xF10D).unwrap();
    let snap_at = [deliveries.len() / 3, 2 * deliveries.len() / 3];
    let mut snapshots = Vec::new();
    for (i, bytes) in deliveries.iter().enumerate() {
        engine.ingest_bytes(bytes);
        if snap_at.contains(&(i + 1)) {
            snapshots.push(engine.snapshot(1, (i + 1) as u64, 0));
        }
    }
    engine.finish(fx.trace.days()[1].n_ticks() as u64);
    Outcome {
        actions_debug: format!("{:?}", engine.actions()),
        events: engine.events().to_vec(),
        counters_summary: engine.counters().deterministic_summary(),
        snapshots,
        trace_jsonl: telemetry.trace_string(),
        metrics_json: if instrument { telemetry.metrics_json(false).unwrap() } else { String::new() },
    }
}

fn assert_outcomes_identical(fast: &Outcome, reference: &Outcome, what: &str) {
    assert_eq!(fast.actions_debug, reference.actions_debug, "{what}: decision logs diverged");
    assert_eq!(fast.events, reference.events, "{what}: engine events diverged");
    assert_eq!(fast.counters_summary, reference.counters_summary, "{what}: counters diverged");
    assert_eq!(fast.snapshots.len(), reference.snapshots.len());
    for (a, b) in fast.snapshots.iter().zip(&reference.snapshots) {
        assert_eq!(a, b, "{what}: a mid-day checkpoint diverged");
    }
    assert_eq!(fast.trace_jsonl, reference.trace_jsonl, "{what}: trace JSONL diverged");
    assert_eq!(fast.metrics_json, reference.metrics_json, "{what}: metrics JSON diverged");
}

#[test]
fn fast_and_reference_paths_are_byte_identical_lossless() {
    // Uninstrumented lossless day: this is the configuration where the
    // untraced scratch classify path actually runs, so it is the one
    // that pins the allocation-free Rule 1 arithmetic.
    let fx = fixture();
    let fast = run_day(fx, false, &LinkModel::lossless(), false);
    let reference = run_day(fx, true, &LinkModel::lossless(), false);
    assert!(fast.actions_debug != "[]", "fixture day produced no actions at all");
    assert_outcomes_identical(&fast, &reference, "lossless");
}

#[test]
fn fast_and_reference_paths_are_byte_identical_lossy() {
    // A lossy link produces gap-fills and masked ticks, driving the
    // rolling-std bank through its non-uniform per-stream path.
    let fx = fixture();
    let link = LinkModel { drop_p: 0.05, dup_p: 0.02, corrupt_p: 0.01, jitter_ticks: 3 };
    let fast = run_day(fx, false, &link, false);
    let reference = run_day(fx, true, &link, false);
    assert!(
        fast.counters_summary.contains("gap-fills"),
        "summary should expose degradation counters: {}",
        fast.counters_summary
    );
    assert_outcomes_identical(&fast, &reference, "lossy");
}

#[test]
fn fast_and_reference_paths_emit_identical_traces() {
    // Instrumented replay: both modes take the traced (allocating)
    // Rule 1 branch, but MD's batched rolling-std bank still differs —
    // the full audit trail must not.
    let fx = fixture();
    let fast = run_day(fx, false, &LinkModel::lossless(), true);
    let reference = run_day(fx, true, &LinkModel::lossless(), true);
    assert!(!fast.trace_jsonl.is_empty(), "instrumented replay emitted no trace records");
    assert_outcomes_identical(&fast, &reference, "instrumented");
}

#[test]
fn fused_fast_and_reference_paths_are_byte_identical() {
    // The typed layout takes the per-tick step_masked + observe_light
    // path instead of the pure-RSSI batch, but the arithmetic pin must
    // hold there too: decisions, events, counters (including the
    // per-channel breakdown) and mid-day checkpoints carrying the
    // light detector bank.
    let fx = fused_fixture();
    let fast = run_fused_day(fx, false, &LinkModel::lossless(), false);
    let reference = run_fused_day(fx, true, &LinkModel::lossless(), false);
    assert!(fast.actions_debug != "[]", "fused fixture day produced no actions at all");
    assert!(
        fast.counters_summary.contains("channel     light"),
        "fused run must print the per-channel breakdown: {}",
        fast.counters_summary
    );
    assert_outcomes_identical(&fast, &reference, "fused lossless");

    let link = LinkModel { drop_p: 0.05, dup_p: 0.02, corrupt_p: 0.01, jitter_ticks: 3 };
    let fast = run_fused_day(fx, false, &link, false);
    let reference = run_fused_day(fx, true, &link, false);
    assert_outcomes_identical(&fast, &reference, "fused lossy");
}

#[test]
fn checkpoint_crosses_path_modes() {
    // A checkpoint captured under the fast paths restores into a
    // reference-path engine (and vice versa) and both resumed runs
    // finish the day with the decisions of an uninterrupted run: the
    // exported state is path-agnostic.
    let fx = fixture();
    let groups = fx.trace.receiver_groups(&fx.streams);
    let cfg = EngineConfig::new(fx.trace.tick_hz(), fx.params);
    let deliveries =
        replay::day_deliveries(&fx.trace, &fx.streams, &groups, 1, &LinkModel::lossless(), 0xF10D)
            .unwrap();
    let n_ticks = fx.trace.days()[1].n_ticks() as u64;

    let inputs = fx.scenario.input_trace(1, 0);
    let mut full =
        StreamingEngine::new(cfg, groups.clone(), &fx.re, Kma::new(&inputs)).unwrap();
    for bytes in &deliveries {
        full.ingest_bytes(bytes);
    }
    full.finish(n_ticks);

    let cut = deliveries.len() / 2;
    for (snap_reference, resume_reference) in [(false, true), (true, false)] {
        let inputs = fx.scenario.input_trace(1, 0);
        let mut pre =
            StreamingEngine::new(cfg, groups.clone(), &fx.re, Kma::new(&inputs)).unwrap();
        pre.set_reference_paths(snap_reference);
        for bytes in &deliveries[..cut] {
            pre.ingest_bytes(bytes);
        }
        let snap = pre.snapshot(1, cut as u64, 0);
        let inputs = fx.scenario.input_trace(1, 0);
        let mut post =
            StreamingEngine::restore(cfg, groups.clone(), &fx.re, Kma::new(&inputs), &snap)
                .unwrap();
        post.set_reference_paths(resume_reference);
        for bytes in &deliveries[cut..] {
            post.ingest_bytes(bytes);
        }
        post.finish(n_ticks);
        let stitched: Vec<_> = pre.actions()[..snap.controller.n_actions as usize]
            .iter()
            .chain(post.actions())
            .copied()
            .collect();
        assert_eq!(
            full.actions(),
            &stitched[..],
            "snap_reference={snap_reference} resume_reference={resume_reference}"
        );
    }
}
