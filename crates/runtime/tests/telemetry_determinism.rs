//! Telemetry determinism: two replays of the same seeded scenario must
//! emit byte-identical trace JSONL and metrics JSON — the contract the
//! `--trace-out`/`--metrics-out` CI gate in `scripts/ci.sh` `cmp`s at
//! the daemon level, proven here at the library level (including under
//! a lossy link, where the emission set is richer).

use std::sync::OnceLock;

use fadewich_core::config::FadewichParams;
use fadewich_officesim::{Scenario, ScenarioConfig, ScheduleParams, Trace};
use fadewich_runtime::engine::EngineConfig;
use fadewich_runtime::link::LinkModel;
use fadewich_runtime::replay;
use fadewich_telemetry::Telemetry;

struct Fixture {
    scenario: Scenario,
    trace: Trace,
    streams: Vec<usize>,
    re: fadewich_core::re::RadioEnvironment,
    params: FadewichParams,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let config = ScenarioConfig {
            seed: 0xD3B,
            days: 2,
            schedule: ScheduleParams {
                day_seconds: 2.0 * 3600.0,
                departures_choices: [3, 3, 4, 4],
                min_seated_s: 400.0,
                absence_bounds_s: (90.0, 300.0),
                ..ScheduleParams::default()
            },
            ..ScenarioConfig::default()
        };
        let scenario = Scenario::generate(config).unwrap();
        let trace = scenario.simulate().unwrap();
        let subset = scenario.layout().sensor_subset(9);
        let streams = trace.stream_indices_for_subset(&subset);
        let params = FadewichParams::default();
        let re = replay::train_re(&scenario, &trace, &streams, 1, &params).unwrap();
        Fixture { scenario, trace, streams, re, params }
    })
}

/// One instrumented replay of fixture day 1 over `link`, returning the
/// rendered trace JSONL and the deterministic metrics JSON.
fn traced_replay(fx: &Fixture, link: &LinkModel) -> (String, String) {
    let telemetry = Telemetry::buffering();
    let cfg = EngineConfig::new(fx.trace.tick_hz(), fx.params);
    replay::stream_day_with_telemetry(
        &fx.scenario,
        &fx.trace,
        &fx.streams,
        &fx.re,
        1,
        cfg,
        link,
        0xF10D,
        &telemetry,
    )
    .unwrap();
    let trace = telemetry.trace_string();
    let metrics = telemetry.metrics_json(false).unwrap();
    (trace, metrics)
}

#[test]
fn two_seeded_replays_emit_byte_identical_telemetry() {
    let fx = fixture();
    let lossy =
        LinkModel { drop_p: 0.05, dup_p: 0.02, corrupt_p: 0.01, jitter_ticks: 3 };
    for link in [LinkModel::lossless(), lossy] {
        let (trace_a, metrics_a) = traced_replay(fx, &link);
        let (trace_b, metrics_b) = traced_replay(fx, &link);
        assert!(!trace_a.is_empty(), "instrumented replay emitted no trace records");
        assert_eq!(trace_a, trace_b, "trace JSONL diverged across identical replays");
        assert_eq!(metrics_a, metrics_b, "metrics JSON diverged across identical replays");
        // Every line is valid JSON with the schema's required keys.
        for line in trace_a.lines() {
            let rec = fadewich_telemetry::json::parse(line).unwrap();
            assert!(rec.get("tick").and_then(|t| t.as_num()).is_some(), "no tick in {line}");
            assert!(rec.get("ev").is_some(), "no ev in {line}");
        }
        fadewich_telemetry::json::parse(&metrics_a).unwrap();
    }
}

#[test]
fn instrumentation_does_not_change_decisions() {
    // The audit trail is observability, not behavior: an instrumented
    // replay must produce the exact action log of an uninstrumented
    // one, and the deterministic metrics must exclude wall-clock noise.
    let fx = fixture();
    let cfg = EngineConfig::new(fx.trace.tick_hz(), fx.params);
    let plain = replay::stream_day(
        &fx.scenario, &fx.trace, &fx.streams, &fx.re, 1, cfg, &LinkModel::lossless(), 0xF10D,
    )
    .unwrap();
    let telemetry = Telemetry::buffering();
    let traced = replay::stream_day_with_telemetry(
        &fx.scenario,
        &fx.trace,
        &fx.streams,
        &fx.re,
        1,
        cfg,
        &LinkModel::lossless(),
        0xF10D,
        &telemetry,
    )
    .unwrap();
    assert_eq!(plain.actions, traced.actions);
    assert_eq!(plain.counters.deterministic_summary(), traced.counters.deterministic_summary());
    let metrics = telemetry.metrics_json(false).unwrap();
    assert!(
        !metrics.contains("_ns"),
        "wall-clock histograms leaked into the deterministic dump: {metrics}"
    );
    assert!(metrics.contains("\"runtime_frames_in\""));
    assert!(metrics.contains("\"rule1_deauths\"") || metrics.contains("\"rule1_no_deauths\""));
}
