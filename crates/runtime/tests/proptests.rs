//! Property tests for the wire codec and the reorder buffer.

use fadewich_core::stream::ChannelKind;
use fadewich_runtime::reorder::{ReorderBuffer, ReorderConfig};
use fadewich_runtime::wire::Frame;
use fadewich_stats::rng::Rng;
use fadewich_testkit::prop::{u64s, usizes};

/// A pseudo-random frame drawn from a seed. Half the draws are RSSI
/// with office 0 (v1 on the wire), a quarter RSSI with a nonzero
/// office (v2), and the rest ambient-light (v3), so every property
/// below covers all three header versions.
fn frame_from(rng: &mut Rng, max_payload: usize) -> Frame {
    let len = rng.below(max_payload + 1);
    let channel =
        if rng.bernoulli(0.75) { ChannelKind::Rssi } else { ChannelKind::AmbientLight };
    let office = if rng.bernoulli(0.5) { 0 } else { rng.below(1 << 16) as u16 };
    Frame {
        office,
        channel,
        sensor: rng.below(1 << 16) as u16,
        seq: rng.below(1 << 31) as u32,
        tick: rng.below(1 << 40) as u64,
        values: (0..len).map(|_| (-80.0 + 60.0 * rng.f64()) as f32).collect(),
    }
}

fadewich_testkit::property! {
    #[cases(256)]
    fn wire_codec_round_trips(seed in u64s(0..1 << 48)) {
        let mut rng = Rng::seed_from_u64(seed);
        let f = frame_from(&mut rng, 16);
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        let (back, used) = Frame::decode(&bytes).expect("clean frame must decode");
        assert_eq!(back, f);
        assert_eq!(used, bytes.len());
    }

    // Version negotiation: the v2 header (explicit office field) must
    // round-trip for every office id, and decode_borrowed must agree
    // with the owned decode sample-for-sample on both versions.
    #[cases(256)]
    fn wire_codec_v2_round_trips_and_views_agree(seed in u64s(0..1 << 48)) {
        let mut rng = Rng::seed_from_u64(seed);
        // The v2 header has no channel field, so this property only
        // draws RSSI frames; v3 round-trips are covered above and in
        // the wire unit suite.
        let f = Frame { channel: ChannelKind::Rssi, ..frame_from(&mut rng, 16) };
        let mut v2 = Vec::new();
        f.encode_v2_into(&mut v2);
        let (back, used) = Frame::decode(&v2).expect("v2 frame must decode");
        assert_eq!(back, f);
        assert_eq!(used, v2.len());
        let (view, vused) = Frame::decode_borrowed(&v2).expect("v2 view must decode");
        assert_eq!(vused, used);
        assert_eq!(view.to_frame(), f);
        let default = f.encode();
        let (dview, _) = Frame::decode_borrowed(&default).expect("default encoding");
        assert_eq!(dview.office, f.office);
        assert_eq!(dview.to_frame(), f);
    }

    #[cases(256)]
    fn wire_codec_rejects_any_corrupted_byte(seed in u64s(0..1 << 48)) {
        let mut rng = Rng::seed_from_u64(seed);
        let f = frame_from(&mut rng, 16);
        let clean = f.encode();
        let byte = rng.below(clean.len());
        let bit = rng.below(8);
        let mut dirty = clean.clone();
        dirty[byte] ^= 1 << bit;
        assert!(
            Frame::decode(&dirty).is_err(),
            "flip of byte {byte} bit {bit} slipped through"
        );
    }

    // Any delivery permutation within the jitter bound must come out
    // as the exact in-order, fully-populated tick sequence.
    #[cases(128)]
    fn reorder_buffer_restores_any_jittered_permutation(
        seed in u64s(0..1 << 48),
        n_senders in usizes(1..4),
        n_ticks in usizes(1..30),
        jitter in usizes(0..5),
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        // Send order: tick-major, sender-minor; each frame's payload
        // encodes (sender, tick) so emissions can be verified.
        let mut sched: Vec<(u64, usize, usize, u64)> = Vec::new(); // (arrival, idx, sender, tick)
        let mut idx = 0;
        for tick in 0..n_ticks as u64 {
            for sender in 0..n_senders {
                let delay = if jitter == 0 { 0 } else { rng.below(jitter + 1) as u64 };
                sched.push((tick + delay, idx, sender, tick));
                idx += 1;
            }
        }
        sched.sort_by_key(|&(arrival, idx, _, _)| (arrival, idx));

        let mut rb = ReorderBuffer::new(ReorderConfig {
            n_senders,
            jitter_ticks: jitter as u64,
            quarantine_after_ticks: u64::MAX,
        });
        let mut emitted = Vec::new();
        for &(_, i, sender, tick) in &sched {
            rb.push(sender, i as u32, tick, vec![sender as f32, tick as f32]);
            emitted.extend(rb.poll());
        }
        emitted.extend(rb.flush());

        assert_eq!(emitted.len(), n_ticks, "tick count mismatch");
        for (expect, bundle) in emitted.iter().enumerate() {
            assert_eq!(bundle.tick, expect as u64, "out-of-order emission");
            for (sender, slot) in bundle.reports.iter().enumerate() {
                let payload = slot.as_ref().expect("no frame was dropped");
                assert_eq!(payload, &vec![sender as f32, expect as f32]);
            }
        }
    }
}
