//! End-to-end crash/recovery: kill the streaming day at an arbitrary
//! delivery, resume from the newest valid checkpoint, and demand the
//! stitched decision stream be **byte-identical** to an uninterrupted
//! run — under a lossy, jittery link, so the checkpoint must carry
//! gap-fill, quarantine and reorder state faithfully. Also proves the
//! rejection side: corrupted checkpoints (bit flips, torn writes) are
//! always refused with an error and the store falls back to the
//! previous image or a cold start, never a silently wrong resume.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use fadewich_core::config::FadewichParams;
use fadewich_core::fusion::{DecisionMode, FusionConfig};
use fadewich_officesim::{LightSimParams, Scenario, ScenarioConfig, ScheduleParams, Trace};
use fadewich_runtime::checkpoint::{CheckpointStore, EngineSnapshot};
use fadewich_runtime::engine::EngineConfig;
use fadewich_runtime::link::LinkModel;
use fadewich_runtime::replay::{self, DayReplay};
use fadewich_testkit::prop::u64s;

const LINK_SEED: u64 = 0xF10D;

struct Fixture {
    scenario: Scenario,
    trace: Trace,
    streams: Vec<usize>,
    re: fadewich_core::re::RadioEnvironment,
    cfg: EngineConfig,
    link: LinkModel,
    /// The uninterrupted day-1 run every crashed run is held against.
    full: DayReplay,
    /// How many link deliveries day 1 produces (the crash axis).
    n_deliveries: u64,
    /// One genuine mid-day checkpoint image, encoded (corruption axis).
    encoded: Vec<u8>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let config = ScenarioConfig {
            seed: 0xC4A5,
            days: 2,
            schedule: ScheduleParams {
                day_seconds: 3600.0,
                departures_choices: [2, 2, 3, 3],
                min_seated_s: 300.0,
                absence_bounds_s: (80.0, 240.0),
                ..ScheduleParams::default()
            },
            ..ScenarioConfig::default()
        };
        let scenario = Scenario::generate(config).unwrap();
        let trace = scenario.simulate().unwrap();
        let subset = scenario.layout().sensor_subset(9);
        let streams = trace.stream_indices_for_subset(&subset);
        let params = FadewichParams::default();
        let re = replay::train_re(&scenario, &trace, &streams, 1, &params).unwrap();
        // A lossy, jittery link: the checkpoint must carry degradation
        // state, not just the happy path.
        let link = LinkModel { drop_p: 0.02, dup_p: 0.02, corrupt_p: 0.0, jitter_ticks: 2 };
        let mut cfg = EngineConfig::new(trace.tick_hz(), params);
        cfg.jitter_ticks = 2;
        // Checkpoint often enough that most crash points have a warm
        // image to resume from, and several get pruned by retention.
        cfg.checkpoint_every_ticks = 400;
        let full =
            replay::stream_day(&scenario, &trace, &streams, &re, 1, cfg, &link, LINK_SEED)
                .unwrap();
        let groups = trace.receiver_groups(&streams);
        let n_deliveries =
            replay::day_deliveries(&trace, &streams, &groups, 1, &link, LINK_SEED)
                .unwrap()
                .len() as u64;

        // One real, state-heavy checkpoint image for corruption tests:
        // crash mid-day and grab what the store wrote last.
        let dir = scratch_dir("fixture");
        let mut store = CheckpointStore::open(&dir).unwrap();
        replay::stream_day_checkpointed(
            &scenario,
            &trace,
            &streams,
            &re,
            1,
            cfg,
            &link,
            LINK_SEED,
            &mut store,
            Some(n_deliveries / 2),
        )
        .unwrap();
        let (stamp, snap) = store.load_latest().unwrap().snapshot.unwrap();
        let encoded = snap.encode(stamp);
        std::fs::remove_dir_all(&dir).unwrap();

        Fixture { scenario, trace, streams, re, cfg, link, full, n_deliveries, encoded }
    })
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn scratch_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fadewich-crashrec-{tag}-{}-{n}", std::process::id()))
}

/// Crashed-run prefix + resumed run must equal the uninterrupted run,
/// byte for byte, in actions, events and deterministic counters.
fn assert_stitches(fx: &Fixture, crashed: &DayReplay, snap: &EngineSnapshot, resumed: &DayReplay) {
    let stitched_actions: Vec<_> = crashed.actions[..snap.controller.n_actions as usize]
        .iter()
        .chain(&resumed.actions)
        .collect();
    let full_actions: Vec<_> = fx.full.actions.iter().collect();
    assert_eq!(stitched_actions, full_actions, "stitched decisions diverged");
    assert_eq!(
        format!("{stitched_actions:?}"),
        format!("{full_actions:?}"),
        "decisions must match byte-for-byte, not merely structurally"
    );
    let stitched_events: Vec<_> = crashed.events[..snap.events_emitted as usize]
        .iter()
        .chain(&resumed.events)
        .collect();
    let full_events: Vec<_> = fx.full.events.iter().collect();
    assert_eq!(stitched_events, full_events, "stitched events diverged");
    assert_eq!(
        resumed.counters.deterministic_summary(),
        fx.full.counters.deterministic_summary(),
        "resumed counters diverged"
    );
}

fadewich_testkit::property! {
    // The tentpole acceptance property: crash after ANY number of
    // deliveries, resume from the newest checkpoint (or cold if the
    // crash beat the first save) — the decision stream is identical.
    #[cases(12)]
    fn crash_at_any_delivery_resumes_byte_identically(seed in u64s(0..1 << 48)) {
        let fx = fixture();
        let crash_after = 1 + seed % (fx.n_deliveries - 1);
        let dir = scratch_dir("crash");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let crashed = replay::stream_day_checkpointed(
            &fx.scenario, &fx.trace, &fx.streams, &fx.re, 1, fx.cfg, &fx.link, LINK_SEED,
            &mut store, Some(crash_after),
        )
        .unwrap();

        // A fresh process opens the directory, as fadewichd would.
        let mut reopened = CheckpointStore::open(&dir).unwrap();
        let outcome = reopened.load_latest().unwrap();
        assert!(outcome.rejected.is_empty(), "clean saves were rejected: {:?}", outcome.rejected);
        match outcome.snapshot {
            Some((_, snap)) => {
                assert!(snap.stream_pos <= crash_after, "checkpoint from beyond the crash");
                let resumed = replay::resume_day(
                    &fx.scenario, &fx.trace, &fx.streams, &fx.re, fx.cfg, &fx.link, LINK_SEED,
                    &snap,
                )
                .unwrap();
                assert_stitches(fx, &crashed, &snap, &resumed);
            }
            None => {
                // Crash beat the first checkpoint: cold start rules.
                let rerun = replay::stream_day(
                    &fx.scenario, &fx.trace, &fx.streams, &fx.re, 1, fx.cfg, &fx.link, LINK_SEED,
                )
                .unwrap();
                assert_eq!(rerun.actions, fx.full.actions);
                assert_eq!(rerun.events, fx.full.events);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // The rejection property, on a genuine state-heavy mid-day image:
    // a single bit flip anywhere is refused with an error — no panic,
    // no silently wrong resume.
    #[cases(512)]
    fn any_bit_flip_in_a_real_checkpoint_is_rejected(seed in u64s(0..1 << 48)) {
        let fx = fixture();
        let bit = (seed as usize) % (fx.encoded.len() * 8);
        let mut dirty = fx.encoded.clone();
        dirty[bit / 8] ^= 1 << (bit % 8);
        assert!(
            EngineSnapshot::decode(&dirty).is_err(),
            "flip of byte {} bit {} slipped through",
            bit / 8,
            bit % 8
        );
    }

    // Same for truncation: no prefix of a real checkpoint decodes.
    #[cases(128)]
    fn any_truncated_real_checkpoint_is_rejected(seed in u64s(0..1 << 48)) {
        let fx = fixture();
        let keep = (seed as usize) % fx.encoded.len();
        assert!(
            EngineSnapshot::decode(&fx.encoded[..keep]).is_err(),
            "prefix of {keep} bytes slipped through"
        );
    }
}

#[test]
fn corrupted_newest_checkpoint_falls_back_and_still_resumes_identically() {
    let fx = fixture();
    let dir = scratch_dir("fallback");
    let mut store = CheckpointStore::open(&dir).unwrap();
    let crash_after = fx.n_deliveries * 3 / 4;
    let crashed = replay::stream_day_checkpointed(
        &fx.scenario,
        &fx.trace,
        &fx.streams,
        &fx.re,
        1,
        fx.cfg,
        &fx.link,
        LINK_SEED,
        &mut store,
        Some(crash_after),
    )
    .unwrap();

    // Flip one byte in the newest checkpoint file on disk.
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "fwcp"))
        .collect();
    files.sort();
    assert!(files.len() >= 2, "retention should hold two checkpoints, found {files:?}");
    let newest = files.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(newest, &bytes).unwrap();

    let mut reopened = CheckpointStore::open(&dir).unwrap();
    let outcome = reopened.load_latest().unwrap();
    assert_eq!(outcome.rejected.len(), 1, "the corrupt newest file must be reported");
    let (_, snap) = outcome.snapshot.expect("the previous checkpoint must still load");
    let resumed = replay::resume_day(
        &fx.scenario,
        &fx.trace,
        &fx.streams,
        &fx.re,
        fx.cfg,
        &fx.link,
        LINK_SEED,
        &snap,
    )
    .unwrap();
    assert_stitches(fx, &crashed, &snap, &resumed);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_write_during_the_day_degrades_to_the_previous_checkpoint() {
    use fadewich_runtime::fault::{FaultInjector, FaultPlan};
    let fx = fixture();
    let dir = scratch_dir("torn");
    let mut store = CheckpointStore::open(&dir).unwrap();
    // Tear every second save: whatever the newest file is, at least one
    // valid older image (or a cold start) must remain reachable.
    let plan = FaultPlan {
        torn_saves: (0..64).filter(|s| s % 2 == 1).collect(),
        ..FaultPlan::none()
    };
    store.set_fault_injector(FaultInjector::new(plan, 99));
    let crash_after = fx.n_deliveries / 2;
    let crashed = replay::stream_day_checkpointed(
        &fx.scenario,
        &fx.trace,
        &fx.streams,
        &fx.re,
        1,
        fx.cfg,
        &fx.link,
        LINK_SEED,
        &mut store,
        Some(crash_after),
    )
    .unwrap();
    assert!(store.fault_log().unwrap().torn > 0, "the plan never fired");

    let mut reopened = CheckpointStore::open(&dir).unwrap();
    let outcome = reopened.load_latest().unwrap();
    for (path, err) in &outcome.rejected {
        assert!(
            matches!(err, fadewich_runtime::CheckpointError::Truncated),
            "torn file {} rejected for the wrong reason: {err}",
            path.display()
        );
    }
    if let Some((_, snap)) = outcome.snapshot {
        let resumed = replay::resume_day(
            &fx.scenario,
            &fx.trace,
            &fx.streams,
            &fx.re,
            fx.cfg,
            &fx.link,
            LINK_SEED,
            &snap,
        )
        .unwrap();
        assert_stitches(fx, &crashed, &snap, &resumed);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fused_crash_resumes_byte_identically() {
    // The same crash/resume contract over the typed layout: the
    // checkpoint must carry the channel-kind tags, the light detector
    // bank, and the per-channel counters, and the caller-supplied
    // fusion config must be validated against the restored state.
    let config = ScenarioConfig {
        seed: 0xC4A5,
        days: 2,
        schedule: ScheduleParams {
            day_seconds: 3600.0,
            departures_choices: [2, 2, 3, 3],
            min_seated_s: 300.0,
            absence_bounds_s: (80.0, 240.0),
            ..ScheduleParams::default()
        },
        light: Some(LightSimParams::default()),
        ..ScenarioConfig::default()
    };
    let scenario = Scenario::generate(config).unwrap();
    let trace = scenario.simulate().unwrap();
    let subset = scenario.layout().sensor_subset(9);
    let streams = trace.stream_indices_for_subset(&subset);
    let params = FadewichParams::default();
    let re = replay::train_re(&scenario, &trace, &streams, 1, &params).unwrap();
    let link = LinkModel { drop_p: 0.02, dup_p: 0.02, corrupt_p: 0.0, jitter_ticks: 2 };
    let mut cfg = EngineConfig::new(trace.tick_hz(), params);
    cfg.jitter_ticks = 2;
    cfg.checkpoint_every_ticks = 400;
    let fusion = replay::fusion_for_trace(&trace, DecisionMode::Fused);
    let telemetry = fadewich_telemetry::Telemetry::disabled();
    let full = replay::stream_day_fused(
        &scenario, &trace, &streams, &re, 1, cfg, fusion.clone(), &link, LINK_SEED, &telemetry,
    )
    .unwrap();
    let groups = replay::typed_groups(&trace, &streams);
    let n_deliveries = replay::fused_day_deliveries(&trace, &streams, &groups, 1, &link, LINK_SEED)
        .unwrap()
        .len() as u64;

    for crash_after in [n_deliveries / 3, 2 * n_deliveries / 3] {
        let dir = scratch_dir("fused");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let crashed = replay::stream_day_checkpointed_fused(
            &scenario,
            &trace,
            &streams,
            &re,
            1,
            cfg,
            fusion.clone(),
            &link,
            LINK_SEED,
            &mut store,
            Some(crash_after),
        )
        .unwrap();
        let mut reopened = CheckpointStore::open(&dir).unwrap();
        let outcome = reopened.load_latest().unwrap();
        assert!(outcome.rejected.is_empty(), "clean saves were rejected: {:?}", outcome.rejected);
        let (_, snap) = outcome.snapshot.expect("mid-day crash must have a checkpoint");
        assert!(snap.stream_pos <= crash_after);

        // The fusion config is deployment config, not state: a resume
        // with the pre-fusion (no light streams) config must be
        // refused, not silently mis-shaped.
        let err = replay::resume_day_fused(
            &scenario, &trace, &streams, &re, cfg, FusionConfig::rssi_only(), &link, LINK_SEED,
            &snap,
        )
        .unwrap_err();
        assert!(err.contains("light"), "unhelpful fusion mismatch error: {err}");

        let resumed = replay::resume_day_fused(
            &scenario, &trace, &streams, &re, cfg, fusion.clone(), &link, LINK_SEED, &snap,
        )
        .unwrap();
        let stitched_actions: Vec<_> = crashed.actions[..snap.controller.n_actions as usize]
            .iter()
            .chain(&resumed.actions)
            .collect();
        let full_actions: Vec<_> = full.actions.iter().collect();
        assert_eq!(stitched_actions, full_actions, "fused stitched decisions diverged");
        assert_eq!(
            format!("{stitched_actions:?}"),
            format!("{full_actions:?}"),
            "fused decisions must match byte-for-byte"
        );
        let stitched_events: Vec<_> = crashed.events[..snap.events_emitted as usize]
            .iter()
            .chain(&resumed.events)
            .collect();
        assert_eq!(stitched_events, full.events.iter().collect::<Vec<_>>());
        assert_eq!(
            resumed.counters.deterministic_summary(),
            full.counters.deterministic_summary(),
            "fused resumed counters diverged (per-channel breakdown included)"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn resume_rejects_a_checkpoint_from_another_scenario() {
    let fx = fixture();
    let (_, snap) = EngineSnapshot::decode(&fx.encoded).unwrap();
    // Same deployment shape, different recorded world: the KMA
    // fingerprint must catch it.
    let other = Scenario::generate(ScenarioConfig {
        seed: 0xBEEF,
        days: 2,
        schedule: ScheduleParams {
            day_seconds: 3600.0,
            departures_choices: [2, 2, 3, 3],
            min_seated_s: 300.0,
            absence_bounds_s: (80.0, 240.0),
            ..ScheduleParams::default()
        },
        ..ScenarioConfig::default()
    })
    .unwrap();
    let other_trace = other.simulate().unwrap();
    let err = replay::resume_day(
        &other,
        &other_trace,
        &fx.streams,
        &fx.re,
        fx.cfg,
        &fx.link,
        LINK_SEED,
        &snap,
    )
    .unwrap_err();
    assert!(err.contains("scenario") || err.contains("KMA"), "unhelpful mismatch error: {err}");
}
