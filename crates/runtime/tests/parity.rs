//! End-to-end streaming-vs-batch parity, plus a seeded lossy replay.
//!
//! The tentpole invariant: over a lossless link the streaming engine
//! must reach **byte-identical** deauthentication decisions to the
//! batch pipeline for the same seed. Under loss it must complete with
//! degradation counted, never panic.

use std::sync::OnceLock;

use fadewich_core::config::FadewichParams;
use fadewich_officesim::{Scenario, ScenarioConfig, ScheduleParams, Trace};
use fadewich_runtime::engine::EngineConfig;
use fadewich_runtime::link::LinkModel;
use fadewich_runtime::replay;

struct Fixture {
    scenario: Scenario,
    trace: Trace,
    streams: Vec<usize>,
    re: fadewich_core::re::RadioEnvironment,
    params: FadewichParams,
}

/// A 2-day small office: day 0 trains RE, day 1 is replayed.
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let config = ScenarioConfig {
            seed: 0xD3B,
            days: 2,
            schedule: ScheduleParams {
                day_seconds: 2.0 * 3600.0,
                departures_choices: [3, 3, 4, 4],
                min_seated_s: 400.0,
                absence_bounds_s: (90.0, 300.0),
                ..ScheduleParams::default()
            },
            ..ScenarioConfig::default()
        };
        let scenario = Scenario::generate(config).unwrap();
        let trace = scenario.simulate().unwrap();
        let subset = scenario.layout().sensor_subset(9);
        let streams = trace.stream_indices_for_subset(&subset);
        let params = FadewichParams::default();
        let re = replay::train_re(&scenario, &trace, &streams, 1, &params).unwrap();
        Fixture { scenario, trace, streams, re, params }
    })
}

#[test]
fn lossless_streaming_decisions_are_byte_identical_to_batch() {
    let fx = fixture();
    let batch = replay::batch_day_actions(&fx.scenario, &fx.trace, &fx.streams, &fx.re, 1, &fx.params)
        .unwrap();
    let cfg = EngineConfig::new(fx.trace.tick_hz(), fx.params);
    let out = replay::stream_day(
        &fx.scenario,
        &fx.trace,
        &fx.streams,
        &fx.re,
        1,
        cfg,
        &LinkModel::lossless(),
        0xF10D,
    )
    .unwrap();

    assert!(!batch.is_empty(), "fixture day produced no actions at all");
    assert_eq!(out.actions, batch);
    // Byte-identical, not merely equivalent.
    assert_eq!(format!("{:?}", out.actions), format!("{batch:?}"));

    let n_ticks = fx.trace.days()[1].n_ticks() as u64;
    let n_sensors = fx.trace.receiver_groups(&fx.streams).len() as u64;
    let c = &out.counters;
    assert_eq!(c.ticks_processed, n_ticks);
    assert_eq!(c.frames_in, n_ticks * n_sensors);
    assert_eq!(
        (c.gap_fills, c.masked_stream_ticks, c.quarantines, c.frames_corrupt(), c.frames_late),
        (0, 0, 0, 0, 0),
        "lossless replay must not degrade: {c:?}"
    );
}

#[test]
fn artifact_served_decisions_are_byte_identical_to_in_memory() {
    // The train/serve split's contract: export the trained model
    // through the versioned artifact codec, reload it, and the served
    // decision stream must match the in-memory-trained engine byte
    // for byte.
    let fx = fixture();
    let bundle = replay::train_model(&fx.scenario, &fx.trace, &fx.streams, 1, &fx.params).unwrap();
    // The bundled classifier IS the fixture classifier (same ordering
    // and seed)...
    assert_eq!(bundle.re, fx.re);
    // ...and it survives encode → decode bit-exactly.
    let loaded = fadewich_core::artifact::ModelBundle::decode(&bundle.encode()).unwrap();
    assert_eq!(loaded, bundle);
    replay::validate_schema(&loaded, &fx.trace, &fx.streams).unwrap();
    assert!(loaded.md.threshold.is_some(), "training must export a fitted MD threshold");

    let cfg = EngineConfig::new(fx.trace.tick_hz(), fx.params);
    let in_memory = replay::stream_day(
        &fx.scenario, &fx.trace, &fx.streams, &fx.re, 1, cfg, &LinkModel::lossless(), 0xF10D,
    )
    .unwrap();
    let served = replay::stream_day(
        &fx.scenario, &fx.trace, &fx.streams, &loaded.re, 1, cfg, &LinkModel::lossless(), 0xF10D,
    )
    .unwrap();
    assert_eq!(format!("{:?}", served.actions), format!("{:?}", in_memory.actions));
    assert_eq!(format!("{:?}", served.events), format!("{:?}", in_memory.events));
}

#[test]
fn schema_mismatches_are_rejected_before_serving() {
    let fx = fixture();
    let bundle = replay::train_model(&fx.scenario, &fx.trace, &fx.streams, 1, &fx.params).unwrap();
    // Wrong stream subset.
    let fewer = &fx.streams[..fx.streams.len() - 1];
    assert!(replay::validate_schema(&bundle, &fx.trace, fewer).is_err());
    // Wrong tick rate.
    let mut wrong_hz = bundle.clone();
    wrong_hz.schema.tick_hz += 1.0;
    assert!(replay::validate_schema(&wrong_hz, &fx.trace, &fx.streams).is_err());
    // Wrong feature layout.
    let mut wrong_layout = bundle;
    wrong_layout.schema.features_per_stream = 7;
    assert!(replay::validate_schema(&wrong_layout, &fx.trace, &fx.streams).is_err());
}

#[test]
fn seeded_lossy_replay_completes_and_reports_degradation() {
    let fx = fixture();
    let link = LinkModel { drop_p: 0.02, dup_p: 0.01, corrupt_p: 0.005, jitter_ticks: 3 };
    let mut cfg = EngineConfig::new(fx.trace.tick_hz(), fx.params);
    cfg.jitter_ticks = 3;
    let out = replay::stream_day(
        &fx.scenario,
        &fx.trace,
        &fx.streams,
        &fx.re,
        1,
        cfg,
        &link,
        0xF10D,
    )
    .unwrap();

    let n_ticks = fx.trace.days()[1].n_ticks() as u64;
    let c = &out.counters;
    // Every tick still advances the pipeline.
    assert_eq!(c.ticks_processed, n_ticks);
    // The loss actually happened and was counted, not hidden.
    assert!(c.gap_fills > 0, "2% drop must show up as gap-fills: {c:?}");
    assert!(c.frames_corrupt() > 0, "corruption must be rejected by the codec: {c:?}");
    assert!(c.frames_duplicate > 0, "duplicates must be deduplicated: {c:?}");
    assert!(c.frames_reordered > 0, "jitter must reorder some frames: {c:?}");
    assert!(c.watermark_lag_max >= 3, "jitter must show up as watermark lag: {c:?}");
    // Counters are observable in both output formats.
    assert!(c.summary().contains("quarantines"));
    assert!(c.to_json().contains("\"gap_fills\""));
    // Determinism: the same seed replays to the same counters and
    // decisions (histograms are wall-clock, so compare the rest).
    let again = replay::stream_day(
        &fx.scenario, &fx.trace, &fx.streams, &fx.re, 1, cfg, &link, 0xF10D,
    )
    .unwrap();
    assert_eq!(again.actions, out.actions);
    assert_eq!(
        (again.counters.frames_in, again.counters.gap_fills, again.counters.masked_stream_ticks),
        (c.frames_in, c.gap_fills, c.masked_stream_ticks)
    );
}

#[test]
fn dead_sensor_is_quarantined_and_decisions_still_flow() {
    // Kill one sensor halfway by filtering its frames out at the
    // transport: the engine must quarantine it, mask its streams and
    // keep the day alive end to end.
    let fx = fixture();
    let groups = fx.trace.receiver_groups(&fx.streams);
    let victim = groups[0].0;
    let reports = fx.trace.sensor_reports(1, &fx.streams);
    let n_ticks = fx.trace.days()[1].n_ticks() as u64;
    let half = n_ticks / 2;

    let inputs = fx.scenario.input_trace(1, 0);
    let kma = fadewich_core::kma::Kma::new(&inputs);
    let cfg = EngineConfig::new(fx.trace.tick_hz(), fx.params);
    let mut engine =
        fadewich_runtime::StreamingEngine::new(cfg, groups.clone(), &fx.re, kma).unwrap();
    let mut seqs = vec![0u32; groups.len()];
    for r in reports {
        if r.sensor == victim && r.tick >= half {
            continue;
        }
        let sender = groups.iter().position(|(s, _)| *s == r.sensor).unwrap();
        let frame = fadewich_runtime::Frame::rssi(r.sensor, seqs[sender], r.tick, r.values);
        seqs[sender] += 1;
        engine.ingest_bytes(&frame.encode());
    }
    engine.finish(n_ticks);

    let c = engine.counters();
    assert_eq!(c.ticks_processed, n_ticks);
    assert_eq!(c.quarantines, 1, "{c:?}");
    assert!(c.masked_stream_ticks > 0);
    assert!(engine.events().iter().any(|e| matches!(
        e,
        fadewich_runtime::EngineEvent::SensorQuarantined { sensor, .. } if *sensor == victim
    )));
}
