//! RTI imaging demo: reconstruct bodies on a floor plan from link
//! attenuations and watch zone occupancy discriminate two desks.
//!
//! ```text
//! cargo run --release -p fadewich-rti --example rti_dbg
//! ```

use fadewich_geometry::{Point, Rect, Segment};
use fadewich_rti::{detector::zone_mass, RtiImager, RtiParams};

fn main() {
    let bounds = Rect::with_size(6.0, 3.0);
    let sensors = [
        Point::new(0.0, 0.0),
        Point::new(3.0, 0.0),
        Point::new(6.0, 0.0),
        Point::new(6.0, 3.0),
        Point::new(3.0, 3.0),
        Point::new(0.0, 3.0),
    ];
    let mut links = Vec::new();
    for i in 0..sensors.len() {
        for j in (i + 1)..sensors.len() {
            links.push(Segment::new(sensors[i], sensors[j]));
        }
    }
    let desks = [Point::new(1.5, 1.5), Point::new(4.5, 1.5)];
    // The forward model: each body carves a Gaussian dip into every
    // link it stands near.
    let rssi = |bodies: &[Point]| -> Vec<f64> {
        links
            .iter()
            .map(|l| {
                let a: f64 = bodies
                    .iter()
                    .map(|&p| {
                        let d = l.distance_to_point(p);
                        8.0 * (-(d / 0.35) * (d / 0.35)).exp()
                    })
                    .sum();
                -55.0 - a
            })
            .collect()
    };
    let mut imager = RtiImager::new(&links, bounds, RtiParams::default()).unwrap();
    imager.calibrate(&rssi(&[]));
    let scenes: [(&str, Vec<Point>); 6] = [
        ("empty", vec![]),
        ("desk 1 occupied", vec![desks[0]]),
        ("desk 2 occupied", vec![desks[1]]),
        ("both occupied", vec![desks[0], desks[1]]),
        ("walker left half", vec![Point::new(1.0, 1.5)]),
        ("walker right half", vec![Point::new(5.0, 1.5)]),
    ];
    for (name, bodies) in scenes {
        let img = imager.image(&rssi(&bodies));
        let m0 = zone_mass(&img, bounds, 18, 9, desks[0], 0.9);
        let m1 = zone_mass(&img, bounds, 18, 9, desks[1], 0.9);
        println!(
            "{name:18} peak={:5.2}  zone1={m0:6.2}  zone2={m1:6.2}  centroid={:?}",
            img.peak(),
            img.centroid().map(|p| format!("{p}")),
        );
    }
}
