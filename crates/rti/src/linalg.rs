//! Minimal dense linear algebra for the RTI inverse problem.
//!
//! RTI reconstructs an attenuation image by solving a Tikhonov-
//! regularized least-squares system. The matrices involved are small
//! (tens of links × a few hundred grid cells), so a plain dense
//! row-major matrix with a Cholesky solver is all that is needed.

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an all-zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in matrix product");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out[(r, c)] += a * other[(k, c)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self[(r, c)] * v[c]).sum())
            .collect()
    }

    /// Adds `lambda` to the diagonal in place (Tikhonov damping).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, lambda: f64) {
        assert_eq!(self.rows, self.cols, "diagonal shift needs a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += lambda;
        }
    }

    /// Cholesky factorization of a symmetric positive-definite matrix:
    /// returns lower-triangular `L` with `L·Lᵀ = self`.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is not (numerically) SPD.
    pub fn cholesky(&self) -> Result<Matrix, String> {
        if self.rows != self.cols {
            return Err("cholesky needs a square matrix".to_string());
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(format!("matrix not positive definite at row {i}"));
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `self · x = b` for SPD `self` via Cholesky.
    ///
    /// # Errors
    ///
    /// Propagates [`Matrix::cholesky`] failures; panics on dimension
    /// mismatch.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, String> {
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let l = self.cholesky()?;
        let n = self.rows;
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[(i, k)] * y[k];
            }
            y[i] = sum / l[(i, i)];
        }
        // Back substitution: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= l[(k, i)] * x[k];
            }
            x[i] = sum / l[(i, i)];
        }
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiply_known() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_rows(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.mul(&b);
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.mul(&Matrix::identity(2)), a);
        assert_eq!(Matrix::identity(2).mul(&a), a);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = M·Mᵀ + I is SPD.
        let m = Matrix::from_rows(3, 3, vec![2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let mut a = m.mul(&m.transpose());
        a.add_diagonal(1.0);
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.mul_vec(&x_true);
        let x = a.solve_spd(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{x:?}");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(a.cholesky().is_err());
    }

    #[test]
    fn mul_vec_known() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn bad_product_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.mul(&b);
    }
}
