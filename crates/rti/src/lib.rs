//! Radio Tomographic Imaging — the baseline FADEWICH is compared
//! against.
//!
//! The FADEWICH paper's related work (§II-A) discusses RTI-style
//! device-free localization (Wilson & Patwari) and argues it is
//! unsuitable for a dynamic, cluttered office: RTI depends on a static
//! empty-room calibration and degrades when bodies sit in the room,
//! when the environment drifts, and when several people move. This
//! crate implements a faithful small RTI stack — ellipse weight model,
//! Tikhonov-regularized image reconstruction, occupancy tracking, a
//! departure detector — so the claim can be tested head-to-head (see
//! `fadewich-experiments::baseline`).
//!
//! # Examples
//!
//! ```
//! use fadewich_geometry::{Point, Rect, Segment};
//! use fadewich_rti::{RtiImager, RtiParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let links = vec![
//!     Segment::new(Point::new(0.0, 0.0), Point::new(6.0, 3.0)),
//!     Segment::new(Point::new(0.0, 3.0), Point::new(6.0, 0.0)),
//!     Segment::new(Point::new(0.0, 1.5), Point::new(6.0, 1.5)),
//! ];
//! let mut imager = RtiImager::new(&links, Rect::with_size(6.0, 3.0), RtiParams::default())?;
//! imager.calibrate(&[-55.0, -55.0, -55.0]);
//! // A body on all three link crossings attenuates them; the image
//! // lights up in the middle of the room.
//! let image = imager.image(&[-61.0, -61.0, -61.0]);
//! assert!(image.peak() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod imaging;
pub mod linalg;

pub use detector::{RtiDepartureDetector, RtiDetectorParams, RtiDeparture};
pub use imaging::{RtiImage, RtiImager, RtiParams};
pub use linalg::Matrix;
