//! Radio tomographic imaging (Wilson & Patwari, TMC 2010).
//!
//! RTI models the attenuation measured on each link as a line integral
//! of a spatial loss field: `y = W·x + noise`, where `y` is the per-
//! link RSSI *deficit* relative to a calibration (empty-room) baseline,
//! `x` the unknown per-cell attenuation image, and `W` an ellipse
//! weight model (a cell contributes to a link if it lies within a
//! tolerance of the link's straight line, weighted by 1/√d). The image
//! is recovered with Tikhonov-regularized least squares whose
//! projection matrix is precomputed once.
//!
//! The FADEWICH paper argues (§II-A) that this machinery — designed for
//! intrusion detection in *empty* monitored areas — breaks down in a
//! busy office because the calibration assumes a static background.
//! This crate exists to test exactly that claim.

use fadewich_geometry::{Point, Rect, Segment};

use crate::linalg::Matrix;

/// RTI model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtiParams {
    /// Grid resolution: cells along x.
    pub cols: usize,
    /// Grid resolution: cells along y.
    pub rows: usize,
    /// Ellipse tolerance: a cell within this distance of a link's
    /// segment contributes to it (m).
    pub ellipse_width_m: f64,
    /// Tikhonov regularization strength.
    pub regularization: f64,
}

impl Default for RtiParams {
    fn default() -> Self {
        RtiParams { cols: 18, rows: 9, ellipse_width_m: 0.5, regularization: 3.0 }
    }
}

/// A reconstructed attenuation image.
#[derive(Debug, Clone, PartialEq)]
pub struct RtiImage {
    cols: usize,
    rows: usize,
    bounds: Rect,
    values: Vec<f64>,
}

impl RtiImage {
    /// Cell value at `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, col: usize, row: usize) -> f64 {
        assert!(col < self.cols && row < self.rows, "cell out of range");
        self.values[row * self.cols + col]
    }

    /// The maximum cell value (0 for an all-negative image).
    pub fn peak(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// The centroid of the image's *strong* mass (cells at ≥ 50 % of
    /// the peak), or `None` when no cell is positive — RTI's location
    /// estimate. Thresholding suppresses the reconstruction smear that
    /// the regularized inverse spreads along every attenuated link.
    pub fn centroid(&self) -> Option<Point> {
        let cutoff = 0.5 * self.peak();
        let mut mass = 0.0;
        let mut mx = 0.0;
        let mut my = 0.0;
        let cw = self.bounds.width() / self.cols as f64;
        let ch = self.bounds.height() / self.rows as f64;
        for row in 0..self.rows {
            for col in 0..self.cols {
                let v = self.get(col, row).max(0.0);
                if v > 0.0 && v >= cutoff {
                    let cx = self.bounds.min().x + (col as f64 + 0.5) * cw;
                    let cy = self.bounds.min().y + (row as f64 + 0.5) * ch;
                    mass += v;
                    mx += v * cx;
                    my += v * cy;
                }
            }
        }
        if mass > 0.0 {
            Some(Point::new(mx / mass, my / mass))
        } else {
            None
        }
    }
}

/// The precomputed RTI reconstruction operator for a fixed deployment.
#[derive(Debug, Clone)]
pub struct RtiImager {
    params: RtiParams,
    bounds: Rect,
    /// `projection · y` gives the image (cells × links).
    projection: Matrix,
    /// Calibration baseline per link (dBm).
    baseline: Vec<f64>,
}

impl RtiImager {
    /// Builds the imager for the given links and precomputes the
    /// regularized inverse.
    ///
    /// # Errors
    ///
    /// Returns an error if there are no links or the normal equations
    /// are not solvable (regularization ≤ 0).
    pub fn new(links: &[Segment], bounds: Rect, params: RtiParams) -> Result<RtiImager, String> {
        if links.is_empty() {
            return Err("RTI needs at least one link".to_string());
        }
        if params.regularization <= 0.0 {
            return Err("regularization must be positive".to_string());
        }
        let n_cells = params.cols * params.rows;
        let cw = bounds.width() / params.cols as f64;
        let ch = bounds.height() / params.rows as f64;
        // Weight matrix W: links × cells.
        let mut w = Matrix::zeros(links.len(), n_cells);
        for (li, link) in links.iter().enumerate() {
            let norm = 1.0 / link.length().max(0.5).sqrt();
            for row in 0..params.rows {
                for col in 0..params.cols {
                    let center = Point::new(
                        bounds.min().x + (col as f64 + 0.5) * cw,
                        bounds.min().y + (row as f64 + 0.5) * ch,
                    );
                    if link.distance_to_point(center) <= params.ellipse_width_m {
                        w[(li, row * params.cols + col)] = norm;
                    }
                }
            }
        }
        // Projection P = (WᵀW + λI)⁻¹ Wᵀ, column by column.
        let wt = w.transpose();
        let mut normal = wt.mul(&w);
        normal.add_diagonal(params.regularization);
        // Solve for each link column of Wᵀ.
        let mut projection = Matrix::zeros(n_cells, links.len());
        for li in 0..links.len() {
            let rhs: Vec<f64> = (0..n_cells).map(|c| wt[(c, li)]).collect();
            let col = normal.solve_spd(&rhs)?;
            for (c, v) in col.into_iter().enumerate() {
                projection[(c, li)] = v;
            }
        }
        Ok(RtiImager {
            params,
            bounds,
            projection,
            baseline: vec![0.0; links.len()],
        })
    }

    /// Sets the empty-room calibration baseline (mean RSSI per link).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the link count.
    pub fn calibrate(&mut self, baseline: &[f64]) {
        assert_eq!(baseline.len(), self.baseline.len(), "baseline length mismatch");
        self.baseline.copy_from_slice(baseline);
    }

    /// Reconstructs the attenuation image from one tick's RSSI values.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the link count.
    pub fn image(&self, rssi: &[f64]) -> RtiImage {
        assert_eq!(rssi.len(), self.baseline.len(), "rssi length mismatch");
        // Positive deficit = attenuation relative to calibration.
        let y: Vec<f64> = self
            .baseline
            .iter()
            .zip(rssi)
            .map(|(b, r)| b - r)
            .collect();
        RtiImage {
            cols: self.params.cols,
            rows: self.params.rows,
            bounds: self.bounds,
            values: self.projection.mul_vec(&y),
        }
    }

    /// Number of links this imager expects.
    pub fn n_links(&self) -> usize {
        self.baseline.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ring of 8 sensors around a 6x3 room with all pairwise links.
    fn ring_links() -> (Vec<Segment>, Rect) {
        let bounds = Rect::with_size(6.0, 3.0);
        let sensors = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(6.0, 1.5),
            Point::new(6.0, 3.0),
            Point::new(3.0, 3.0),
            Point::new(0.0, 3.0),
            Point::new(0.0, 1.5),
        ];
        let mut links = Vec::new();
        for i in 0..sensors.len() {
            for j in (i + 1)..sensors.len() {
                links.push(Segment::new(sensors[i], sensors[j]));
            }
        }
        (links, bounds)
    }

    /// Synthesizes the RSSI deficit a body at `p` would create.
    fn synthetic_rssi(links: &[Segment], baseline: &[f64], p: Point) -> Vec<f64> {
        links
            .iter()
            .zip(baseline)
            .map(|(l, b)| {
                let d = l.distance_to_point(p);
                b - 8.0 * (-(d / 0.35) * (d / 0.35)).exp()
            })
            .collect()
    }

    fn imager() -> (RtiImager, Vec<Segment>, Vec<f64>) {
        let (links, bounds) = ring_links();
        let baseline: Vec<f64> = (0..links.len()).map(|i| -50.0 - (i % 7) as f64).collect();
        let mut imager = RtiImager::new(&links, bounds, RtiParams::default()).unwrap();
        imager.calibrate(&baseline);
        (imager, links, baseline)
    }

    #[test]
    fn empty_room_images_nothing() {
        let (imager, _, baseline) = imager();
        let img = imager.image(&baseline);
        assert!(img.peak() < 1e-9, "peak = {}", img.peak());
        assert_eq!(img.centroid(), None);
    }

    #[test]
    fn single_body_localized() {
        let (imager, links, baseline) = imager();
        let truth = Point::new(2.0, 1.5);
        let img = imager.image(&synthetic_rssi(&links, &baseline, truth));
        assert!(img.peak() > 0.0);
        let est = img.centroid().expect("some positive mass");
        assert!(
            est.distance_to(truth) < 1.2,
            "estimate {est} too far from {truth}"
        );
    }

    #[test]
    fn localization_tracks_movement() {
        let (imager, links, baseline) = imager();
        let left = imager
            .image(&synthetic_rssi(&links, &baseline, Point::new(1.0, 1.5)))
            .centroid()
            .unwrap();
        let right = imager
            .image(&synthetic_rssi(&links, &baseline, Point::new(5.0, 1.5)))
            .centroid()
            .unwrap();
        assert!(right.x - left.x > 2.0, "left {left}, right {right}");
    }

    #[test]
    fn stale_calibration_biases_the_image() {
        // The FADEWICH critique: calibrate with a person in the room,
        // and their later absence shows up as phantom (negative) mass
        // while a second person's image is distorted.
        let (mut imager, links, baseline) = imager();
        let seated = Point::new(1.0, 1.0);
        let polluted = synthetic_rssi(&links, &baseline, seated);
        imager.calibrate(&polluted);
        // Now the seated person leaves: the image should be ~empty but
        // is not, because the baseline was wrong.
        let img = imager.image(&baseline);
        let spurious = img.centroid();
        // Any positive mass here is a calibration artifact.
        assert!(
            img.values.iter().any(|&v| v < -1e-6),
            "stale calibration must leave negative residue"
        );
        let _ = spurious;
    }

    #[test]
    fn build_errors() {
        let (_, bounds) = ring_links();
        assert!(RtiImager::new(&[], bounds, RtiParams::default()).is_err());
        let (links, bounds) = ring_links();
        let bad = RtiParams { regularization: 0.0, ..RtiParams::default() };
        assert!(RtiImager::new(&links, bounds, bad).is_err());
    }
}
