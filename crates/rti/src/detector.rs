//! An RTI-based departure detector — the baseline FADEWICH is argued
//! against.
//!
//! The natural way to build deauthentication on top of RTI is: image
//! the room continuously, call a workstation *occupied* while the
//! reconstructed attenuation mass near its desk exceeds a threshold,
//! and flag a departure when an occupied desk goes empty for a few
//! consecutive ticks. Its Achilles heel is the calibration baseline:
//! RTI is calibrated once against an empty room, so seated bodies,
//! environmental drift and multi-person motion all corrupt the image —
//! precisely the paper's §II-A argument for not using RTI in a busy
//! office.

use fadewich_geometry::{Point, Rect, Segment};

use crate::imaging::{RtiImage, RtiImager, RtiParams};

/// Parameters of the departure detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtiDetectorParams {
    /// The underlying imaging parameters.
    pub imaging: RtiParams,
    /// Radius of a workstation's occupancy zone (m).
    pub zone_radius_m: f64,
    /// Image mass within the zone above which the desk is occupied.
    pub presence_threshold: f64,
    /// Consecutive below-threshold ticks before a departure fires.
    pub absence_ticks: usize,
    /// Ticks of the (assumed empty) calibration window.
    pub calibration_ticks: usize,
}

impl Default for RtiDetectorParams {
    fn default() -> Self {
        RtiDetectorParams {
            imaging: RtiParams::default(),
            zone_radius_m: 0.9,
            presence_threshold: 1.0,
            absence_ticks: 10,
            calibration_ticks: 300,
        }
    }
}

/// A fired departure: workstation and the tick it was declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtiDeparture {
    /// The workstation whose zone emptied.
    pub workstation: usize,
    /// Tick at which the absence counter expired.
    pub tick: usize,
}

/// Sums the positive image mass within `radius` of `center`.
pub fn zone_mass(image: &RtiImage, bounds: Rect, cols: usize, rows: usize, center: Point, radius: f64) -> f64 {
    let cw = bounds.width() / cols as f64;
    let ch = bounds.height() / rows as f64;
    let mut mass = 0.0;
    for row in 0..rows {
        for col in 0..cols {
            let p = Point::new(
                bounds.min().x + (col as f64 + 0.5) * cw,
                bounds.min().y + (row as f64 + 0.5) * ch,
            );
            if p.distance_to(center) <= radius {
                mass += image.get(col, row).max(0.0);
            }
        }
    }
    mass
}

/// The online RTI departure detector.
#[derive(Debug, Clone)]
pub struct RtiDepartureDetector {
    params: RtiDetectorParams,
    bounds: Rect,
    imager: RtiImager,
    workstations: Vec<Point>,
    /// Accumulated calibration rows.
    calib_sum: Vec<f64>,
    calib_count: usize,
    calibrated: bool,
    occupied: Vec<bool>,
    absent_run: Vec<usize>,
}

impl RtiDepartureDetector {
    /// Builds the detector for a deployment.
    ///
    /// # Errors
    ///
    /// Propagates [`RtiImager::new`] errors.
    pub fn new(
        links: &[Segment],
        bounds: Rect,
        workstations: &[Point],
        params: RtiDetectorParams,
    ) -> Result<RtiDepartureDetector, String> {
        let imager = RtiImager::new(links, bounds, params.imaging)?;
        Ok(RtiDepartureDetector {
            params,
            bounds,
            imager,
            workstations: workstations.to_vec(),
            calib_sum: vec![0.0; links.len()],
            calib_count: 0,
            calibrated: false,
            occupied: vec![false; workstations.len()],
            absent_run: vec![0; workstations.len()],
        })
    }

    /// Whether calibration has completed.
    pub fn is_calibrated(&self) -> bool {
        self.calibrated
    }

    /// Current occupancy flags.
    pub fn occupied(&self) -> &[bool] {
        &self.occupied
    }

    /// Feeds one tick of per-link RSSI; returns departures fired at
    /// this tick.
    ///
    /// # Panics
    ///
    /// Panics if `rssi.len()` differs from the link count.
    pub fn step(&mut self, tick: usize, rssi: &[f64]) -> Vec<RtiDeparture> {
        assert_eq!(rssi.len(), self.calib_sum.len(), "rssi length mismatch");
        if !self.calibrated {
            for (s, &r) in self.calib_sum.iter_mut().zip(rssi) {
                *s += r;
            }
            self.calib_count += 1;
            if self.calib_count >= self.params.calibration_ticks {
                let n = self.calib_count as f64;
                let baseline: Vec<f64> = self.calib_sum.iter().map(|s| s / n).collect();
                self.imager.calibrate(&baseline);
                self.calibrated = true;
            }
            return Vec::new();
        }
        let image = self.imager.image(rssi);
        let mut fired = Vec::new();
        for (ws, &desk) in self.workstations.iter().enumerate() {
            let mass = zone_mass(
                &image,
                self.bounds,
                self.params.imaging.cols,
                self.params.imaging.rows,
                desk,
                self.params.zone_radius_m,
            );
            if mass >= self.params.presence_threshold {
                self.occupied[ws] = true;
                self.absent_run[ws] = 0;
            } else if self.occupied[ws] {
                self.absent_run[ws] += 1;
                if self.absent_run[ws] >= self.params.absence_ticks {
                    self.occupied[ws] = false;
                    self.absent_run[ws] = 0;
                    fired.push(RtiDeparture { workstation: ws, tick });
                }
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deployment() -> (Vec<Segment>, Rect, Vec<Point>) {
        let bounds = Rect::with_size(6.0, 3.0);
        let sensors = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(6.0, 3.0),
            Point::new(3.0, 3.0),
            Point::new(0.0, 3.0),
        ];
        let mut links = Vec::new();
        for i in 0..sensors.len() {
            for j in (i + 1)..sensors.len() {
                links.push(Segment::new(sensors[i], sensors[j]));
            }
        }
        let desks = vec![Point::new(1.5, 1.5), Point::new(4.5, 1.5)];
        (links, bounds, desks)
    }

    fn rssi_with_bodies(links: &[Segment], bodies: &[Point]) -> Vec<f64> {
        links
            .iter()
            .map(|l| {
                let atten: f64 = bodies
                    .iter()
                    .map(|&p| {
                        let d = l.distance_to_point(p);
                        8.0 * (-(d / 0.35) * (d / 0.35)).exp()
                    })
                    .sum();
                -55.0 - atten
            })
            .collect()
    }

    #[test]
    fn detects_a_clean_departure() {
        let (links, bounds, desks) = deployment();
        let params = RtiDetectorParams { calibration_ticks: 20, ..Default::default() };
        let mut det = RtiDepartureDetector::new(&links, bounds, &desks, params).unwrap();
        let empty = rssi_with_bodies(&links, &[]);
        let seated = rssi_with_bodies(&links, &[desks[0]]);
        let mut tick = 0;
        for _ in 0..20 {
            assert!(det.step(tick, &empty).is_empty());
            tick += 1;
        }
        assert!(det.is_calibrated());
        // Person sits at desk 0 for a while.
        for _ in 0..50 {
            let fired = det.step(tick, &seated);
            assert!(fired.is_empty(), "no departure while seated");
            tick += 1;
        }
        assert!(det.occupied()[0]);
        assert!(!det.occupied()[1]);
        // Person leaves; the detector fires after the absence run.
        let mut fired_at = None;
        for _ in 0..40 {
            if let Some(f) = det.step(tick, &empty).first() {
                fired_at = Some((f.workstation, f.tick));
                break;
            }
            tick += 1;
        }
        let (ws, t) = fired_at.expect("departure must fire");
        assert_eq!(ws, 0);
        assert!(t >= 70 && t <= 90, "fired at tick {t}");
    }

    #[test]
    fn two_desks_tracked_independently() {
        let (links, bounds, desks) = deployment();
        let params = RtiDetectorParams { calibration_ticks: 10, ..Default::default() };
        let mut det = RtiDepartureDetector::new(&links, bounds, &desks, params).unwrap();
        let empty = rssi_with_bodies(&links, &[]);
        let both = rssi_with_bodies(&links, &[desks[0], desks[1]]);
        let only_second = rssi_with_bodies(&links, &[desks[1]]);
        let mut tick = 0;
        for _ in 0..10 {
            det.step(tick, &empty);
            tick += 1;
        }
        for _ in 0..30 {
            det.step(tick, &both);
            tick += 1;
        }
        assert_eq!(det.occupied(), &[true, true]);
        let mut fired = Vec::new();
        for _ in 0..40 {
            fired.extend(det.step(tick, &only_second));
            tick += 1;
        }
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].workstation, 0);
        assert!(det.occupied()[1], "the remaining user must stay occupied");
    }

    #[test]
    fn no_departures_before_calibration() {
        let (links, bounds, desks) = deployment();
        let params = RtiDetectorParams { calibration_ticks: 50, ..Default::default() };
        let mut det = RtiDepartureDetector::new(&links, bounds, &desks, params).unwrap();
        let seated = rssi_with_bodies(&links, &[desks[0]]);
        for tick in 0..49 {
            assert!(det.step(tick, &seated).is_empty());
            assert!(!det.is_calibrated());
        }
    }
}
