//! Property-based tests of the channel simulator.

use fadewich_geometry::{Point, Rect};
use fadewich_rfchannel::{body, Body, ChannelParams, ChannelSim};
use fadewich_stats::rng::Rng;
use fadewich_testkit::prop::{f64s, u64s, usizes};

fadewich_testkit::property! {
    #[cases(24)]
    fn attenuation_monotone_in_distance(d1 in f64s(0.0..3.0), d2 in f64s(0.0..3.0)) {
        let p = ChannelParams::default();
        let (near, far) = (d1.min(d2), d1.max(d2));
        assert!(
            body::mean_attenuation_db(&p, near) + 1e-12 >= body::mean_attenuation_db(&p, far)
        );
        assert!(body::mean_attenuation_db(&p, d1) >= 0.0);
        assert!(body::mean_attenuation_db(&p, d1) <= p.body_attenuation_db);
    }

    #[cases(24)]
    fn channel_output_is_finite_and_plausible(
        seed in u64s(0..200),
        n_bodies in usizes(0..4),
        ticks in usizes(1..80),
    ) {
        let sensors = [
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(6.0, 3.0),
            Point::new(0.0, 3.0),
        ];
        let mut sim = ChannelSim::new(
            &sensors,
            Rect::with_size(6.0, 3.0),
            5.0,
            ChannelParams::default(),
            seed,
        ).unwrap();
        let mut rng = Rng::seed_from_u64(seed ^ 0xB0D1);
        for _ in 0..ticks {
            let bodies: Vec<Body> = (0..n_bodies)
                .map(|_| Body::new(
                    Point::new(rng.range_f64(0.0, 6.0), rng.range_f64(0.0, 3.0)),
                    rng.f64(),
                ))
                .collect();
            for &r in sim.step(&bodies) {
                assert!(r.is_finite());
                assert!((-120.0..=-20.0).contains(&r), "rssi = {r}");
            }
        }
    }

    #[cases(24)]
    fn subset_streams_are_consistent(seed in u64s(0..50)) {
        let sensors: Vec<Point> = (0..5)
            .map(|i| Point::new(i as f64, (i % 2) as f64 * 3.0))
            .collect();
        let sim = ChannelSim::new(
            &sensors,
            Rect::with_size(6.0, 3.0),
            5.0,
            ChannelParams::default(),
            seed,
        ).unwrap();
        // Every stream index returned by a subset has both endpoints in it.
        let subset = vec![0usize, 2, 4];
        for i in sim.stream_indices_for_subset(&subset) {
            let id = sim.link_ids()[i];
            assert!(subset.contains(&id.tx) && subset.contains(&id.rx));
        }
        // Subset of size k covers k(k-1) streams.
        assert_eq!(sim.stream_indices_for_subset(&subset).len(), 6);
    }
}
