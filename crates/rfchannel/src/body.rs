//! The human-body obstruction model.
//!
//! A torso near the straight line between transmitter and receiver
//! scatters and absorbs signal energy. We model the mean attenuation as
//! a Gaussian profile of the body's distance `x` from the link segment,
//! `B(x) = A · exp(−(x/λ)²)`, which matches the bell-shaped RSSI dips
//! reported when a person walks through a link (RADAR; Patwari–Wilson).
//! Motion additionally *jitters* the attenuation tick-to-tick — the
//! limbs sweep through Fresnel zones — which is precisely the variance
//! signal FADEWICH's MD module detects.

use fadewich_geometry::{Point, Segment};
use fadewich_stats::rng::Rng;

use crate::params::ChannelParams;

/// A human body as the channel sees it: a position and a motion
/// intensity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    /// Torso position on the floor plan.
    pub position: Point,
    /// Motion intensity in `[0, 1]`: 0 = perfectly still, ~0.15 =
    /// seated fidgeting, ~0.8 = standing up, 1.0 = walking.
    pub motion: f64,
}

impl Body {
    /// Creates a body, clamping motion into `[0, 1]`.
    pub fn new(position: Point, motion: f64) -> Body {
        Body { position, motion: motion.clamp(0.0, 1.0) }
    }

    /// A stationary body.
    pub fn still(position: Point) -> Body {
        Body::new(position, 0.0)
    }
}

/// Mean attenuation (dB, ≥ 0) a body at distance `dist` from the link
/// inflicts, before motion jitter.
pub fn mean_attenuation_db(params: &ChannelParams, dist: f64) -> f64 {
    let x = dist / params.body_radius_m;
    // Beyond ~3 radii the profile is < 1e-4 of the peak; skip the exp.
    if x > 3.5 {
        return 0.0;
    }
    params.body_attenuation_db * (-x * x).exp()
}

/// Total attenuation of one link by a set of bodies at one tick,
/// including per-tick motion jitter (hence `rng`).
///
/// Multiple bodies attenuate additively in dB — an approximation, but
/// overlapping obstructions are rare in the scenarios and the paper
/// itself declares overlapping movements out of the classifier's scope
/// (§IV-E).
pub fn link_attenuation_db(
    params: &ChannelParams,
    link: &Segment,
    bodies: &[Body],
    rng: &mut Rng,
) -> f64 {
    let mut total = 0.0;
    for body in bodies {
        let dist = link.distance_to_point(body.position);
        let mean = mean_attenuation_db(params, dist);
        if mean <= 0.0 {
            continue;
        }
        let jitter = if body.motion > 0.0 {
            mean * params.motion_jitter * body.motion * rng.normal()
        } else {
            0.0
        };
        // Attenuation cannot amplify the signal.
        total += (mean + jitter).max(0.0);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Segment {
        Segment::new(Point::new(0.0, 0.0), Point::new(6.0, 0.0))
    }

    #[test]
    fn peak_on_the_line() {
        let p = ChannelParams::default();
        assert_eq!(mean_attenuation_db(&p, 0.0), p.body_attenuation_db);
    }

    #[test]
    fn decays_with_distance() {
        let p = ChannelParams::default();
        let near = mean_attenuation_db(&p, 0.1);
        let mid = mean_attenuation_db(&p, 0.35);
        let far = mean_attenuation_db(&p, 1.0);
        assert!(near > mid && mid > far);
        // At one body radius the profile is e^-1 of the peak.
        assert!((mid - p.body_attenuation_db / std::f64::consts::E).abs() < 1e-9);
    }

    #[test]
    fn cut_off_beyond_reach() {
        let p = ChannelParams::default();
        assert_eq!(mean_attenuation_db(&p, 2.0), 0.0);
    }

    #[test]
    fn still_body_attenuates_deterministically() {
        let p = ChannelParams::default();
        let body = Body::still(Point::new(3.0, 0.0));
        let mut r1 = Rng::seed_from_u64(1);
        let mut r2 = Rng::seed_from_u64(999);
        let a = link_attenuation_db(&p, &link(), &[body], &mut r1);
        let b = link_attenuation_db(&p, &link(), &[body], &mut r2);
        assert_eq!(a, b, "a still body must not consume randomness");
        assert_eq!(a, p.body_attenuation_db);
    }

    #[test]
    fn moving_body_jitters() {
        let p = ChannelParams::default();
        let body = Body::new(Point::new(3.0, 0.0), 1.0);
        let mut rng = Rng::seed_from_u64(2);
        let samples: Vec<f64> =
            (0..200).map(|_| link_attenuation_db(&p, &link(), &[body], &mut rng)).collect();
        let sd = fadewich_stats::descriptive::std_dev(&samples);
        assert!(sd > 1.0, "walking body should jitter strongly, sd = {sd}");
        assert!(samples.iter().all(|&a| a >= 0.0), "attenuation must never amplify");
    }

    #[test]
    fn distant_body_invisible() {
        let p = ChannelParams::default();
        let body = Body::new(Point::new(3.0, 2.5), 1.0);
        let mut rng = Rng::seed_from_u64(3);
        assert_eq!(link_attenuation_db(&p, &link(), &[body], &mut rng), 0.0);
    }

    #[test]
    fn bodies_add_up() {
        let p = ChannelParams::default();
        let bodies = [Body::still(Point::new(2.0, 0.0)), Body::still(Point::new(4.0, 0.0))];
        let mut rng = Rng::seed_from_u64(4);
        let a = link_attenuation_db(&p, &link(), &bodies, &mut rng);
        assert_eq!(a, 2.0 * p.body_attenuation_db);
    }

    #[test]
    fn motion_clamped() {
        let b = Body::new(Point::ORIGIN, 7.0);
        assert_eq!(b.motion, 1.0);
        let b = Body::new(Point::ORIGIN, -1.0);
        assert_eq!(b.motion, 0.0);
    }
}
