//! Log-distance path loss.

use crate::params::ChannelParams;

/// Path loss in dB at distance `d` metres under the log-distance model
/// `PL(d) = PL₀ + 10·n·log₁₀(d / d₀)`.
///
/// Distances below the reference distance are clamped to it — the
/// near-field of a 2.4 GHz antenna is not meaningfully described by the
/// far-field model, and sensors in the office are never that close.
pub fn path_loss_db(params: &ChannelParams, d: f64) -> f64 {
    let d = d.max(params.ref_distance_m);
    params.path_loss_at_ref_db
        + 10.0 * params.path_loss_exponent * (d / params.ref_distance_m).log10()
}

/// Mean (noise-free, unobstructed) RSSI of a link of length `d`.
pub fn mean_rssi_dbm(params: &ChannelParams, d: f64) -> f64 {
    params.tx_power_dbm - path_loss_db(params, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_grows_with_distance() {
        let p = ChannelParams::default();
        assert!(path_loss_db(&p, 2.0) < path_loss_db(&p, 4.0));
        // Doubling distance adds 10·n·log10(2) ≈ 6.62 dB at n = 2.2.
        let delta = path_loss_db(&p, 4.0) - path_loss_db(&p, 2.0);
        assert!((delta - 10.0 * 2.2 * 2.0f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn reference_distance_loss() {
        let p = ChannelParams::default();
        assert_eq!(path_loss_db(&p, 1.0), p.path_loss_at_ref_db);
    }

    #[test]
    fn near_field_clamped() {
        let p = ChannelParams::default();
        assert_eq!(path_loss_db(&p, 0.1), path_loss_db(&p, 1.0));
        assert_eq!(path_loss_db(&p, 0.0), path_loss_db(&p, 1.0));
    }

    #[test]
    fn rssi_plausible_for_office_scale() {
        let p = ChannelParams::default();
        // A 6 m office diagonal link should sit in a plausible dBm range.
        let rssi = mean_rssi_dbm(&p, 6.7);
        assert!(rssi < -55.0 && rssi > -80.0, "rssi = {rssi}");
    }
}
