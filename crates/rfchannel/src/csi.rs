//! Channel State Information (CSI) simulation — the paper's future
//! work (§VIII-A): "whether more fine grained information that can be
//! provided by the wireless channel (such as channel state
//! information) can improve the system performance".
//!
//! Where RSSI is one aggregate power value per link, CSI reports the
//! complex response of every OFDM subcarrier. We simulate per-
//! subcarrier *amplitudes* (phase is notoriously unusable on cheap
//! hardware): each subcarrier sees the same geometry but its own
//! multipath realization, so a body crossing a link imprints slightly
//! different dips on each — more information per link for the
//! classifier, exactly the hypothesis the paper poses.

use fadewich_geometry::{Point, Rect, Segment};
use fadewich_stats::rng::Rng;

use crate::body::{link_attenuation_db, Body};
use crate::channel::{BuildChannelError, LinkId};
use crate::params::ChannelParams;
use crate::pathloss::mean_rssi_dbm;

/// Per-(link, subcarrier) state.
#[derive(Debug, Clone)]
struct SubcarrierState {
    /// Static frequency-selective offset (dB).
    base: f64,
    /// AR(1) fading state.
    fading: f64,
    /// How strongly this subcarrier reacts to body obstruction
    /// relative to the wideband mean (frequency-selective shadowing).
    body_gain: f64,
}

/// Simulates per-subcarrier amplitude streams for all directed sensor
/// pairs.
///
/// Stream layout: `link * n_subcarriers + subcarrier`, links in the
/// same order as [`crate::ChannelSim`].
#[derive(Debug, Clone)]
pub struct CsiChannelSim {
    params: ChannelParams,
    n_subcarriers: usize,
    tick_hz: f64,
    link_ids: Vec<LinkId>,
    segments: Vec<Segment>,
    subcarriers: Vec<SubcarrierState>,
    drift_db: f64,
    rng: Rng,
    out: Vec<f64>,
}

impl CsiChannelSim {
    /// Builds a CSI channel with `n_subcarriers` per link.
    ///
    /// # Errors
    ///
    /// Mirrors [`crate::ChannelSim::new`], plus rejects
    /// `n_subcarriers == 0`.
    pub fn new(
        sensors: &[Point],
        _bounds: Rect,
        tick_hz: f64,
        params: ChannelParams,
        n_subcarriers: usize,
        seed: u64,
    ) -> Result<CsiChannelSim, BuildChannelError> {
        if sensors.len() < 2 {
            return Err(BuildChannelError::TooFewSensors);
        }
        params.validate().map_err(BuildChannelError::InvalidParams)?;
        if !(tick_hz > 0.0) || !tick_hz.is_finite() {
            return Err(BuildChannelError::InvalidTickRate);
        }
        if n_subcarriers == 0 {
            return Err(BuildChannelError::InvalidParams(
                "need at least one subcarrier".to_string(),
            ));
        }
        let mut rng = Rng::seed_from_u64(seed ^ 0xC51);
        let mut link_ids = Vec::new();
        let mut segments = Vec::new();
        let mut subcarriers = Vec::new();
        for tx in 0..sensors.len() {
            for rx in 0..sensors.len() {
                if tx == rx {
                    continue;
                }
                let segment = Segment::new(sensors[tx], sensors[rx]);
                let wideband = mean_rssi_dbm(&params, segment.length())
                    + rng.normal() * params.static_offset_sd_db;
                for _ in 0..n_subcarriers {
                    subcarriers.push(SubcarrierState {
                        // Frequency-selective ripple of a few dB.
                        base: wideband + rng.normal() * 1.5,
                        fading: 0.0,
                        // Obstruction response varies ±35% across
                        // subcarriers (different Fresnel geometry per
                        // wavelength).
                        body_gain: (1.0 + 0.35 * rng.normal()).clamp(0.3, 1.9),
                    });
                }
                link_ids.push(LinkId { tx, rx });
                segments.push(segment);
            }
        }
        let n = subcarriers.len();
        Ok(CsiChannelSim {
            params,
            n_subcarriers,
            tick_hz,
            link_ids,
            segments,
            subcarriers,
            drift_db: 0.0,
            rng,
            out: vec![0.0; n],
        })
    }

    /// Total number of streams (`links × subcarriers`).
    pub fn n_streams(&self) -> usize {
        self.subcarriers.len()
    }

    /// Number of links.
    pub fn n_links(&self) -> usize {
        self.link_ids.len()
    }

    /// Subcarriers per link.
    pub fn n_subcarriers(&self) -> usize {
        self.n_subcarriers
    }

    /// Link identities, one per link (not per stream).
    pub fn link_ids(&self) -> &[LinkId] {
        &self.link_ids
    }

    /// The sampling rate.
    pub fn tick_hz(&self) -> f64 {
        self.tick_hz
    }

    /// Advances one tick; returns one amplitude (dB) per stream in
    /// `link-major` order.
    pub fn step(&mut self, bodies: &[Body]) -> &[f64] {
        let p = self.params;
        self.drift_db = (self.drift_db + self.rng.normal() * p.drift_step_sd_db)
            .clamp(-p.drift_bound_db, p.drift_bound_db);
        let innov = p.fading_sd_db * (1.0 - p.fading_rho * p.fading_rho).sqrt();
        for (li, segment) in self.segments.iter().enumerate() {
            // Wideband body attenuation shared by the link's
            // subcarriers; each scales it by its own gain.
            let atten = link_attenuation_db(&p, segment, bodies, &mut self.rng);
            for s in 0..self.n_subcarriers {
                let idx = li * self.n_subcarriers + s;
                let sc = &mut self.subcarriers[idx];
                sc.fading = p.fading_rho * sc.fading + innov * self.rng.normal();
                let mut v = sc.base + self.drift_db + sc.fading - atten * sc.body_gain;
                v += self.rng.normal() * p.measurement_noise_sd_db;
                self.out[idx] = if p.quantization_db > 0.0 {
                    // CSI amplitude resolution is finer than RSSI's.
                    let q = p.quantization_db * 0.25;
                    (v / q).round() * q
                } else {
                    v
                };
            }
        }
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensors() -> Vec<Point> {
        vec![Point::new(0.0, 0.0), Point::new(6.0, 0.0), Point::new(3.0, 3.0)]
    }

    fn sim(seed: u64, subcarriers: usize) -> CsiChannelSim {
        CsiChannelSim::new(
            &sensors(),
            Rect::with_size(6.0, 3.0),
            5.0,
            ChannelParams::default(),
            subcarriers,
            seed,
        )
        .unwrap()
    }

    #[test]
    fn stream_layout() {
        let s = sim(1, 4);
        assert_eq!(s.n_links(), 6);
        assert_eq!(s.n_subcarriers(), 4);
        assert_eq!(s.n_streams(), 24);
        assert_eq!(s.link_ids().len(), 6);
    }

    #[test]
    fn deterministic() {
        let mut a = sim(3, 4);
        let mut b = sim(3, 4);
        for _ in 0..20 {
            assert_eq!(a.step(&[]), b.step(&[]));
        }
    }

    #[test]
    fn subcarriers_of_one_link_differ_but_correlate() {
        let mut s = sim(5, 4);
        let mut streams: Vec<Vec<f64>> = vec![Vec::new(); 4];
        let body = Body::new(Point::new(3.0, 0.0), 1.0);
        for i in 0..400 {
            // Body crosses link 0 periodically.
            let y = ((i as f64) * 0.08).sin() * 0.5;
            let out = s.step(&[Body::new(Point::new(3.0, y), body.motion)]);
            for (k, stream) in streams.iter_mut().enumerate() {
                stream.push(out[k]);
            }
        }
        // Different static offsets.
        let means: Vec<f64> =
            streams.iter().map(|x| fadewich_stats::descriptive::mean(x)).collect();
        assert!(means.windows(2).any(|w| (w[0] - w[1]).abs() > 0.1));
        // But the shared obstruction correlates them.
        let r = fadewich_stats::corr::pearson(&streams[0], &streams[1]);
        assert!(r > 0.3, "subcarriers of one link should co-vary, r = {r}");
    }

    #[test]
    fn body_attenuates_all_subcarriers_on_the_link() {
        let mut with = sim(7, 4);
        let mut without = sim(7, 4);
        let body = Body::still(Point::new(3.0, 0.0)); // on link 0 (d1-d2)
        let mut diff = vec![0.0f64; 4];
        for _ in 0..300 {
            let a = with.step(&[body]).to_vec();
            let b = without.step(&[]).to_vec();
            for k in 0..4 {
                diff[k] += b[k] - a[k];
            }
        }
        for (k, d) in diff.iter().enumerate() {
            let mean_atten = d / 300.0;
            assert!(
                mean_atten > 1.5,
                "subcarrier {k} should see obstruction, got {mean_atten} dB"
            );
        }
    }

    #[test]
    fn build_errors() {
        let r = CsiChannelSim::new(
            &sensors(),
            Rect::with_size(6.0, 3.0),
            5.0,
            ChannelParams::default(),
            0,
            1,
        );
        assert!(matches!(r.unwrap_err(), BuildChannelError::InvalidParams(_)));
        let r = CsiChannelSim::new(
            &[Point::ORIGIN],
            Rect::with_size(1.0, 1.0),
            5.0,
            ChannelParams::default(),
            4,
            1,
        );
        assert_eq!(r.unwrap_err(), BuildChannelError::TooFewSensors);
    }
}
