//! Channel model parameters.
//!
//! Defaults are calibrated so that the synthetic streams show the three
//! phenomena FADEWICH depends on, with magnitudes taken from the
//! device-free-localization literature the paper builds on:
//!
//! - a walking body crossing a link's line of sight attenuates it by
//!   several dB (RADAR reports 5–10 dB; we default to 8 dB peak);
//! - motion adds variance, static bodies mostly shift the mean;
//! - the environment itself is noisy: measurement noise, temporally
//!   correlated multipath fading with heavy-tailed spikes
//!   (Patwari–Wilson skew-Laplace), slow drift, and occasional
//!   localized interference bursts.

/// All tunables of the RSSI channel simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelParams {
    /// Transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Path loss at the reference distance (dB).
    pub path_loss_at_ref_db: f64,
    /// Reference distance for the path-loss model (m).
    pub ref_distance_m: f64,
    /// Path-loss exponent (≈ 2.2 indoors with strong multipath).
    pub path_loss_exponent: f64,
    /// Standard deviation of the fixed per-directed-link offset (dB):
    /// antenna orientation, hardware gain spread.
    pub static_offset_sd_db: f64,
    /// Per-sample white measurement noise σ (dB).
    pub measurement_noise_sd_db: f64,
    /// AR(1) multipath fading: one-tick autocorrelation ρ.
    pub fading_rho: f64,
    /// AR(1) multipath fading: stationary σ (dB).
    pub fading_sd_db: f64,
    /// Probability per tick per link of a heavy-tailed fade spike.
    pub spike_probability: f64,
    /// Scale of the negative (deep fade) side of the spike (dB).
    pub spike_scale_neg_db: f64,
    /// Scale of the positive side of the spike (dB).
    pub spike_scale_pos_db: f64,
    /// Slow environmental drift: random-walk step σ per tick (dB).
    pub drift_step_sd_db: f64,
    /// Drift is clamped to ± this bound (dB).
    pub drift_bound_db: f64,
    /// Peak line-of-sight body attenuation (dB).
    pub body_attenuation_db: f64,
    /// Effective body radius λ in the Gaussian obstruction profile (m).
    pub body_radius_m: f64,
    /// Relative motion jitter: a moving body's attenuation fluctuates
    /// by `N(0, (jitter · motion · B)²)` per tick.
    pub motion_jitter: f64,
    /// Interference bursts per hour (Poisson arrivals).
    pub burst_rate_per_hour: f64,
    /// Minimum burst duration (s).
    pub burst_min_duration_s: f64,
    /// Maximum burst duration (s).
    pub burst_max_duration_s: f64,
    /// A burst disturbs links passing within this distance of its
    /// epicentre (m).
    pub burst_radius_m: f64,
    /// Extra noise σ a burst adds to affected links (dB).
    pub burst_noise_sd_db: f64,
    /// RSSI quantization step (dB); cheap radios report 0.5 or 1 dB.
    pub quantization_db: f64,
}

impl Default for ChannelParams {
    fn default() -> Self {
        ChannelParams {
            tx_power_dbm: -10.0,
            path_loss_at_ref_db: 40.0,
            ref_distance_m: 1.0,
            path_loss_exponent: 2.2,
            static_offset_sd_db: 2.0,
            measurement_noise_sd_db: 0.7,
            fading_rho: 0.8,
            fading_sd_db: 0.5,
            spike_probability: 0.002,
            spike_scale_neg_db: 2.5,
            spike_scale_pos_db: 1.0,
            drift_step_sd_db: 0.004,
            drift_bound_db: 3.0,
            body_attenuation_db: 8.0,
            body_radius_m: 0.35,
            motion_jitter: 0.55,
            burst_rate_per_hour: 0.25,
            burst_min_duration_s: 2.0,
            burst_max_duration_s: 7.0,
            burst_radius_m: 1.8,
            burst_noise_sd_db: 2.5,
            quantization_db: 0.5,
        }
    }
}

impl ChannelParams {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.fading_rho) {
            return Err(format!("fading_rho {} must be in [0,1)", self.fading_rho));
        }
        if self.ref_distance_m <= 0.0 {
            return Err("ref_distance_m must be positive".to_string());
        }
        if self.body_radius_m <= 0.0 {
            return Err("body_radius_m must be positive".to_string());
        }
        if !(0.0..=1.0).contains(&self.spike_probability) {
            return Err("spike_probability must be a probability".to_string());
        }
        if self.burst_min_duration_s > self.burst_max_duration_s {
            return Err("burst duration bounds are inverted".to_string());
        }
        if self.quantization_db < 0.0 {
            return Err("quantization_db must be non-negative".to_string());
        }
        for (name, v) in [
            ("measurement_noise_sd_db", self.measurement_noise_sd_db),
            ("fading_sd_db", self.fading_sd_db),
            ("static_offset_sd_db", self.static_offset_sd_db),
            ("body_attenuation_db", self.body_attenuation_db),
            ("burst_noise_sd_db", self.burst_noise_sd_db),
        ] {
            if v < 0.0 || !v.is_finite() {
                return Err(format!("{name} must be finite and non-negative"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert_eq!(ChannelParams::default().validate(), Ok(()));
    }

    #[test]
    fn invalid_rho_rejected() {
        let p = ChannelParams { fading_rho: 1.5, ..ChannelParams::default() };
        assert!(p.validate().is_err());
    }

    #[test]
    fn inverted_burst_bounds_rejected() {
        let p = ChannelParams {
            burst_min_duration_s: 9.0,
            burst_max_duration_s: 2.0,
            ..ChannelParams::default()
        };
        assert!(p.validate().unwrap_err().contains("inverted"));
    }

    #[test]
    fn negative_noise_rejected() {
        let p = ChannelParams { measurement_noise_sd_db: -1.0, ..ChannelParams::default() };
        assert!(p.validate().is_err());
    }
}
