//! The RSSI stream simulator.
//!
//! [`ChannelSim`] owns the `m × (m − 1)` directed links between sensor
//! positions and produces, per tick, one RSSI sample per link:
//!
//! ```text
//! rssi = P_tx − PL(‖d_i − d_j‖) + offset_ij        (static geometry)
//!        + drift(t) + fading_ij(t) + spike          (environment)
//!        − Σ_bodies B(body, link, t)                (obstruction)
//!        + burst noise (if a burst covers the link)
//!        + ε, then quantized
//! ```
//!
//! Everything is deterministic under the construction seed.

use fadewich_geometry::{Point, Rect, Segment};
use fadewich_stats::rng::Rng;

use crate::body::{link_attenuation_db, Body};
use crate::params::ChannelParams;
use crate::pathloss::mean_rssi_dbm;

/// One directed link's static and dynamic state.
#[derive(Debug, Clone)]
struct LinkState {
    segment: Segment,
    /// `P_tx − PL + static offset`, fixed at construction.
    base_rssi: f64,
    /// AR(1) multipath fading state.
    fading: f64,
}

/// An in-progress interference burst.
#[derive(Debug, Clone)]
struct ActiveBurst {
    ticks_left: u64,
    /// Pre-computed per-link affectedness.
    affected: Vec<bool>,
}

/// Identity of a directed link (`tx → rx`, indices into the sensor
/// list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId {
    /// Transmitting sensor index.
    pub tx: usize,
    /// Receiving sensor index.
    pub rx: usize,
}

impl LinkId {
    /// The paper's stream naming: `d<i>-d<j>` with 1-based indices.
    pub fn stream_name(&self) -> String {
        format!("d{}-d{}", self.tx + 1, self.rx + 1)
    }
}

/// Error constructing a [`ChannelSim`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildChannelError {
    /// Fewer than two sensors.
    TooFewSensors,
    /// A parameter failed validation (message from
    /// [`ChannelParams::validate`]).
    InvalidParams(String),
    /// The tick rate is not positive and finite.
    InvalidTickRate,
}

impl std::fmt::Display for BuildChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildChannelError::TooFewSensors => {
                write!(f, "a channel needs at least two sensors")
            }
            BuildChannelError::InvalidParams(msg) => write!(f, "invalid channel params: {msg}"),
            BuildChannelError::InvalidTickRate => write!(f, "tick rate must be positive"),
        }
    }
}

impl std::error::Error for BuildChannelError {}

/// Simulates RSSI streams for all directed sensor pairs.
#[derive(Debug, Clone)]
pub struct ChannelSim {
    params: ChannelParams,
    tick_hz: f64,
    bounds: Rect,
    links: Vec<LinkState>,
    link_ids: Vec<LinkId>,
    drift_db: f64,
    burst: Option<ActiveBurst>,
    rng: Rng,
    out: Vec<f64>,
}

impl ChannelSim {
    /// Builds a channel over `sensors` inside `bounds` ticking at
    /// `tick_hz`.
    ///
    /// Per-link static offsets are drawn once here from `seed`, so two
    /// channels with the same seed have identical hardware spread.
    ///
    /// # Errors
    ///
    /// See [`BuildChannelError`].
    pub fn new(
        sensors: &[Point],
        bounds: Rect,
        tick_hz: f64,
        params: ChannelParams,
        seed: u64,
    ) -> Result<ChannelSim, BuildChannelError> {
        if sensors.len() < 2 {
            return Err(BuildChannelError::TooFewSensors);
        }
        params.validate().map_err(BuildChannelError::InvalidParams)?;
        if !(tick_hz > 0.0) || !tick_hz.is_finite() {
            return Err(BuildChannelError::InvalidTickRate);
        }
        let mut rng = Rng::seed_from_u64(seed);
        let mut links = Vec::new();
        let mut link_ids = Vec::new();
        for tx in 0..sensors.len() {
            for rx in 0..sensors.len() {
                if tx == rx {
                    continue;
                }
                let segment = Segment::new(sensors[tx], sensors[rx]);
                let base = mean_rssi_dbm(&params, segment.length())
                    + rng.normal() * params.static_offset_sd_db;
                links.push(LinkState { segment, base_rssi: base, fading: 0.0 });
                link_ids.push(LinkId { tx, rx });
            }
        }
        let n = links.len();
        Ok(ChannelSim {
            params,
            tick_hz,
            bounds,
            links,
            link_ids,
            drift_db: 0.0,
            burst: None,
            rng,
            out: vec![0.0; n],
        })
    }

    /// Number of directed links (`m · (m − 1)`).
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// The tick rate in Hz.
    pub fn tick_hz(&self) -> f64 {
        self.tick_hz
    }

    /// Identities of all links, in stream order.
    pub fn link_ids(&self) -> &[LinkId] {
        &self.link_ids
    }

    /// The segment of stream `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn link_segment(&self, i: usize) -> Segment {
        self.links[i].segment
    }

    /// Indices (into the full stream list) of the streams whose both
    /// endpoints belong to `sensor_subset` — how experiments with fewer
    /// sensors are carved out of a 9-sensor trace.
    pub fn stream_indices_for_subset(&self, sensor_subset: &[usize]) -> Vec<usize> {
        self.link_ids
            .iter()
            .enumerate()
            .filter(|(_, id)| sensor_subset.contains(&id.tx) && sensor_subset.contains(&id.rx))
            .map(|(i, _)| i)
            .collect()
    }

    /// Advances one tick and returns the RSSI sample of every stream.
    ///
    /// The returned slice is owned by the simulator and overwritten by
    /// the next call; copy it out if you need to keep it.
    pub fn step(&mut self, bodies: &[Body]) -> &[f64] {
        let p = self.params;
        // Environmental drift: bounded random walk common to all links.
        self.drift_db = (self.drift_db + self.rng.normal() * p.drift_step_sd_db)
            .clamp(-p.drift_bound_db, p.drift_bound_db);

        // Burst lifecycle.
        if let Some(burst) = &mut self.burst {
            burst.ticks_left -= 1;
            if burst.ticks_left == 0 {
                self.burst = None;
            }
        } else {
            let arrival_p = p.burst_rate_per_hour / 3600.0 / self.tick_hz;
            if self.rng.bernoulli(arrival_p) {
                let epicentre = Point::new(
                    self.rng.range_f64(self.bounds.min().x, self.bounds.max().x),
                    self.rng.range_f64(self.bounds.min().y, self.bounds.max().y),
                );
                let duration_s =
                    self.rng.range_f64(p.burst_min_duration_s, p.burst_max_duration_s);
                let affected = self
                    .links
                    .iter()
                    .map(|l| l.segment.distance_to_point(epicentre) <= p.burst_radius_m)
                    .collect();
                self.burst = Some(ActiveBurst {
                    ticks_left: (duration_s * self.tick_hz).round().max(1.0) as u64,
                    affected,
                });
            }
        }

        let fading_innov_sd = p.fading_sd_db * (1.0 - p.fading_rho * p.fading_rho).sqrt();
        for (i, link) in self.links.iter_mut().enumerate() {
            link.fading = p.fading_rho * link.fading + fading_innov_sd * self.rng.normal();
            let mut rssi = link.base_rssi + self.drift_db + link.fading;
            rssi -= link_attenuation_db(&p, &link.segment, bodies, &mut self.rng);
            rssi += self.rng.normal() * p.measurement_noise_sd_db;
            if self.rng.bernoulli(p.spike_probability) {
                rssi += self.rng.skew_laplace(p.spike_scale_neg_db, p.spike_scale_pos_db);
            }
            if let Some(burst) = &self.burst {
                if burst.affected[i] {
                    rssi += self.rng.normal() * p.burst_noise_sd_db;
                }
            }
            self.out[i] = quantize(rssi, p.quantization_db);
        }
        &self.out
    }

    /// Whether an interference burst is currently active (exposed for
    /// tests and failure-injection experiments).
    pub fn burst_active(&self) -> bool {
        self.burst.is_some()
    }
}

fn quantize(x: f64, step: f64) -> f64 {
    if step > 0.0 {
        (x / step).round() * step
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fadewich_stats::descriptive::{mean, std_dev};

    fn sensors() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(6.0, 3.0),
            Point::new(0.0, 3.0),
        ]
    }

    fn sim(seed: u64) -> ChannelSim {
        ChannelSim::new(
            &sensors(),
            Rect::with_size(6.0, 3.0),
            5.0,
            ChannelParams::default(),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn link_count_is_m_times_m_minus_1() {
        assert_eq!(sim(1).n_links(), 12);
    }

    #[test]
    fn stream_names() {
        let s = sim(1);
        assert_eq!(s.link_ids()[0].stream_name(), "d1-d2");
        let last = s.link_ids().last().unwrap();
        assert_eq!(last.stream_name(), "d4-d3");
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = sim(42);
        let mut b = sim(42);
        for _ in 0..50 {
            assert_eq!(a.step(&[]), b.step(&[]));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = sim(1);
        let mut b = sim(2);
        assert_ne!(a.step(&[]), b.step(&[]));
    }

    #[test]
    fn rssi_in_plausible_range() {
        let mut s = sim(3);
        for _ in 0..200 {
            for &r in s.step(&[]) {
                assert!((-90.0..=-30.0).contains(&r), "rssi = {r}");
            }
        }
    }

    #[test]
    fn quantization_grid() {
        let mut s = sim(4);
        for _ in 0..20 {
            for &r in s.step(&[]) {
                let q = (r / 0.5).round() * 0.5;
                assert!((r - q).abs() < 1e-9, "rssi {r} not on 0.5 dB grid");
            }
        }
    }

    #[test]
    fn obstructing_body_lowers_mean_rssi() {
        // Body parked on the midpoint of the d1-d2 link (stream 0).
        let mut with = sim(5);
        let mut without = sim(5);
        let body = Body::still(Point::new(3.0, 0.0));
        let mut sum_with = 0.0;
        let mut sum_without = 0.0;
        for _ in 0..400 {
            sum_with += with.step(&[body])[0];
            sum_without += without.step(&[])[0];
        }
        let diff = sum_without / 400.0 - sum_with / 400.0;
        assert!(
            (diff - ChannelParams::default().body_attenuation_db).abs() < 1.0,
            "mean attenuation = {diff}"
        );
    }

    #[test]
    fn walking_body_raises_stream_std() {
        let mut s = sim(6);
        // Baseline std of stream 0 with an empty room.
        let quiet: Vec<f64> = (0..300).map(|_| s.step(&[])[0]).collect();
        // Walker crossing back and forth over the link.
        let mut walking = Vec::new();
        for i in 0..300 {
            let y = ((i as f64) * 0.1).sin() * 0.6; // oscillates across the link
            let body = Body::new(Point::new(3.0, y), 1.0);
            walking.push(s.step(&[body])[0]);
        }
        let (q, w) = (std_dev(&quiet), std_dev(&walking));
        assert!(w > 2.0 * q, "walking std {w} should dominate quiet std {q}");
    }

    #[test]
    fn subset_stream_selection() {
        let s = sim(7);
        let idx = s.stream_indices_for_subset(&[0, 2]);
        assert_eq!(idx.len(), 2);
        for i in idx {
            let id = s.link_ids()[i];
            assert!(matches!((id.tx, id.rx), (0, 2) | (2, 0)));
        }
        // Full subset selects everything.
        assert_eq!(s.stream_indices_for_subset(&[0, 1, 2, 3]).len(), 12);
        // Singleton has no streams.
        assert!(s.stream_indices_for_subset(&[1]).is_empty());
    }

    #[test]
    fn drift_stays_bounded() {
        let mut s = sim(8);
        let mut means = Vec::new();
        for _ in 0..5_000 {
            means.push(mean(s.step(&[])));
        }
        let spread =
            fadewich_stats::descriptive::max(&means).unwrap() - fadewich_stats::descriptive::min(&means).unwrap();
        // Drift bound is ±3 dB; total spread must stay within ~2 bounds
        // plus noise headroom.
        assert!(spread < 8.0, "spread = {spread}");
    }

    #[test]
    fn bursts_eventually_happen_and_end() {
        let params = ChannelParams {
            burst_rate_per_hour: 3600.0, // one per second on average
            ..ChannelParams::default()
        };
        let mut s = ChannelSim::new(
            &sensors(),
            Rect::with_size(6.0, 3.0),
            5.0,
            params,
            9,
        )
        .unwrap();
        let mut saw_active = false;
        let mut saw_inactive_after = false;
        for _ in 0..2_000 {
            s.step(&[]);
            if s.burst_active() {
                saw_active = true;
            } else if saw_active {
                saw_inactive_after = true;
            }
        }
        assert!(saw_active, "burst never started");
        assert!(saw_inactive_after, "burst never ended");
    }

    #[test]
    fn build_errors() {
        let r = ChannelSim::new(
            &[Point::ORIGIN],
            Rect::with_size(1.0, 1.0),
            5.0,
            ChannelParams::default(),
            0,
        );
        assert_eq!(r.unwrap_err(), BuildChannelError::TooFewSensors);
        let r = ChannelSim::new(
            &sensors(),
            Rect::with_size(6.0, 3.0),
            0.0,
            ChannelParams::default(),
            0,
        );
        assert_eq!(r.unwrap_err(), BuildChannelError::InvalidTickRate);
        let bad = ChannelParams { fading_rho: 2.0, ..ChannelParams::default() };
        let r = ChannelSim::new(&sensors(), Rect::with_size(6.0, 3.0), 5.0, bad, 0);
        assert!(matches!(r.unwrap_err(), BuildChannelError::InvalidParams(_)));
    }
}
