//! Wireless physical attacks (paper §V-C).
//!
//! The paper argues an adversary cannot defeat FADEWICH by
//! manipulating the channel: *raising* signal variance only triggers
//! MD, and *suppressing* it requires controlling what specific sensors
//! measure at specific times — and because a transmission from one
//! position is heard by many devices, "such attacks are detectable".
//! This module makes the argument testable by implementing the two
//! canonical attempts:
//!
//! - a **noise jammer**, which adds wideband noise around its position
//!   (raises variance → MD fires constantly → loud, not stealthy);
//! - a **saturation jammer**, a strong carrier that pins nearby
//!   receivers at a constant reading (variance collapses → can mask a
//!   departure on the affected links — the dangerous direction).
//!
//! The corresponding detector lives in `fadewich-core::guard`.

use fadewich_geometry::{Point, Segment};
use fadewich_stats::rng::Rng;

/// What the jammer emits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JammerKind {
    /// Wideband noise of the given standard deviation (dB).
    Noise {
        /// Added noise σ on affected links (dB).
        sd_db: f64,
    },
    /// A carrier strong enough to saturate nearby receivers: affected
    /// links read a constant level (plus quantization).
    Saturate {
        /// The pinned reading (dBm).
        level_dbm: f64,
    },
}

/// An adversarial transmitter somewhere in (or just outside) the
/// office.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jammer {
    /// Transmitter position.
    pub position: Point,
    /// Links whose *receiver-side path* passes within this distance of
    /// the jammer are affected (m).
    pub radius_m: f64,
    /// Emission type.
    pub kind: JammerKind,
    /// Active interval (seconds from day start).
    pub active_from_s: f64,
    /// End of the active interval.
    pub active_to_s: f64,
}

impl Jammer {
    /// Precomputes which links the jammer reaches.
    pub fn affected_links(&self, segments: &[Segment]) -> Vec<bool> {
        segments
            .iter()
            .map(|s| s.distance_to_point(self.position) <= self.radius_m)
            .collect()
    }

    /// Whether the jammer transmits at time `t`.
    pub fn is_active(&self, t: f64) -> bool {
        t >= self.active_from_s && t < self.active_to_s
    }

    /// Applies the jammer to one tick's RSSI row in place.
    ///
    /// # Panics
    ///
    /// Panics if `affected.len() != row.len()`.
    pub fn apply(&self, t: f64, affected: &[bool], row: &mut [f64], rng: &mut Rng) {
        assert_eq!(affected.len(), row.len(), "affected mask mismatch");
        if !self.is_active(t) {
            return;
        }
        match self.kind {
            JammerKind::Noise { sd_db } => {
                for (v, &hit) in row.iter_mut().zip(affected) {
                    if hit {
                        *v += rng.normal() * sd_db;
                    }
                }
            }
            JammerKind::Saturate { level_dbm } => {
                for (v, &hit) in row.iter_mut().zip(affected) {
                    if hit {
                        // The strong carrier dominates; the reading pins
                        // to the saturation level with only quantizer
                        // wobble left.
                        *v = level_dbm + rng.range_f64(-0.25, 0.25).round() * 0.5;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segments() -> Vec<Segment> {
        vec![
            Segment::new(Point::new(0.0, 0.0), Point::new(6.0, 0.0)),
            Segment::new(Point::new(0.0, 3.0), Point::new(6.0, 3.0)),
        ]
    }

    fn jammer(kind: JammerKind) -> Jammer {
        Jammer {
            position: Point::new(3.0, 0.5),
            radius_m: 1.0,
            kind,
            active_from_s: 10.0,
            active_to_s: 20.0,
        }
    }

    #[test]
    fn reach_is_geometric() {
        let j = jammer(JammerKind::Noise { sd_db: 4.0 });
        let affected = j.affected_links(&segments());
        assert_eq!(affected, vec![true, false]);
    }

    #[test]
    fn inactive_outside_interval() {
        let j = jammer(JammerKind::Noise { sd_db: 4.0 });
        let affected = j.affected_links(&segments());
        let mut row = vec![-50.0, -60.0];
        let mut rng = Rng::seed_from_u64(1);
        j.apply(5.0, &affected, &mut row, &mut rng);
        assert_eq!(row, vec![-50.0, -60.0]);
        j.apply(25.0, &affected, &mut row, &mut rng);
        assert_eq!(row, vec![-50.0, -60.0]);
    }

    #[test]
    fn noise_jammer_raises_variance_on_affected_links_only() {
        let j = jammer(JammerKind::Noise { sd_db: 4.0 });
        let affected = j.affected_links(&segments());
        let mut rng = Rng::seed_from_u64(2);
        let mut hit = Vec::new();
        let mut spared = Vec::new();
        for _ in 0..500 {
            let mut row = vec![-50.0, -60.0];
            j.apply(15.0, &affected, &mut row, &mut rng);
            hit.push(row[0]);
            spared.push(row[1]);
        }
        assert!(fadewich_stats::descriptive::std_dev(&hit) > 3.0);
        assert_eq!(fadewich_stats::descriptive::std_dev(&spared), 0.0);
    }

    #[test]
    fn saturation_pins_readings() {
        let j = jammer(JammerKind::Saturate { level_dbm: -35.0 });
        let affected = j.affected_links(&segments());
        let mut rng = Rng::seed_from_u64(3);
        let mut readings = Vec::new();
        for _ in 0..200 {
            let mut row = vec![-50.0 + rng.normal(), -60.0];
            j.apply(15.0, &affected, &mut row, &mut rng);
            readings.push(row[0]);
        }
        let sd = fadewich_stats::descriptive::std_dev(&readings);
        assert!(sd < 0.5, "saturated link must go near-silent, sd = {sd}");
        let mean = fadewich_stats::descriptive::mean(&readings);
        assert!((mean + 35.0).abs() < 0.5, "mean = {mean}");
    }
}
