//! Indoor RSSI channel simulator — the hardware substitution.
//!
//! The FADEWICH paper collected RSSI from nine physical 2.4 GHz sensor
//! nodes. This crate replaces that hardware with a channel model that
//! reproduces the phenomena the system depends on:
//!
//! 1. **Path loss** — log-distance mean RSSI per link ([`pathloss`]);
//! 2. **Body shadowing** — a Gaussian obstruction profile around each
//!    link plus motion jitter ([`body`]), the signal MD detects;
//! 3. **Environment noise** — white measurement noise, AR(1) multipath
//!    fading with skew-Laplace spikes, slow drift, and localized
//!    interference bursts ([`channel`]), the nuisances MD must survive.
//!
//! [`csi`] additionally simulates per-subcarrier Channel State
//! Information amplitudes — the finer-grained signal the paper's
//! future-work section asks about.
//!
//! # Examples
//!
//! ```
//! use fadewich_geometry::{Point, Rect};
//! use fadewich_rfchannel::{Body, ChannelParams, ChannelSim};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sensors = [Point::new(0.0, 0.0), Point::new(6.0, 0.0), Point::new(3.0, 3.0)];
//! let mut sim = ChannelSim::new(&sensors, Rect::with_size(6.0, 3.0), 5.0,
//!                               ChannelParams::default(), 42)?;
//! let walker = Body::new(Point::new(3.0, 0.0), 1.0);
//! let rssi = sim.step(&[walker]);
//! assert_eq!(rssi.len(), 6); // m(m-1) directed streams
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod body;
pub mod channel;
pub mod csi;
pub mod jamming;
pub mod params;
pub mod pathloss;

pub use body::Body;
pub use channel::{BuildChannelError, ChannelSim, LinkId};
pub use csi::CsiChannelSim;
pub use jamming::{Jammer, JammerKind};
pub use params::ChannelParams;
