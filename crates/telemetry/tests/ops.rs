//! Integration tests for the operations plane: the HTTP scrape
//! server, the SLO engine fed through a `Telemetry` handle, and the
//! conservative-quantile contract between exact SLO percentiles and
//! the registry histogram.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use fadewich_telemetry::serve::MAX_REQUEST_BYTES;
use fadewich_telemetry::{
    Histogram, ManualClock, OpsServer, SloEngine, SloKind, SloSpec, Telemetry, Value,
};

/// Issues one HTTP/1.0 request and returns the raw response.
fn http_get(addr: std::net::SocketAddr, target: &str) -> String {
    raw_request(addr, &format!("GET {target} HTTP/1.0\r\nHost: test\r\n\r\n"))
}

fn raw_request(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // A server rejecting an oversized request may close (and reset)
    // the socket while we are still writing or before we have read the
    // tail, so neither side of the exchange is allowed to panic.
    let _ = stream.write_all(request.as_bytes());
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => out.extend_from_slice(&chunk[..n]),
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn body_of(response: &str) -> &str {
    response.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("")
}

fn manual_clock_at(ns: u64) -> ManualClock {
    let c = ManualClock::new();
    c.set_ns(ns);
    c
}

fn ops_fixture() -> (Telemetry, OpsServer, Arc<ManualClock>) {
    let telemetry = Telemetry::metrics_only();
    let clock = Arc::new(manual_clock_at(1_000));
    let server =
        OpsServer::bind("127.0.0.1:0", telemetry.clone(), clock.clone()).unwrap();
    (telemetry, server, clock)
}

#[test]
fn metrics_endpoints_serve_the_shared_registry() {
    let (telemetry, server, _clock) = ops_fixture();
    telemetry.counter_add("runtime_frames_in", 42);
    telemetry.gauge_set("fleet_offices_active", 3.0);
    telemetry.histo_record("deauth_latency_ticks", 17);

    let prom = http_get(server.local_addr(), "/metrics");
    assert!(prom.starts_with("HTTP/1.0 200 OK\r\n"), "{prom}");
    assert!(prom.contains("Connection: close"), "{prom}");
    let body = body_of(&prom);
    assert!(body.contains("# TYPE runtime_frames_in counter"), "{body}");
    assert!(body.contains("runtime_frames_in 42"), "{body}");
    assert!(body.contains("fleet_offices_active 3"), "{body}");
    assert!(body.contains("deauth_latency_ticks_count 1"), "{body}");

    let json = http_get(server.local_addr(), "/metrics.json");
    assert!(json.contains("application/json"), "{json}");
    assert!(body_of(&json).contains("\"runtime_frames_in\":42"), "{json}");

    let index = http_get(server.local_addr(), "/");
    assert!(body_of(&index).contains("/metrics"), "{index}");
    assert!(http_get(server.local_addr(), "/nope").starts_with("HTTP/1.0 404"), "404 route");
    server.shutdown();
}

#[test]
fn oversized_and_malformed_requests_are_rejected() {
    let (_telemetry, server, _clock) = ops_fixture();
    // An oversized header block is answered 431 without buffering
    // past the cap.
    let huge = format!(
        "GET /metrics HTTP/1.0\r\nX-Padding: {}\r\n\r\n",
        "a".repeat(MAX_REQUEST_BYTES + 1024)
    );
    let resp = raw_request(server.local_addr(), &huge);
    assert!(resp.starts_with("HTTP/1.0 431"), "{resp}");
    // Non-GET methods are refused.
    let post = raw_request(
        server.local_addr(),
        "POST /metrics HTTP/1.0\r\nContent-Length: 0\r\n\r\n",
    );
    assert!(post.starts_with("HTTP/1.0 405"), "{post}");
    // The server is still alive and serving afterwards.
    assert!(http_get(server.local_addr(), "/healthz").starts_with("HTTP/1.0 200"));
    server.shutdown();
}

#[test]
fn concurrent_scrapes_all_complete() {
    let (telemetry, server, _clock) = ops_fixture();
    telemetry.counter_add("runtime_frames_in", 7);
    let addr = server.local_addr();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let target = if i % 2 == 0 { "/metrics" } else { "/healthz" };
                http_get(addr, target)
            })
        })
        .collect();
    for h in handles {
        let resp = h.join().unwrap();
        assert!(resp.starts_with("HTTP/1.0 200 OK"), "{resp}");
    }
    assert!(server.scrapes() >= 8);
    server.shutdown();
}

#[test]
fn healthz_flips_on_attack_quarantine() {
    let (telemetry, server, clock) = ops_fixture();
    let healthy = http_get(server.local_addr(), "/healthz");
    assert!(healthy.starts_with("HTTP/1.0 200 OK"), "{healthy}");
    assert!(body_of(&healthy).starts_with("ok\n"), "{healthy}");
    // Wall-time fields in the body stay behind the wall_ prefix and
    // come from the Clock seam.
    clock.advance_ns(500);
    let again = http_get(server.local_addr(), "/healthz");
    assert!(body_of(&again).contains("wall_uptime_ns 500"), "{again}");

    // One attack-quarantine flips the endpoint to 503.
    telemetry.counter_add("runtime_attack_quarantines", 1);
    let sick = http_get(server.local_addr(), "/healthz");
    assert!(sick.starts_with("HTTP/1.0 503"), "{sick}");
    assert!(body_of(&sick).starts_with("attack-quarantine\n"), "{sick}");
    server.shutdown();
}

#[test]
fn healthz_flips_on_fleet_under_attack_rollup() {
    let (telemetry, server, _clock) = ops_fixture();
    telemetry.gauge_set("fleet_health_offices{state=\"under_attack\"}", 2.0);
    let sick = http_get(server.local_addr(), "/healthz");
    assert!(sick.starts_with("HTTP/1.0 503"), "{sick}");
    server.shutdown();
}

#[test]
fn slo_body_is_deterministic_under_manual_clock() {
    // Everything the /slo endpoint renders lives on the logical tick
    // clock; a ManualClock pins the only wall-time source, so two
    // identical feeds must produce byte-identical bodies.
    let render = || {
        let telemetry = Telemetry::metrics_only();
        telemetry.set_slo(SloEngine::standard(20.0));
        let clock = Arc::new(ManualClock::new());
        let server = OpsServer::bind("127.0.0.1:0", telemetry.clone(), clock).unwrap();
        for (tick, start) in [(100u64, 40u64), (220, 180), (400, 310)] {
            telemetry.event(
                tick,
                "rule1_verdict",
                None,
                &[("deauth", Value::Bool(true)), ("window_start_tick", Value::U64(start))],
            );
        }
        telemetry.counter_add("runtime_frames_in", 5_000);
        telemetry.counter_add("runtime_frames_corrupt", 2);
        telemetry.counter_add("checkpoint_saves", 12);
        let body = body_of(&http_get(server.local_addr(), "/slo")).to_string();
        server.shutdown();
        body
    };
    let a = render();
    let b = render();
    assert_eq!(a, b, "slo body must be reproducible");
    assert!(a.contains("slo deauth_latency"), "{a}");
    assert!(a.contains("latency ticks  count 3  min 40  median 60  p95 90  max 90"), "{a}");
    assert!(a.contains("slo frame_corrupt_ratio"), "{a}");
    assert!(a.contains("slo checkpoint_save_success"), "{a}");
    // No engine attached → explicit, still-deterministic body.
    let bare = Telemetry::metrics_only();
    let server =
        OpsServer::bind("127.0.0.1:0", bare, Arc::new(ManualClock::new())).unwrap();
    let resp = http_get(server.local_addr(), "/slo");
    assert!(body_of(&resp).contains("no slo engine attached"), "{resp}");
    server.shutdown();
}

#[test]
fn slo_p95_from_histogram_is_conservative() {
    // The registry's log-linear histogram may only over-report the
    // p95 relative to the SLO engine's exact in-window computation —
    // never under-report it (the PR 5 quantile property, extended to
    // the SLO path).
    let mut seed = 0x5EEDu64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for _ in 0..50 {
        let n = (rng() % 200 + 1) as usize;
        let mut engine = SloEngine::new(vec![SloSpec {
            name: "lat".to_string(),
            objective: 0.95,
            window_ticks: u64::MAX,
            kind: SloKind::DeauthLatency { threshold_ticks: u64::MAX },
        }]);
        let mut histo = Histogram::default();
        for i in 0..n {
            let sample = rng() % 10_000;
            engine.observe_latency(i as u64 + 1, sample);
            histo.record(sample);
        }
        let status = &engine.statuses()[0];
        let (exact, _) = status.latency.unwrap();
        assert!(
            histo.quantile(0.95) >= exact.p95_ticks,
            "histogram p95 {} under exact p95 {} (n={n})",
            histo.quantile(0.95),
            exact.p95_ticks
        );
        assert!(histo.quantile(1.0) >= exact.max_ticks);
    }
}

#[test]
fn telemetry_routes_counters_and_events_into_attached_slo() {
    let telemetry = Telemetry::buffering();
    telemetry.set_slo(SloEngine::standard(20.0));
    // The audit-trail path: a deauth verdict event becomes a latency
    // sample without any extra plumbing at the call site.
    telemetry.event(
        900,
        "rule1_verdict",
        None,
        &[("deauth", Value::Bool(true)), ("window_start_tick", Value::U64(840))],
    );
    telemetry.counter_add("checkpoint_saves", 4);
    telemetry.counter_add("checkpoint_corrupt_skipped", 1);
    let statuses = telemetry.with_slo(|s| s.statuses()).unwrap();
    let lat = statuses.iter().find(|s| s.name == "deauth_latency").unwrap();
    assert_eq!(lat.total, 1);
    assert_eq!(lat.latency.unwrap().0.max_ticks, 60);
    let ck = statuses.iter().find(|s| s.name == "checkpoint_save_success").unwrap();
    assert_eq!((ck.total, ck.bad), (5, 1));
    assert!(ck.exhausted, "20% corrupt far exceeds the 0.1% budget");
    assert_eq!(ck.exhausted_transitions, 1);
    // The trace stream is unaffected by the attached engine.
    assert_eq!(telemetry.records().len(), 1);
    // Disabled handles ignore set_slo entirely.
    let off = Telemetry::disabled();
    off.set_slo(SloEngine::standard(20.0));
    assert!(off.slo_text().is_none());
}
