//! Property tests for the telemetry primitives: histogram quantile
//! soundness and trace render determinism.

use fadewich_telemetry::registry::Histogram;
use fadewich_telemetry::{Telemetry, Value};
use fadewich_testkit::prop;
use fadewich_testkit::property;

property! {
    // Quantiles are monotone in `q`, conservative (the `q`-quantile
    // bound covers at least `ceil(q·n)` samples), and `q = 1` never
    // under-reports the maximum sample.
    #[cases(64)]
    fn quantiles_are_monotone_and_cover_max(
        samples in prop::vecs(prop::u64s(0..u64::MAX / 2), 1..200)
    ) {
        let mut h = Histogram::default();
        for &s in &samples {
            h.record(s);
        }
        let max = *samples.iter().max().unwrap();
        assert!(h.quantile(1.0) >= max, "p100 {} < max {max}", h.quantile(1.0));
        let mut prev = 0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let b = h.quantile(q);
            assert!(b >= prev, "quantile not monotone: q={q} gives {b} < {prev}");
            // Conservative: at least ceil(q*n) samples fall at or
            // below the returned bound.
            let target = ((q * samples.len() as f64).ceil() as usize).max(1);
            let covered = samples.iter().filter(|&&s| s <= b).count();
            assert!(covered >= target, "q={q}: bound {b} covers {covered} < {target}");
            prev = b;
        }
    }
}

property! {
    // Re-emitting the same record sequence yields byte-identical
    // JSONL and metrics JSON — the contract the CI `cmp` gate relies
    // on.
    #[cases(32)]
    fn identical_emission_renders_identical_bytes(
        ticks in prop::vecs(prop::u64s(0..1_000_000), 1..40)
    ) {
        let run = || {
            let t = Telemetry::buffering();
            let mut open = Vec::new();
            for (i, &tick) in ticks.iter().enumerate() {
                let parent = open.last().copied();
                if i % 3 == 0 {
                    if let Some(id) = t.span_open(
                        tick,
                        "window",
                        parent,
                        &[("st", Value::F64(tick as f64 * 0.5)), ("i", Value::U64(i as u64))],
                    ) {
                        open.push(id);
                    }
                } else if i % 3 == 1 {
                    t.event(tick, "sample", parent, &[("v", Value::I64(i as i64 - 7))]);
                    t.counter_add("samples", 1);
                    t.histo_record("tick_gap", tick % 97);
                } else if let Some(id) = open.pop() {
                    t.span_close(tick, id);
                }
            }
            (t.trace_string(), t.metrics_json(false).unwrap())
        };
        let (trace_a, metrics_a) = run();
        let (trace_b, metrics_b) = run();
        assert_eq!(trace_a, trace_b);
        assert_eq!(metrics_a, metrics_b);
    }
}
