//! Shared hand-rolled JSON rendering helpers.

/// Escapes a string for inclusion inside JSON quotes.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number. Rust's shortest-roundtrip
/// `Display` is deterministic; non-finite values (which JSON cannot
/// carry) become `null`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() { format!("{v}") } else { "null".to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn floats_render_deterministically() {
        assert_eq!(fmt_f64(1.25), "1.25");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }
}
