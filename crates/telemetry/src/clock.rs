//! The workspace's single wall-clock boundary.
//!
//! Every byte a replay writes to stdout, `--trace-out` or
//! `--metrics-out` must be reproducible from the scenario seed, so
//! wall time is quarantined behind [`Clock`]: production code reads
//! time through a `dyn Clock` handle and tests substitute a
//! [`ManualClock`] they advance by hand. `scripts/ci.sh` greps the
//! tree for direct `Instant::now()` calls to keep it that way — this
//! module (and the vendored bench timer in `testkit`) are the only
//! allowed call sites.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A monotonic nanosecond clock.
///
/// Implementations must be monotone non-decreasing; nothing else is
/// promised. The absolute origin is arbitrary (process start for
/// [`WallClock`], zero for [`ManualClock`]), so only differences are
/// meaningful.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since this clock's arbitrary origin.
    fn now_ns(&self) -> u64;
}

/// The real monotonic clock, anchored at first use.
///
/// All instances share one process-wide anchor so readings taken
/// through different handles are mutually comparable.
#[derive(Debug, Clone, Copy, Default)]
pub struct WallClock;

fn anchor() -> &'static Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now)
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        anchor().elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// A hand-cranked clock for deterministic tests.
///
/// Starts at zero; [`advance_ns`](Self::advance_ns) moves it forward.
/// Shared freely across threads (readings are atomic).
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// A clock stopped at `t = 0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the clock forward by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Sets the clock to an absolute reading.
    ///
    /// # Panics
    ///
    /// Panics if `ns` would move the clock backwards.
    pub fn set_ns(&self, ns: u64) {
        let prev = self.ns.swap(ns, Ordering::Relaxed);
        assert!(ns >= prev, "ManualClock moved backwards: {prev} -> {ns}");
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock;
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_and_sets() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance_ns(1_000);
        c.advance_ns(500);
        assert_eq!(c.now_ns(), 1_500);
        c.set_ns(2_000);
        assert_eq!(c.now_ns(), 2_000);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn manual_clock_rejects_regression() {
        let c = ManualClock::new();
        c.set_ns(10);
        c.set_ns(5);
    }

    #[test]
    fn usable_as_trait_object() {
        let c: Arc<dyn Clock> = Arc::new(ManualClock::new());
        assert_eq!(c.now_ns(), 0);
    }
}
