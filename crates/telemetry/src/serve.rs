//! Zero-dependency HTTP/1.0 scrape server for the operations plane.
//!
//! The workspace has no async runtime and no HTTP library, so this is
//! a deliberately small hand-rolled server on `std::net::TcpListener`:
//! one accept thread, one short-lived thread per connection, bounded
//! request reads (oversized or slow requests are rejected, never
//! buffered without limit), `Connection: close` on every response.
//! It is the repo's first socket code — a stepping stone toward the
//! ROADMAP's socket ingestion front.
//!
//! Endpoints:
//!
//! - `/metrics` — Prometheus text exposition of the shared registry
//!   (wall histograms included; they carry `_ns` names and are
//!   excluded from deterministic dumps elsewhere).
//! - `/metrics.json` — the JSON render of the same registry.
//! - `/healthz` — `200 ok` normally, `503` once any attack-quarantine
//!   counter or the fleet's under-attack rollup is nonzero. Wall-time
//!   fields in the body are prefixed `wall_` per the quarantine
//!   convention.
//! - `/slo` — the attached [`SloEngine`](crate::slo::SloEngine)'s
//!   deterministic report.
//! - `/` — a plain-text index.
//!
//! Wall time is read only through the [`Clock`] seam handed to
//! [`OpsServer::bind`], so tests drive uptime with a
//! [`ManualClock`](crate::clock::ManualClock) and response bodies stay
//! reproducible.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::clock::Clock;
use crate::trace::Telemetry;

/// Largest request (line + headers) the server will buffer before
/// answering `431 Request Header Fields Too Large`.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket timeout: a peer that stalls mid-request is
/// dropped instead of pinning a handler thread.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Shared state every connection handler reads.
struct Shared {
    telemetry: Telemetry,
    clock: Arc<dyn Clock>,
    start_ns: u64,
    scrapes: AtomicU64,
    rejected: AtomicU64,
    shutdown: AtomicBool,
}

/// A running scrape server. Dropping (or calling
/// [`shutdown`](Self::shutdown)) stops the accept loop.
pub struct OpsServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for OpsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpsServer").field("addr", &self.addr).finish()
    }
}

impl OpsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving the shared registry and SLO report.
    ///
    /// # Errors
    ///
    /// Propagates bind/listen failures.
    pub fn bind(
        addr: &str,
        telemetry: Telemetry,
        clock: Arc<dyn Clock>,
    ) -> std::io::Result<OpsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            telemetry,
            start_ns: clock.now_ns(),
            clock,
            scrapes: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let worker = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("fadewich-ops".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if worker.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let state = Arc::clone(&worker);
                    // Short-lived per-connection handlers; a failed
                    // spawn just drops the connection.
                    let _ = thread::Builder::new()
                        .name("fadewich-ops-conn".to_string())
                        .spawn(move || handle_connection(stream, &state));
                }
            })?;
        Ok(OpsServer { addr: local, shared, accept: Some(accept) })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests served so far.
    pub fn scrapes(&self) -> u64 {
        self.shared.scrapes.load(Ordering::SeqCst)
    }

    /// Stops the accept loop and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop();
        }
    }
}

/// Reads a bounded request head; `None` means oversized/garbled.
fn read_request_head(stream: &mut TcpStream) -> Option<String> {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() > MAX_REQUEST_BYTES {
                    return None;
                }
                if buf.windows(4).any(|w| w == b"\r\n\r\n")
                    || buf.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    Some(String::from_utf8_lossy(&buf).into_owned())
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let Some(head) = read_request_head(&mut stream) else {
        shared.rejected.fetch_add(1, Ordering::SeqCst);
        respond(
            &mut stream,
            431,
            "Request Header Fields Too Large",
            "text/plain",
            "request too large\n",
        );
        // Drain briefly so closing with unread bytes doesn't reset
        // the connection before the peer has read the 431.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let mut sink = [0u8; 1024];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
        return;
    };
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method.is_empty() && target.is_empty() {
        // Shutdown self-connect or an empty probe: nothing to answer.
        return;
    }
    if method != "GET" {
        shared.rejected.fetch_add(1, Ordering::SeqCst);
        respond(&mut stream, 405, "Method Not Allowed", "text/plain", "GET only\n");
        return;
    }
    shared.scrapes.fetch_add(1, Ordering::SeqCst);
    let path = target.split('?').next().unwrap_or("");
    let (status, reason, ctype, body) = route(path, shared);
    respond(&mut stream, status, reason, ctype, &body);
}

/// Routes a GET to its body. Everything except `/healthz` and `/` is
/// a pure function of the registry/SLO state.
fn route(path: &str, shared: &Shared) -> (u16, &'static str, &'static str, String) {
    match path {
        "/metrics" => {
            let body = shared
                .telemetry
                .prometheus_text(true)
                .unwrap_or_else(|| "# telemetry disabled\n".to_string());
            (200, "OK", "text/plain; version=0.0.4", body)
        }
        "/metrics.json" => {
            let body = shared
                .telemetry
                .metrics_json(true)
                .unwrap_or_else(|| "{}".to_string());
            (200, "OK", "application/json", body + "\n")
        }
        "/healthz" => {
            let under_attack = shared
                .telemetry
                .with_registry(|r| {
                    r.counter("runtime_attack_quarantines") > 0
                        || r.counter("fleet_auth_attack_quarantines") > 0
                        || r.gauge("fleet_health_offices{state=\"under_attack\"}")
                            .unwrap_or(0.0)
                            > 0.0
                })
                .unwrap_or(false);
            let uptime = shared.clock.now_ns().saturating_sub(shared.start_ns);
            let tail = format!(
                "wall_uptime_ns {uptime}\nwall_scrapes {}\nwall_rejected {}\n",
                shared.scrapes.load(Ordering::SeqCst),
                shared.rejected.load(Ordering::SeqCst)
            );
            if under_attack {
                (503, "Service Unavailable", "text/plain", format!("attack-quarantine\n{tail}"))
            } else {
                (200, "OK", "text/plain", format!("ok\n{tail}"))
            }
        }
        "/slo" => match shared.telemetry.slo_text() {
            Some(body) => (200, "OK", "text/plain", body),
            None => (200, "OK", "text/plain", "no slo engine attached\n".to_string()),
        },
        "/" => (
            200,
            "OK",
            "text/plain",
            "fadewich ops plane\n/metrics\n/metrics.json\n/healthz\n/slo\n".to_string(),
        ),
        _ => (404, "Not Found", "text/plain", "not found\n".to_string()),
    }
}

fn respond(stream: &mut TcpStream, status: u16, reason: &str, ctype: &str, body: &str) {
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .and_then(|()| stream.flush());
}
