//! Central metrics registry: named counters, gauges and log-linear
//! histograms, with hand-rolled Prometheus-text and JSON exposition
//! (the workspace has no serde).
//!
//! Metrics split into two determinism classes. Anything derived from
//! the logical tick stream (counters, gauges, tick-valued histograms)
//! is seed-reproducible; wall-clock latency histograms are not and
//! are registered through the `*_wall` entry points. The exposition
//! functions take `include_wall` so `--metrics-out` can emit a
//! byte-identical dump across replays while `fadewichd stats` still
//! sees the latency data from a live dump.

use std::collections::BTreeMap;

use crate::render::{escape_json, fmt_f64};

/// Exact buckets for values `0..8`; above that, four linear
/// sub-buckets per power of two (a log-linear layout, ~12% worst-case
/// relative error on quantile bounds).
const EXACT: u64 = 8;
const SUB_BITS: u32 = 2;
/// Enough buckets to index any `u64` value: exact buckets plus
/// octaves `SUB_BITS + 1 ..= 63`, each with `2^SUB_BITS` sub-buckets.
const N_BUCKETS: usize = EXACT as usize + (63 - SUB_BITS as usize) * (1 << SUB_BITS);

fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as usize; // >= 3
    let sub = ((v >> (octave as u32 - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    EXACT as usize + (octave - SUB_BITS as usize - 1) * (1 << SUB_BITS) + sub
}

/// Inclusive upper bound of bucket `k`.
fn bucket_bound(k: usize) -> u64 {
    if k < EXACT as usize {
        return k as u64;
    }
    let rel = k - EXACT as usize;
    let octave = rel / (1 << SUB_BITS) + SUB_BITS as usize + 1;
    let sub = (rel % (1 << SUB_BITS)) as u64;
    let step = 1u64 << (octave as u32 - SUB_BITS);
    // Summed in this order the top bucket lands exactly on u64::MAX
    // without overflowing.
    (1u64 << octave) - 1 + (sub + 1) * step
}

/// A log-linear histogram over unit-agnostic `u64` samples (ticks for
/// deterministic metrics, nanoseconds for wall-clock latency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { buckets: vec![0; N_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 { 0 } else { self.min }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 { 0 } else { (self.sum / self.count as u128) as u64 }
    }

    /// Upper bucket bound below which at least `q` of the samples
    /// fall — a conservative quantile read off the histogram, monotone
    /// in `q` and never below the floor of the bucket holding the
    /// largest sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // The top populated bucket's nominal bound can sit
                // below the recorded max (values past the layout's
                // range saturate); clamp so q = 1 covers the max.
                return if seen == self.count { bucket_bound(k).max(self.max) } else { bucket_bound(k) };
            }
        }
        self.max
    }

    fn json(&self) -> String {
        let mut nonzero = Vec::new();
        for (k, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                nonzero.push(format!("[{},{}]", bucket_bound(k), c));
            }
        }
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.min(),
            self.max,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.99),
            nonzero.join(",")
        )
    }
}

#[derive(Debug, Clone)]
struct HistoEntry {
    h: Histogram,
    /// Wall-clock histograms are excluded from deterministic dumps.
    wall: bool,
}

/// Named counters, gauges and histograms behind `BTreeMap`s, so every
/// exposition is emitted in one canonical (sorted) order.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histos: BTreeMap<String, HistoEntry>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named counter, creating it at zero.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to the latest observation.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Reads back a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records a sample into a deterministic (tick-domain) histogram.
    pub fn histo_record(&mut self, name: &str, v: u64) {
        self.entry(name, false).h.record(v);
    }

    /// Records a sample into a wall-clock histogram; these are
    /// excluded when the exposition is asked for deterministic output.
    pub fn histo_record_wall(&mut self, name: &str, v: u64) {
        self.entry(name, true).h.record(v);
    }

    /// Reads back a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histos.get(name).map(|e| &e.h)
    }

    fn entry(&mut self, name: &str, wall: bool) -> &mut HistoEntry {
        self.histos
            .entry(name.to_string())
            .or_insert_with(|| HistoEntry { h: Histogram::default(), wall })
    }

    /// Hand-rolled JSON dump. With `include_wall = false` the output
    /// is a pure function of the logical event stream and therefore
    /// byte-identical across replays of the same seeded scenario.
    pub fn to_json(&self, include_wall: bool) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", escape_json(k), v))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", escape_json(k), fmt_f64(*v)))
            .collect();
        let histos: Vec<String> = self
            .histos
            .iter()
            .filter(|(_, e)| include_wall || !e.wall)
            .map(|(k, e)| format!("\"{}\":{}", escape_json(k), e.h.json()))
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            histos.join(",")
        )
    }

    /// Prometheus text exposition (`# TYPE` lines, cumulative
    /// histogram buckets, `_sum`/`_count` series). Same `include_wall`
    /// contract as [`to_json`](Self::to_json).
    /// Metric keys may carry a Prometheus-style label block — e.g. the
    /// fleet runtime registers `runtime_ticks_processed{office="3"}` —
    /// which is passed through verbatim; the `# TYPE` line is emitted
    /// once per *base* name, so labeled series of the same family share
    /// one declaration (`BTreeMap` order keeps a family's series
    /// adjacent).
    pub fn prometheus_text(&self, include_wall: bool) -> String {
        let mut out = String::new();
        let mut last_typed = String::new();
        for (k, v) in &self.counters {
            let (name, labels) = prom_name(k);
            if name != last_typed {
                out.push_str(&format!("# TYPE {name} counter\n"));
                last_typed = name.clone();
            }
            out.push_str(&format!("{name}{labels} {v}\n"));
        }
        last_typed.clear();
        for (k, v) in &self.gauges {
            let (name, labels) = prom_name(k);
            if name != last_typed {
                out.push_str(&format!("# TYPE {name} gauge\n"));
                last_typed = name.clone();
            }
            out.push_str(&format!("{name}{labels} {}\n", fmt_f64(*v)));
        }
        last_typed.clear();
        for (k, e) in &self.histos {
            if e.wall && !include_wall {
                continue;
            }
            let (name, labels) = prom_name(k);
            if name != last_typed {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                last_typed = name.clone();
            }
            // A histogram's extra labels join `le` inside the braces.
            let inner = labels.trim_start_matches('{').trim_end_matches('}');
            let le_prefix =
                if inner.is_empty() { String::new() } else { format!("{inner},") };
            let mut cum = 0u64;
            for (i, &c) in e.h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cum += c;
                out.push_str(&format!(
                    "{name}_bucket{{{le_prefix}le=\"{}\"}} {cum}\n",
                    bucket_bound(i)
                ));
            }
            out.push_str(&format!("{name}_bucket{{{le_prefix}le=\"+Inf\"}} {}\n", e.h.count));
            out.push_str(&format!("{name}_sum{labels} {}\n", e.h.sum));
            out.push_str(&format!("{name}_count{labels} {}\n", e.h.count));
        }
        out
    }

    /// Folds another registry into this one (counters add, gauges take
    /// the other's value, histogram buckets merge).
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.counter_add(k, *v);
        }
        for (k, v) in &other.gauges {
            self.gauge_set(k, *v);
        }
        for (k, e) in &other.histos {
            let mine = self.entry(k, e.wall);
            for (i, &c) in e.h.buckets.iter().enumerate() {
                mine.h.buckets[i] += c;
            }
            mine.h.count += e.h.count;
            mine.h.sum += e.h.sum;
            mine.h.min = mine.h.min.min(e.h.min);
            mine.h.max = mine.h.max.max(e.h.max);
        }
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; everything else
/// becomes `_`.
fn sanitize_prom(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

/// Splits a registry key into a sanitized metric name and its verbatim
/// label block (`""` when unlabeled). A key with no closing `}` is
/// treated as unlabeled and fully sanitized — a stray `{` must not
/// produce invalid exposition text.
fn prom_name(key: &str) -> (String, String) {
    match key.find('{') {
        Some(open) if key.ends_with('}') => {
            (sanitize_prom(&key[..open]), key[open..].to_string())
        }
        _ => (sanitize_prom(key), String::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_are_consistent() {
        // Every value lands in a bucket whose bound covers it, and
        // bounds are strictly monotone in the bucket index.
        for v in (0..10_000u64).chain([1 << 20, (1 << 20) + 13, u64::MAX / 2, u64::MAX]) {
            let k = bucket_index(v);
            assert!(bucket_bound(k) >= v, "v={v} k={k} bound={}", bucket_bound(k));
            if k > 0 {
                assert!(bucket_bound(k - 1) < v, "v={v} below bucket {k}'s floor");
            }
        }
        for k in 1..N_BUCKETS {
            assert!(bucket_bound(k) > bucket_bound(k - 1), "bounds not monotone at {k}");
        }
    }

    #[test]
    fn quantile_covers_max_sample() {
        let mut h = Histogram::default();
        for _ in 0..99 {
            h.record(2);
        }
        h.record(1_000_000);
        assert_eq!(h.quantile(0.5), 2);
        assert!(h.quantile(1.0) >= 1_000_000);
        assert_eq!(h.mean(), (99 * 2 + 1_000_000) / 100);
    }

    #[test]
    fn registry_json_and_prometheus_shapes() {
        let mut r = MetricsRegistry::new();
        r.counter_add("frames_in", 3);
        r.counter_add("frames_in", 4);
        r.gauge_set("md_threshold", 1.25);
        r.histo_record("deauth_latency_ticks", 12);
        r.histo_record_wall("step_ns", 900);

        let det = r.to_json(false);
        assert!(det.contains("\"frames_in\":7"), "{det}");
        assert!(det.contains("\"md_threshold\":1.25"), "{det}");
        assert!(det.contains("deauth_latency_ticks"), "{det}");
        assert!(!det.contains("step_ns"), "wall histo leaked: {det}");
        assert!(r.to_json(true).contains("step_ns"));
        assert_eq!(det.matches('{').count(), det.matches('}').count());
        assert!(!det.contains(",}") && !det.contains(",]"));

        let prom = r.prometheus_text(true);
        assert!(prom.contains("# TYPE frames_in counter"), "{prom}");
        assert!(prom.contains("# TYPE step_ns histogram"), "{prom}");
        assert!(prom.contains("step_ns_bucket{le=\"+Inf\"} 1"), "{prom}");
        assert!(!r.prometheus_text(false).contains("step_ns"));
    }

    #[test]
    fn labeled_keys_render_as_prometheus_labels() {
        // The fleet runtime registers per-office series by embedding
        // the label block in the key; one # TYPE line must cover the
        // whole family and each series keeps its labels verbatim.
        let mut r = MetricsRegistry::new();
        r.counter_add("runtime_ticks_processed{office=\"0\"}", 10);
        r.counter_add("runtime_ticks_processed{office=\"12\"}", 20);
        r.gauge_set("fleet_shard_tick_lag{shard=\"1\"}", 3.0);
        r.histo_record("deauth_latency_ticks{office=\"7\"}", 5);

        let prom = r.prometheus_text(false);
        assert_eq!(prom.matches("# TYPE runtime_ticks_processed counter").count(), 1, "{prom}");
        assert!(prom.contains("runtime_ticks_processed{office=\"0\"} 10"), "{prom}");
        assert!(prom.contains("runtime_ticks_processed{office=\"12\"} 20"), "{prom}");
        assert!(prom.contains("fleet_shard_tick_lag{shard=\"1\"} 3"), "{prom}");
        assert!(prom.contains("deauth_latency_ticks_bucket{office=\"7\",le=\""), "{prom}");
        assert!(prom.contains("deauth_latency_ticks_count{office=\"7\"} 1"), "{prom}");
        // A malformed key (unterminated brace) degrades to a sanitized
        // plain name instead of emitting invalid exposition text.
        let mut bad = MetricsRegistry::new();
        bad.counter_add("oops{office=\"3\"", 1);
        let text = bad.prometheus_text(false);
        assert!(text.contains("oops_office__3_ 1"), "{text}");
        // JSON keeps full keys untouched.
        assert!(r.to_json(false).contains("\"runtime_ticks_processed{office=\\\"0\\\"}\":10"));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter_add("c", 1);
        b.counter_add("c", 2);
        b.histo_record("h", 5);
        a.merge_from(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 1);
    }
}
